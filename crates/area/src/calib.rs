//! Calibration constants for the area model.
//!
//! Two kinds of constants appear here:
//!
//! * **Measured** — the CheriCapLib costs come from Figure 7 via
//!   [`cheri_cap::area`]; the register-file BRAM comes from the bit-exact
//!   accounting in [`simt_regfile`].
//! * **Calibrated** — structural constants chosen once so that the
//!   *Baseline* row of Table 3 lands on the published totals (126,753 ALMs
//!   / 2,156 Kb). Given the baseline, the CHERI rows are then produced by
//!   the model's structure (which functions sit per lane vs in the SFU,
//!   which memories widen), not by fitting each row.
//!
//! All ALM constants are per instance; `LANE_*` constants are multiplied by
//! the lane count.

// ---- Baseline SM (calibrated to the Table-3 Baseline row) ----

/// Integer ALU + Zfinx float add/mul per lane (DSP inference disabled, so
/// the float datapath is implemented in soft logic — the dominant cost).
pub const LANE_EXEC: u32 = 2_300;
/// Register-file write path (compression comparators, write muxing) per lane.
pub const LANE_RF_WRITE: u32 = 300;
/// Memory request generation and response steering per lane.
pub const LANE_MEM: u32 = 250;
/// Fetch, decode, barrel scheduler, active-thread selection, convergence.
pub const FRONT_END: u32 = 9_000;
/// The coalescing unit.
pub const COALESCER: u32 = 6_500;
/// Scratchpad banking and switching network.
pub const SCRATCH_NET: u32 = 8_000;
/// Shared function unit (float divide / square root) incl. serialisers.
pub const SFU_BASE: u32 = 5_000;
/// SoC uncore: DRAM controller front end, host bridge, CSRs.
pub const UNCORE: u32 = 7_053;

// ---- CHERI additions (structural; shared between both CHERI rows) ----

/// Widening the two operand buses and the write-back path to 65 bits.
pub const LANE_CAP_MUX: u32 = 180;
/// Permission/seal/tag exception checks in the access path.
pub const LANE_CAP_EXC: u32 = 60;
/// Multi-flit (two-cycle) capability access sequencing.
pub const LANE_CAP_FLIT: u32 = 70;
/// Per-thread PCC address maintenance in the fetch path.
pub const LANE_PCC: u32 = 60;
/// Uniformity comparator in the metadata register-file write path
/// (33 bits; only with the compressed metadata RF).
pub const LANE_META_CMP: u32 = 33;
/// Null-value-optimisation mask maintenance (only with NVO).
pub const LANE_NVO: u32 = 16;
/// PCC-*metadata* comparison in active-thread selection — dropped by the
/// static-PC-metadata restriction.
pub const LANE_PCC_SELECT: u32 = 190;
/// Widening the SFU request serialiser / response deserialiser to carry
/// capability-sized operands (Section 3.3) — comparable to one multiplier.
pub const SFU_CAP_SERDES: u32 = 557;
/// Tag controller in front of DRAM.
pub const TAG_CONTROLLER: u32 = 1_500;
/// Remaining CHERI control plumbing (SCRs, kernel-launch capability set-up).
pub const CHERI_CONTROL: u32 = 1_039;

// ---- Block RAM (Kb) ----

/// 64 KiB tightly-coupled instruction memory.
pub const TCIM_KB: f64 = 512.0;
/// 64 KiB scratchpad data.
pub const SCRATCH_KB: f64 = 512.0;
/// Pipeline queues, divider state, suspension buffers (calibrated).
pub const QUEUES_KB: f64 = 196.5;
/// Scratchpad tag bits: 1 bit per 32-bit word of 64 KiB.
pub const SCRATCH_TAG_KB: f64 = 16.0;
/// Tag cache data store (128 lines × 64 B).
pub const TAG_CACHE_KB: f64 = 64.0;
/// Capability-sized SFU request/response queues.
pub const SFU_CAP_QUEUE_KB: f64 = 0.25;

// ---- Fmax ----

/// Baseline clock on the Stratix-10 evaluation board.
pub const FMAX_BASELINE_MHZ: u32 = 180;

/// CHERI leaves the critical path essentially unchanged (Table 3 reports
/// 180/181/180 MHz — seed noise more than structure).
pub fn fmax_mhz(opts: &cheri_simt::CheriOpts) -> u32 {
    if opts.compress_meta {
        FMAX_BASELINE_MHZ
    } else {
        FMAX_BASELINE_MHZ + 1
    }
}
