//! Analytical FPGA area model for the CHERI-SIMT configurations.
//!
//! Synthesis cannot run inside a software model, so — like the paper's own
//! area reasoning — this crate composes the design's cost from per-lane and
//! per-SM components:
//!
//! * the CheriCapLib function costs of **Figure 7** (measured, from
//!   [`cheri_cap::area`]): the hot functions (`fromMem`, `toMem`,
//!   `setAddr`, `isAccessInBounds`) are instantiated per vector lane, the
//!   cold ones (`getBase`, `getLength`, `getTop`, `setBounds`) per lane in
//!   the naive configuration but once per SM (in the shared function unit)
//!   in the optimised one;
//! * the bit-exact register-file storage accounting of [`simt_regfile`];
//! * calibrated structural constants (documented in [`calib`]) that land
//!   the baseline on the published Table-3 figures, so the *deltas* — the
//!   quantities the paper's argument rests on — are produced structurally.
//!
//! ```
//! use cheri_simt::{CheriMode, CheriOpts, SmConfig};
//! use sim_area::synthesise;
//!
//! let base = synthesise(&SmConfig::full(CheriMode::Off));
//! let opt = synthesise(&SmConfig::full(CheriMode::On(CheriOpts::optimised())));
//! let naive = synthesise(&SmConfig::full(CheriMode::On(CheriOpts::naive())));
//! // SFU offload reduces the logic-area overhead by ~44%.
//! let (oh_naive, oh_opt) = (naive.alms - base.alms, opt.alms - base.alms);
//! assert!(oh_opt < oh_naive * 60 / 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;

use cheri_simt::{CheriOpts, SmConfig};
use simt_regfile::{uncompressed_bits, RegFileStorage, RfConfig};

/// One line of the area breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// ALMs contributed.
    pub alms: u32,
}

/// A synthesis-style report (one row of Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Adaptive Logic Modules (DSP use disabled, as in the paper).
    pub alms: u32,
    /// DSP blocks (always zero: DSP inference is disabled).
    pub dsps: u32,
    /// Block RAM bits, in kilobits.
    pub bram_kb: f64,
    /// Achieved clock frequency estimate in MHz.
    pub fmax_mhz: u32,
    /// ALM breakdown.
    pub components: Vec<Component>,
}

impl AreaReport {
    fn push(&mut self, name: &str, alms: u32) {
        self.alms += alms;
        self.components.push(Component { name: name.to_string(), alms });
    }
}

/// Estimate the synthesis results for an SM configuration.
pub fn synthesise(cfg: &SmConfig) -> AreaReport {
    let lanes = cfg.lanes;
    let mut r = AreaReport {
        alms: 0,
        dsps: 0,
        bram_kb: bram_kilobits(cfg),
        fmax_mhz: calib::FMAX_BASELINE_MHZ,
        components: Vec::new(),
    };

    // ---- Baseline SM ----
    r.push("per-lane execute units", calib::LANE_EXEC * lanes);
    r.push("per-lane register-file write path", calib::LANE_RF_WRITE * lanes);
    r.push("per-lane memory path", calib::LANE_MEM * lanes);
    r.push("front end + scheduler + convergence", calib::FRONT_END);
    r.push("coalescing unit", calib::COALESCER);
    r.push("scratchpad banking network", calib::SCRATCH_NET);
    r.push("shared function unit (fdiv/fsqrt)", calib::SFU_BASE);
    r.push("SoC uncore (DRAM ctrl, host bridge)", calib::UNCORE);

    // ---- CHERI additions ----
    if let Some(opts) = cfg.cheri.opts() {
        r.fmax_mhz = calib::fmax_mhz(&opts);
        let fast = cheri_cap::area::fast_path_alms();
        let slow = cheri_cap::area::slow_path_alms();
        r.push("per-lane CheriCapLib fast path", fast * lanes);
        if opts.sfu_cap_ops {
            r.push("SFU CheriCapLib slow path", slow);
            r.push("SFU request/response widening", calib::SFU_CAP_SERDES);
        } else {
            r.push("per-lane CheriCapLib slow path", slow * lanes);
        }
        r.push("per-lane 65-bit operand muxing", calib::LANE_CAP_MUX * lanes);
        r.push("per-lane CHERI exception checks", calib::LANE_CAP_EXC * lanes);
        r.push("per-lane multi-flit access logic", calib::LANE_CAP_FLIT * lanes);
        r.push("per-lane PCC maintenance", calib::LANE_PCC * lanes);
        if opts.compress_meta {
            r.push("per-lane metadata uniformity comparator", calib::LANE_META_CMP * lanes);
            if opts.nvo {
                r.push("per-lane NVO mask logic", calib::LANE_NVO * lanes);
            }
        }
        if !opts.static_pcc {
            r.push("per-lane PCC-metadata selection compare", calib::LANE_PCC_SELECT * lanes);
        }
        r.push("tag controller", calib::TAG_CONTROLLER);
        r.push("CHERI control plumbing", calib::CHERI_CONTROL);
    }
    r
}

/// Block-RAM bits (Kb) for a configuration — structural, from the register
/// file accounting plus the fixed memories.
pub fn bram_kilobits(cfg: &SmConfig) -> f64 {
    let data_rf = RegFileStorage::for_config(&RfConfig::data(cfg.warps, cfg.lanes, cfg.vrf_slots));
    let mut kb = data_rf.kilobits();
    kb += calib::TCIM_KB + calib::SCRATCH_KB + calib::QUEUES_KB;
    if let Some(opts) = cfg.cheri.opts() {
        if opts.compress_meta {
            // Metadata SRF; the VRF is shared with the data register file
            // (33-bit widening of the shared VRF is counted here).
            let meta =
                RegFileStorage::for_config(&RfConfig::meta(cfg.warps, cfg.lanes, 0, opts.nvo));
            kb += meta.srf_bits as f64 / 1024.0;
            if opts.shared_vrf {
                kb += (cfg.vrf_slots as u64 * cfg.lanes as u64) as f64 / 1024.0;
            // +1 bit/elem
            } else {
                let meta_vrf = RegFileStorage::for_config(&RfConfig::meta(
                    cfg.warps,
                    cfg.lanes,
                    cfg.vrf_slots,
                    opts.nvo,
                ));
                kb += meta_vrf.vrf_bits as f64 / 1024.0;
            }
        } else {
            // Naive: a full uncompressed 33-bit metadata register file.
            kb += uncompressed_bits(cfg.warps, cfg.lanes, 32, 33) as f64 / 1024.0;
        }
        // Scratchpad tag bits (1 per 32-bit word) and the tag cache.
        kb += calib::SCRATCH_TAG_KB + calib::TAG_CACHE_KB;
        if opts.sfu_cap_ops {
            kb += calib::SFU_CAP_QUEUE_KB;
        }
    }
    kb
}

/// The paper's three configurations at the evaluation geometry.
pub fn table3_configs() -> [(&'static str, SmConfig); 3] {
    use cheri_simt::CheriMode;
    [
        ("Baseline", SmConfig::full(CheriMode::Off)),
        ("CHERI", SmConfig::full(CheriMode::On(CheriOpts::naive()))),
        ("CHERI (Optimised)", SmConfig::full(CheriMode::On(CheriOpts::optimised()))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_simt::CheriMode;

    fn pct_err(model: f64, paper: f64) -> f64 {
        (model - paper).abs() / paper
    }

    /// Table 3, ALM column: Baseline 126,753; CHERI 166,796; Optimised
    /// 149,356.
    #[test]
    fn table3_alms() {
        let paper = [126_753.0, 166_796.0, 149_356.0];
        for ((name, cfg), want) in table3_configs().into_iter().zip(paper) {
            let got = synthesise(&cfg).alms as f64;
            assert!(pct_err(got, want) < 0.02, "{name}: model {got} vs paper {want}");
        }
    }

    /// Table 3, BRAM column: 2,156 / 4,399 / 2,394 Kb.
    #[test]
    fn table3_bram() {
        let paper = [2_156.0, 4_399.0, 2_394.0];
        for ((name, cfg), want) in table3_configs().into_iter().zip(paper) {
            let got = synthesise(&cfg).bram_kb;
            assert!(pct_err(got, want) < 0.03, "{name}: model {got:.0} Kb vs paper {want} Kb");
        }
    }

    /// The optimisations reduce the ALM overhead by ~44% (Section 4.6) and
    /// the optimised overhead per lane is comparable to (but slightly
    /// larger than) one 32-bit multiplier.
    #[test]
    fn overhead_reduction_and_multiplier_comparison() {
        let [base, naive, opt] = table3_configs().map(|(_, c)| synthesise(&c).alms);
        let reduction = 1.0 - (opt - base) as f64 / (naive - base) as f64;
        assert!((reduction - 0.44).abs() < 0.03, "reduction {reduction:.3}");
        let per_lane = (opt - base) / 32;
        assert!(per_lane > cheri_cap::area::MUL32, "slightly larger than a multiplier");
        assert!(per_lane < cheri_cap::area::MUL32 * 3 / 2);
    }

    /// The naive CHERI register-file storage overhead is ~103%; optimised
    /// brings the BRAM overhead down to a few percent (Section 4.3 / 4.6).
    #[test]
    fn storage_overhead_largely_eliminated() {
        let [base, naive, opt] = table3_configs().map(|(_, c)| synthesise(&c).bram_kb);
        assert!((naive - base) / base > 0.9, "naive BRAM overhead should be ~104%");
        assert!((opt - base) / base < 0.12, "optimised BRAM overhead should be ~11%");
    }

    /// Fmax is essentially unaffected (Table 3: 180/181/180 MHz).
    #[test]
    fn fmax_unchanged() {
        for (_, cfg) in table3_configs() {
            let f = synthesise(&cfg).fmax_mhz;
            assert!((179..=181).contains(&f));
        }
    }

    /// DSP inference is disabled everywhere.
    #[test]
    fn no_dsps() {
        for (_, cfg) in table3_configs() {
            assert_eq!(synthesise(&cfg).dsps, 0);
        }
    }

    /// Component lists are self-consistent.
    #[test]
    fn breakdown_sums() {
        let r = synthesise(&SmConfig::full(CheriMode::On(CheriOpts::optimised())));
        let sum: u32 = r.components.iter().map(|c| c.alms).sum();
        assert_eq!(sum, r.alms);
    }
}
