//! Microbenchmarks of the simulator's substrates: the CHERI Concentrate
//! codec, the compressed register file, the coalescing unit, and
//! end-to-end warp-instruction throughput.
//!
//! Plain `harness = false` timing loops (the workspace builds offline, so
//! no criterion): each workload runs for a warm-up pass plus a fixed number
//! of samples and reports the median wall-clock time per iteration.

use cheri_cap::{bounds, CapMem, CapPipe};
use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, KernelBuilder, Mode};
use simt_mem::{CoalescingUnit, LaneRequest};
use simt_regfile::{CompressedRegFile, RfConfig};
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: usize = 20;

/// Time `f` over `SAMPLES` runs (after one warm-up) and print the median.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f());
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median = times[SAMPLES / 2];
    println!("{name:<40} {:>12.3} us/iter", median * 1e6);
}

fn bench_capability_codec() {
    bench("cheri-cap/encode_decode", || {
        let mut acc = 0u64;
        for i in 0..256u32 {
            let base = i * 12345;
            let enc = bounds::encode(base, base as u64 + 4096);
            acc ^= bounds::decode(enc.field, base).top;
        }
        acc
    });
    let cap = CapPipe::almighty().set_addr(0x1000).set_bounds(1 << 20).0;
    let mem = cap.to_mem();
    bench("cheri-cap/from_mem_set_addr_check", || {
        let mut ok = 0u32;
        for i in 0..256u32 {
            let c = CapPipe::from_mem(black_box(mem)).set_addr(0x1000 + i * 64);
            ok += c.is_access_in_bounds(c.addr(), 4) as u32;
        }
        ok
    });
    bench("cheri-cap/mem_roundtrip", || {
        let mut bits = 0u64;
        for i in 0..256u64 {
            let m = CapMem::from_bits(i * 0x9E37_79B9_7F4A_7C15, i % 2 == 0);
            bits ^= CapPipe::from_mem(m).to_mem().bits();
        }
        bits
    });
}

fn bench_regfile() {
    let mut rf = CompressedRegFile::new(RfConfig::data(64, 32, 768));
    let uniform = [42u64; 64];
    bench("regfile/uniform_writes", || {
        for i in 0..1024u32 {
            rf.write(i % 64, i % 32, &uniform, u64::MAX);
        }
    });
    let mut rf = CompressedRegFile::new(RfConfig::data(64, 32, 768));
    let affine: Vec<u64> = (0..64).map(|i| 100 + 4 * i).collect();
    bench("regfile/affine_writes", || {
        for i in 0..1024u32 {
            rf.write(i % 64, i % 32, &affine, u64::MAX);
        }
    });
    let mut rf = CompressedRegFile::new(RfConfig::data(8, 32, 16));
    let vectors: Vec<u64> = (0..64).map(|i| i * i * 7919).collect();
    bench("regfile/vector_writes_with_spills", || {
        for i in 0..1024u32 {
            rf.write(i % 8, i % 32, &vectors, u64::MAX);
        }
    });
}

fn bench_coalescer() {
    let unit = CoalescingUnit::new();
    let unit_stride: Vec<LaneRequest> =
        (0..32).map(|i| LaneRequest { addr: 0x8000_0000 + i * 4, bytes: 4 }).collect();
    let scattered: Vec<LaneRequest> =
        (0..32).map(|i| LaneRequest { addr: 0x8000_0000 + i * 4096, bytes: 4 }).collect();
    bench("coalescer/unit_stride", || unit.coalesce(black_box(&unit_stride)));
    bench("coalescer/scattered", || unit.coalesce(black_box(&scattered)));
}

/// End-to-end simulator throughput: warp-instructions per second for a
/// busy-loop kernel, with and without CHERI.
fn bench_sm_throughput() {
    let mut kb = KernelBuilder::new("spin");
    let len = kb.param_u32("len");
    let out = kb.param_ptr("out", Elem::U32);
    let i = kb.var_u32("i");
    let acc = kb.var_u32("acc");
    kb.assign(&acc, nocl_kir::Expr::u32(0));
    kb.for_(i.clone(), kb.global_id(), len.clone(), kb.global_threads(), |k| {
        k.assign(
            &acc,
            acc.clone() * nocl_kir::Expr::u32(1664525) + nocl_kir::Expr::u32(1013904223),
        );
    });
    kb.store(&out, kb.thread_idx(), acc.clone());
    let kernel = kb.finish();

    for (name, cheri, mode) in [
        ("sm-throughput/baseline", CheriMode::Off, Mode::Baseline),
        ("sm-throughput/cheri-optimised", CheriMode::On(CheriOpts::optimised()), Mode::PureCap),
    ] {
        let mut gpu = Gpu::new(SmConfig::small(cheri), mode);
        let out = gpu.alloc::<u32>(64);
        bench(name, || {
            gpu.launch(&kernel, Launch::new(1, 64), &[10_000u32.into(), (&out).into()])
                .unwrap()
                .instrs
        });
    }
}

fn main() {
    bench_capability_codec();
    bench_regfile();
    bench_coalescer();
    bench_sm_throughput();
}
