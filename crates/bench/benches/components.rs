//! Criterion microbenchmarks of the simulator's substrates: the CHERI
//! Concentrate codec, the compressed register file, the coalescing unit,
//! and end-to-end warp-instruction throughput.

use cheri_cap::{bounds, CapMem, CapPipe};
use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, KernelBuilder, Mode};
use simt_mem::{CoalescingUnit, LaneRequest};
use simt_regfile::{CompressedRegFile, RfConfig};

fn bench_capability_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("cheri-cap");
    g.bench_function("encode_decode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..256u32 {
                let base = i * 12345;
                let enc = bounds::encode(base, base as u64 + 4096);
                acc ^= bounds::decode(enc.field, base).top;
            }
            black_box(acc)
        })
    });
    g.bench_function("from_mem_set_addr_check", |b| {
        let cap = CapPipe::almighty().set_addr(0x1000).set_bounds(1 << 20).0;
        let mem = cap.to_mem();
        b.iter(|| {
            let mut ok = 0u32;
            for i in 0..256u32 {
                let c = CapPipe::from_mem(black_box(mem)).set_addr(0x1000 + i * 64);
                ok += c.is_access_in_bounds(c.addr(), 4) as u32;
            }
            black_box(ok)
        })
    });
    g.bench_function("mem_roundtrip", |b| {
        b.iter(|| {
            let mut bits = 0u64;
            for i in 0..256u64 {
                let m = CapMem::from_bits(i * 0x9E37_79B9_7F4A_7C15, i % 2 == 0);
                bits ^= CapPipe::from_mem(m).to_mem().bits();
            }
            black_box(bits)
        })
    });
    g.finish();
}

fn bench_regfile(c: &mut Criterion) {
    let mut g = c.benchmark_group("regfile");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("uniform_writes", |b| {
        let mut rf = CompressedRegFile::new(RfConfig::data(64, 32, 768));
        let vals = [42u64; 64];
        b.iter(|| {
            for i in 0..1024u32 {
                rf.write(i % 64, i % 32, &vals, u64::MAX);
            }
        })
    });
    g.bench_function("affine_writes", |b| {
        let mut rf = CompressedRegFile::new(RfConfig::data(64, 32, 768));
        let vals: Vec<u64> = (0..64).map(|i| 100 + 4 * i).collect();
        b.iter(|| {
            for i in 0..1024u32 {
                rf.write(i % 64, i % 32, &vals, u64::MAX);
            }
        })
    });
    g.bench_function("vector_writes_with_spills", |b| {
        let mut rf = CompressedRegFile::new(RfConfig::data(8, 32, 16));
        let vals: Vec<u64> = (0..64).map(|i| i * i * 7919).collect();
        b.iter(|| {
            for i in 0..1024u32 {
                rf.write(i % 8, i % 32, &vals, u64::MAX);
            }
        })
    });
    g.finish();
}

fn bench_coalescer(c: &mut Criterion) {
    let unit = CoalescingUnit::new();
    let unit_stride: Vec<LaneRequest> =
        (0..32).map(|i| LaneRequest { addr: 0x8000_0000 + i * 4, bytes: 4 }).collect();
    let scattered: Vec<LaneRequest> =
        (0..32).map(|i| LaneRequest { addr: 0x8000_0000 + i * 4096, bytes: 4 }).collect();
    let mut g = c.benchmark_group("coalescer");
    g.bench_function("unit_stride", |b| b.iter(|| unit.coalesce(black_box(&unit_stride))));
    g.bench_function("scattered", |b| b.iter(|| unit.coalesce(black_box(&scattered))));
    g.finish();
}

/// End-to-end simulator throughput: warp-instructions per second for a
/// busy-loop kernel, with and without CHERI.
fn bench_sm_throughput(c: &mut Criterion) {
    let mut kb = KernelBuilder::new("spin");
    let len = kb.param_u32("len");
    let out = kb.param_ptr("out", Elem::U32);
    let i = kb.var_u32("i");
    let acc = kb.var_u32("acc");
    kb.assign(&acc, nocl_kir::Expr::u32(0));
    kb.for_(i.clone(), kb.global_id(), len.clone(), kb.global_threads(), |k| {
        k.assign(&acc, acc.clone() * nocl_kir::Expr::u32(1664525) + nocl_kir::Expr::u32(1013904223));
    });
    kb.store(&out, kb.thread_idx(), acc.clone());
    let kernel = kb.finish();

    let mut g = c.benchmark_group("sm-throughput");
    g.sample_size(10);
    for (name, cheri, mode) in [
        ("baseline", CheriMode::Off, Mode::Baseline),
        ("cheri-optimised", CheriMode::On(CheriOpts::optimised()), Mode::PureCap),
    ] {
        g.bench_function(name, |b| {
            let mut gpu = Gpu::new(SmConfig::small(cheri), mode);
            let out = gpu.alloc::<u32>(64);
            b.iter(|| {
                gpu.launch(&kernel, Launch::new(1, 64), &[10_000u32.into(), (&out).into()])
                    .unwrap()
                    .instrs
            })
        });
    }
    g.finish();
}

criterion_group!(
    components,
    bench_capability_codec,
    bench_regfile,
    bench_coalescer,
    bench_sm_throughput
);
criterion_main!(components);
