//! Experiment-regeneration benches — one timing per table/figure of the
//! evaluation, at quick scale (the `repro` binary runs the full-scale
//! version); the measured quantity is the simulator itself, which is this
//! repository's "hardware".
//!
//! Plain `harness = false` timing loops (the workspace builds offline, so
//! no criterion): each experiment runs a warm-up pass plus a fixed number
//! of samples and reports the median wall-clock time.

use repro::{
    ablate, fig10, fig11, fig12, fig13, fig14, fig15, fig6, fig7, table1, table2, table3, Harness,
};
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: usize = 5;

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    black_box(f());
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median = times[SAMPLES / 2];
    println!("{name:<10} {:>10.1} ms/iter", median * 1e3);
}

fn main() {
    bench("table1", table1);
    bench("table2", || {
        let mut h = Harness::quick();
        table2(&mut h)
    });
    bench("table3", table3);
    bench("fig6", || {
        let mut h = Harness::quick();
        fig6(&mut h)
    });
    bench("fig7", fig7);
    bench("fig10", || {
        let mut h = Harness::quick();
        fig10(&mut h)
    });
    bench("fig11", || {
        let mut h = Harness::quick();
        fig11(&mut h)
    });
    bench("fig12", || {
        let mut h = Harness::quick();
        fig12(&mut h)
    });
    bench("fig13", || {
        let mut h = Harness::quick();
        fig13(&mut h)
    });
    bench("fig14", || {
        let mut h = Harness::quick();
        fig14(&mut h)
    });
    bench("fig15", || {
        let mut h = Harness::quick();
        fig15(&mut h)
    });
    bench("ablate", || {
        let mut h = Harness::quick();
        ablate(&mut h)
    });
}
