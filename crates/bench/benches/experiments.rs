//! Criterion benches — one group per table/figure of the evaluation.
//!
//! Each bench measures the wall-clock cost of regenerating the experiment
//! at quick scale (the `repro` binary runs the full-scale version); the
//! measured quantity is the simulator itself, which is this repository's
//! "hardware".

use criterion::{criterion_group, criterion_main, Criterion};
use repro::{
    ablate, fig10, fig11, fig12, fig13, fig14, fig15, fig6, fig7, table1, table2, table3, Harness,
};

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1", |b| b.iter(table1));
    c.bench_function("table2", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            table2(&mut h)
        })
    });
    c.bench_function("table3", |b| b.iter(table3));
}

fn bench_figures(c: &mut Criterion) {
    c.bench_function("fig6", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            fig6(&mut h)
        })
    });
    c.bench_function("fig7", |b| b.iter(fig7));
    c.bench_function("fig10", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            fig10(&mut h)
        })
    });
    c.bench_function("fig11", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            fig11(&mut h)
        })
    });
    c.bench_function("fig12", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            fig12(&mut h)
        })
    });
    c.bench_function("fig13", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            fig13(&mut h)
        })
    });
    c.bench_function("fig14", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            fig14(&mut h)
        })
    });
    c.bench_function("fig15", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            fig15(&mut h)
        })
    });
    c.bench_function("ablate", |b| {
        b.iter(|| {
            let mut h = Harness::quick();
            ablate(&mut h)
        })
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_figures
}
criterion_main!(experiments);
