//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! usage: repro [--quick] [--jobs N] [table1|table2|table3|fig6..fig15|ablate|multism|vrfsweep|tagsweep|all]
//!        repro disasm <benchmark> <mode>
//! ```
//!
//! Without `--quick`, experiments run at the paper's geometry (64 warps ×
//! 32 lanes) and dataset scale; expect minutes per configuration in a
//! release build.
//!
//! `--jobs N` (or the `BENCH_JOBS` environment variable) sets the worker
//! count for the parallel suite runner; the default is the machine's
//! available parallelism. Output is bit-identical for every worker count —
//! `--jobs 1` runs the same engine serially.

use repro::{
    ablate, default_jobs, disasm, fig10, fig11, fig12, fig13, fig14, fig15, fig6, fig7, multism,
    table1, table2, table3, tagsweep, vrfsweep, Harness,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jobs = default_jobs();
    let mut what: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--jobs=") => {
                match other["--jobs=".len()..].parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("--jobs needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option: {other}");
                std::process::exit(2);
            }
            other => what.push(other),
        }
    }
    let what = if what.is_empty() { vec!["all"] } else { what };

    // Disassembly is a standalone subcommand: repro disasm <bench> <mode>.
    if what.first() == Some(&"disasm") {
        match what.as_slice() {
            [_, bench, mode] => match disasm(bench, mode) {
                Ok(listing) => println!("{listing}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!(
                    "usage: repro disasm <benchmark> <baseline|purecap|rust|rustfull|gpushield>"
                );
                std::process::exit(2);
            }
        }
        return;
    }

    let mut h = if quick { Harness::quick() } else { Harness::paper() }.verbose().with_jobs(jobs);

    for w in what {
        let out = match w {
            "table1" => table1(),
            "table2" => table2(&mut h),
            "table3" => table3(),
            "fig6" => fig6(&mut h),
            "fig7" => fig7(),
            "fig10" => fig10(&mut h),
            "fig11" => fig11(&mut h),
            "fig12" => fig12(&mut h),
            "fig13" => fig13(&mut h),
            "fig14" => fig14(&mut h),
            "fig15" => fig15(&mut h),
            "ablate" => ablate(&mut h),
            "multism" => multism(&mut h),
            "vrfsweep" => vrfsweep(&mut h),
            "tagsweep" => tagsweep(&mut h),
            "all" => {
                let mut s = String::new();
                for f in [
                    table1(),
                    table2(&mut h),
                    table3(),
                    fig6(&mut h),
                    fig7(),
                    fig10(&mut h),
                    fig11(&mut h),
                    fig12(&mut h),
                    fig13(&mut h),
                    fig14(&mut h),
                    fig15(&mut h),
                    ablate(&mut h),
                    multism(&mut h),
                ] {
                    s.push_str(&f);
                    s.push('\n');
                }
                s
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        println!("{out}");
    }
}
