//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! usage: repro [--quick] [--jobs N] [--sms N] [table1|table2|table3|fig6..fig15|ablate|multism|vrfsweep|tagsweep|scalarise|all]
//!        repro disasm <benchmark> <mode>
//!        repro trace <benchmark|all> [--mode M] [--format chrome|jsonl] [--trace-out FILE] [--paper] [--sms N]
//!        repro validate-trace <file>
//!        repro perf [benchmark|all] [--paper] [--jobs N] [--sms N] [--perf-out FILE]
//!        repro validate-perf <file>
//!        repro check-perf <new.json> <committed.json> [--bench NAME] [--max-regress FRAC]
//!        repro faults [benchmark|all] [--quick] [--jobs N] [--seed S]
//! ```
//!
//! Without `--quick`, experiments run at the paper's geometry (64 warps ×
//! 32 lanes) and dataset scale; expect minutes per configuration in a
//! release build.
//!
//! `--jobs N` (or the `BENCH_JOBS` environment variable) sets the worker
//! count for the parallel suite runner; the default is the machine's
//! available parallelism. Output is bit-identical for every worker count —
//! `--jobs 1` runs the same engine serially.
//!
//! `--sms N` simulates a device of N streaming multiprocessors sharing one
//! DRAM channel and tag controller (default 1, which is bit-identical to
//! the classic single-SM model). In `trace` mode each SM becomes its own
//! Perfetto process.
//!
//! `trace` runs benchmarks with the structured event sink attached and
//! exports the stream (`--trace-out FILE`, or stdout). Unlike the
//! experiments it defaults to the *quick* geometry — a paper-scale trace is
//! hundreds of millions of events — with `--paper` as the opt-in. The
//! default `--format chrome` opens directly in [Perfetto]; `--mode`
//! defaults to `purecap`. See `docs/TRACING.md` for the schema.
//!
//! `perf` times the **simulator itself**: wall-clock seconds per
//! (benchmark × configuration) cell across the five tracked
//! configurations, written as `BENCH_sim.json` (`--perf-out FILE`,
//! default `BENCH_sim.json`). Like `trace` it defaults to the quick
//! geometry with `--paper` as the opt-in. `validate-perf` checks a
//! `BENCH_sim.json` against the schema (the CI smoke step).
//!
//! `check-perf` compares a freshly timed `--perf-out` document against the
//! committed `BENCH_sim.json` and fails (exit 1) when the tracked benchmark
//! (`--bench`, default `BitonicLa`) is more than `--max-regress` (default
//! `0.10`, i.e. 10%) slower summed across configurations — the CI
//! perf-regression gate.
//!
//! `faults` runs the CHERI fault-injection coverage experiment: every
//! requested benchmark under every injection scheme × trap policy cell
//! (quick geometry), plus a directed probe per trap cause, ending in a
//! coverage table that must show all ten capability exceptions and every
//! memory-fault variant firing. `--quick` swaps the full suite for a
//! four-benchmark subset (the CI smoke step); `--seed S` re-seeds the
//! injection campaign. Exits non-zero if any cause never fired.
//!
//! [Perfetto]: https://ui.perfetto.dev

use repro::{
    ablate, compare_perf_json, default_jobs, disasm, export_runs, faults_experiment,
    faults_summary, fig10, fig11, fig12, fig13, fig14, fig15, fig6, fig7, multism, perf_json,
    perf_suite, perf_summary, quick_fault_benches, resolve_benches, scalarise, table1, table2,
    table3, tagsweep, trace_config, trace_suite_on, trace_summary, validate_perf_json, vrfsweep,
    Geometry, Harness, TraceFormat,
};

#[allow(clippy::too_many_lines)] // flag parsing + subcommand dispatch
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut paper = false;
    let mut jobs = default_jobs();
    let mut sms = 1u32;
    let mut mode_name = String::from("purecap");
    let mut format_name = String::from("chrome");
    let mut trace_out: Option<String> = None;
    let mut perf_out = String::from("BENCH_sim.json");
    let mut gate_bench = String::from("BitonicLa");
    let mut max_regress = 0.10f64;
    let mut seed = 0xCAFE_F00Du64;
    let mut what: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        // `--flag value` and `--flag=value` are both accepted.
        let mut take = |flag: &str| -> Option<String> {
            if a == flag {
                let v = it.next().cloned();
                if v.is_none() {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                }
                v
            } else {
                a.strip_prefix(&format!("{flag}=")).map(str::to_string)
            }
        };
        if let Some(v) = take("--jobs") {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = take("--sms") {
            match v.parse::<u32>() {
                Ok(n) if n >= 1 => sms = n,
                _ => {
                    eprintln!("--sms needs a positive integer");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = take("--mode") {
            mode_name = v;
        } else if let Some(v) = take("--format") {
            format_name = v;
        } else if let Some(v) = take("--trace-out") {
            trace_out = Some(v);
        } else if let Some(v) = take("--perf-out") {
            perf_out = v;
        } else if let Some(v) = take("--bench") {
            gate_bench = v;
        } else if let Some(v) = take("--max-regress") {
            match v.parse::<f64>() {
                Ok(f) if f >= 0.0 && f.is_finite() => max_regress = f,
                _ => {
                    eprintln!("--max-regress needs a non-negative fraction (e.g. 0.10)");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = take("--seed") {
            match v.parse::<u64>() {
                Ok(n) => seed = n,
                Err(_) => {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                }
            }
        } else {
            match a.as_str() {
                "--quick" => quick = true,
                "--paper" => paper = true,
                other if other.starts_with("--") => {
                    eprintln!("unknown option: {other}");
                    std::process::exit(2);
                }
                other => what.push(other),
            }
        }
    }
    let what = if what.is_empty() { vec!["all"] } else { what };

    // Disassembly is a standalone subcommand: repro disasm <bench> <mode>.
    if what.first() == Some(&"disasm") {
        match what.as_slice() {
            [_, bench, mode] => match disasm(bench, mode) {
                Ok(listing) => println!("{listing}"),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!(
                    "usage: repro disasm <benchmark> <baseline|purecap|rust|rustfull|gpushield>"
                );
                std::process::exit(2);
            }
        }
        return;
    }

    // Structured tracing: repro trace <benchmark|all> [--mode M] [--format F]
    // [--trace-out FILE] [--paper]. Defaults to the quick geometry (a
    // paper-scale trace is enormous); `--paper` opts in.
    if what.first() == Some(&"trace") {
        let bench = match what.as_slice() {
            [_, bench] => *bench,
            _ => {
                eprintln!("usage: repro trace <benchmark|all> [--mode M] [--format chrome|jsonl] [--trace-out FILE] [--paper]");
                std::process::exit(2);
            }
        };
        let run = || -> Result<(), String> {
            let format: TraceFormat = format_name.parse()?;
            let config = trace_config(&mode_name)?;
            let benches = resolve_benches(bench)?;
            let geometry = if paper { Geometry::Full } else { Geometry::Small };
            eprintln!(
                "[repro] tracing {} cell(s) [{mode_name}] on {jobs} worker(s), {sms} SM(s) ...",
                benches.len()
            );
            let runs = trace_suite_on(&benches, config, geometry, jobs, sms)?;
            eprint!("{}", trace_summary(&runs));
            let out = export_runs(&runs, format);
            match &trace_out {
                Some(path) => {
                    std::fs::write(path, &out).map_err(|e| format!("writing {path}: {e}"))?;
                    eprintln!("[repro] wrote {} bytes to {path}", out.len());
                }
                None => print!("{out}"),
            }
            Ok(())
        };
        if let Err(e) = run() {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }

    // Schema validation: repro validate-trace <file> — the CI smoke check.
    if what.first() == Some(&"validate-trace") {
        match what.as_slice() {
            [_, file] => {
                let input = std::fs::read_to_string(file).unwrap_or_else(|e| {
                    eprintln!("reading {file}: {e}");
                    std::process::exit(2);
                });
                match cheri_simt::trace::validate::validate_auto(&input) {
                    Ok((format, s)) => println!(
                        "{file}: valid {format} trace — {} events, {} metadata, {} counter samples, {} process(es)",
                        s.events, s.metadata, s.counters, s.processes
                    ),
                    Err(e) => {
                        eprintln!("{file}: INVALID — {e}");
                        std::process::exit(1);
                    }
                }
            }
            _ => {
                eprintln!("usage: repro validate-trace <file>");
                std::process::exit(2);
            }
        }
        return;
    }

    // Simulator wall-clock tracking: repro perf [benchmark|all] [--paper]
    // [--perf-out FILE]. Emits BENCH_sim.json.
    if what.first() == Some(&"perf") {
        let bench = match what.as_slice() {
            [_] => "all",
            [_, bench] => *bench,
            _ => {
                eprintln!(
                    "usage: repro perf [benchmark|all] [--paper] [--jobs N] [--sms N] [--perf-out FILE]"
                );
                std::process::exit(2);
            }
        };
        let run = || -> Result<(), String> {
            let benches = resolve_benches(bench)?;
            let geometry = if paper { Geometry::Full } else { Geometry::Small };
            eprintln!(
                "[repro] timing {} benchmark(s) x {} config(s) on {jobs} worker(s), {sms} SM(s) ...",
                benches.len(),
                repro::PERF_CONFIGS.len()
            );
            let report = perf_suite(&benches, geometry, jobs, sms)?;
            eprint!("{}", perf_summary(&report));
            let out = perf_json(&report);
            std::fs::write(&perf_out, &out).map_err(|e| format!("writing {perf_out}: {e}"))?;
            eprintln!("[repro] wrote {} bytes to {perf_out}", out.len());
            Ok(())
        };
        if let Err(e) = run() {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }

    // Schema validation: repro validate-perf <file> — the CI smoke check.
    if what.first() == Some(&"validate-perf") {
        match what.as_slice() {
            [_, file] => {
                let input = std::fs::read_to_string(file).unwrap_or_else(|e| {
                    eprintln!("reading {file}: {e}");
                    std::process::exit(2);
                });
                match validate_perf_json(&input) {
                    Ok((cells, total)) => {
                        println!(
                            "{file}: valid BENCH_sim.json — {cells} cell(s), {total:.3} s total"
                        );
                    }
                    Err(e) => {
                        eprintln!("{file}: INVALID — {e}");
                        std::process::exit(1);
                    }
                }
            }
            _ => {
                eprintln!("usage: repro validate-perf <file>");
                std::process::exit(2);
            }
        }
        return;
    }

    // Perf-regression gate: repro check-perf <new.json> <committed.json>
    // [--bench NAME] [--max-regress FRAC] — the CI smoke that fails when
    // the tracked benchmark gets slower than the committed baseline.
    if what.first() == Some(&"check-perf") {
        match what.as_slice() {
            [_, new_file, old_file] => {
                let read = |file: &str| {
                    std::fs::read_to_string(file).unwrap_or_else(|e| {
                        eprintln!("reading {file}: {e}");
                        std::process::exit(2);
                    })
                };
                let (new_doc, old_doc) = (read(new_file), read(old_file));
                match compare_perf_json(&new_doc, &old_doc, &gate_bench, max_regress) {
                    Ok(summary) => println!("{new_file} vs {old_file}: {summary}"),
                    Err(e) => {
                        eprintln!("{new_file} vs {old_file}: FAIL — {e}");
                        std::process::exit(1);
                    }
                }
            }
            _ => {
                eprintln!(
                    "usage: repro check-perf <new.json> <committed.json> [--bench NAME] [--max-regress FRAC]"
                );
                std::process::exit(2);
            }
        }
        return;
    }

    // Fault-injection coverage: repro faults [benchmark|all] [--quick]
    // [--jobs N] [--seed S]. Always runs at the quick geometry — the matrix
    // is about trap coverage, not timing.
    if what.first() == Some(&"faults") {
        let bench = match what.as_slice() {
            [_] => None,
            [_, bench] => Some(*bench),
            _ => {
                eprintln!("usage: repro faults [benchmark|all] [--quick] [--jobs N] [--seed S]");
                std::process::exit(2);
            }
        };
        let benches = match bench {
            Some(name) => resolve_benches(name).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
            None if quick => quick_fault_benches(),
            None => resolve_benches("all").expect("'all' always resolves"),
        };
        eprintln!(
            "[repro] injecting faults into {} benchmark(s) x 4 scheme(s) x 2 policies on {jobs} worker(s) ...",
            benches.len()
        );
        let report = faults_experiment(&benches, jobs, seed);
        print!("{}", faults_summary(&report));
        if !report.covered() {
            eprintln!("[repro] FAIL: trap causes never fired: {}", report.missing().join(", "));
            std::process::exit(1);
        }
        return;
    }

    let mut h = if quick { Harness::quick() } else { Harness::paper() }
        .verbose()
        .with_jobs(jobs)
        .with_sms(sms);

    for w in what {
        let out = match w {
            "table1" => table1(),
            "table2" => table2(&mut h),
            "table3" => table3(),
            "fig6" => fig6(&mut h),
            "fig7" => fig7(),
            "fig10" => fig10(&mut h),
            "fig11" => fig11(&mut h),
            "fig12" => fig12(&mut h),
            "fig13" => fig13(&mut h),
            "fig14" => fig14(&mut h),
            "fig15" => fig15(&mut h),
            "ablate" => ablate(&mut h),
            "multism" => multism(&mut h),
            "vrfsweep" => vrfsweep(&mut h),
            "tagsweep" => tagsweep(&mut h),
            "scalarise" => scalarise(&mut h),
            "all" => {
                let mut s = String::new();
                for f in [
                    table1(),
                    table2(&mut h),
                    table3(),
                    fig6(&mut h),
                    fig7(),
                    fig10(&mut h),
                    fig11(&mut h),
                    fig12(&mut h),
                    fig13(&mut h),
                    fig14(&mut h),
                    fig15(&mut h),
                    ablate(&mut h),
                    multism(&mut h),
                ] {
                    s.push_str(&f);
                    s.push('\n');
                }
                s
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        println!("{out}");
    }
}
