//! One generator per table/figure of the evaluation section.

use crate::{geomean, Config, Harness};
use nocl_suite::catalog;
use simt_regfile::{uncompressed_bits, RegFileStorage, RfConfig};
use std::fmt::Write as _;

fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Table 1: the benchmark inventory.
pub fn table1() -> String {
    let mut s = String::from("Table 1: NoCL benchmark suite\n");
    let _ = writeln!(s, "{:<12} {:<42} Origin", "Benchmark", "Description");
    for b in catalog() {
        let _ = writeln!(s, "{:<12} {:<42} {}", b.name(), b.description(), b.origin());
    }
    s
}

/// Table 2: register-file compression in the baseline, for 1/2, 3/8 and
/// 1/4-size VRFs — storage, compression ratio, cycle overhead and
/// memory-access overhead relative to an uncompressed register file.
pub fn table2(h: &mut Harness) -> String {
    let reference: Vec<(u64, u64)> = h
        .results(Config::BaseUncompressed)
        .iter()
        .map(|(_, st)| (st.cycles, st.dram.total_bytes()))
        .collect();
    let (full_cfg, _) = Config::Base { eighths: 3 }.instantiate(h.geometry());
    let uncompressed_kb = uncompressed_bits(full_cfg.warps, full_cfg.lanes, 32, 32) as f64 / 1024.0;

    let mut s = String::from("Table 2: baseline register-file compression\n");
    let _ = writeln!(
        s,
        "{:<18} {:>12} {:>10} {:>12} {:>12}   (paper: 1202/937/672 Kb; 0.57/0.45/0.32; 0.8/0.9/4.3%; 0.1/2.2/39.9%)",
        "VRF size", "Storage(Kb)", "Ratio", "CycleOvhd", "MemOvhd"
    );
    for (eighths, label) in [(4u32, "1/2"), (3, "3/8"), (2, "1/4")] {
        let (cfg, _) = Config::Base { eighths }.instantiate(h.geometry());
        let storage =
            RegFileStorage::for_config(&RfConfig::data(cfg.warps, cfg.lanes, cfg.vrf_slots));
        let results = h.results(Config::Base { eighths }).clone();
        let cycle_ovhd = geomean(
            results.iter().zip(&reference).map(|((_, st), (c, _))| st.cycles as f64 / *c as f64),
        ) - 1.0;
        let mem_ovhd = geomean(
            results
                .iter()
                .zip(&reference)
                .map(|((_, st), (_, b))| st.dram.total_bytes() as f64 / (*b).max(1) as f64),
        ) - 1.0;
        let _ = writeln!(
            s,
            "{:<18} {:>12.0} {:>10.2} {:>12} {:>12}",
            format!("{} ({} slots)", label, cfg.vrf_slots),
            storage.kilobits(),
            storage.kilobits() / uncompressed_kb,
            pct(cycle_ovhd),
            pct(mem_ovhd),
        );
    }
    s
}

/// Table 3: synthesis results (ALMs, DSPs, BRAM, Fmax) for the three
/// configurations, from the analytical area model.
pub fn table3() -> String {
    let mut s = String::from("Table 3: synthesis results (area model)\n");
    let _ = writeln!(
        s,
        "{:<20} {:>10} {:>6} {:>12} {:>6}   (paper ALMs: 126753/166796/149356; BRAM Kb: 2156/4399/2394)",
        "Configuration", "ALMs", "DSPs", "BRAM(Kb)", "Fmax"
    );
    for (name, cfg) in sim_area::table3_configs() {
        let r = sim_area::synthesise(&cfg);
        let _ = writeln!(
            s,
            "{:<20} {:>10} {:>6} {:>12.0} {:>6}",
            name, r.alms, r.dsps, r.bram_kb, r.fmax_mhz
        );
    }
    let [base, naive, opt] = sim_area::table3_configs().map(|(_, c)| sim_area::synthesise(&c).alms);
    let _ = writeln!(
        s,
        "overhead: naive +{} ALMs, optimised +{} ALMs ({:.0}% reduction; {} ALMs/lane vs {} for a 32-bit multiplier)",
        naive - base,
        opt - base,
        (1.0 - (opt - base) as f64 / (naive - base) as f64) * 100.0,
        (opt - base) / 32,
        cheri_cap::area::MUL32
    );
    s
}

/// Figure 6: average execution frequency of CHERI instructions relative to
/// total instructions executed, over the suite in the optimised CHERI
/// configuration.
pub fn fig6(h: &mut Harness) -> String {
    let results = h.results(Config::CheriOpt);
    let mut freq: std::collections::BTreeMap<&'static str, f64> = Default::default();
    for (_, st) in results {
        for (op, n) in &st.cheri_histogram {
            *freq.entry(op).or_insert(0.0) += *n as f64 / st.instrs as f64;
        }
    }
    let n = results.len() as f64;
    let mut rows: Vec<(&str, f64)> = freq.into_iter().map(|(k, v)| (k, v / n)).collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut s = String::from("Figure 6: CHERI instruction execution frequency (avg over suite)\n");
    for (op, f) in rows {
        let _ = writeln!(s, "{:<16} {:>7.3}%  {}", op, f * 100.0, bar(f * 100.0, 2.0));
    }
    s
}

/// Figure 7: CheriCapLib function costs (measured constants).
pub fn fig7() -> String {
    let mut s = String::from("Figure 7: CheriCapLib logic-area costs (ALMs)\n");
    for (name, alms) in cheri_cap::area::FIGURE7 {
        let _ = writeln!(s, "{name:<18} {alms:>5}");
    }
    let _ = writeln!(
        s,
        "{:<18} {:>5}   (reference: 32-bit multiplier)",
        "mul32",
        cheri_cap::area::MUL32
    );
    let _ = writeln!(
        s,
        "fast path (per lane): {} ALMs; slow path (SFU): {} ALMs",
        cheri_cap::area::fast_path_alms(),
        cheri_cap::area::slow_path_alms()
    );
    s
}

/// Figure 10: proportion of registers stored as vectors in the VRF, for the
/// general-purpose register file and the capability-metadata register file
/// with and without the null-value optimisation.
pub fn fig10(h: &mut Harness) -> String {
    let total = h.total_regs() as f64;
    let gp: Vec<(&str, f64)> = h
        .results(Config::CheriOpt)
        .iter()
        .map(|(n, st)| (*n, st.peak_data_vrf_resident as f64 / total))
        .collect();
    let meta_nvo: Vec<f64> = h
        .results(Config::CheriOpt)
        .iter()
        .map(|(_, st)| st.peak_meta_vrf_resident as f64 / total)
        .collect();
    let meta_plain: Vec<f64> = h
        .results(Config::CheriOptNoNvo)
        .iter()
        .map(|(_, st)| st.peak_meta_vrf_resident as f64 / total)
        .collect();
    let mut s =
        String::from("Figure 10: proportion of registers stored as vectors in the VRF (peak)\n");
    let _ = writeln!(s, "{:<12} {:>8} {:>12} {:>12}", "Benchmark", "GP", "Meta", "Meta+NVO");
    for (i, (name, g)) in gp.iter().enumerate() {
        let _ = writeln!(
            s,
            "{:<12} {:>7.1}% {:>11.1}% {:>11.1}%",
            name,
            g * 100.0,
            meta_plain[i] * 100.0,
            meta_nvo[i] * 100.0
        );
    }
    let _ = writeln!(s, "(paper: with NVO only BlkStencil uses VRF space for metadata)");
    s
}

/// Figure 11: number of registers per thread used to hold capabilities.
pub fn fig11(h: &mut Harness) -> String {
    let mut s = String::from("Figure 11: registers per thread holding capabilities (of 32)\n");
    let results = h.results(Config::CheriOpt);
    let mut max = 0;
    for (name, st) in results {
        let _ = writeln!(
            s,
            "{:<12} {:>3}  {}",
            name,
            st.cap_regs_used,
            bar(st.cap_regs_used as f64, 0.5)
        );
        max = max.max(st.cap_regs_used);
    }
    let _ = writeln!(
        s,
        "max = {max}: no benchmark uses more than half the register file for capabilities,\nso a halved metadata SRF (7% storage overhead) would not hurt performance (§4.3)"
    );
    s
}

/// Figure 12: DRAM bandwidth usage with/without CHERI.
pub fn fig12(h: &mut Harness) -> String {
    let base: Vec<(&str, f64, u64)> = h
        .results(Config::Base { eighths: 3 })
        .iter()
        .map(|(n, st)| (*n, st.dram_bytes_per_cycle(), st.dram.total_bytes()))
        .collect();
    let cheri: Vec<(f64, u64)> = h
        .results(Config::CheriOpt)
        .iter()
        .map(|(_, st)| (st.dram_bytes_per_cycle(), st.dram.total_bytes()))
        .collect();
    let mut s = String::from("Figure 12: DRAM bandwidth usage with/without CHERI\n");
    let _ = writeln!(
        s,
        "{:<12} {:>14} {:>14} {:>12}",
        "Benchmark", "Base(B/cyc)", "CHERI(B/cyc)", "Bytes ratio"
    );
    let mut ratios = Vec::new();
    for (i, (name, bpc, bytes)) in base.iter().enumerate() {
        let ratio = cheri[i].1 as f64 / (*bytes).max(1) as f64;
        ratios.push(ratio);
        let _ = writeln!(s, "{:<12} {:>14.2} {:>14.2} {:>12.3}", name, bpc, cheri[i].0, ratio);
    }
    let _ = writeln!(
        s,
        "geomean traffic ratio {:.3} (paper: CHERI does not significantly affect DRAM bandwidth)",
        geomean(ratios)
    );
    s
}

/// Figure 13: execution-time overhead of CHERI (Optimised) vs Baseline.
pub fn fig13(h: &mut Harness) -> String {
    let base: Vec<(&str, u64)> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(n, st)| (*n, st.cycles)).collect();
    let cheri: Vec<u64> = h.results(Config::CheriOpt).iter().map(|(_, st)| st.cycles).collect();
    let mut s = String::from("Figure 13: execution-time overhead of CHERI (Optimised)\n");
    let mut ratios = Vec::new();
    for (i, (name, c)) in base.iter().enumerate() {
        let r = cheri[i] as f64 / *c as f64;
        ratios.push(r);
        let _ = writeln!(s, "{:<12} {:>8}  {}", name, pct(r - 1.0), bar((r - 1.0) * 100.0, 0.2));
    }
    let _ = writeln!(
        s,
        "geomean {} (paper: +1.6%, with BlkStencil the outlier)",
        pct(geomean(ratios) - 1.0)
    );
    s
}

/// Figure 14: execution-time overhead of the Rust port (bounds checks only,
/// and like-for-like total).
pub fn fig14(h: &mut Harness) -> String {
    let base: Vec<(&str, u64)> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(n, st)| (*n, st.cycles)).collect();
    let checked: Vec<u64> =
        h.results(Config::RustChecked).iter().map(|(_, st)| st.cycles).collect();
    let full: Vec<u64> = h.results(Config::RustFull).iter().map(|(_, st)| st.cycles).collect();
    let mut s = String::from("Figure 14: Rust port execution-time overheads\n");
    let _ = writeln!(s, "{:<12} {:>14} {:>14}", "Benchmark", "BoundsChecks", "Like-for-like");
    let (mut rc, mut rf) = (Vec::new(), Vec::new());
    for (i, (name, c)) in base.iter().enumerate() {
        let r1 = checked[i] as f64 / *c as f64;
        let r2 = full[i] as f64 / *c as f64;
        rc.push(r1);
        rf.push(r2);
        let _ = writeln!(s, "{:<12} {:>14} {:>14}", name, pct(r1 - 1.0), pct(r2 - 1.0));
    }
    let _ = writeln!(
        s,
        "geomean: bounds checking {} (paper: +34%), total {} (paper: +46%)",
        pct(geomean(rc) - 1.0),
        pct(geomean(rf) - 1.0)
    );
    s
}

/// Figure 15: the GPUShield / CHERI comparison — the paper's qualitative
/// table plus a quantitative footer from our GPUShield comparator mode
/// (region-based bounds table, Section 5.2).
pub fn fig15(h: &mut Harness) -> String {
    let rows: [(&str, &str, &str); 11] = [
        ("Supports spatial memory safety", "yes", "yes"),
        ("Provides referential integrity", "no", "yes"),
        ("Supports 32-bit and 64-bit architectures", "no", "yes"),
        ("Permits use of entire address space", "no", "yes"),
        ("Supports an unlimited number of buffers", "no", "yes"),
        ("Supports dynamic allocation of buffers", "no", "yes"),
        ("Pointers can be distinguished from data", "no", "yes"),
        ("Applies to both CPUs and GPUs", "no", "yes"),
        ("Demonstrated in a synthesisable GPU", "no", "yes"),
        ("Performance overhead on GPUs", "low", "low"),
        ("Silicon area overhead on GPUs", "low (likely)", "medium"),
    ];
    let mut s = String::from("Figure 15: GPUShield vs CHERI (qualitative, from the paper)\n");
    let _ = writeln!(s, "{:<44} {:<14} CHERI", "Feature", "GPUShield");
    for (f, g, c) in rows {
        let _ = writeln!(s, "{f:<44} {g:<14} {c}");
    }
    // Quantitative footer from the comparator implementation.
    let base: Vec<u64> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(_, st)| st.cycles).collect();
    let shield: Vec<u64> = h.results(Config::GpuShield).iter().map(|(_, st)| st.cycles).collect();
    let cheri: Vec<u64> = h.results(Config::CheriOpt).iter().map(|(_, st)| st.cycles).collect();
    let g_shield = geomean(base.iter().zip(&shield).map(|(b, c)| *c as f64 / *b as f64)) - 1.0;
    let g_cheri = geomean(base.iter().zip(&cheri).map(|(b, c)| *c as f64 / *b as f64)) - 1.0;
    let _ = writeln!(
        s,
        "measured on this model: GPUShield comparator overhead {} (paper: 0.8%), CHERI (Optimised) {} (paper: 1.6%)",
        pct(g_shield),
        pct(g_cheri)
    );
    s
}

/// Ablation: each optimisation of Section 3 toggled individually on top of
/// the naive CHERI configuration (extension beyond the paper's three
/// configurations).
pub fn ablate(h: &mut Harness) -> String {
    use cheri_simt::CheriOpts;
    let base: Vec<u64> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(_, st)| st.cycles).collect();
    let mut s = String::from("Ablation: CHERI cost-amelioration techniques\n");
    let _ = writeln!(
        s,
        "{:<34} {:>12} {:>12} {:>12}",
        "Configuration", "CycleOvhd", "ALMs", "BRAM(Kb)"
    );
    let variants: [(&str, CheriOpts); 4] = [
        ("naive CHERI", CheriOpts::naive()),
        (
            "+ compressed metadata RF (+NVO)",
            CheriOpts { compress_meta: true, nvo: true, shared_vrf: true, ..CheriOpts::naive() },
        ),
        (
            "+ SFU capability ops",
            CheriOpts {
                compress_meta: true,
                nvo: true,
                shared_vrf: true,
                sfu_cap_ops: true,
                ..CheriOpts::naive()
            },
        ),
        ("+ static PC metadata (= optimised)", CheriOpts::optimised()),
    ];
    for (name, opts) in variants {
        let key = match (opts.compress_meta, opts.sfu_cap_ops, opts.static_pcc) {
            (false, false, false) => Config::CheriNaive,
            (true, true, true) => Config::CheriOpt,
            _ => {
                // Ad-hoc variant: run directly without caching.
                let (cfg, mode) = Config::CheriOpt.instantiate(h.geometry());
                let cfg = cheri_simt::SmConfig { cheri: cheri_simt::CheriMode::On(opts), ..cfg };
                let results =
                    crate::run_suite_parallel(h.jobs(), cfg, mode, scale_of(h)).expect("suite");
                let ovhd = geomean(
                    results.iter().zip(&base).map(|((_, st), b)| st.cycles as f64 / *b as f64),
                ) - 1.0;
                let area = sim_area::synthesise(&cfg);
                let _ = writeln!(
                    s,
                    "{:<34} {:>12} {:>12} {:>12.0}",
                    name,
                    pct(ovhd),
                    area.alms,
                    area.bram_kb
                );
                continue;
            }
        };
        let results = h.results(key).clone();
        let ovhd =
            geomean(results.iter().zip(&base).map(|((_, st), b)| st.cycles as f64 / *b as f64))
                - 1.0;
        let (cfg, _) = key.instantiate(h.geometry());
        let area = sim_area::synthesise(&cfg);
        let _ =
            writeln!(s, "{:<34} {:>12} {:>12} {:>12.0}", name, pct(ovhd), area.alms, area.bram_kb);
    }
    s
}

/// VRF-size sweep (extension of Table 2): baseline cycle and memory
/// overheads relative to the uncompressed register file, from 1/8 to the
/// full size, locating the knee that made the paper pick 3/8.
pub fn vrfsweep(h: &mut Harness) -> String {
    let reference: Vec<(u64, u64)> = h
        .results(Config::BaseUncompressed)
        .iter()
        .map(|(_, st)| (st.cycles, st.dram.total_bytes()))
        .collect();
    let mut s = String::from("VRF-size sweep (extension of Table 2)\n");
    let _ = writeln!(
        s,
        "{:<10} {:>12} {:>10} {:>12} {:>12}",
        "VRF", "Storage(Kb)", "Ratio", "CycleOvhd", "MemOvhd"
    );
    let (full_cfg, _) = Config::Base { eighths: 3 }.instantiate(h.geometry());
    let uncompressed_kb = uncompressed_bits(full_cfg.warps, full_cfg.lanes, 32, 32) as f64 / 1024.0;
    for eighths in [1u32, 2, 3, 4, 6, 8] {
        let (cfg, _) = Config::Base { eighths }.instantiate(h.geometry());
        let storage =
            RegFileStorage::for_config(&RfConfig::data(cfg.warps, cfg.lanes, cfg.vrf_slots));
        let results = h.results(Config::Base { eighths }).clone();
        let cyc = geomean(
            results.iter().zip(&reference).map(|((_, st), (c, _))| st.cycles as f64 / *c as f64),
        ) - 1.0;
        let mem = geomean(
            results
                .iter()
                .zip(&reference)
                .map(|((_, st), (_, b))| st.dram.total_bytes() as f64 / (*b).max(1) as f64),
        ) - 1.0;
        let _ = writeln!(
            s,
            "{:<10} {:>12.0} {:>10.2} {:>12} {:>12}",
            format!("{eighths}/8"),
            storage.kilobits(),
            storage.kilobits() / uncompressed_kb,
            pct(cyc),
            pct(mem)
        );
    }
    s
}

/// Disassembly listing of one benchmark's kernel under one mode.
pub fn disasm(bench: &str, mode_name: &str) -> Result<String, String> {
    let mode = match mode_name {
        "baseline" => nocl_kir::Mode::Baseline,
        "purecap" => nocl_kir::Mode::PureCap,
        "rust" => nocl_kir::Mode::RustChecked,
        "rustfull" => nocl_kir::Mode::RustFull,
        "gpushield" => nocl_kir::Mode::GpuShield,
        other => {
            return Err(format!("unknown mode {other} (baseline|purecap|rust|rustfull|gpushield)"))
        }
    };
    let b = catalog()
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(bench))
        .ok_or_else(|| format!("unknown benchmark {bench}"))?;
    let kernel = b.example_kernel();
    let compiled = nocl_kir::compile(&kernel, mode).map_err(|e| e.to_string())?;
    Ok(format!(
        "{} [{}]: {} instructions, {} B shared memory per block\n\n{}\n{}",
        b.name(),
        mode_name,
        compiled.len(),
        compiled.shared_bytes,
        kernel.pretty(),
        compiled.disassemble()
    ))
}

/// Multi-SM projection (Section 4.4): the paper argues that, because DRAM
/// bandwidth usage is unaffected by CHERI, a multi-SM memory subsystem
/// would be similarly unaffected. Test the projection by shrinking each
/// SM's share of channel bandwidth (1, 1/2, 1/4 — as if 1/2/4 SMs shared
/// the channel) and checking that the CHERI overhead stays flat.
pub fn multism(h: &mut Harness) -> String {
    let mut s = String::from(
        "Multi-SM projection: CHERI overhead vs per-SM DRAM bandwidth share (Section 4.4)
",
    );
    let _ =
        writeln!(s, "{:<22} {:>14} {:>14}", "SMs sharing channel", "CHERI ovhd", "traffic ratio");
    for n in [1u32, 2, 4] {
        let run = |config: Config, h: &Harness| {
            let (mut cfg, mode) = config.instantiate(h.geometry());
            cfg.dram.cycles_per_transaction *= n;
            crate::run_suite_parallel(h.jobs(), cfg, mode, scale_of(h)).expect("suite")
        };
        let base = run(Config::Base { eighths: 3 }, h);
        let cheri = run(Config::CheriOpt, h);
        let ovhd = geomean(
            base.iter().zip(&cheri).map(|((_, b), (_, c))| c.cycles as f64 / b.cycles as f64),
        ) - 1.0;
        let traffic = geomean(base.iter().zip(&cheri).map(|((_, b), (_, c))| {
            c.dram.total_bytes() as f64 / b.dram.total_bytes().max(1) as f64
        }));
        let _ = writeln!(s, "{:<22} {:>14} {:>14.3}", n, pct(ovhd), traffic);
    }
    let _ = writeln!(
        s,
        "(flat overhead across bandwidth shares supports the paper's multi-SM projection)"
    );
    s
}

/// Tag-cache sensitivity (Section 2.4 / Joannou et al.): sweep the tag
/// cache size and report miss rates and the cycle impact — the paper's
/// premise is that a modest tag cache makes tag traffic "almost zero".
pub fn tagsweep(h: &mut Harness) -> String {
    let mut s = String::from("Tag-cache sensitivity (CHERI Optimised)\n");
    let _ =
        writeln!(s, "{:<12} {:>12} {:>14} {:>14}", "Lines", "MissRate", "TagTxnShare", "CycleOvhd");
    let base: Vec<u64> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(_, st)| st.cycles).collect();
    for lines in [8u32, 32, 128, 512] {
        let (mut cfg, mode) = Config::CheriOpt.instantiate(h.geometry());
        cfg.tag_cache.lines = lines;
        let results = crate::run_suite_parallel(h.jobs(), cfg, mode, scale_of(h)).expect("suite");
        let miss = geomean(results.iter().map(|(_, st)| st.tag_cache.miss_rate().max(1e-6)));
        let share = geomean(results.iter().map(|(_, st)| {
            st.dram.tag_transactions as f64
                / (st.dram.read_transactions + st.dram.write_transactions).max(1) as f64
        }));
        let ovhd =
            geomean(results.iter().zip(&base).map(|((_, st), b)| st.cycles as f64 / *b as f64))
                - 1.0;
        let _ = writeln!(
            s,
            "{:<12} {:>11.2}% {:>13.2}% {:>14}",
            lines,
            miss * 100.0,
            share * 100.0,
            pct(ovhd)
        );
    }
    let _ = writeln!(
        s,
        "(the default 128-line cache keeps the tag-traffic share negligible, as §2.4 claims)"
    );
    s
}

/// Scalarisation rate: the share of issued warp-instructions the execute
/// stage ran once per warp over compact (uniform/affine) operands instead
/// of lane-by-lane (`scalarised_issues / instrs`). A host-model throughput
/// metric, not a paper figure — the simulated timing is identical either
/// way — but it explains where `repro perf` gains come from: uniform-heavy
/// kernels (splats, grid-stride address arithmetic, warp-invariant
/// branches) scalarise most of their dynamic instructions.
pub fn scalarise(h: &mut Harness) -> String {
    let rate = |st: &cheri_simt::KernelStats| st.scalarised_issues as f64 / st.instrs.max(1) as f64;
    let base: Vec<(&str, f64)> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(n, st)| (*n, rate(st))).collect();
    let cheri: Vec<f64> = h.results(Config::CheriOpt).iter().map(|(_, st)| rate(st)).collect();
    let mut s = String::from("Scalarisation rate (share of warp-issues run once per warp)\n");
    let _ = writeln!(s, "{:<12} {:>10} {:>10}", "Benchmark", "Base", "CHERI");
    for (i, (name, b)) in base.iter().enumerate() {
        let _ = writeln!(
            s,
            "{:<12} {:>9.1}% {:>9.1}%  {}",
            name,
            b * 100.0,
            cheri[i] * 100.0,
            bar(b * 100.0, 2.0)
        );
    }
    let _ = writeln!(
        s,
        "mean: base {:.1}%, CHERI {:.1}% (timing is unchanged; this is host-model throughput)",
        base.iter().map(|(_, b)| b).sum::<f64>() / base.len() as f64 * 100.0,
        cheri.iter().sum::<f64>() / cheri.len() as f64 * 100.0
    );
    s
}

fn scale_of(h: &Harness) -> nocl_suite::Scale {
    match h.geometry() {
        crate::Geometry::Full => nocl_suite::Scale::Paper,
        crate::Geometry::Small => nocl_suite::Scale::Test,
    }
}

fn bar(value: f64, unit: f64) -> String {
    let n = (value / unit).round().clamp(0.0, 60.0) as usize;
    "#".repeat(n)
}
