//! `repro faults` — the CHERI fault-injection coverage experiment.
//!
//! Two sections feed one coverage table:
//!
//! * **Matrix** (realism): every requested benchmark runs under every
//!   [`InjectionKind`] × [`TrapPolicy`] cell on the quick geometry, with a
//!   seed-driven [`FaultInjector`] sabotaging device memory from the GPU's
//!   pre-launch hook. `Abort` cells demonstrate warp-precise aborts;
//!   `MaskLanes` cells demonstrate degraded completion with suppressed
//!   faults recorded in the fault log.
//! * **Directed probes** (completeness): one hand-assembled single-warp
//!   program per trap cause, each driven by [`FaultInjector::sabotage`] on
//!   a victim capability, so all ten [`CapException`] variants and every
//!   [`MemFault`] variant demonstrably fire no matter which causes the
//!   randomised matrix happened to reach.
//!
//! The experiment passes when the coverage table shows every cause fired
//! at least once; `repro faults` exits non-zero otherwise.

use crate::runner::run_indexed;
use crate::{Config, Geometry};
use cheri_cap::{CapException, CapPipe, Perms};
use cheri_simt::{CheriMode, CheriOpts, RunError, Sm, SmConfig, Trap, TrapCause, TrapPolicy};
use nocl::{Gpu, LaunchError};
use nocl_suite::{catalog, BenchError, NoclBench, Scale};
use simt_isa::asm::Assembler;
use simt_isa::{scr, Instr, LoadWidth, Reg, StoreWidth};
use simt_mem::{map, FaultInjector, InjectionKind, MainMemory, MemFault};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Cycle budget for the directed probe programs (they trap or finish in
/// far fewer).
const PROBE_MAX_CYCLES: u64 = 1_000_000;

/// Where the directed probes park their victim capability.
const VICTIM: u32 = map::DRAM_BASE + 0x400;

/// Capabilities/words sabotaged per matrix launch.
const MATRIX_INTENSITY: usize = 4;

/// How one matrix cell ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The kernel aborted on a warp-precise trap (`Abort` policy).
    Trapped,
    /// The benchmark ran to completion but its self-check failed — the
    /// expected shape of a `MaskLanes` run whose lanes were disabled.
    Corrupted,
    /// The benchmark completed and verified; the injection went unobserved
    /// (e.g. a window nothing dereferenced, or forged tags never loaded).
    Clean,
    /// The kernel timed out or deadlocked (e.g. a fully-masked warp never
    /// reached a barrier).
    Hung,
    /// The cell failed outside the fault model (compile/config/panic).
    Error(String),
}

impl CellOutcome {
    fn label(&self) -> &str {
        match self {
            CellOutcome::Trapped => "trapped",
            CellOutcome::Corrupted => "corrupted",
            CellOutcome::Clean => "clean",
            CellOutcome::Hung => "hung",
            CellOutcome::Error(_) => "error",
        }
    }
}

/// One benchmark × scheme × policy cell of the injection matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Benchmark name (Table-1 spelling).
    pub bench: &'static str,
    /// Injection scheme applied at every launch of the cell.
    pub kind: InjectionKind,
    /// Trap policy the SM ran under.
    pub policy: TrapPolicy,
    /// How the run ended.
    pub outcome: CellOutcome,
    /// Deduplicated trap-cause names observed in the fault log.
    pub causes: Vec<&'static str>,
    /// Faults recorded in the log (suppressed ones under `MaskLanes`,
    /// plus the aborting trap under `Abort`).
    pub faults_logged: u64,
}

/// One directed probe: a program engineered to fire exactly one cause.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// The cause this probe is designed to fire ([`TrapCause::name`]).
    pub cause: &'static str,
    /// Whether it fired with the expected cause.
    pub fired: bool,
    /// Trap attribution (warp/pc/lane-mask) or a failure note.
    pub detail: String,
}

/// Everything `repro faults` measured.
#[derive(Debug, Clone)]
pub struct FaultsReport {
    /// The injection-matrix cells, in (benchmark, scheme, policy) order.
    pub cells: Vec<MatrixCell>,
    /// The directed per-cause probes, in required-cause order.
    pub probes: Vec<ProbeResult>,
    /// Campaign seed (cell seeds derive from it).
    pub seed: u64,
}

/// Every trap cause the experiment must demonstrate: the ten CHERI
/// capability exceptions plus the three memory-fault variants.
pub fn required_causes() -> Vec<&'static str> {
    let mut v: Vec<&'static str> =
        CapException::ALL.iter().map(|&e| TrapCause::Cheri(e).name()).collect();
    v.push(TrapCause::Mem(MemFault::Unmapped(0)).name());
    v.push(TrapCause::Mem(MemFault::Misaligned(0)).name());
    v.push(TrapCause::Mem(MemFault::BadWidth(0)).name());
    v
}

impl FaultsReport {
    /// Coverage per cause: how often it fired and where it was first seen.
    pub fn coverage(&self) -> BTreeMap<&'static str, (u64, String)> {
        let mut cov: BTreeMap<&'static str, (u64, String)> = BTreeMap::new();
        for c in &self.cells {
            for &cause in &c.causes {
                let src = format!("matrix {}/{}/{}", c.bench, c.kind.name(), policy_name(c.policy));
                let e = cov.entry(cause).or_insert((0, src));
                e.0 += 1;
            }
        }
        for p in self.probes.iter().filter(|p| p.fired) {
            let e = cov.entry(p.cause).or_insert((0, format!("probe {}", p.cause)));
            e.0 += 1;
        }
        cov
    }

    /// Required causes that never fired (empty when coverage is complete).
    pub fn missing(&self) -> Vec<&'static str> {
        let cov = self.coverage();
        required_causes().into_iter().filter(|c| !cov.contains_key(c)).collect()
    }

    /// `true` when every required cause fired at least once.
    pub fn covered(&self) -> bool {
        self.missing().is_empty()
    }
}

fn policy_name(p: TrapPolicy) -> &'static str {
    match p {
        TrapPolicy::Abort => "abort",
        TrapPolicy::MaskLanes => "mask-lanes",
    }
}

/// The benchmark subset of `repro faults --quick` (CI smoke): enough
/// variety to exercise loads, stores, AMOs and multi-launch phases.
pub fn quick_fault_benches() -> Vec<&'static dyn NoclBench> {
    const QUICK: [&str; 4] = ["VecAdd", "Reduce", "Histogram", "Scan"];
    catalog().iter().copied().filter(|b| QUICK.contains(&b.name())).collect()
}

/// Run the full experiment: the injection matrix over `benches` fanned
/// across `jobs` workers, then the directed probes. Deterministic for a
/// given (`benches`, `seed`) — worker count does not affect results.
pub fn faults_experiment(
    benches: &[&'static dyn NoclBench],
    jobs: usize,
    seed: u64,
) -> FaultsReport {
    let mut specs: Vec<(&'static dyn NoclBench, InjectionKind, TrapPolicy)> = Vec::new();
    for &b in benches {
        for kind in InjectionKind::ALL {
            for policy in [TrapPolicy::Abort, TrapPolicy::MaskLanes] {
                specs.push((b, kind, policy));
            }
        }
    }
    let cells = run_indexed(jobs, specs.len(), |i| {
        let (bench, kind, policy) = specs[i];
        // Per-cell seed: decorrelate cells while keeping the campaign a
        // pure function of the top-level seed.
        run_cell(bench, kind, policy, seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    })
    .into_iter()
    .zip(&specs)
    .map(|(r, &(bench, kind, policy))| {
        r.unwrap_or_else(|panic_msg| MatrixCell {
            bench: bench.name(),
            kind,
            policy,
            outcome: CellOutcome::Error(panic_msg),
            causes: Vec::new(),
            faults_logged: 0,
        })
    })
    .collect();
    FaultsReport { cells, probes: run_probes(seed), seed }
}

/// One matrix cell: a fresh CHERI (Optimised) GPU whose pre-launch hook
/// applies `kind` to device memory, running `bench` end to end.
fn run_cell(
    bench: &'static dyn NoclBench,
    kind: InjectionKind,
    policy: TrapPolicy,
    seed: u64,
) -> MatrixCell {
    let (mut cfg, mode) = Config::CheriOpt.instantiate(Geometry::Small);
    cfg.trap_policy = policy;
    let mut gpu = Gpu::new(cfg, mode);
    let mut injector = FaultInjector::new(seed);
    gpu.set_pre_launch_hook(Box::new(move |dev| {
        injector.apply(dev.memory_mut(), kind, MATRIX_INTENSITY);
    }));
    let result = bench.run(&mut gpu, Scale::Test);
    let log = gpu.take_fault_log();

    let mut causes: Vec<&'static str> = log.iter().flat_map(trap_causes).collect();
    causes.sort_unstable();
    causes.dedup();

    let outcome = match result {
        Ok(_) => CellOutcome::Clean,
        Err(BenchError::Mismatch(_)) => CellOutcome::Corrupted,
        Err(BenchError::Launch(LaunchError::Run(RunError::Trap(_)))) => CellOutcome::Trapped,
        Err(BenchError::Launch(LaunchError::Run(
            RunError::Timeout { .. } | RunError::Deadlock { .. },
        ))) => CellOutcome::Hung,
        Err(e) => CellOutcome::Error(e.to_string()),
    };
    MatrixCell {
        bench: bench.name(),
        kind,
        policy,
        outcome,
        causes,
        faults_logged: log.len() as u64,
    }
}

/// Every cause a trap names: the headline cause plus each lane's own.
fn trap_causes(t: &Trap) -> Vec<&'static str> {
    let mut v = vec![t.cause.name()];
    v.extend(t.lane_causes.iter().map(|lf| lf.cause.name()));
    v
}

/// All directed probes, in [`required_causes`] order.
pub fn run_probes(seed: u64) -> Vec<ProbeResult> {
    let mut out: Vec<ProbeResult> =
        CapException::ALL.iter().map(|&e| cheri_probe(e, seed)).collect();
    out.push(mem_probe_unmapped());
    out.push(mem_probe_misaligned());
    out.push(mem_probe_bad_width());
    out
}

/// A 1-warp CHERI SM with an almighty data capability in `GLOBAL` and a
/// full-perms victim capability resident at `VICTIM`; `setup` sabotages
/// memory after reset, exactly like the GPU pre-launch hook.
fn probe_sm(prog: Vec<u32>, setup: impl FnOnce(&mut MainMemory)) -> Result<(), RunError> {
    let mut sm = Sm::new(SmConfig::with_geometry(1, 4, CheriMode::On(CheriOpts::optimised())));
    sm.load_program(&prog);
    sm.set_scr(scr::GLOBAL, CapPipe::almighty().and_perm(Perms::data()).to_mem());
    let victim = CapPipe::almighty().set_addr(VICTIM).set_bounds(256).0;
    sm.memory_mut().write_cap(VICTIM, victim.to_mem()).expect("victim slot is mapped");
    sm.reset();
    setup(sm.memory_mut());
    sm.run(PROBE_MAX_CYCLES).map(|_| ())
}

/// Program prologue: load the (sabotaged) victim capability into `A0`
/// through the `GLOBAL` capability.
fn load_victim(a: &mut Assembler) {
    a.push(Instr::CSpecialRw { cd: Reg::T0, cs1: Reg::ZERO, scr: scr::GLOBAL });
    a.li(Reg::T1, VICTIM);
    a.push(Instr::CSetAddr { cd: Reg::T0, cs1: Reg::T0, rs2: Reg::T1 });
    a.push(Instr::Clc { cd: Reg::A0, cs1: Reg::T0, off: 0 });
}

/// One CHERI probe: sabotage the victim for `target`, then execute the
/// matching use of it and expect precisely that trap.
fn cheri_probe(target: CapException, seed: u64) -> ProbeResult {
    let mut a = Assembler::new();
    load_victim(&mut a);
    match target {
        CapException::PermitStoreViolation => {
            a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::ZERO, rs1: Reg::A0, off: 0 });
        }
        CapException::PermitStoreCapViolation => {
            a.push(Instr::Csc { cs2: Reg::A0, cs1: Reg::A0, off: 0 });
        }
        CapException::PermitExecuteViolation => {
            // `Jalr` through a capability is CJALR: fetch-checks the target.
            a.push(Instr::Jalr { rd: Reg::ZERO, rs1: Reg::A0, off: 0 });
        }
        CapException::PermitLoadCapViolation | CapException::AlignmentViolation => {
            a.push(Instr::Clc { cd: Reg::A1, cs1: Reg::A0, off: 0 });
        }
        CapException::InexactBounds => {
            a.li(Reg::A2, 1 << 20); // 1 MiB from a (sabotaged) odd base
            a.push(Instr::CSetBoundsExact { cd: Reg::A1, cs1: Reg::A0, rs2: Reg::A2 });
        }
        // Tag/seal/bounds/permit-load all fire on a plain word load.
        _ => {
            a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::A0, off: 0 });
        }
    }
    a.terminate();
    let expect = TrapCause::Cheri(target).name();
    let result = probe_sm(a.assemble(), |m| {
        FaultInjector::new(seed).sabotage(m, VICTIM, target);
    });
    grade_probe(expect, result)
}

/// `mem:unmapped`: dereference an injector-unmapped window through an
/// otherwise-valid capability.
fn mem_probe_unmapped() -> ProbeResult {
    let hole = map::DRAM_BASE + 0x800;
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::T0, cs1: Reg::ZERO, scr: scr::GLOBAL });
    a.li(Reg::T1, hole);
    a.push(Instr::CSetAddr { cd: Reg::T0, cs1: Reg::T0, rs2: Reg::T1 });
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::T0, off: 0 });
    a.terminate();
    let expect = TrapCause::Mem(MemFault::Unmapped(0)).name();
    grade_probe(expect, probe_sm(a.assemble(), |m| m.inject_unmap_window(hole, 64)))
}

/// `mem:misaligned`: a word load at a `+2` address — the capability check
/// passes (only capability-width accesses carry a CHERI alignment
/// requirement), so the fault comes from the memory map.
fn mem_probe_misaligned() -> ProbeResult {
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::T0, cs1: Reg::ZERO, scr: scr::GLOBAL });
    a.li(Reg::T1, VICTIM + 2);
    a.push(Instr::CSetAddr { cd: Reg::T0, cs1: Reg::T0, rs2: Reg::T1 });
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::T0, off: 0 });
    a.terminate();
    let expect = TrapCause::Mem(MemFault::Misaligned(0)).name();
    grade_probe(expect, probe_sm(a.assemble(), |_| {}))
}

/// `mem:bad_width`: the pipeline's width enum cannot encode an invalid
/// width, so this variant is demonstrated at the memory API directly.
fn mem_probe_bad_width() -> ProbeResult {
    let expect = TrapCause::Mem(MemFault::BadWidth(0)).name();
    let mem = MainMemory::new(map::DRAM_BASE, 4096);
    let fired = mem.read(map::DRAM_BASE, 3) == Err(MemFault::BadWidth(3));
    ProbeResult {
        cause: expect,
        fired,
        detail: "memory-API probe: 3-byte read (pipeline widths cannot encode it)".to_string(),
    }
}

/// Score a probe run: it must trap with exactly the cause it targets.
fn grade_probe(expect: &'static str, result: Result<(), RunError>) -> ProbeResult {
    match result {
        Err(RunError::Trap(t)) if t.cause.name() == expect => ProbeResult {
            cause: expect,
            fired: true,
            detail: format!(
                "warp {} pc {:#06x} lanes {:#x} ({} faulting lane(s))",
                t.warp,
                t.pc,
                t.lane_mask,
                t.lane_mask.count_ones()
            ),
        },
        Err(RunError::Trap(t)) => ProbeResult {
            cause: expect,
            fired: false,
            detail: format!("trapped with {} instead", t.cause.name()),
        },
        Err(e) => ProbeResult { cause: expect, fired: false, detail: format!("run failed: {e}") },
        Ok(()) => ProbeResult {
            cause: expect,
            fired: false,
            detail: "completed without trapping".to_string(),
        },
    }
}

/// Human-readable report: the matrix, the probes, and the coverage table.
pub fn faults_summary(r: &FaultsReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "fault-injection matrix — {} cell(s), seed {:#x}, CHERI (Optimised), quick geometry:",
        r.cells.len(),
        r.seed
    );
    let _ = writeln!(
        s,
        "  {:<12} {:<13} {:<11} {:<10} {:>6}  causes",
        "benchmark", "scheme", "policy", "outcome", "faults"
    );
    for c in &r.cells {
        let causes = if c.causes.is_empty() { "-".to_string() } else { c.causes.join(",") };
        let _ = writeln!(
            s,
            "  {:<12} {:<13} {:<11} {:<10} {:>6}  {}",
            c.bench,
            c.kind.name(),
            policy_name(c.policy),
            c.outcome.label(),
            c.faults_logged,
            causes
        );
    }
    let mask_cells: Vec<_> = r.cells.iter().filter(|c| c.policy == TrapPolicy::MaskLanes).collect();
    let completed = mask_cells
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::Clean | CellOutcome::Corrupted))
        .count();
    let suppressed: u64 = mask_cells.iter().map(|c| c.faults_logged).sum();
    let _ = writeln!(
        s,
        "  mask-lanes: {completed}/{} cell(s) ran to completion, {suppressed} suppressed fault(s) recorded",
        mask_cells.len()
    );

    let _ = writeln!(s, "directed probes:");
    for p in &r.probes {
        let _ = writeln!(
            s,
            "  {:<24} {:<6} {}",
            p.cause,
            if p.fired { "fired" } else { "MISS" },
            p.detail
        );
    }

    let cov = r.coverage();
    let required = required_causes();
    let fired = required.iter().filter(|c| cov.contains_key(*c)).count();
    let _ = writeln!(s, "coverage ({fired}/{} causes):", required.len());
    let _ = writeln!(s, "  {:<24} {:>5}  first observed", "cause", "count");
    for cause in &required {
        match cov.get(cause) {
            Some((n, src)) => {
                let _ = writeln!(s, "  {cause:<24} {n:>5}  {src}");
            }
            None => {
                let _ = writeln!(s, "  {cause:<24} {:>5}  NEVER FIRED", 0);
            }
        }
    }
    let _ = if r.covered() {
        writeln!(s, "coverage complete: every CHERI and memory trap cause fired")
    } else {
        writeln!(s, "coverage INCOMPLETE: missing {}", r.missing().join(", "))
    };
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_probes_fire_every_cause() {
        let probes = run_probes(0xC0FFEE);
        for p in &probes {
            assert!(p.fired, "{} did not fire: {}", p.cause, p.detail);
        }
        let r = FaultsReport { cells: Vec::new(), probes, seed: 0xC0FFEE };
        assert!(r.covered(), "missing causes: {:?}", r.missing());
    }

    #[test]
    fn abort_cell_traps_on_cleared_tags() {
        let bench = catalog()
            .iter()
            .copied()
            .find(|b| b.name() == "VecAdd")
            .expect("VecAdd is in the catalog");
        let cell = run_cell(bench, InjectionKind::ClearTag, TrapPolicy::Abort, 11);
        assert_eq!(cell.outcome, CellOutcome::Trapped, "causes: {:?}", cell.causes);
        assert!(cell.causes.contains(&"cheri:tag"), "causes: {:?}", cell.causes);
    }

    #[test]
    fn mask_lanes_cell_completes_and_logs_suppressed_faults() {
        let bench = catalog()
            .iter()
            .copied()
            .find(|b| b.name() == "VecAdd")
            .expect("VecAdd is in the catalog");
        let cell = run_cell(bench, InjectionKind::ClearTag, TrapPolicy::MaskLanes, 11);
        assert!(
            matches!(cell.outcome, CellOutcome::Clean | CellOutcome::Corrupted),
            "mask-lanes must not abort: {:?}",
            cell.outcome
        );
        assert!(cell.faults_logged > 0, "suppressed faults are recorded");
        assert!(cell.causes.contains(&"cheri:tag"), "causes: {:?}", cell.causes);
    }
}
