//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation section (see DESIGN.md §4 for the index).
//!
//! The [`Harness`] lazily runs the benchmark suite under each SM/compiler
//! configuration an experiment needs and caches the results, so `repro all`
//! simulates each configuration exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiments;
mod faults;
mod perf;
mod runner;
mod trace;

pub use experiments::*;
pub use faults::{
    faults_experiment, faults_summary, quick_fault_benches, required_causes, run_probes,
    CellOutcome, FaultsReport, MatrixCell, ProbeResult,
};
pub use perf::{
    compare_perf_json, perf_json, perf_suite, perf_summary, validate_perf_json, PerfCell,
    PerfReport, PERF_CONFIGS,
};
pub use runner::{default_jobs, run_indexed, run_suite_parallel, run_suite_parallel_on, CellError};
pub use trace::{
    export_runs, reconcile, resolve_benches, trace_config, trace_suite, trace_suite_on,
    trace_summary, TraceFormat, TracedRun,
};

use cheri_simt::{CheriMode, CheriOpts, KernelStats, SmConfig};
use nocl_kir::Mode;
use nocl_suite::Scale;
use std::collections::BTreeMap;

/// SM geometry for a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geometry {
    /// The paper's 64 warps × 32 lanes (2,048 threads).
    Full,
    /// 8 warps × 8 lanes, for quick runs and tests.
    Small,
}

/// One experimental configuration (SM + compiler mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Config {
    /// Baseline with an uncompressed (full-size-VRF) register file — the
    /// reference point of Table 2.
    BaseUncompressed,
    /// Baseline with a compressed register file; VRF size `num/8`.
    Base {
        /// VRF capacity in eighths of the architectural register count.
        eighths: u32,
    },
    /// The naive CHERI configuration.
    CheriNaive,
    /// The optimised CHERI configuration.
    CheriOpt,
    /// CHERI (Optimised) with the null-value optimisation disabled
    /// (the "without NVO" bars of Figure 10).
    CheriOptNoNvo,
    /// Rust port, bounds checks only.
    RustChecked,
    /// Rust port, like-for-like total.
    RustFull,
    /// GPUShield comparator: region-based bounds table (Section 5.2).
    GpuShield,
}

impl Config {
    /// Build the SM configuration and compiler mode for this experiment.
    pub fn instantiate(self, geom: Geometry) -> (SmConfig, Mode) {
        let base = |cheri| match geom {
            Geometry::Full => SmConfig::full(cheri),
            Geometry::Small => SmConfig::small(cheri),
        };
        match self {
            Config::BaseUncompressed => (base(CheriMode::Off).vrf_slots_frac(8, 8), Mode::Baseline),
            Config::Base { eighths } => {
                (base(CheriMode::Off).vrf_slots_frac(eighths, 8), Mode::Baseline)
            }
            Config::CheriNaive => (base(CheriMode::On(CheriOpts::naive())), Mode::PureCap),
            Config::CheriOpt => (base(CheriMode::On(CheriOpts::optimised())), Mode::PureCap),
            Config::CheriOptNoNvo => {
                let opts = CheriOpts { nvo: false, ..CheriOpts::optimised() };
                (base(CheriMode::On(opts)), Mode::PureCap)
            }
            Config::RustChecked => (base(CheriMode::Off), Mode::RustChecked),
            Config::RustFull => (base(CheriMode::Off), Mode::RustFull),
            Config::GpuShield => (base(CheriMode::Off), Mode::GpuShield),
        }
    }
}

/// Suite results under one configuration, keyed by benchmark name.
pub type SuiteResults = Vec<(&'static str, KernelStats)>;

/// The experiment driver.
#[derive(Debug)]
pub struct Harness {
    geometry: Geometry,
    scale: Scale,
    cache: BTreeMap<Config, SuiteResults>,
    /// Progress callback target (quiet when `None`).
    verbose: bool,
    /// Worker threads for the parallel suite runner.
    jobs: usize,
    /// Streaming multiprocessors per simulated device.
    sms: u32,
}

impl Harness {
    /// A harness at the paper's geometry and dataset scale.
    pub fn paper() -> Self {
        Harness {
            geometry: Geometry::Full,
            scale: Scale::Paper,
            cache: BTreeMap::new(),
            verbose: false,
            jobs: default_jobs(),
            sms: 1,
        }
    }

    /// A quick harness for tests and smoke runs.
    pub fn quick() -> Self {
        Harness {
            geometry: Geometry::Small,
            scale: Scale::Test,
            cache: BTreeMap::new(),
            verbose: false,
            jobs: default_jobs(),
            sms: 1,
        }
    }

    /// Print progress lines to stderr while simulating.
    pub fn verbose(mut self) -> Self {
        self.verbose = true;
        self
    }

    /// Set the worker-thread count (`1` = serial; results are identical
    /// for every value).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The worker-thread count in use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Simulate devices of `sms` streaming multiprocessors instead of the
    /// default single SM (`sms = 1` is bit-identical to the classic model).
    /// Clears any cached results.
    pub fn with_sms(mut self, sms: u32) -> Self {
        assert!(sms >= 1, "a device needs at least one SM");
        self.sms = sms;
        self.cache.clear();
        self
    }

    /// Streaming multiprocessors per simulated device.
    pub fn sms(&self) -> u32 {
        self.sms
    }

    /// The geometry in use.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Run (or fetch cached) suite results under `config`, fanning the
    /// suite's cells over the harness's worker pool — one fresh `Gpu` per
    /// benchmark, so results do not depend on the worker count.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark fails its self-check — the harness is only
    /// meaningful over verified runs.
    pub fn results(&mut self, config: Config) -> &SuiteResults {
        if !self.cache.contains_key(&config) {
            if self.verbose {
                eprintln!("[repro] simulating {config:?} on {} worker(s) ...", self.jobs);
            }
            let (cfg, mode) = config.instantiate(self.geometry);
            let results = run_suite_parallel_on(self.jobs, cfg, mode, self.scale, self.sms)
                .unwrap_or_else(|e| panic!("suite failed under {config:?}: {e}"));
            self.cache.insert(config, results);
        }
        &self.cache[&config]
    }

    /// Total architectural vector registers at this geometry.
    pub fn total_regs(&self) -> u32 {
        let (cfg, _) = Config::Base { eighths: 3 }.instantiate(self.geometry);
        cfg.warps * 32
    }
}

/// Geometric mean of ratios.
pub fn geomean(ratios: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for r in ratios {
        log_sum += r.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn configs_instantiate() {
        for c in [
            Config::BaseUncompressed,
            Config::Base { eighths: 3 },
            Config::CheriNaive,
            Config::CheriOpt,
            Config::CheriOptNoNvo,
            Config::RustChecked,
            Config::RustFull,
            Config::GpuShield,
        ] {
            let (cfg, mode) = c.instantiate(Geometry::Small);
            assert_eq!(cfg.cheri.enabled(), mode.needs_cheri(), "{c:?}");
        }
    }

    #[test]
    fn harness_caches() {
        let mut h = Harness::quick();
        let n1 = h.results(Config::Base { eighths: 3 }).len();
        assert_eq!(n1, 14);
        // Second call hits the cache (same pointer contents, no panic).
        let n2 = h.results(Config::Base { eighths: 3 }).len();
        assert_eq!(n2, 14);
    }
}
