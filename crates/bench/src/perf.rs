//! The `repro perf` engine: wall-clock timing of the simulator itself.
//!
//! Where the experiment layer reports *simulated* metrics (cycles, DRAM
//! transactions), this module reports how long the **simulator** takes to
//! run each (benchmark × configuration) cell, and emits the result as
//! `BENCH_sim.json` so the repository's performance trajectory is tracked
//! from one PR to the next (see EXPERIMENTS.md for recorded runs).
//!
//! Timing is wall-clock (`std::time::Instant`) around each cell's
//! `NoclBench::run`. With `jobs > 1` the cells share cores, so per-cell
//! seconds are only comparable between runs at the same `--jobs` value;
//! `total_seconds` is always the end-to-end wall clock of the whole sweep.

use crate::{run_indexed, Config, Geometry};
use cheri_simt::trace::json::{self, Value};
use nocl::Gpu;
use nocl_suite::{NoclBench, Scale};
use std::time::Instant;

/// The tracked configurations, in report order: the five golden-stats
/// configurations (one per `repro trace` mode tag, NVO variants excluded).
pub const PERF_CONFIGS: &[(&str, Config)] = &[
    ("baseline", Config::Base { eighths: 3 }),
    ("naive", Config::CheriNaive),
    ("purecap", Config::CheriOpt),
    ("rust", Config::RustChecked),
    ("gpushield", Config::GpuShield),
];

/// One timed (benchmark × configuration) cell.
#[derive(Debug, Clone)]
pub struct PerfCell {
    /// Table-1 benchmark name.
    pub bench: &'static str,
    /// Configuration tag (see [`PERF_CONFIGS`]).
    pub config: &'static str,
    /// Wall-clock seconds spent simulating this cell.
    pub seconds: f64,
    /// Simulated cycles, for sanity ("did the work change?").
    pub cycles: u64,
    /// Simulated instructions issued.
    pub instrs: u64,
}

/// A full `repro perf` sweep: every cell plus the end-to-end wall clock.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// `"full"` (paper geometry) or `"quick"`.
    pub geometry: &'static str,
    /// Worker threads the sweep ran on.
    pub jobs: usize,
    /// Streaming multiprocessors per simulated device.
    pub sms: u32,
    /// Cells in (config-major, benchmark-minor) order.
    pub cells: Vec<PerfCell>,
    /// End-to-end wall clock of the whole sweep.
    pub total_seconds: f64,
}

/// Time `benches` under every [`PERF_CONFIGS`] entry, one fresh [`Gpu`]
/// per cell, fanned over `jobs` workers.
///
/// # Errors
///
/// Fails if any benchmark fails its launch or self-check, or panics (the
/// first failing cell in sweep order is reported).
pub fn perf_suite(
    benches: &[&'static dyn NoclBench],
    geometry: Geometry,
    jobs: usize,
    sms: u32,
) -> Result<PerfReport, String> {
    let scale = match geometry {
        Geometry::Full => Scale::Paper,
        Geometry::Small => Scale::Test,
    };
    let cells: Vec<(&'static str, Config, &'static dyn NoclBench)> = PERF_CONFIGS
        .iter()
        .flat_map(|&(tag, config)| benches.iter().map(move |&b| (tag, config, b)))
        .collect();
    let sweep_start = Instant::now();
    let results = run_indexed(jobs, cells.len(), |i| -> Result<PerfCell, String> {
        let (tag, config, b) = cells[i];
        let (cfg, mode) = config.instantiate(geometry);
        let mut gpu = Gpu::with_sms(cfg, mode, sms);
        let start = Instant::now();
        let stats = b.run(&mut gpu, scale).map_err(|e| e.to_string())?;
        Ok(PerfCell {
            bench: b.name(),
            config: tag,
            seconds: start.elapsed().as_secs_f64(),
            cycles: stats.cycles,
            instrs: stats.instrs,
        })
    });
    let total_seconds = sweep_start.elapsed().as_secs_f64();
    let mut out = Vec::with_capacity(cells.len());
    for ((tag, _, b), r) in cells.iter().zip(results) {
        match r {
            Ok(Ok(cell)) => out.push(cell),
            Ok(Err(e)) | Err(e) => return Err(format!("{} [{tag}]: {e}", b.name())),
        }
    }
    Ok(PerfReport {
        geometry: match geometry {
            Geometry::Full => "full",
            Geometry::Small => "quick",
        },
        jobs,
        sms,
        cells: out,
        total_seconds,
    })
}

/// Serialise a report as `BENCH_sim.json` (the schema
/// [`validate_perf_json`] checks).
pub fn perf_json(report: &PerfReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"geometry\": \"{}\",", report.geometry);
    let _ = writeln!(s, "  \"jobs\": {},", report.jobs);
    let _ = writeln!(s, "  \"sms\": {},", report.sms);
    let configs: Vec<String> = PERF_CONFIGS.iter().map(|(tag, _)| format!("\"{tag}\"")).collect();
    let _ = writeln!(s, "  \"configs\": [{}],", configs.join(", "));
    let mut benches: Vec<&str> = Vec::new();
    for c in &report.cells {
        if !benches.contains(&c.bench) {
            benches.push(c.bench);
        }
    }
    let bench_names: Vec<String> = benches.iter().map(|b| format!("\"{b}\"")).collect();
    let _ = writeln!(s, "  \"benchmarks\": [{}],", bench_names.join(", "));
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in report.cells.iter().enumerate() {
        let comma = if i + 1 == report.cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"bench\": \"{}\", \"config\": \"{}\", \"seconds\": {:.6}, \
             \"cycles\": {}, \"instrs\": {}}}{comma}",
            c.bench, c.config, c.seconds, c.cycles, c.instrs
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"total_seconds\": {:.6}", report.total_seconds);
    let _ = write!(s, "}}");
    s
}

/// A human summary for stderr: per-config subtotal and the grand total.
pub fn perf_summary(report: &PerfReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (tag, _) in PERF_CONFIGS {
        let (mut secs, mut n) = (0.0f64, 0usize);
        for c in report.cells.iter().filter(|c| c.config == *tag) {
            secs += c.seconds;
            n += 1;
        }
        let _ = writeln!(s, "{tag:<12} {n:>3} cell(s)   {secs:>8.3} s (cpu, summed)");
    }
    let _ = writeln!(
        s,
        "total        {:>3} cell(s)   {:>8.3} s (wall, {} worker(s))",
        report.cells.len(),
        report.total_seconds,
        report.jobs
    );
    s
}

/// Validate a `BENCH_sim.json` document against the schema [`perf_json`]
/// emits, using the workspace's dependency-free JSON parser. Returns
/// `(cells, total_seconds)` on success.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_perf_json(input: &str) -> Result<(usize, f64), String> {
    let doc = json::parse(input).map_err(|e| format!("parse error: {e}"))?;
    let obj = doc.as_obj().ok_or("top level must be an object")?;
    let need_num = |key: &str| -> Result<f64, String> {
        obj.get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("missing or non-numeric field {key}"))
    };
    let geometry = obj
        .get("geometry")
        .and_then(Value::as_str)
        .ok_or("missing or non-string field geometry")?;
    if geometry != "full" && geometry != "quick" {
        return Err(format!("geometry must be full|quick, got {geometry}"));
    }
    need_num("jobs")?;
    need_num("sms")?;
    let str_list = |key: &str| -> Result<Vec<String>, String> {
        let arr = obj
            .get(key)
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("missing or non-array field {key}"))?;
        arr.iter()
            .map(|v| v.as_str().map(str::to_owned))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| format!("{key} must contain only strings"))
    };
    let configs = str_list("configs")?;
    let benchmarks = str_list("benchmarks")?;
    let cells =
        obj.get("cells").and_then(Value::as_arr).ok_or("missing or non-array field cells")?;
    if cells.len() != configs.len() * benchmarks.len() {
        return Err(format!(
            "expected {} cells ({} configs x {} benchmarks), got {}",
            configs.len() * benchmarks.len(),
            configs.len(),
            benchmarks.len(),
            cells.len()
        ));
    }
    for (i, cell) in cells.iter().enumerate() {
        let c = cell.as_obj().ok_or_else(|| format!("cell {i} is not an object"))?;
        let bench = c
            .get("bench")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("cell {i}: missing bench"))?;
        if !benchmarks.iter().any(|b| b == bench) {
            return Err(format!("cell {i}: bench {bench} not in benchmarks list"));
        }
        let config = c
            .get("config")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("cell {i}: missing config"))?;
        if !configs.iter().any(|t| t == config) {
            return Err(format!("cell {i}: config {config} not in configs list"));
        }
        for key in ["seconds", "cycles", "instrs"] {
            let v = c
                .get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("cell {i}: missing or non-numeric {key}"))?;
            if v < 0.0 {
                return Err(format!("cell {i}: negative {key}"));
            }
        }
    }
    let total = need_num("total_seconds")?;
    if total < 0.0 {
        return Err("negative total_seconds".into());
    }
    Ok((cells.len(), total))
}

/// The perf-regression smoke gate behind `repro check-perf`: compare a
/// fresh `BENCH_sim.json` against the committed one for one benchmark.
/// The benchmark's wall-clock seconds are summed across every
/// configuration present in both documents (single cells are too noisy on
/// shared CI runners), and the gate fails when the new sum exceeds the old
/// by more than `max_regress` (e.g. `0.10` = 10%). Returns a one-line
/// summary on success.
///
/// # Errors
///
/// Returns a description of the regression, a schema violation, or a
/// benchmark missing from either document.
pub fn compare_perf_json(
    new_doc: &str,
    old_doc: &str,
    bench: &str,
    max_regress: f64,
) -> Result<String, String> {
    validate_perf_json(new_doc).map_err(|e| format!("new document: {e}"))?;
    validate_perf_json(old_doc).map_err(|e| format!("committed document: {e}"))?;
    let sum = |doc: &str, which: &str| -> Result<f64, String> {
        let parsed = json::parse(doc).map_err(|e| format!("{which}: parse error: {e}"))?;
        let obj = parsed.as_obj().ok_or_else(|| format!("{which}: not an object"))?;
        let cells = obj.get("cells").and_then(Value::as_arr).ok_or("cells")?;
        let mut total = 0.0;
        let mut n = 0usize;
        for cell in cells {
            let c = cell.as_obj().ok_or_else(|| format!("{which}: non-object cell"))?;
            if c.get("bench").and_then(Value::as_str) == Some(bench) {
                total += c.get("seconds").and_then(Value::as_num).unwrap_or(0.0);
                n += 1;
            }
        }
        if n == 0 {
            return Err(format!("{which}: no cells for benchmark {bench}"));
        }
        Ok(total)
    };
    let new_secs = sum(new_doc, "new document")?;
    let old_secs = sum(old_doc, "committed document")?;
    let ratio = new_secs / old_secs;
    if new_secs > old_secs * (1.0 + max_regress) {
        return Err(format!(
            "{bench} regressed: {new_secs:.3} s vs committed {old_secs:.3} s \
             ({ratio:.2}x, limit {:.2}x)",
            1.0 + max_regress
        ));
    }
    Ok(format!(
        "{bench}: {new_secs:.3} s vs committed {old_secs:.3} s ({ratio:.2}x) — within limits"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve_benches;

    #[test]
    fn perf_round_trips_through_validation() {
        let benches = resolve_benches("vecadd").unwrap();
        let report = perf_suite(&benches, Geometry::Small, 1, 1).unwrap();
        assert_eq!(report.cells.len(), PERF_CONFIGS.len());
        assert!(report.cells.iter().all(|c| c.cycles > 0 && c.instrs > 0));
        let json = perf_json(&report);
        let (cells, total) = validate_perf_json(&json).unwrap();
        assert_eq!(cells, PERF_CONFIGS.len());
        assert!(total >= 0.0);
        assert!(!perf_summary(&report).is_empty());
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_perf_json("not json").is_err());
        assert!(validate_perf_json("{}").is_err());
        // Cell count must equal configs x benchmarks.
        let bad = r#"{"geometry":"quick","jobs":1,"sms":1,
            "configs":["baseline"],"benchmarks":["VecAdd"],
            "cells":[],"total_seconds":0.1}"#;
        assert!(validate_perf_json(bad).unwrap_err().contains("expected 1 cells"));
        // Unknown geometry.
        let bad = r#"{"geometry":"huge","jobs":1,"sms":1,"configs":[],
            "benchmarks":[],"cells":[],"total_seconds":0.0}"#;
        assert!(validate_perf_json(bad).unwrap_err().contains("geometry"));
    }

    /// A minimal schema-valid document with one BitonicLa cell of `secs`.
    fn doc(secs: f64) -> String {
        format!(
            r#"{{"geometry":"quick","jobs":1,"sms":1,
                "configs":["baseline"],"benchmarks":["BitonicLa"],
                "cells":[{{"bench":"BitonicLa","config":"baseline",
                           "seconds":{secs},"cycles":100,"instrs":50}}],
                "total_seconds":{secs}}}"#
        )
    }

    #[test]
    fn check_perf_gates_on_the_tracked_benchmark() {
        // Faster or within the 10% budget: passes.
        let ok = compare_perf_json(&doc(0.020), &doc(0.035), "BitonicLa", 0.10).unwrap();
        assert!(ok.contains("within limits"), "{ok}");
        assert!(compare_perf_json(&doc(0.038), &doc(0.035), "BitonicLa", 0.10).is_ok());
        // Past the budget: fails with the ratio in the message.
        let err = compare_perf_json(&doc(0.050), &doc(0.035), "BitonicLa", 0.10).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("1.43x"), "{err}");
        // Benchmark absent from a document: a hard error, not a silent pass.
        let err = compare_perf_json(&doc(0.020), &doc(0.035), "VecAdd", 0.10).unwrap_err();
        assert!(err.contains("no cells for benchmark VecAdd"), "{err}");
        // Malformed input is rejected before any comparison.
        assert!(compare_perf_json("nope", &doc(0.035), "BitonicLa", 0.10)
            .unwrap_err()
            .contains("new document"));
    }
}
