//! Parallel execution engine for the suite and experiment layers.
//!
//! Experiments are embarrassingly parallel — each (benchmark, config,
//! mode, scale) cell simulates its own [`Gpu`] — but the seed harness ran
//! them strictly serially. This module fans cells out over a
//! [`std::thread::scope`] work-stealing pool (an atomic next-index counter;
//! no external dependencies) and reduces results **in cell-index order**,
//! so suite results, geomeans, and `repro` table output are bit-identical
//! to the serial path regardless of thread count. `jobs = 1` runs the
//! exact same code path on a single worker.
//!
//! Determinism rests on two properties, both enforced elsewhere in the
//! workspace and asserted by `crates/bench/tests/parallel.rs`:
//!
//! * every benchmark seeds its input PRNG from a per-benchmark constant
//!   (`nocl_suite::util::rng`), so a cell's result does not depend on which
//!   worker runs it or when;
//! * every cell gets a *fresh* `Gpu`, so no allocator or cache state leaks
//!   between cells in either the serial or the parallel schedule.
//!
//! A cell that fails — a `BenchError` or a panic — is reported for that
//! cell alone; sibling workers run their cells to completion (panics are
//! contained with `catch_unwind`, which is sound here because each job owns
//! its whole `Gpu` and shares nothing mutable).

use crate::SuiteResults;
use cheri_simt::{KernelStats, SmConfig};
use nocl::Gpu;
use nocl_kir::Mode;
use nocl_suite::{suite_jobs, Scale};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

// Send audit: everything a worker captures or returns must cross the
// `thread::scope` boundary.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SmConfig>();
    assert_send::<Mode>();
    assert_send::<Scale>();
    assert_send::<KernelStats>();
    assert_send::<Gpu>();
    assert_send::<CellError>();
};

/// One failed cell, tagged with the benchmark it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// Table-1 name of the failing benchmark.
    pub bench: &'static str,
    /// The benchmark's own error, or the payload of a caught panic.
    pub message: String,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.bench, self.message)
    }
}

impl std::error::Error for CellError {}

/// Default worker count: the `BENCH_JOBS` environment variable if set,
/// otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("BENCH_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f(0..n)` on `jobs` workers with work stealing and return the
/// results **in index order**; a job that panics yields `Err(payload)` for
/// its own index without disturbing any other job.
///
/// This is the one scheduling primitive of the engine: the suite runner
/// and the ad-hoc experiment sweeps all go through it, so `jobs = 1` is
/// the serial path rather than a separate implementation.
pub fn run_indexed<R, F>(jobs: usize, n: usize, f: F) -> Vec<Result<R, String>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs = jobs.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, Result<R, String>)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = catch_unwind(AssertUnwindSafe(|| f(i)))
                            .map_err(|p| panic_message(p.as_ref()));
                        done.push((i, r));
                    }
                    done
                })
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("worker died outside a job")).collect()
    });
    // Deterministic reduction: results in cell-index order, independent of
    // worker count and completion order.
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert!(pairs.iter().enumerate().all(|(k, (i, _))| k == *i));
    pairs.into_iter().map(|(_, r)| r).collect()
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Run the whole NoCL suite under one SM configuration, one fresh [`Gpu`]
/// per benchmark cell, fanned out over `jobs` workers. Results come back
/// in Table-1 order; on failure, the error of the *first* failing cell in
/// Table-1 order is returned (sibling cells still run to completion), so
/// the outcome is deterministic too.
///
/// # Errors
///
/// Fails if any benchmark fails its launch or self-check, or panics.
pub fn run_suite_parallel(
    jobs: usize,
    cfg: SmConfig,
    mode: Mode,
    scale: Scale,
) -> Result<SuiteResults, CellError> {
    run_suite_parallel_on(jobs, cfg, mode, scale, 1)
}

/// [`run_suite_parallel`] on a device of `sms` streaming multiprocessors
/// (`sms = 1` is the classic single-SM model and is bit-identical to it).
///
/// # Errors
///
/// Fails if any benchmark fails its launch or self-check, or panics.
pub fn run_suite_parallel_on(
    jobs: usize,
    cfg: SmConfig,
    mode: Mode,
    scale: Scale,
    sms: u32,
) -> Result<SuiteResults, CellError> {
    let cells = suite_jobs();
    let results = run_indexed(jobs, cells.len(), |i| {
        let mut gpu = Gpu::with_sms(cfg, mode, sms);
        cells[i].bench.run(&mut gpu, scale).map_err(|e| e.to_string())
    });
    let mut out = SuiteResults::with_capacity(cells.len());
    for (job, r) in cells.iter().zip(results) {
        match r {
            Ok(Ok(stats)) => out.push((job.bench.name(), stats)),
            Ok(Err(message)) | Err(message) => {
                return Err(CellError { bench: job.bench.name(), message });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_are_ordered() {
        for jobs in [1, 2, 7, 64] {
            let got = run_indexed(jobs, 100, |i| i * i);
            let want: Vec<_> = (0..100).map(|i| Ok(i * i)).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_oversubscribed_pools() {
        assert!(run_indexed(8, 0, |i| i).is_empty());
        assert_eq!(run_indexed(64, 1, |i| i), vec![Ok(0)]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
