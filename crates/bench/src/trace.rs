//! The `repro trace` engine: run suite benchmarks with the structured event
//! sink attached, reconcile the event stream against the run's performance
//! counters, and export the result.
//!
//! Tracing composes with the parallel runner: cells fan out over
//! [`run_indexed`] and reduce in cell-index order, so the exported file is
//! byte-identical for every `--jobs` value (asserted by
//! `crates/bench/tests/trace.rs`).

use crate::{run_indexed, Config, Geometry};
use cheri_simt::trace::export::{to_chrome, to_jsonl, TraceCell};
use cheri_simt::trace::{StallCause, TraceEvent, VecSink};
use cheri_simt::KernelStats;
use nocl::Gpu;
use nocl_suite::{catalog, NoclBench, Scale};

/// Export format for `repro trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON, viewable in Perfetto or `chrome://tracing`.
    Chrome,
    /// One JSON object per line (`jq`-friendly).
    Jsonl,
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "chrome" => Ok(TraceFormat::Chrome),
            "jsonl" => Ok(TraceFormat::Jsonl),
            other => Err(format!("unknown trace format {other} (chrome|jsonl)")),
        }
    }
}

/// One traced benchmark run: the label the exporters use, the full event
/// stream (all launches of a multi-launch benchmark, delimited by `launch`
/// markers), and the accumulated statistics the stream reconciles against.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// `"<bench> [<mode>]"`.
    pub label: String,
    /// Every event of every launch, in emission order.
    pub events: Vec<TraceEvent>,
    /// Statistics accumulated over the same launches.
    pub stats: KernelStats,
}

/// Map a `repro trace` mode name to the experiment configuration it traces.
///
/// # Errors
///
/// Fails on an unknown mode name.
pub fn trace_config(mode_name: &str) -> Result<Config, String> {
    match mode_name {
        "baseline" => Ok(Config::Base { eighths: 3 }),
        "naive" => Ok(Config::CheriNaive),
        "purecap" => Ok(Config::CheriOpt),
        "rust" => Ok(Config::RustChecked),
        "rustfull" => Ok(Config::RustFull),
        "gpushield" => Ok(Config::GpuShield),
        other => {
            Err(format!("unknown mode {other} (baseline|naive|purecap|rust|rustfull|gpushield)"))
        }
    }
}

/// The mode tag used in cell labels, the inverse of [`trace_config`].
fn mode_tag(config: Config) -> &'static str {
    match config {
        Config::BaseUncompressed | Config::Base { .. } => "baseline",
        Config::CheriNaive => "naive",
        Config::CheriOpt | Config::CheriOptNoNvo => "purecap",
        Config::RustChecked => "rust",
        Config::RustFull => "rustfull",
        Config::GpuShield => "gpushield",
    }
}

/// Resolve a benchmark name case-insensitively; `all` selects the whole
/// suite in Table-1 order.
///
/// # Errors
///
/// Fails on an unknown benchmark name.
pub fn resolve_benches(name: &str) -> Result<Vec<&'static dyn NoclBench>, String> {
    if name.eq_ignore_ascii_case("all") {
        return Ok(catalog().to_vec());
    }
    catalog()
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .map(|&b| vec![b])
        .ok_or_else(|| format!("unknown benchmark {name} (or 'all')"))
}

/// Run `benches` under `config`, each cell on a fresh [`Gpu`] with a
/// [`VecSink`] attached, fanned over `jobs` workers. Every cell's event
/// stream is [reconciled](reconcile) against its `KernelStats` before being
/// accepted, so a trace this function returns is always exact.
///
/// # Errors
///
/// Fails if a benchmark fails its self-check or its event stream disagrees
/// with its counters (the first failing cell in suite order is reported).
pub fn trace_suite(
    benches: &[&'static dyn NoclBench],
    config: Config,
    geometry: Geometry,
    jobs: usize,
) -> Result<Vec<TracedRun>, String> {
    trace_suite_on(benches, config, geometry, jobs, 1)
}

/// [`trace_suite`] on a device of `sms` streaming multiprocessors. Each SM
/// gets its own [`VecSink`], and each SM becomes its own exported cell
/// (labelled `"<bench> [<mode>] · sm<k>"` — one Perfetto process per SM),
/// so cross-SM interleaving is visible on separate tracks. The
/// *concatenation* of the per-SM streams is reconciled against the
/// combined device statistics (per-SM statistics cannot reconcile alone:
/// the DRAM and tag-cache counters live in the shared subsystem), and each
/// per-SM cell carries those combined statistics. With `sms == 1` this is
/// exactly [`trace_suite`], byte-identical labels included.
///
/// # Errors
///
/// Fails if a benchmark fails its self-check or the combined event stream
/// disagrees with the device counters (first failing cell in suite order).
pub fn trace_suite_on(
    benches: &[&'static dyn NoclBench],
    config: Config,
    geometry: Geometry,
    jobs: usize,
    sms: u32,
) -> Result<Vec<TracedRun>, String> {
    let (cfg, mode) = config.instantiate(geometry);
    let scale = match geometry {
        Geometry::Full => Scale::Paper,
        Geometry::Small => Scale::Test,
    };
    let tag = mode_tag(config);
    let results = run_indexed(jobs, benches.len(), |i| -> Result<Vec<TracedRun>, String> {
        let b = benches[i];
        let mut gpu = Gpu::with_sms(cfg, mode, sms);
        for k in 0..sms as usize {
            gpu.device_mut().sm_mut(k).set_sink(Box::new(VecSink::new()));
        }
        let stats = b.run(&mut gpu, scale).map_err(|e| e.to_string())?;
        let per_sm: Vec<Vec<TraceEvent>> = (0..sms as usize)
            .map(|k| {
                let sink = gpu.device_mut().sm_mut(k).take_sink().expect("sink survives the run");
                sink.as_any()
                    .downcast_ref::<VecSink>()
                    .expect("attached a VecSink")
                    .events()
                    .to_vec()
            })
            .collect();
        let all: Vec<TraceEvent> = per_sm.iter().flatten().copied().collect();
        reconcile(&all, &stats).map_err(|e| format!("trace/stats mismatch: {e}"))?;
        if sms == 1 {
            let events = per_sm.into_iter().next().expect("one SM");
            return Ok(vec![TracedRun { label: format!("{} [{tag}]", b.name()), events, stats }]);
        }
        Ok(per_sm
            .into_iter()
            .enumerate()
            .map(|(k, events)| TracedRun {
                label: format!("{} [{tag}] · sm{k}", b.name()),
                events,
                stats: stats.clone(),
            })
            .collect())
    });
    let mut out = Vec::with_capacity(benches.len() * sms as usize);
    for (b, r) in benches.iter().zip(results) {
        match r {
            Ok(Ok(cells)) => out.extend(cells),
            Ok(Err(e)) | Err(e) => return Err(format!("{}: {e}", b.name())),
        }
    }
    Ok(out)
}

/// Check every reconciliation invariant between an event stream and the
/// statistics of the run that produced it — the contract documented in
/// `docs/TRACING.md`: issue events count `instrs`, their mask popcounts sum
/// to `thread_instrs`, per-cause stall cycles sum to the `StallBreakdown`
/// fields, and memory events sum to the DRAM/tag-cache/scratchpad counters.
///
/// # Errors
///
/// Returns the first violated invariant as `"name: events say X, counters
/// say Y"`.
pub fn reconcile(events: &[TraceEvent], stats: &KernelStats) -> Result<(), String> {
    let check = |name: &str, got: u64, want: u64| {
        if got == want {
            Ok(())
        } else {
            Err(format!("{name}: events say {got}, counters say {want}"))
        }
    };
    let (mut issues, mut threads, mut arrivals, mut sfu) = (0u64, 0u64, 0u64, 0u64);
    let mut scalarised = 0u64;
    let (mut tag_lookups, mut tag_hits, mut tag_writebacks) = (0u64, 0u64, 0u64);
    let (mut dram_reads, mut dram_writes, mut dram_tags) = (0u64, 0u64, 0u64);
    let (mut scratch_accesses, mut scratch_conflicts, mut stack_hits) = (0u64, 0u64, 0u64);
    let (mut csc, mut vrf, mut spill, mut flit, mut idle) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut traps, mut faulting_lanes, mut suppressed) = (0u64, 0u64, 0u64);
    for e in events {
        match *e {
            TraceEvent::Issue { mask, class, .. } => {
                issues += 1;
                threads += u64::from(mask.count_ones());
                scalarised += u64::from(class == cheri_simt::trace::IssueClass::Scalarised);
            }
            TraceEvent::Barrier { release: false, .. } => arrivals += 1,
            TraceEvent::Sfu { .. } => sfu += 1,
            TraceEvent::TagCache { hit, writeback, .. } => {
                tag_lookups += 1;
                tag_hits += u64::from(hit);
                tag_writebacks += u64::from(writeback);
            }
            TraceEvent::Dram { reads, writes, tag_txns, .. } => {
                dram_reads += u64::from(reads);
                dram_writes += u64::from(writes);
                dram_tags += u64::from(tag_txns);
            }
            TraceEvent::Mem { space, conflict_cycles, .. } => match space {
                cheri_simt::trace::MemSpace::Scratch => {
                    scratch_accesses += 1;
                    scratch_conflicts += u64::from(conflict_cycles);
                }
                cheri_simt::trace::MemSpace::StackCache => stack_hits += 1,
                cheri_simt::trace::MemSpace::Dram => {}
            },
            TraceEvent::Stall { cause, cycles, .. } => match cause {
                StallCause::CscSerialisation => csc += cycles,
                StallCause::SharedVrfConflict => vrf += cycles,
                StallCause::SpillFill => spill += cycles,
                StallCause::CapMultiFlit => flit += cycles,
                StallCause::Idle => idle += cycles,
            },
            TraceEvent::Trap { mask, suppressed: s, .. } => {
                traps += 1;
                faulting_lanes += u64::from(mask.count_ones());
                suppressed += u64::from(s);
            }
            TraceEvent::Launch { .. }
            | TraceEvent::RfTransition { .. }
            | TraceEvent::Barrier { release: true, .. } => {}
        }
    }
    check("issue events vs instrs", issues, stats.instrs)?;
    check("issue mask popcounts vs thread_instrs", threads, stats.thread_instrs)?;
    check("scalarised issue events vs scalarised_issues", scalarised, stats.scalarised_issues)?;
    check("barrier arrivals vs barriers", arrivals, stats.barriers)?;
    check("sfu events vs sfu_requests", sfu, stats.sfu_requests)?;
    check(
        "tag lookups vs hits+misses",
        tag_lookups,
        stats.tag_cache.hits + stats.tag_cache.misses,
    )?;
    check("tag hit events vs hits", tag_hits, stats.tag_cache.hits)?;
    check("tag writeback events vs writebacks", tag_writebacks, stats.tag_cache.writebacks)?;
    check("dram read txns", dram_reads, stats.dram.read_transactions)?;
    check("dram write txns", dram_writes, stats.dram.write_transactions)?;
    check("dram tag txns", dram_tags, stats.dram.tag_transactions)?;
    check("scratch accesses", scratch_accesses, stats.scratch.accesses)?;
    check("scratch conflict cycles", scratch_conflicts, stats.scratch.conflict_cycles)?;
    check("stack-cache hits", stack_hits, stats.stack_cache_hits)?;
    check("csc_serialisation stall cycles", csc, stats.stalls.csc_serialisation)?;
    check("shared_vrf_conflict stall cycles", vrf, stats.stalls.shared_vrf_conflict)?;
    check("spill_fill stall cycles", spill, stats.stalls.spill_fill)?;
    check("cap_multi_flit stall cycles", flit, stats.stalls.cap_multi_flit)?;
    check("idle stall cycles", idle, stats.stalls.idle)?;
    check("trap events vs faults.traps", traps, stats.faults.traps)?;
    check(
        "trap lane popcounts vs faults.faulting_lanes",
        faulting_lanes,
        stats.faults.faulting_lanes,
    )?;
    check("suppressed trap events vs faults.suppressed", suppressed, stats.faults.suppressed)?;
    Ok(())
}

/// Serialise traced cells in suite order. The output is a pure function of
/// the cells, so it is byte-identical for every worker count.
pub fn export_runs(runs: &[TracedRun], format: TraceFormat) -> String {
    let cells: Vec<TraceCell> =
        runs.iter().map(|r| TraceCell { label: &r.label, events: &r.events }).collect();
    match format {
        TraceFormat::Chrome => to_chrome(&cells),
        TraceFormat::Jsonl => to_jsonl(&cells),
    }
}

/// One summary line per traced cell, for `repro trace`'s stderr progress.
pub fn trace_summary(runs: &[TracedRun]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in runs {
        let launches = r.events.iter().filter(|e| matches!(e, TraceEvent::Launch { .. })).count();
        let _ = writeln!(
            s,
            "{:<24} {:>9} events, {:>2} launch(es), {:>9} instrs, {:>9} cycles",
            r.label,
            r.events.len(),
            launches,
            r.stats.instrs,
            r.stats.cycles
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_simt::trace::validate::validate_auto;

    #[test]
    fn mode_names_round_trip() {
        for name in ["baseline", "naive", "purecap", "rust", "rustfull", "gpushield"] {
            let config = trace_config(name).unwrap();
            assert_eq!(mode_tag(config), name, "{name}");
        }
        assert!(trace_config("bogus").is_err());
        assert!("chrome".parse::<TraceFormat>().is_ok());
        assert!("csv".parse::<TraceFormat>().is_err());
    }

    #[test]
    fn resolves_case_insensitively() {
        assert_eq!(resolve_benches("vecadd").unwrap().len(), 1);
        assert_eq!(resolve_benches("VecAdd").unwrap().len(), 1);
        assert_eq!(resolve_benches("all").unwrap().len(), 14);
        assert!(resolve_benches("nope").is_err());
    }

    #[test]
    fn traced_vecadd_reconciles_and_validates() {
        let benches = resolve_benches("vecadd").unwrap();
        let runs =
            trace_suite(&benches, trace_config("purecap").unwrap(), Geometry::Small, 1).unwrap();
        assert_eq!(runs.len(), 1);
        assert!(runs[0].stats.instrs > 0);
        // `trace_suite` reconciled already; both exports must validate.
        let (fmt, s) = validate_auto(&export_runs(&runs, TraceFormat::Chrome)).unwrap();
        assert_eq!(fmt, "chrome");
        assert!(s.events > 0);
        let (fmt, _) = validate_auto(&export_runs(&runs, TraceFormat::Jsonl)).unwrap();
        assert_eq!(fmt, "jsonl");
    }
}
