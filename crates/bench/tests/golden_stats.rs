//! Golden-stats regression gate for the pipeline/Device refactor.
//!
//! The refactor's hard invariant is that a single-SM device is *the same
//! machine* as the pre-refactor monolithic `Sm`: with `--sms 1`, every suite
//! benchmark must produce bit-identical `KernelStats`. The constants below
//! were recorded from the pre-refactor model (commit `087d925`) at the quick
//! geometry across five representative configurations; this test re-runs the
//! full suite and compares field by field.
//!
//! The fingerprint covers every `KernelStats` field that existed before the
//! refactor (floats are compared by exact bit pattern). Fields added *by*
//! the refactor (cross-SM contention counters) are deliberately excluded:
//! they did not exist when the goldens were recorded, and the companion
//! assertions in `multi_sm.rs` pin them to zero at `sms = 1`.

use cheri_simt::KernelStats;
use nocl_suite::Scale;
use repro::{default_jobs, run_suite_parallel_on, Config, Geometry};

/// Render the pre-refactor field set of one run as a stable one-line string.
fn fingerprint(s: &KernelStats) -> String {
    let hist: Vec<String> = s.cheri_histogram.iter().map(|(k, v)| format!("{k}:{v}")).collect();
    format!(
        "cyc={} ins={} tins={} hist=[{}] \
         stall={},{},{},{},{} dram={},{},{},{} tag={},{},{} scr={},{} \
         drf={},{},{},{},{} mrf={},{},{},{},{} \
         avgd={:016x} avgm={:016x} pkd={} pkm={} capu={} capm={:#x} \
         sfu={} bar={} stk={}",
        s.cycles,
        s.instrs,
        s.thread_instrs,
        hist.join(","),
        s.stalls.csc_serialisation,
        s.stalls.shared_vrf_conflict,
        s.stalls.spill_fill,
        s.stalls.cap_multi_flit,
        s.stalls.idle,
        s.dram.read_transactions,
        s.dram.write_transactions,
        s.dram.tag_transactions,
        s.dram.busy_cycles,
        s.tag_cache.hits,
        s.tag_cache.misses,
        s.tag_cache.writebacks,
        s.scratch.accesses,
        s.scratch.conflict_cycles,
        s.data_rf.spills,
        s.data_rf.fills,
        s.data_rf.scalar_writes,
        s.data_rf.vector_writes,
        s.data_rf.peak_resident,
        s.meta_rf.spills,
        s.meta_rf.fills,
        s.meta_rf.scalar_writes,
        s.meta_rf.vector_writes,
        s.meta_rf.peak_resident,
        s.avg_data_vrf_resident.to_bits(),
        s.avg_meta_vrf_resident.to_bits(),
        s.peak_data_vrf_resident,
        s.peak_meta_vrf_resident,
        s.cap_regs_used,
        s.cap_regs_mask,
        s.sfu_requests,
        s.barriers,
        s.stack_cache_hits,
    )
}

const CONFIGS: &[(&str, Config)] = &[
    ("Base3", Config::Base { eighths: 3 }),
    ("CheriNaive", Config::CheriNaive),
    ("CheriOpt", Config::CheriOpt),
    ("RustChecked", Config::RustChecked),
    ("GpuShield", Config::GpuShield),
];

/// One-off harvest helper: prints the golden table in source form.
/// Run with `cargo test -p repro --test golden_stats -- --ignored --nocapture`.
#[test]
#[ignore = "harvest helper, not a regression test"]
fn print_golden() {
    for (tag, config) in CONFIGS {
        let (cfg, mode) = config.instantiate(Geometry::Small);
        let results = run_suite_parallel_on(default_jobs(), cfg, mode, Scale::Test, 1).unwrap();
        for (bench, stats) in &results {
            println!("    (\"{tag}\", \"{bench}\", \"{}\"),", fingerprint(stats));
        }
    }
}

/// Run the full golden comparison with the pre-decoded program ROM on or
/// off. The goldens were recorded from the decode-at-issue model, so the
/// predecode-on pass doubles as the ROM's bit-identity gate.
fn check_golden(predecode: bool) {
    assert!(!GOLDEN.is_empty(), "golden table not recorded");
    let mut idx = 0usize;
    for (tag, config) in CONFIGS {
        let (mut cfg, mode) = config.instantiate(Geometry::Small);
        cfg.predecode = predecode;
        let results = run_suite_parallel_on(default_jobs(), cfg, mode, Scale::Test, 1)
            .unwrap_or_else(|e| panic!("suite failed under {tag}: {e}"));
        assert_eq!(results.len(), 14, "{tag}: suite size");
        for (bench, stats) in &results {
            let (want_tag, want_bench, want_fp) = GOLDEN[idx];
            assert_eq!((*tag, *bench), (want_tag, want_bench), "golden table order");
            assert_eq!(
                fingerprint(stats),
                want_fp,
                "{tag}/{bench} (predecode={predecode}): \
                 KernelStats diverged from the pre-refactor model"
            );
            idx += 1;
        }
    }
    assert_eq!(idx, GOLDEN.len(), "golden table covered");
}

#[test]
fn suite_stats_match_pre_refactor_golden() {
    check_golden(true);
}

#[test]
fn suite_stats_match_golden_with_predecode_off() {
    check_golden(false);
}

/// `(config, benchmark, fingerprint)` recorded from the pre-refactor model.
#[rustfmt::skip]
const GOLDEN: &[(&str, &str, &str)] = &[
    ("Base3", "VecAdd", "cyc=21468 ins=5100 tins=40800 hist=[] stall=0,0,0,0,16368 dram=548,250,0,1596 tag=0,0,0 scr=0,0 drf=0,0,2840,750,17 mrf=0,0,0,0,0 avgd=40207fb2e6194c80 avgm=0000000000000000 pkd=17 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("Base3", "Histogram", "cyc=16975 ins=5408 tins=43264 hist=[] stall=0,0,0,0,11567 dram=552,32,0,1168 tag=0,0,0 scr=576,785 drf=0,0,2032,1568,20 mrf=0,0,0,0,0 avgd=402bfe030792ef56 avgm=0000000000000000 pkd=20 pkm=0 capu=0 capm=0x0 sfu=0 bar=24 stk=0"),
    ("Base3", "Reduce", "cyc=37822 ins=18504 tins=141600 hist=[] stall=0,0,0,0,19318 dram=415,32,0,894 tag=0,0,0 scr=1248,0 drf=0,0,6972,2222,20 mrf=0,0,0,0,0 avgd=4028d274a7c9fd1f avgm=0000000000000000 pkd=20 pkm=0 capu=0 capm=0x0 sfu=0 bar=2048 stk=0"),
    ("Base3", "Scan", "cyc=8412 ins=5856 tins=45664 hist=[] stall=0,0,0,0,2556 dram=64,32,0,192 tag=0,0,0 scr=636,0 drf=0,0,3702,778,27 mrf=0,0,0,0,0 avgd=401ff4fbcda3ac11 avgm=0000000000000000 pkd=27 pkm=0 capu=0 capm=0x0 sfu=0 bar=256 stk=0"),
    ("Base3", "Transpose", "cyc=12934 ins=5264 tins=42112 hist=[] stall=0,0,0,0,7670 dram=168,128,0,592 tag=0,0,0 scr=256,0 drf=0,0,3968,512,24 mrf=0,0,0,0,0 avgd=40238f770d3a5bd1 avgm=0000000000000000 pkd=24 pkm=0 capu=0 capm=0x0 sfu=0 bar=256 stk=0"),
    ("Base3", "MatVecMul", "cyc=22577 ins=5248 tins=41984 hist=[] stall=0,0,0,0,17329 dram=3512,8,0,7040 tag=0,0,0 scr=0,0 drf=0,0,1720,2688,48 mrf=0,0,0,0,0 avgd=4040d08f9c18f9c2 avgm=0000000000000000 pkd=48 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("Base3", "MatMul", "cyc=16573 ins=11488 tins=91904 hist=[] stall=0,0,0,0,5085 dram=176,32,0,416 tag=0,0,0 scr=1152,0 drf=0,0,8176,1664,24 mrf=0,0,0,0,0 avgd=4027f542514adfe9 avgm=0000000000000000 pkd=24 pkm=0 capu=0 capm=0x0 sfu=0 bar=160 stk=0"),
    ("Base3", "BitonicSm", "cyc=55771 ins=51482 tins=295192 hist=[] stall=0,0,0,0,4289 dram=96,64,0,320 tag=0,0,0 scr=5766,0 drf=0,0,13887,23493,64 mrf=0,0,0,0,0 avgd=4045a457a326c1ac avgm=0000000000000000 pkd=64 pkm=0 capu=0 capm=0x0 sfu=0 bar=960 stk=0"),
    ("Base3", "BitonicLa", "cyc=750470 ins=201506 tins=1259758 hist=[] stall=0,0,0,0,548964 dram=13136,8966,0,44204 tag=0,0,0 scr=0,0 drf=0,0,69798,74374,64 mrf=0,0,0,0,0 avgd=40413a3665f558d1 avgm=0000000000000000 pkd=64 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("Base3", "SPMV", "cyc=34254 ins=5694 tins=26862 hist=[] stall=0,0,0,0,28560 dram=3067,32,0,6198 tag=0,0,0 scr=0,0 drf=0,0,560,4204,72 mrf=0,0,0,0,0 avgd=40506517780aca51 avgm=0000000000000000 pkd=72 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("Base3", "BlkStencil", "cyc=4390 ins=1220 tins=9540 hist=[] stall=0,0,0,0,3170 dram=88,32,0,240 tag=0,0,0 scr=128,0 drf=0,0,704,236,30 mrf=0,0,0,0,0 avgd=40247806b6fa1fe5 avgm=0000000000000000 pkd=30 pkm=0 capu=0 capm=0x0 sfu=0 bar=64 stk=0"),
    ("Base3", "StrStencil", "cyc=28454 ins=6592 tins=52736 hist=[] stall=0,0,0,0,21862 dram=1040,250,0,2580 tag=0,0,0 scr=0,0 drf=0,0,3832,1250,17 mrf=0,0,0,0,0 avgd=4023d965e7254814 avgm=0000000000000000 pkd=17 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("Base3", "VecGCD", "cyc=10684 ins=6342 tins=40771 hist=[] stall=0,0,0,0,4342 dram=176,64,0,480 tag=0,0,0 scr=0,0 drf=0,0,933,2965,24 mrf=0,0,0,0,0 avgd=40314de7f12537a0 avgm=0000000000000000 pkd=24 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("Base3", "MotionEst", "cyc=279633 ins=29184 tins=229863 hist=[] stall=0,0,0,0,250449 dram=10516,514,0,22060 tag=0,0,0 scr=0,0 drf=0,0,3926,21892,32 mrf=0,0,0,0,0 avgd=403f62f9435e50d8 avgm=0000000000000000 pkd=32 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("CheriNaive", "VecAdd", "cyc=21588 ins=5100 tins=40800 hist=[CIncOffset:750,CJAL:498,CLC:24,CLW:524,CSW:250,CSpecialRW:8] stall=0,0,0,24,16464 dram=548,250,13,1622 tag=785,13,0 scr=0,0 drf=0,0,2840,750,17 mrf=0,0,3590,0,0 avgd=4020334ce68019b3 avgm=0000000000000000 pkd=17 pkm=0 capu=6 capm=0xa8000700 sfu=0 bar=0 stk=0"),
    ("CheriNaive", "Histogram", "cyc=16990 ins=5416 tins=43328 hist=[CAMO:512,CIncOffset:1128,CIncOffsetImm:8,CJAL:584,CLBU:512,CLC:16,CLW:56,CSW:64,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,11558 dram=552,32,4,1176 tag=580,4,0 scr=576,785 drf=0,0,2040,1568,24 mrf=0,0,3608,0,0 avgd=4033632abaccf385 avgm=0000000000000000 pkd=24 pkm=0 capu=6 capm=0x70000700 sfu=0 bar=24 stk=0"),
    ("CheriNaive", "Reduce", "cyc=37843 ins=18512 tins=141664 hist=[CAMO:32,CIncOffset:1599,CIncOffsetImm:8,CJAL:2167,CLC:16,CLW:1071,CSW:576,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,19315 dram=415,32,7,908 tag=440,7,0 scr=1248,0 drf=0,0,7076,2126,22 mrf=0,0,9202,0,0 avgd=402eea74623d82c4 avgm=0000000000000000 pkd=22 pkm=0 capu=6 capm=0xe0000700 sfu=0 bar=2048 stk=0"),
    ("CheriNaive", "Scan", "cyc=8422 ins=5864 tins=45728 hist=[CIncOffset:708,CIncOffsetImm:8,CJAL:388,CLC:16,CLW:448,CSW:268,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,2542 dram=64,32,2,196 tag=94,2,0 scr=636,0 drf=0,0,3707,781,28 mrf=0,0,4488,0,0 avgd=4021ad3a531f154e avgm=0000000000000000 pkd=28 pkm=0 capu=6 capm=0xb0000380 sfu=0 bar=256 stk=0"),
    ("CheriNaive", "Transpose", "cyc=12950 ins=5272 tins=42176 hist=[CIncOffset:520,CIncOffsetImm:8,CJAL:128,CLC:16,CLW:280,CSW:256,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,7662 dram=168,128,5,602 tag=291,5,0 scr=256,0 drf=0,0,3976,512,24 mrf=0,0,4488,0,0 avgd=40293901f13cfd48 avgm=0000000000000000 pkd=24 pkm=0 capu=6 capm=0x38000700 sfu=0 bar=256 stk=0"),
    ("CheriNaive", "MatVecMul", "cyc=22591 ins=5248 tins=41984 hist=[CIncOffset:776,CJAL:400,CLC:24,CLW:800,CSW:8,CSpecialRW:8] stall=0,0,0,24,17319 dram=3512,8,8,7056 tag=3512,8,0 scr=0,0 drf=0,0,1720,2688,48 mrf=0,0,4408,0,0 avgd=4042d69c18f9c190 avgm=0000000000000000 pkd=48 pkm=0 capu=7 capm=0x78000e00 sfu=0 bar=0 stk=0"),
    ("CheriNaive", "MatMul", "cyc=16594 ins=11504 tins=92032 hist=[CIncOffset:1320,CIncOffsetImm:16,CJAL:608,CLC:24,CLW:1176,CSW:160,CSetBoundsImm:16,CSpecialRW:16] stall=0,0,0,24,5066 dram=176,32,3,422 tag=205,3,0 scr=1152,0 drf=0,0,8192,1664,24 mrf=0,0,9856,0,0 avgd=4029205b2618ec6b avgm=0000000000000000 pkd=24 pkm=0 capu=10 capm=0xbc001f00 sfu=0 bar=160 stk=0"),
    ("CheriNaive", "BitonicSm", "cyc=55782 ins=51490 tins=295256 hist=[CIncOffset:5902,CIncOffsetImm:8,CJAL:2944,CLC:16,CLW:3088,CSW:2822,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,4276 dram=96,64,3,326 tag=157,3,0 scr=5766,0 drf=0,0,14186,23202,72 mrf=0,0,37388,0,0 avgd=4048ba64eda766de avgm=0000000000000000 pkd=72 pkm=0 capu=6 capm=0xa8000380 sfu=0 bar=960 stk=0"),
    ("CheriNaive", "BitonicLa", "cyc=750414 ins=201506 tins=1259758 hist=[CIncOffset:19462,CJAL:14080,CLC:440,CLW:12696,CSW:8966,CSpecialRW:440] stall=0,0,0,440,548468 dram=13136,8966,165,44534 tag=21937,165,0 scr=0,0 drf=0,0,70685,73487,72 mrf=0,0,123852,20320,16 avgd=4043757e3ed37ed9 avgm=402071ba1e097bea pkd=72 pkm=16 capu=3 capm=0x60000400 sfu=0 bar=0 stk=0"),
    ("CheriNaive", "SPMV", "cyc=34241 ins=5694 tins=26862 hist=[CIncOffset:1131,CJAL:409,CLC:40,CLW:1123,CSW:32,CSpecialRW:8] stall=0,0,0,40,28507 dram=3067,32,8,6214 tag=3091,8,0 scr=0,0 drf=0,0,560,4204,88 mrf=0,0,4242,522,20 avgd=40543ecc1dda69ed avgm=4018bb924c6e6bb9 pkd=88 pkm=20 capu=11 capm=0xf3001f00 sfu=0 bar=0 stk=0"),
    ("CheriNaive", "BlkStencil", "cyc=4403 ins=1228 tins=9604 hist=[CIncOffset:208,CIncOffsetImm:8,CJAL:40,CLC:16,CLW:144,CSW:64,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,3159 dram=88,32,3,246 tag=117,3,0 scr=128,0 drf=0,0,712,236,32 mrf=0,0,932,16,2 avgd=402aaaf1d2f87ec0 avgm=3ff93633b3488c17 pkd=32 pkm=2 capu=8 capm=0xb0001b80 sfu=0 bar=64 stk=0"),
    ("CheriNaive", "StrStencil", "cyc=28331 ins=6592 tins=52736 hist=[CIncOffset:1000,CJAL:498,CLC:16,CLW:774,CSW:250,CSpecialRW:8] stall=0,0,0,16,21723 dram=1040,250,9,2598 tag=1281,9,0 scr=0,0 drf=0,0,3832,1250,18 mrf=0,0,5082,0,0 avgd=4023d7ec1dd3431b avgm=0000000000000000 pkd=18 pkm=0 capu=5 capm=0xb0000300 sfu=0 bar=0 stk=0"),
    ("CheriNaive", "VecGCD", "cyc=10722 ins=6342 tins=40771 hist=[CIncOffset:192,CJAL:1118,CLC:24,CLW:152,CSW:64,CSpecialRW:8] stall=0,0,0,24,4356 dram=176,64,4,488 tag=236,4,0 scr=0,0 drf=0,0,933,2965,24 mrf=0,0,3898,0,0 avgd=40318d521aa43548 avgm=0000000000000000 pkd=24 pkm=0 capu=6 capm=0xe0000700 sfu=0 bar=0 stk=0"),
    ("CheriNaive", "MotionEst", "cyc=279651 ins=29200 tins=229991 hist=[CIncOffset:1602,CJAL:1094,CLBU:1600,CLC:24,CLW:902,CSW:66,CSetAddr:8,CSpecialRW:16] stall=0,0,0,24,250427 dram=10516,514,18,22096 tag=11012,18,0 scr=0,0 drf=0,0,3934,21900,40 mrf=0,0,25834,0,0 avgd=4043a54a7c4861a1 avgm=0000000000000000 pkd=40 pkm=0 capu=7 capm=0x34000e04 sfu=0 bar=0 stk=0"),
    ("CheriOpt", "VecAdd", "cyc=21588 ins=5100 tins=40800 hist=[CIncOffset:750,CJAL:498,CLC:24,CLW:524,CSW:250,CSpecialRW:8] stall=0,0,0,24,16464 dram=548,250,13,1622 tag=785,13,0 scr=0,0 drf=0,0,2840,750,17 mrf=0,0,3590,0,0 avgd=4020334ce68019b3 avgm=0000000000000000 pkd=17 pkm=0 capu=6 capm=0xa8000700 sfu=0 bar=0 stk=0"),
    ("CheriOpt", "Histogram", "cyc=16990 ins=5416 tins=43328 hist=[CAMO:512,CIncOffset:1128,CIncOffsetImm:8,CJAL:584,CLBU:512,CLC:16,CLW:56,CSW:64,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,11558 dram=552,32,4,1176 tag=580,4,0 scr=576,785 drf=0,0,2040,1568,24 mrf=0,0,3608,0,0 avgd=4033632abaccf385 avgm=0000000000000000 pkd=24 pkm=0 capu=6 capm=0x70000700 sfu=8 bar=24 stk=0"),
    ("CheriOpt", "Reduce", "cyc=37829 ins=18512 tins=141664 hist=[CAMO:32,CIncOffset:1599,CIncOffsetImm:8,CJAL:2167,CLC:16,CLW:1071,CSW:576,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,19301 dram=415,32,7,908 tag=440,7,0 scr=1248,0 drf=0,0,7076,2126,22 mrf=0,0,9202,0,0 avgd=402eed232e3e6557 avgm=0000000000000000 pkd=22 pkm=0 capu=6 capm=0xe0000700 sfu=8 bar=2048 stk=0"),
    ("CheriOpt", "Scan", "cyc=8420 ins=5864 tins=45728 hist=[CIncOffset:708,CIncOffsetImm:8,CJAL:388,CLC:16,CLW:448,CSW:268,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,2540 dram=64,32,2,196 tag=94,2,0 scr=636,0 drf=0,0,3707,781,28 mrf=0,0,4488,0,0 avgd=4021b13e840430e5 avgm=0000000000000000 pkd=28 pkm=0 capu=6 capm=0xb0000380 sfu=8 bar=256 stk=0"),
    ("CheriOpt", "Transpose", "cyc=12941 ins=5272 tins=42176 hist=[CIncOffset:520,CIncOffsetImm:8,CJAL:128,CLC:16,CLW:280,CSW:256,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,7653 dram=168,128,5,602 tag=291,5,0 scr=256,0 drf=0,0,3976,512,24 mrf=0,0,4488,0,0 avgd=40293dab5069a9c3 avgm=0000000000000000 pkd=24 pkm=0 capu=6 capm=0x38000700 sfu=8 bar=256 stk=0"),
    ("CheriOpt", "MatVecMul", "cyc=22591 ins=5248 tins=41984 hist=[CIncOffset:776,CJAL:400,CLC:24,CLW:800,CSW:8,CSpecialRW:8] stall=0,0,0,24,17319 dram=3512,8,8,7056 tag=3512,8,0 scr=0,0 drf=0,0,1720,2688,48 mrf=0,0,4408,0,0 avgd=4042d69c18f9c190 avgm=0000000000000000 pkd=48 pkm=0 capu=7 capm=0x78000e00 sfu=0 bar=0 stk=0"),
    ("CheriOpt", "MatMul", "cyc=16581 ins=11504 tins=92032 hist=[CIncOffset:1320,CIncOffsetImm:16,CJAL:608,CLC:24,CLW:1176,CSW:160,CSetBoundsImm:16,CSpecialRW:16] stall=0,0,0,24,5053 dram=176,32,3,422 tag=205,3,0 scr=1152,0 drf=0,0,8192,1664,24 mrf=0,0,9856,0,0 avgd=402923122896f719 avgm=0000000000000000 pkd=24 pkm=0 capu=10 capm=0xbc001f00 sfu=16 bar=160 stk=0"),
    ("CheriOpt", "BitonicSm", "cyc=55773 ins=51490 tins=295256 hist=[CIncOffset:5902,CIncOffsetImm:8,CJAL:2944,CLC:16,CLW:3088,CSW:2822,CSetBoundsImm:8,CSpecialRW:16] stall=0,0,0,16,4267 dram=96,64,3,326 tag=157,3,0 scr=5766,0 drf=0,0,14186,23202,72 mrf=0,0,37388,0,0 avgd=4048ba7fa82d6c38 avgm=0000000000000000 pkd=72 pkm=0 capu=6 capm=0xa8000380 sfu=8 bar=960 stk=0"),
    ("CheriOpt", "BitonicLa", "cyc=750414 ins=201506 tins=1259758 hist=[CIncOffset:19462,CJAL:14080,CLC:440,CLW:12696,CSW:8966,CSpecialRW:440] stall=0,0,0,440,548468 dram=13136,8966,165,44534 tag=21937,165,0 scr=0,0 drf=0,0,70685,73487,72 mrf=0,0,144172,0,0 avgd=4043757e3ed37ed9 avgm=0000000000000000 pkd=72 pkm=0 capu=3 capm=0x60000400 sfu=0 bar=0 stk=0"),
    ("CheriOpt", "SPMV", "cyc=34241 ins=5694 tins=26862 hist=[CIncOffset:1131,CJAL:409,CLC:40,CLW:1123,CSW:32,CSpecialRW:8] stall=0,0,0,40,28507 dram=3067,32,8,6214 tag=3091,8,0 scr=0,0 drf=0,0,560,4204,88 mrf=0,0,4764,0,0 avgd=40543ecc1dda69ed avgm=0000000000000000 pkd=88 pkm=0 capu=11 capm=0xf3001f00 sfu=0 bar=0 stk=0"),
    ("CheriOpt", "BlkStencil", "cyc=4405 ins=1228 tins=9604 hist=[CIncOffset:208,CIncOffsetImm:8,CJAL:40,CLC:16,CLW:144,CSW:64,CSetBoundsImm:8,CSpecialRW:16] stall=0,8,0,16,3153 dram=88,32,3,246 tag=117,3,0 scr=128,0 drf=0,0,712,236,32 mrf=0,0,934,14,2 avgd=402abe1faff2a871 avgm=3ff860bac9cc4cb7 pkd=32 pkm=2 capu=8 capm=0xb0001b80 sfu=8 bar=64 stk=0"),
    ("CheriOpt", "StrStencil", "cyc=28331 ins=6592 tins=52736 hist=[CIncOffset:1000,CJAL:498,CLC:16,CLW:774,CSW:250,CSpecialRW:8] stall=0,0,0,16,21723 dram=1040,250,9,2598 tag=1281,9,0 scr=0,0 drf=0,0,3832,1250,18 mrf=0,0,5082,0,0 avgd=4023d7ec1dd3431b avgm=0000000000000000 pkd=18 pkm=0 capu=5 capm=0xb0000300 sfu=0 bar=0 stk=0"),
    ("CheriOpt", "VecGCD", "cyc=10722 ins=6342 tins=40771 hist=[CIncOffset:192,CJAL:1118,CLC:24,CLW:152,CSW:64,CSpecialRW:8] stall=0,0,0,24,4356 dram=176,64,4,488 tag=236,4,0 scr=0,0 drf=0,0,933,2965,24 mrf=0,0,3898,0,0 avgd=40318d521aa43548 avgm=0000000000000000 pkd=24 pkm=0 capu=6 capm=0xe0000700 sfu=0 bar=0 stk=0"),
    ("CheriOpt", "MotionEst", "cyc=279651 ins=29200 tins=229991 hist=[CIncOffset:1602,CJAL:1094,CLBU:1600,CLC:24,CLW:902,CSW:66,CSetAddr:8,CSpecialRW:16] stall=0,0,0,24,250427 dram=10516,514,18,22096 tag=11012,18,0 scr=0,0 drf=0,0,3934,21900,40 mrf=0,0,25834,0,0 avgd=4043a54a7c4861a1 avgm=0000000000000000 pkd=40 pkm=0 capu=7 capm=0x34000e04 sfu=0 bar=0 stk=0"),
    ("RustChecked", "VecAdd", "cyc=22435 ins=6624 tins=52992 hist=[] stall=0,0,0,0,15811 dram=572,250,0,1644 tag=0,0,0 scr=0,0 drf=0,0,3614,750,18 mrf=0,0,0,0,0 avgd=4027bae6076b981e avgm=0000000000000000 pkd=18 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("RustChecked", "Histogram", "cyc=18035 ins=7664 tins=61312 hist=[] stall=0,0,0,0,10371 dram=568,32,0,1200 tag=0,0,0 scr=576,785 drf=0,0,3168,1568,14 mrf=0,0,0,0,0 avgd=401c8b7d98513c64 avgm=0000000000000000 pkd=14 pkm=0 capu=0 capm=0x0 sfu=0 bar=24 stk=0"),
    ("RustChecked", "Reduce", "cyc=41533 ins=21830 tins=164048 hist=[] stall=0,0,0,0,19703 dram=431,32,0,926 tag=0,0,0 scr=1248,0 drf=0,0,8195,2702,22 mrf=0,0,0,0,0 avgd=402e3a4277f18d67 avgm=0000000000000000 pkd=22 pkm=0 capu=0 capm=0x0 sfu=0 bar=2048 stk=0"),
    ("RustChecked", "Scan", "cyc=10213 ins=7272 tins=56552 hist=[] stall=0,0,0,0,2941 dram=80,32,0,224 tag=0,0,0 scr=636,0 drf=0,0,4336,860,27 mrf=0,0,0,0,0 avgd=40212ec012063221 avgm=0000000000000000 pkd=27 pkm=0 capu=0 capm=0x0 sfu=0 bar=256 stk=0"),
    ("RustChecked", "Transpose", "cyc=14361 ins=6304 tins=50432 hist=[] stall=0,0,0,0,8057 dram=184,128,0,624 tag=0,0,0 scr=256,0 drf=0,0,4496,512,16 mrf=0,0,0,0,0 avgd=4021eacd51de3694 avgm=0000000000000000 pkd=16 pkm=0 capu=0 capm=0x0 sfu=0 bar=256 stk=0"),
    ("RustChecked", "MatVecMul", "cyc=23394 ins=6824 tins=54592 hist=[] stall=0,0,0,0,16570 dram=3536,8,0,7088 tag=0,0,0 scr=0,0 drf=0,0,2520,2688,40 mrf=0,0,0,0,0 avgd=403e5858d5aef7e6 avgm=0000000000000000 pkd=40 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("RustChecked", "MatMul", "cyc=19779 ins=14136 tins=113088 hist=[] stall=0,0,0,0,5643 dram=200,32,0,464 tag=0,0,0 scr=1152,0 drf=0,0,9512,1664,24 mrf=0,0,0,0,0 avgd=402670adda9f138f avgm=0000000000000000 pkd=24 pkm=0 capu=0 capm=0x0 sfu=0 bar=160 stk=0"),
    ("RustChecked", "BitonicSm", "cyc=68015 ins=63286 tins=342568 hist=[] stall=0,0,0,0,4729 dram=112,64,0,352 tag=0,0,0 scr=5766,0 drf=0,0,15064,28226,64 mrf=0,0,0,0,0 avgd=4045b2c3abc3a58d avgm=0000000000000000 pkd=64 pkm=0 capu=0 capm=0x0 sfu=0 bar=960 stk=0"),
    ("RustChecked", "BitonicLa", "cyc=771550 ins=240870 tins=1431970 hist=[] stall=0,0,0,0,530680 dram=13576,8966,0,45084 tag=0,0,0 scr=0,0 drf=0,0,74911,89163,64 mrf=0,0,0,0,0 avgd=4041643b51532e1e avgm=0000000000000000 pkd=64 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("RustChecked", "SPMV", "cyc=35950 ins=7996 tins=37268 hist=[] stall=0,0,0,0,27954 dram=3107,32,0,6278 tag=0,0,0 scr=0,0 drf=0,0,789,5146,64 mrf=0,0,0,0,0 avgd=404d59054028fb01 avgm=0000000000000000 pkd=64 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("RustChecked", "BlkStencil", "cyc=5371 ins=1884 tins=14780 hist=[] stall=0,0,0,0,3487 dram=104,32,0,272 tag=0,0,0 scr=128,0 drf=0,0,1144,268,28 mrf=0,0,0,0,0 avgd=402846ee104e447c avgm=0000000000000000 pkd=28 pkm=0 capu=0 capm=0x0 sfu=0 bar=64 stk=0"),
    ("RustChecked", "StrStencil", "cyc=29026 ins=8608 tins=68864 hist=[] stall=0,0,0,0,20418 dram=1056,250,0,2612 tag=0,0,0 scr=0,0 drf=0,0,4848,1250,17 mrf=0,0,0,0,0 avgd=4029f2611214efd2 avgm=0000000000000000 pkd=17 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("RustChecked", "VecGCD", "cyc=11479 ins=6750 tins=44035 hist=[] stall=0,0,0,0,4729 dram=200,64,0,528 tag=0,0,0 scr=0,0 drf=0,0,1149,2965,24 mrf=0,0,0,0,0 avgd=4030fb5f7f5af245 avgm=0000000000000000 pkd=24 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("RustChecked", "MotionEst", "cyc=575347 ins=35106 tins=277239 hist=[] stall=0,0,0,0,540241 dram=31596,1106,0,65404 tag=0,0,0 scr=0,0 drf=0,0,7372,22692,30 mrf=0,0,0,0,0 avgd=403cadd6b9e48d5a avgm=0000000000000000 pkd=30 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("GpuShield", "VecAdd", "cyc=21468 ins=5100 tins=40800 hist=[] stall=0,0,0,0,16368 dram=548,250,0,1596 tag=0,0,0 scr=0,0 drf=0,0,2840,750,17 mrf=0,0,0,0,0 avgd=40207fb2e6194c80 avgm=0000000000000000 pkd=17 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("GpuShield", "Histogram", "cyc=16975 ins=5408 tins=43264 hist=[] stall=0,0,0,0,11567 dram=552,32,0,1168 tag=0,0,0 scr=576,785 drf=0,0,2032,1568,20 mrf=0,0,0,0,0 avgd=402bfe030792ef56 avgm=0000000000000000 pkd=20 pkm=0 capu=0 capm=0x0 sfu=0 bar=24 stk=0"),
    ("GpuShield", "Reduce", "cyc=37822 ins=18504 tins=141600 hist=[] stall=0,0,0,0,19318 dram=415,32,0,894 tag=0,0,0 scr=1248,0 drf=0,0,6972,2222,20 mrf=0,0,0,0,0 avgd=4028d274a7c9fd1f avgm=0000000000000000 pkd=20 pkm=0 capu=0 capm=0x0 sfu=0 bar=2048 stk=0"),
    ("GpuShield", "Scan", "cyc=8412 ins=5856 tins=45664 hist=[] stall=0,0,0,0,2556 dram=64,32,0,192 tag=0,0,0 scr=636,0 drf=0,0,3702,778,27 mrf=0,0,0,0,0 avgd=401ff4fbcda3ac11 avgm=0000000000000000 pkd=27 pkm=0 capu=0 capm=0x0 sfu=0 bar=256 stk=0"),
    ("GpuShield", "Transpose", "cyc=12934 ins=5264 tins=42112 hist=[] stall=0,0,0,0,7670 dram=168,128,0,592 tag=0,0,0 scr=256,0 drf=0,0,3968,512,24 mrf=0,0,0,0,0 avgd=40238f770d3a5bd1 avgm=0000000000000000 pkd=24 pkm=0 capu=0 capm=0x0 sfu=0 bar=256 stk=0"),
    ("GpuShield", "MatVecMul", "cyc=22577 ins=5248 tins=41984 hist=[] stall=0,0,0,0,17329 dram=3512,8,0,7040 tag=0,0,0 scr=0,0 drf=0,0,1720,2688,48 mrf=0,0,0,0,0 avgd=4040d08f9c18f9c2 avgm=0000000000000000 pkd=48 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("GpuShield", "MatMul", "cyc=16573 ins=11488 tins=91904 hist=[] stall=0,0,0,0,5085 dram=176,32,0,416 tag=0,0,0 scr=1152,0 drf=0,0,8176,1664,24 mrf=0,0,0,0,0 avgd=4027f542514adfe9 avgm=0000000000000000 pkd=24 pkm=0 capu=0 capm=0x0 sfu=0 bar=160 stk=0"),
    ("GpuShield", "BitonicSm", "cyc=55771 ins=51482 tins=295192 hist=[] stall=0,0,0,0,4289 dram=96,64,0,320 tag=0,0,0 scr=5766,0 drf=0,0,13887,23493,64 mrf=0,0,0,0,0 avgd=4045a457a326c1ac avgm=0000000000000000 pkd=64 pkm=0 capu=0 capm=0x0 sfu=0 bar=960 stk=0"),
    ("GpuShield", "BitonicLa", "cyc=750470 ins=201506 tins=1259758 hist=[] stall=0,0,0,0,548964 dram=13136,8966,0,44204 tag=0,0,0 scr=0,0 drf=0,0,69798,74374,64 mrf=0,0,0,0,0 avgd=40413a3665f558d1 avgm=0000000000000000 pkd=64 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("GpuShield", "SPMV", "cyc=34254 ins=5694 tins=26862 hist=[] stall=0,0,0,0,28560 dram=3067,32,0,6198 tag=0,0,0 scr=0,0 drf=0,0,560,4204,72 mrf=0,0,0,0,0 avgd=40506517780aca51 avgm=0000000000000000 pkd=72 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("GpuShield", "BlkStencil", "cyc=4390 ins=1220 tins=9540 hist=[] stall=0,0,0,0,3170 dram=88,32,0,240 tag=0,0,0 scr=128,0 drf=0,0,704,236,30 mrf=0,0,0,0,0 avgd=40247806b6fa1fe5 avgm=0000000000000000 pkd=30 pkm=0 capu=0 capm=0x0 sfu=0 bar=64 stk=0"),
    ("GpuShield", "StrStencil", "cyc=28454 ins=6592 tins=52736 hist=[] stall=0,0,0,0,21862 dram=1040,250,0,2580 tag=0,0,0 scr=0,0 drf=0,0,3832,1250,17 mrf=0,0,0,0,0 avgd=4023d965e7254814 avgm=0000000000000000 pkd=17 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("GpuShield", "VecGCD", "cyc=10684 ins=6342 tins=40771 hist=[] stall=0,0,0,0,4342 dram=176,64,0,480 tag=0,0,0 scr=0,0 drf=0,0,933,2965,24 mrf=0,0,0,0,0 avgd=40314de7f12537a0 avgm=0000000000000000 pkd=24 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
    ("GpuShield", "MotionEst", "cyc=279633 ins=29184 tins=229863 hist=[] stall=0,0,0,0,250449 dram=10516,514,0,22060 tag=0,0,0 scr=0,0 drf=0,0,3926,21892,32 mrf=0,0,0,0,0 avgd=403f62f9435e50d8 avgm=0000000000000000 pkd=32 pkm=0 capu=0 capm=0x0 sfu=0 bar=0 stk=0"),
];
