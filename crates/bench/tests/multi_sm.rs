//! Multi-SM smoke tests (ISSUE 3 acceptance): at `--sms 2` and `--sms 4`
//! every suite benchmark still passes its self-check, a multi-block
//! benchmark is no slower than on a single SM, and the shared DRAM /
//! tag-cache contention counters actually move — while at `--sms 1` they
//! are provably zero.

use cheri_simt::KernelStats;
use nocl_suite::Scale;
use repro::{
    default_jobs, export_runs, resolve_benches, run_suite_parallel_on, trace_suite_on, Config,
    Geometry, TraceFormat,
};

fn suite_at(config: Config, sms: u32) -> Vec<(&'static str, KernelStats)> {
    let (cfg, mode) = config.instantiate(Geometry::Small);
    run_suite_parallel_on(default_jobs(), cfg, mode, Scale::Test, sms)
        .unwrap_or_else(|e| panic!("suite failed at sms={sms}: {e}"))
}

fn cycles_of(results: &[(&'static str, KernelStats)], name: &str) -> u64 {
    results.iter().find(|(n, _)| *n == name).map(|(_, s)| s.cycles).unwrap()
}

#[test]
fn single_sm_has_no_cross_sm_contention() {
    for (name, s) in suite_at(Config::Base { eighths: 3 }, 1) {
        assert_eq!(s.dram.cross_sm_switches, 0, "{name}");
        assert_eq!(s.dram.cross_sm_wait_cycles, 0, "{name}");
        assert_eq!(s.tag_cache.cross_sm_switches, 0, "{name}");
        assert_eq!(s.tag_cache.cross_sm_conflict_evictions, 0, "{name}");
    }
}

#[test]
fn two_sms_pass_self_checks_and_contend() {
    let one = suite_at(Config::Base { eighths: 3 }, 1);
    let two = suite_at(Config::Base { eighths: 3 }, 2);
    assert_eq!(two.len(), 14, "whole suite ran");
    // VecAdd launches a multi-block grid: splitting it over two SMs must
    // not make the device slower than one SM running everything.
    assert!(
        cycles_of(&two, "VecAdd") <= cycles_of(&one, "VecAdd"),
        "2-SM VecAdd ({}) slower than 1-SM ({})",
        cycles_of(&two, "VecAdd"),
        cycles_of(&one, "VecAdd")
    );
    // Both SMs drive the one DRAM channel, so ownership switches happen.
    let vecadd = two.iter().find(|(n, _)| *n == "VecAdd").map(|(_, s)| s).unwrap();
    assert!(vecadd.dram.cross_sm_switches > 0, "shared channel saw both SMs");
}

#[test]
fn multi_sm_trace_reconciles_with_one_process_per_sm() {
    use cheri_simt::trace::validate::validate_auto;

    let benches = resolve_benches("vecadd").unwrap();
    // `trace_suite_on` reconciles the concatenated per-SM streams against
    // the combined device statistics before returning.
    let runs = trace_suite_on(&benches, Config::CheriOpt, Geometry::Small, 1, 2).unwrap();
    assert_eq!(runs.len(), 2, "one traced cell per SM");
    assert!(runs[0].label.ends_with("· sm0"), "{}", runs[0].label);
    assert!(runs[1].label.ends_with("· sm1"), "{}", runs[1].label);
    assert!(runs.iter().all(|r| !r.events.is_empty()), "both SMs emitted events");
    let (fmt, s) = validate_auto(&export_runs(&runs, TraceFormat::Chrome)).unwrap();
    assert_eq!(fmt, "chrome");
    assert_eq!(s.processes, 2, "one Perfetto process per SM");
}

#[test]
fn four_sms_purecap_passes_and_contends_for_tags() {
    let four = suite_at(Config::CheriOpt, 4);
    assert_eq!(four.len(), 14, "whole suite ran");
    // Pure-capability kernels hit the tag controller on every DRAM access;
    // with four SMs behind one tag cache, ownership must change hands on
    // at least one multi-block kernel.
    let switches: u64 = four.iter().map(|(_, s)| s.tag_cache.cross_sm_switches).sum();
    assert!(switches > 0, "tag cache never changed hands across 4 SMs");
    let dram_switches: u64 = four.iter().map(|(_, s)| s.dram.cross_sm_switches).sum();
    assert!(dram_switches > 0, "DRAM channel never changed hands across 4 SMs");
}
