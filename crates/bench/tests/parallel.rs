//! The parallel runner's contract: bit-identical results at every worker
//! count, and per-cell failure isolation.

use nocl_suite::Scale;
use repro::{run_indexed, run_suite_parallel, Config, Geometry};

/// `--jobs 1`, `--jobs 4` and `--jobs 8` produce identical `SuiteResults`
/// — every `KernelStats` field, including histograms and stall
/// breakdowns, compared structurally.
#[test]
fn suite_results_identical_across_worker_counts() {
    for config in [Config::Base { eighths: 3 }, Config::CheriOpt] {
        let (cfg, mode) = config.instantiate(Geometry::Small);
        let serial = run_suite_parallel(1, cfg, mode, Scale::Test).expect("serial suite");
        assert_eq!(serial.len(), 14);
        for jobs in [4usize, 8] {
            let parallel = run_suite_parallel(jobs, cfg, mode, Scale::Test)
                .unwrap_or_else(|e| panic!("{config:?} with {jobs} jobs: {e}"));
            assert_eq!(serial, parallel, "{config:?}: jobs=1 vs jobs={jobs}");
        }
    }
}

/// A failing job reports its own error; sibling jobs still complete with
/// correct results (the pool is not poisoned by a panic).
#[test]
fn failing_job_does_not_poison_siblings() {
    let results = run_indexed(4, 32, |i| {
        if i == 13 {
            panic!("job {i} exploded");
        }
        i * 10
    });
    assert_eq!(results.len(), 32);
    for (i, r) in results.iter().enumerate() {
        if i == 13 {
            let msg = r.as_ref().expect_err("job 13 must fail");
            assert!(msg.contains("job 13 exploded"), "got: {msg}");
        } else {
            assert_eq!(*r, Ok(i * 10), "sibling {i} was poisoned");
        }
    }
}

/// Several concurrent failures are each attributed to the right job.
#[test]
fn every_failure_is_attributed_to_its_own_job() {
    let results = run_indexed(8, 64, |i| {
        if i % 5 == 0 {
            panic!("multiple of five: {i}");
        }
        i
    });
    for (i, r) in results.iter().enumerate() {
        if i % 5 == 0 {
            let msg = r.as_ref().expect_err("must fail");
            assert!(msg.contains(&format!("multiple of five: {i}")), "job {i}: {msg}");
        } else {
            assert_eq!(*r, Ok(i));
        }
    }
}
