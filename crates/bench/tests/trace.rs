//! End-to-end tests of the `repro trace` path: worker-count determinism,
//! trace/counter reconciliation through the full `Gpu` launch path, and
//! zero stats drift when tracing is disabled.

use cheri_simt::trace::validate::validate_auto;
use cheri_simt::trace::TraceEvent;
use nocl::Gpu;
use nocl_suite::{NoclBench, Scale};
use repro::{
    export_runs, reconcile, resolve_benches, trace_config, trace_suite, Geometry, TraceFormat,
};

fn benches(names: &[&str]) -> Vec<&'static dyn NoclBench> {
    names.iter().flat_map(|n| resolve_benches(n).unwrap()).collect()
}

/// The tentpole determinism guarantee: tracing composes with the parallel
/// runner, and the exported file is byte-identical at every worker count.
#[test]
fn exports_are_byte_identical_across_worker_counts() {
    let benches = benches(&["vecadd", "reduce", "scan"]);
    let config = trace_config("purecap").unwrap();
    let serial = trace_suite(&benches, config, Geometry::Small, 1).unwrap();
    let parallel = trace_suite(&benches, config, Geometry::Small, 8).unwrap();
    for format in [TraceFormat::Chrome, TraceFormat::Jsonl] {
        let a = export_runs(&serial, format);
        let b = export_runs(&parallel, format);
        assert!(a == b, "{format:?} export differs between --jobs 1 and --jobs 8");
        let (_, summary) = validate_auto(&a).unwrap_or_else(|e| panic!("{format:?}: {e}"));
        assert!(summary.events > 0);
    }
}

/// A multi-launch benchmark accumulates one stream with one `launch` marker
/// per kernel launch, and the accumulated stream still reconciles exactly
/// with the accumulated counters.
#[test]
fn multi_launch_stream_reconciles() {
    let benches = resolve_benches("bitonicla").unwrap();
    let runs = trace_suite(&benches, trace_config("purecap").unwrap(), Geometry::Small, 1).unwrap();
    let launches = runs[0].events.iter().filter(|e| matches!(e, TraceEvent::Launch { .. })).count();
    assert!(launches > 1, "BitonicLa launches phase kernels ({launches} launches seen)");
    reconcile(&runs[0].events, &runs[0].stats).unwrap();
}

/// Attaching a sink must not perturb the simulation: the traced run's
/// statistics equal an untraced run's, field for field.
#[test]
fn tracing_causes_zero_stats_drift() {
    for mode in ["baseline", "purecap", "rust"] {
        let benches = resolve_benches("histogram").unwrap();
        let config = trace_config(mode).unwrap();
        let traced = trace_suite(&benches, config, Geometry::Small, 1).unwrap();
        let (cfg, kir_mode) = config.instantiate(Geometry::Small);
        let mut gpu = Gpu::new(cfg, kir_mode);
        let untraced = benches[0].run(&mut gpu, Scale::Test).unwrap();
        assert_eq!(untraced, traced[0].stats, "stats drifted under tracing [{mode}]");
    }
}

/// The validator accepts both exports of a real run and rejects the same
/// bytes once corrupted.
#[test]
fn validator_accepts_real_traces_and_rejects_corruption() {
    let benches = resolve_benches("vecadd").unwrap();
    let runs =
        trace_suite(&benches, trace_config("baseline").unwrap(), Geometry::Small, 1).unwrap();
    let chrome = export_runs(&runs, TraceFormat::Chrome);
    let jsonl = export_runs(&runs, TraceFormat::Jsonl);
    assert_eq!(validate_auto(&chrome).unwrap().0, "chrome");
    assert_eq!(validate_auto(&jsonl).unwrap().0, "jsonl");
    // An unknown event type must be caught in either format.
    assert!(validate_auto(&chrome.replace("\"issue\"", "\"bogus\"")).is_err());
    assert!(validate_auto(&jsonl.replace("\"issue\"", "\"bogus\"")).is_err());
    // Truncation must be caught in the whole-document format.
    assert!(validate_auto(&chrome[..chrome.len() - 2]).is_err());
}
