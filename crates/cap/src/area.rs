//! Logic-area costs of CheriCapLib functions (Figure 7 of the paper).
//!
//! Costs are in Intel Stratix-10 *Adaptive Logic Modules* (ALMs), as
//! synthesised by the paper's authors. They drive the `sim-area` crate's
//! compositional area model: functions on the hot path are instantiated per
//! vector lane; cold functions once per SM in the shared-function unit.
//!
//! ```
//! use cheri_cap::area;
//! // The per-lane fast path costs far less than one multiplier.
//! let fast = area::FROM_MEM + area::TO_MEM + area::SET_ADDR + area::IS_ACCESS_IN_BOUNDS;
//! assert!(fast < area::MUL32);
//! ```

/// `fromMem`: convert from the in-memory format (decompress).
pub const FROM_MEM: u32 = 46;
/// `toMem`: convert to the in-memory format (pure wiring).
pub const TO_MEM: u32 = 0;
/// `setAddr`: set the address, invalidating if too far out of bounds.
pub const SET_ADDR: u32 = 106;
/// `isAccessInBounds`: check an access against partially decompressed bounds.
pub const IS_ACCESS_IN_BOUNDS: u32 = 25;
/// `getBase`: return the decoded lower bound.
pub const GET_BASE: u32 = 50;
/// `getLength`: return the decoded length.
pub const GET_LENGTH: u32 = 20;
/// `getTop`: return the decoded 33-bit upper bound.
pub const GET_TOP: u32 = 78;
/// `setBounds`: narrow bounds to a given base and length.
pub const SET_BOUNDS: u32 = 287;

/// Reference point: a 32-bit multiplier occupies 567 ALMs.
pub const MUL32: u32 = 567;

/// Functions the paper keeps on the per-lane fast path.
pub fn fast_path_alms() -> u32 {
    FROM_MEM + TO_MEM + SET_ADDR + IS_ACCESS_IN_BOUNDS
}

/// Functions the paper moves to the shared-function unit (slow path):
/// `CGetBase`, `CGetLen`, `CSetBounds[..]`, `CRRL`, `CRAM` all build on
/// these decoders/encoders.
pub fn slow_path_alms() -> u32 {
    GET_BASE + GET_LENGTH + GET_TOP + SET_BOUNDS
}

/// Every (name, ALM cost) pair in Figure 7, for report generation.
pub const FIGURE7: [(&str, u32); 8] = [
    ("fromMem", FROM_MEM),
    ("toMem", TO_MEM),
    ("setAddr", SET_ADDR),
    ("isAccessInBounds", IS_ACCESS_IN_BOUNDS),
    ("getBase", GET_BASE),
    ("getLength", GET_LENGTH),
    ("getTop", GET_TOP),
    ("setBounds", SET_BOUNDS),
];

#[cfg(test)]
mod tests {
    #[test]
    fn totals() {
        assert_eq!(super::fast_path_alms(), 177);
        assert_eq!(super::slow_path_alms(), 435);
    }
}
