//! The CHERI Concentrate bounds codec (Woodruff et al., IEEE ToC 2019).
//!
//! A 32-bit lower bound and a 33-bit upper bound are stored together in 15
//! bits, relative to the capability's address:
//!
//! ```text
//!   14   13      8  7       0
//!  +----+---------+----------+
//!  | IE |  T[5:0] |  B[7:0]  |
//!  +----+---------+----------+
//! ```
//!
//! Mantissa width `MW = 8`. `T[7:6]` is reconstructed from `B[7:6]`, a
//! carry-out comparison on the low mantissa bits, and a length MSB implied by
//! `IE`. With an *internal exponent* (`IE = 1`) the low three bits of both
//! `B` and `T` hold the 6-bit exponent `E = {T[2:0], B[2:0]}` and the bounds
//! are aligned to `2^(E+3)`; otherwise (`IE = 0`) the exponent is zero and
//! objects shorter than 64 bytes get byte-precise bounds.
//!
//! The maximum exponent is [`RESET_EXP`] (= 26): at that exponent the derived
//! top reaches `2^32`, covering the whole address space.

/// Mantissa width of the CC-64 encoding.
pub const MANTISSA_WIDTH: u32 = 8;

/// Exponent used by the full-address-space (almighty) capability; also the
/// largest exponent a well-formed encoder ever produces.
pub const RESET_EXP: u32 = 26;

/// Number of bits in the packed bounds field.
pub const BOUNDS_BITS: u32 = 15;

/// Upper bound (exclusive) of a decoded top: tops are 33-bit quantities.
pub const TOP_MAX: u64 = 1 << 32;

/// A packed 15-bit bounds field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BoundsField(pub u16);

impl BoundsField {
    /// Bounds field of the null capability: all zeros (`IE = 0`, `T = B = 0`),
    /// which decodes to an empty object at address zero.
    pub const NULL: BoundsField = BoundsField(0);

    /// Internal-exponent bit.
    #[inline]
    pub fn ie(self) -> bool {
        self.0 & (1 << 14) != 0
    }

    /// The six explicit top bits `T[5:0]`.
    #[inline]
    pub fn t_low(self) -> u8 {
        ((self.0 >> 8) & 0x3F) as u8
    }

    /// The eight explicit base bits `B[7:0]`.
    #[inline]
    pub fn b(self) -> u8 {
        (self.0 & 0xFF) as u8
    }

    /// Pack raw fields. Values are masked to their field widths.
    #[inline]
    pub fn pack(ie: bool, t_low: u8, b: u8) -> Self {
        BoundsField(((ie as u16) << 14) | (((t_low & 0x3F) as u16) << 8) | b as u16)
    }

    /// The bounds field of the almighty capability: `E = RESET_EXP`,
    /// `B = 0`, mantissa `T = 0` (top is derived as `2^32`).
    pub fn almighty() -> Self {
        encode(0, TOP_MAX).field
    }
}

/// Decoded bounds: the exponent plus the reconstructed 8-bit mantissas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedMantissa {
    /// Exponent (0..=26).
    pub e: u32,
    /// Reconstructed 8-bit top mantissa.
    pub t8: u8,
    /// 8-bit base mantissa (exponent bits masked to zero when `IE`).
    pub b8: u8,
}

/// Split a packed field into exponent and mantissas, reconstructing `T[7:6]`.
pub fn decode_mantissa(f: BoundsField) -> DecodedMantissa {
    let (e, t_low, b8) = if f.ie() {
        let e = (((f.t_low() & 0x7) as u32) << 3) | (f.b() & 0x7) as u32;
        (e.min(RESET_EXP), f.t_low() & 0x38, f.b() & 0xF8)
    } else {
        (0, f.t_low(), f.b())
    };
    // T[7:6] = B[7:6] + carry + IE, where carry is set when the explicit top
    // mantissa bits are below the base's (the length "wrapped" the low bits).
    let carry = (t_low < (b8 & 0x3F)) as u8;
    let l_msb = f.ie() as u8;
    let t_hi = ((b8 >> 6) + carry + l_msb) & 0x3;
    DecodedMantissa { e, t8: (t_hi << 6) | t_low, b8 }
}

/// Fully decoded bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bounds {
    /// Inclusive lower bound.
    pub base: u32,
    /// Exclusive upper bound (33-bit: may be `2^32`).
    pub top: u64,
}

impl Bounds {
    /// Length of the region (`top - base`), saturating at zero if the
    /// encoding is malformed and decodes to `top < base`.
    #[inline]
    pub fn length(self) -> u64 {
        self.top.saturating_sub(self.base as u64)
    }
}

/// Decode the bounds of a capability with address `addr`.
///
/// This is the reference decode from the CHERI Concentrate paper: the
/// address's middle bits are compared against the representable-region base
/// `R = B - 2^(MW-3)` and correction terms place base and top in the
/// neighbouring `2^(E+MW)` windows.
pub fn decode(f: BoundsField, addr: u32) -> Bounds {
    let DecodedMantissa { e, t8, b8 } = decode_mantissa(f);
    let sh = e + MANTISSA_WIDTH; // window shift, <= 34
    let a_mid = ((addr as u64) >> e) as u8; // truncates to 8 bits
    let a_top: i64 = if sh >= 32 { 0 } else { (addr >> sh) as i64 };

    let r = b8.wrapping_sub(0x20); // representable-region base
    let in_hi = |x: u8| (x < r) as i64;
    let c_a = in_hi(a_mid);
    let c_t = in_hi(t8) - c_a;
    let c_b = in_hi(b8) - c_a;

    let window = |c: i64| -> i128 { ((a_top + c) as i128) << sh };
    let mut top = window(c_t) + (((t8 as i128) & 0xFF) << e);
    let base = window(c_b) + ((b8 as i128) << e);
    let base = (base as u64 & 0xFFFF_FFFF) as u32;
    top &= (1i128 << 33) - 1;
    let mut top = top as u64;

    // Top-bit massage (CC paper §V): a length shorter than 2^(E+MW) means
    // the high parts of top and base differ by at most one window; if the
    // correction pushed them further apart, bit 32 of top was set spuriously.
    if sh < 32 {
        let t_hi = top >> sh;
        let b_hi = (base >> sh) as u64;
        if t_hi.wrapping_sub(b_hi) > 1 {
            top ^= 1 << 32;
        }
    }
    Bounds { base, top }
}

/// Result of encoding a (base, top) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoded {
    /// The packed bounds field.
    pub field: BoundsField,
    /// Whether the requested bounds were representable exactly.
    pub exact: bool,
    /// The bounds that `field` actually decodes to (rounded outward).
    pub bounds: Bounds,
}

/// Encode the tightest representable bounds containing `[base, top)`.
///
/// Mirrors `setBounds` in CheriCapLib: objects shorter than 64 bytes are
/// byte-precise (`IE = 0`); otherwise the exponent is chosen so the length
/// fits in the effective 5-bit mantissa and base/top are rounded outward to
/// `2^(E+3)` alignment, re-trying once with `E+1` if rounding overflows the
/// mantissa.
///
/// # Panics
///
/// Panics if `top > 2^32` or `top < base`.
pub fn encode(base: u32, top: u64) -> Encoded {
    assert!(top <= TOP_MAX, "top out of 33-bit range");
    assert!(top >= base as u64, "negative length");
    let len = top - base as u64;

    if len < (1 << (MANTISSA_WIDTH - 2)) {
        // IE = 0: byte-precise.
        let field = BoundsField::pack(false, (top & 0x3F) as u8, (base & 0xFF) as u8);
        let bounds = decode(field, base);
        debug_assert_eq!(bounds, Bounds { base, top });
        return Encoded { field, exact: true, bounds };
    }

    // IE = 1: choose the smallest exponent such that the length, measured in
    // 2^E granules, fits in [2^(MW-2), 2^(MW-1)); the T[7:6] reconstruction
    // (carry + implied length MSB) is only faithful for mantissa differences
    // in [64, 128).
    let mut e = 63 - (len >> (MANTISSA_WIDTH - 2)).leading_zeros();
    // (i.e. e = floor(log2(len)) - (MW-2); len >= 2^(MW-2) here.)
    debug_assert!(len >> e >= 1 << (MANTISSA_WIDTH - 2));

    loop {
        let g = e + 3; // alignment granule: low 3 mantissa bits hold E
        let bv = (base >> g) as u64;
        let tv = (top + (1u64 << g) - 1) >> g;
        if tv - bv >= (1 << (MANTISSA_WIDTH - 4)) {
            // Rounding the top up overflowed the mantissa: grow the exponent.
            e += 1;
            continue;
        }
        let exact = (bv << g) == base as u64 && (tv << g) == top;
        let b8 = ((bv as u8 & 0x1F) << 3) | (e as u8 & 0x7);
        let t_low = (((tv as u8) & 0x7) << 3) | ((e as u8 >> 3) & 0x7);
        let field = BoundsField::pack(true, t_low, b8);
        let bounds = decode(field, base);
        debug_assert_eq!(
            bounds,
            Bounds { base: (bv << g) as u32, top: tv << g },
            "encode/decode mismatch for base={base:#x} top={top:#x} e={e}"
        );
        return Encoded { field, exact, bounds };
    }
}

/// `CRRL`: the representable length that `encode(0, len)` rounds `len` up to.
pub fn representable_length(len: u32) -> u64 {
    encode(0, len as u64).bounds.top
}

/// `CRAM`: the alignment mask a base must satisfy for a region of length
/// `len` to be representable exactly (all-ones for byte-precise lengths).
pub fn representable_alignment_mask(len: u32) -> u32 {
    if (len as u64) < (1 << (MANTISSA_WIDTH - 2)) {
        return u32::MAX;
    }
    let mut e = 31 - (len >> (MANTISSA_WIDTH - 2)).leading_zeros();
    // Account for the encoder's retry: at exponent e the mantissa holds at
    // most 2^(MW-4) - 1 = 15 granules of 2^(e+3), so a length whose rounded-up
    // granule count reaches 16 must be encoded at e+1.
    let max_at_e = ((1u64 << (MANTISSA_WIDTH - 4)) - 1) << (e + 3);
    if (len as u64) > max_at_e {
        e += 1;
    }
    !((1u32 << (e + 3)) - 1)
}

/// Is `addr` within the representable region of a capability whose bounds
/// field is `f` and whose current address is `old_addr`? I.e. can the address
/// be changed to `addr` without the decoded bounds changing?
///
/// CheriCapLib implements a conservative fast check in hardware; as a
/// software model we use the precise definition, which the fast check
/// approximates.
pub fn is_representable(f: BoundsField, old_addr: u32, addr: u32) -> bool {
    decode(f, old_addr) == decode(f, addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_decodes_to_empty_at_zero() {
        let b = decode(BoundsField::NULL, 0);
        assert_eq!(b, Bounds { base: 0, top: 0 });
    }

    #[test]
    fn almighty_covers_address_space() {
        let f = BoundsField::almighty();
        for addr in [0u32, 1, 0x8000_0000, u32::MAX] {
            let b = decode(f, addr);
            assert_eq!(b, Bounds { base: 0, top: TOP_MAX }, "addr={addr:#x}");
        }
    }

    #[test]
    fn byte_precise_small_objects() {
        for base in [0u32, 5, 0xFFC0, 0x1234_5678, u32::MAX - 70] {
            for len in [0u64, 1, 7, 33, 63] {
                let enc = encode(base, base as u64 + len);
                assert!(enc.exact, "base={base:#x} len={len}");
                assert_eq!(enc.bounds.base, base);
                assert_eq!(enc.bounds.top, base as u64 + len);
            }
        }
    }

    #[test]
    fn medium_object_rounding() {
        // 100 bytes at an odd base: granule is 2^3 = 8 (e = 0, IE = 1).
        let enc = encode(0x1001, 0x1001 + 100);
        assert!(!enc.exact);
        assert_eq!(enc.bounds.base, 0x1000);
        assert_eq!(enc.bounds.top, 0x1001 + 100 + 3); // rounded up to 8
        assert!(enc.bounds.base <= 0x1001);
        assert!(enc.bounds.top >= 0x1001 + 100);
    }

    #[test]
    fn exact_power_of_two_objects() {
        for sh in 6..=31u32 {
            let len = 1u64 << sh;
            let enc = encode(0, len);
            assert!(enc.exact, "2^{sh}");
            assert_eq!(enc.bounds, Bounds { base: 0, top: len });
        }
    }

    #[test]
    fn crrl_cram_consistency() {
        for len in [0u32, 1, 63, 64, 100, 1000, 4096, 100_000, 1 << 30] {
            let rl = representable_length(len);
            assert!(rl >= len as u64);
            let mask = representable_alignment_mask(len);
            // A base aligned to the mask with the rounded length is exact.
            let base = 0x4000_0000u32 & mask;
            let enc = encode(base, base as u64 + rl);
            assert!(enc.exact, "len={len} rl={rl} mask={mask:#x}");
        }
    }

    #[test]
    fn representability_region_allows_wander() {
        // A one-page object: the address may wander somewhat out of bounds
        // without becoming unrepresentable.
        let enc = encode(0x10000, 0x10000 + 4096);
        assert!(enc.exact);
        let f = enc.field;
        assert!(is_representable(f, 0x10000, 0x10000 + 4096)); // one past end
        assert!(is_representable(f, 0x10000, 0x10000 + 4200)); // a bit past
        assert!(!is_representable(f, 0x10000, 0x8000_0000)); // far away
    }

    #[test]
    fn decode_mantissa_reconstruction() {
        // IE=0, T[5:0] < B[5:0] implies a carry into T[7:6].
        let f = BoundsField::pack(false, 0x02, 0xFE);
        let m = decode_mantissa(f);
        assert_eq!(m.e, 0);
        assert_eq!(m.b8, 0xFE);
        // T[7:6] = B[7:6] + carry = 3 + 1 = 0 (mod 4)
        assert_eq!(m.t8, 0x02);
    }
}
