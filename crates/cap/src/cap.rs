//! In-memory and in-pipeline capability representations and the CheriCapLib
//! operation set (Figure 7 of the paper).

use crate::bounds::{self, Bounds, BoundsField, TOP_MAX};
use crate::{otype, AccessWidth, CapException, Perms};
use core::fmt;

/// The in-memory capability format: 64 bits plus the hidden tag
/// (`CapMem = Bit 65` in Figure 7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapMem {
    bits: u64,
    tag: bool,
}

impl CapMem {
    /// The null capability: untagged, all bits zero.
    pub const NULL: CapMem = CapMem { bits: 0, tag: false };

    /// Assemble from raw bits and a tag. No validation is performed; an
    /// arbitrary-bits capability with a set tag can only be produced by the
    /// simulator itself (software cannot forge tags).
    #[inline]
    pub fn from_bits(bits: u64, tag: bool) -> Self {
        CapMem { bits, tag }
    }

    /// The 64 architectural bits.
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The hidden tag bit.
    #[inline]
    pub fn tag(self) -> bool {
        self.tag
    }

    /// The 32-bit address field.
    #[inline]
    pub fn addr(self) -> u32 {
        self.bits as u32
    }

    /// The 32-bit metadata half (perms/otype/flag/bounds).
    #[inline]
    pub fn meta(self) -> u32 {
        (self.bits >> 32) as u32
    }

    /// Reassemble from a metadata half, an address, and a tag. This is how
    /// the SM's split register files reconstruct a capability.
    #[inline]
    pub fn from_parts(meta: u32, addr: u32, tag: bool) -> Self {
        CapMem { bits: ((meta as u64) << 32) | addr as u64, tag }
    }

    /// Replace the address, leaving metadata and tag untouched.
    ///
    /// This is *not* `CSetAddr` (no representability check) — it exists for
    /// the register-file model, which stores addresses and metadata
    /// separately.
    #[inline]
    pub fn with_addr(self, addr: u32) -> Self {
        CapMem::from_parts(self.meta(), addr, self.tag)
    }
}

impl fmt::Debug for CapMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = CapPipe::from_mem(*self);
        write!(
            f,
            "CapMem{{tag:{} addr:{:#x} base:{:#x} top:{:#x} {:?}}}",
            self.tag,
            self.addr(),
            p.base(),
            p.top(),
            p.perms()
        )
    }
}

/// The in-pipeline, partially decompressed capability format
/// (`CapPipe = Bit 91` in Figure 7): the architectural fields plus the
/// already-decoded bounds, making the per-lane hot path (`set_addr`,
/// `is_access_in_bounds`) cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapPipe {
    tag: bool,
    perms: Perms,
    otype: u8,
    flag: bool,
    field: BoundsField,
    addr: u32,
    /// Decoded bounds cache — the "partially decompressed" extra bits.
    bounds: Bounds,
}

impl Default for CapPipe {
    fn default() -> Self {
        CapPipe::null()
    }
}

impl CapPipe {
    /// The null capability (untagged, no rights, empty bounds at zero).
    pub fn null() -> Self {
        CapPipe::from_mem(CapMem::NULL)
    }

    /// The almighty root capability: tagged, all permissions, whole address
    /// space. Only the host/runtime may mint this.
    pub fn almighty() -> Self {
        let field = BoundsField::almighty();
        CapPipe {
            tag: true,
            perms: Perms::ALL,
            otype: otype::UNSEALED,
            flag: false,
            field,
            addr: 0,
            bounds: Bounds { base: 0, top: TOP_MAX },
        }
    }

    // ---- Format conversions (Figure 7: fromMem / toMem) ----

    /// Decompress from the in-memory format (`fromMem`, 46 ALMs).
    pub fn from_mem(m: CapMem) -> Self {
        let meta = m.meta();
        let field = BoundsField((meta & 0x7FFF) as u16);
        let addr = m.addr();
        CapPipe {
            tag: m.tag(),
            perms: Perms::from_bits((meta >> 20) as u16),
            otype: ((meta >> 16) & 0xF) as u8,
            flag: meta & (1 << 15) != 0,
            field,
            addr,
            bounds: bounds::decode(field, addr),
        }
    }

    /// Recompress to the in-memory format (`toMem`, 0 ALMs — pure wiring).
    pub fn to_mem(self) -> CapMem {
        let meta = ((self.perms.bits() as u32) << 20)
            | ((self.otype as u32) << 16)
            | ((self.flag as u32) << 15)
            | self.field.0 as u32;
        CapMem::from_parts(meta, self.addr, self.tag)
    }

    // ---- Field accessors ----

    /// The tag (validity) bit.
    #[inline]
    pub fn tag(self) -> bool {
        self.tag
    }

    /// The current address.
    #[inline]
    pub fn addr(self) -> u32 {
        self.addr
    }

    /// The permission set.
    #[inline]
    pub fn perms(self) -> Perms {
        self.perms
    }

    /// The object type field.
    #[inline]
    pub fn otype(self) -> u8 {
        self.otype
    }

    /// Is the capability sealed (otype != unsealed)?
    #[inline]
    pub fn is_sealed(self) -> bool {
        self.otype != otype::UNSEALED
    }

    /// The single architectural flag bit (capability-mode flag).
    #[inline]
    pub fn flag(self) -> bool {
        self.flag
    }

    /// `getBase` (50 ALMs): the inclusive lower bound.
    #[inline]
    pub fn base(self) -> u32 {
        self.bounds.base
    }

    /// `getTop` (78 ALMs): the exclusive 33-bit upper bound.
    #[inline]
    pub fn top(self) -> u64 {
        self.bounds.top
    }

    /// `getLength` (20 ALMs): `top - base`, a 33-bit quantity.
    #[inline]
    pub fn length(self) -> u64 {
        self.bounds.length()
    }

    /// The offset of the address from the base (may be "negative" — wraps).
    #[inline]
    pub fn offset(self) -> u32 {
        self.addr.wrapping_sub(self.bounds.base)
    }

    // ---- CheriCapLib operations ----

    /// `setAddr` (106 ALMs): change the address, clearing the tag if the new
    /// address leaves the representable region (the bounds would change) or
    /// if the capability is sealed.
    #[must_use]
    pub fn set_addr(self, addr: u32) -> Self {
        let representable = bounds::is_representable(self.field, self.addr, addr);
        CapPipe {
            tag: self.tag && representable && !self.is_sealed(),
            addr,
            bounds: if representable { self.bounds } else { bounds::decode(self.field, addr) },
            ..self
        }
    }

    /// `CIncOffset`: add a (signed) offset to the address, with the same
    /// representability rules as [`CapPipe::set_addr`].
    #[must_use]
    pub fn inc_offset(self, delta: u32) -> Self {
        self.set_addr(self.addr.wrapping_add(delta))
    }

    /// `isAccessInBounds` (25 ALMs): is an access of `width.bytes()` bytes at
    /// the current address fully inside the bounds?
    #[inline]
    pub fn is_access_in_bounds(self, addr: u32, width: u32) -> bool {
        let a = addr as u64;
        a >= self.bounds.base as u64 && a + width as u64 <= self.bounds.top
    }

    /// Full access check for a load/store at `addr`: tag, seal, permission,
    /// alignment (capability width only) and bounds.
    pub fn check_access(
        self,
        addr: u32,
        width: AccessWidth,
        store: bool,
        cap_access: bool,
    ) -> Result<(), CapException> {
        if !self.tag {
            return Err(CapException::TagViolation);
        }
        if self.is_sealed() {
            return Err(CapException::SealViolation);
        }
        let need = if store { Perms::STORE } else { Perms::LOAD };
        if !self.perms.contains(need) {
            return Err(if store {
                CapException::PermitStoreViolation
            } else {
                CapException::PermitLoadViolation
            });
        }
        if cap_access {
            let need = if store { Perms::STORE_CAP } else { Perms::LOAD_CAP };
            if !self.perms.contains(need) {
                return Err(if store {
                    CapException::PermitStoreCapViolation
                } else {
                    CapException::PermitLoadCapViolation
                });
            }
            if !addr.is_multiple_of(8) {
                return Err(CapException::AlignmentViolation);
            }
        }
        if !self.is_access_in_bounds(addr, width.bytes()) {
            return Err(CapException::BoundsViolation);
        }
        Ok(())
    }

    /// Instruction-fetch check against this capability as PCC.
    pub fn check_fetch(self, pc: u32) -> Result<(), CapException> {
        if !self.tag {
            return Err(CapException::TagViolation);
        }
        if !self.perms.contains(Perms::EXECUTE) {
            return Err(CapException::PermitExecuteViolation);
        }
        if !self.is_access_in_bounds(pc, 4) {
            return Err(CapException::BoundsViolation);
        }
        Ok(())
    }

    /// `setBounds` (287 ALMs): narrow the bounds to `[addr, addr + len)`,
    /// rounded outward to representability. Returns the new capability and
    /// whether the request was exact. The tag is cleared if the request is
    /// not monotone (exceeds the current bounds) or the source is sealed or
    /// untagged.
    #[must_use]
    pub fn set_bounds(self, len: u32) -> (Self, bool) {
        let base = self.addr;
        let top = base as u64 + len as u64;
        let enc = bounds::encode(base, top.min(TOP_MAX));
        let monotone = top <= TOP_MAX
            && enc.bounds.base as u64 >= self.bounds.base as u64
            && enc.bounds.top <= self.bounds.top
            // The requested region itself must also be within the source.
            && base as u64 >= self.bounds.base as u64
            && top <= self.bounds.top;
        // Rounding outward may poke outside the source bounds; real CHERI
        // clears the tag in that case too (the encoder result is what the
        // new capability grants).
        let cap = CapPipe {
            tag: self.tag && !self.is_sealed() && monotone,
            field: enc.field,
            bounds: enc.bounds,
            ..self
        };
        (cap, enc.exact)
    }

    /// `CSetBoundsExact`: like [`CapPipe::set_bounds`] but clears the tag if
    /// the bounds were rounded.
    #[must_use]
    pub fn set_bounds_exact(self, len: u32) -> Self {
        let (cap, exact) = self.set_bounds(len);
        CapPipe { tag: cap.tag && exact, ..cap }
    }

    /// `CAndPerm`: intersect the permission set with `mask`.
    #[must_use]
    pub fn and_perm(self, mask: Perms) -> Self {
        CapPipe { perms: self.perms & mask, tag: self.tag && !self.is_sealed(), ..self }
    }

    /// `CSetFlags`: set the flag bit.
    #[must_use]
    pub fn set_flags(self, flag: bool) -> Self {
        CapPipe { flag, tag: self.tag && !self.is_sealed(), ..self }
    }

    /// `CClearTag`: clear the tag.
    #[must_use]
    pub fn clear_tag(self) -> Self {
        CapPipe { tag: false, ..self }
    }

    /// `CSealEntry`: seal as a sentry (jump target) capability.
    #[must_use]
    pub fn seal_entry(self) -> Self {
        CapPipe { otype: otype::SENTRY, tag: self.tag && !self.is_sealed(), ..self }
    }

    /// Unseal a sentry capability (performed implicitly by `CJALR`).
    #[must_use]
    pub fn unseal_sentry(self) -> Self {
        if self.otype == otype::SENTRY {
            CapPipe { otype: otype::UNSEALED, ..self }
        } else {
            self
        }
    }
}

impl From<CapMem> for CapPipe {
    fn from(m: CapMem) -> Self {
        CapPipe::from_mem(m)
    }
}

impl From<CapPipe> for CapMem {
    fn from(p: CapPipe) -> Self {
        p.to_mem()
    }
}

impl fmt::Display for CapPipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cap[{}] {:#010x} in [{:#x}, {:#x}) {:?}{}",
            if self.tag { "v" } else { "-" },
            self.addr,
            self.base(),
            self.top(),
            self.perms,
            if self.is_sealed() { " sealed" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        let n = CapPipe::null();
        assert!(!n.tag());
        assert_eq!(n.base(), 0);
        assert_eq!(n.top(), 0);
        assert_eq!(n.to_mem(), CapMem::NULL);
    }

    #[test]
    fn almighty_roundtrip() {
        let a = CapPipe::almighty();
        let m = a.to_mem();
        assert!(m.tag());
        let back = CapPipe::from_mem(m);
        assert_eq!(back, a);
        assert_eq!(back.length(), TOP_MAX);
    }

    #[test]
    fn derive_and_check() {
        let root = CapPipe::almighty();
        let (buf, exact) = root.set_addr(0x2000).set_bounds(64);
        assert!(exact && buf.tag());
        assert!(buf.check_access(0x2000, AccessWidth::Word, false, false).is_ok());
        assert!(buf.check_access(0x203C, AccessWidth::Word, true, false).is_ok());
        assert_eq!(
            buf.check_access(0x2040, AccessWidth::Byte, false, false),
            Err(CapException::BoundsViolation)
        );
        assert_eq!(
            buf.check_access(0x203D, AccessWidth::Word, false, false),
            Err(CapException::BoundsViolation)
        );
    }

    #[test]
    fn monotonicity_of_set_bounds() {
        let root = CapPipe::almighty();
        let (small, _) = root.set_addr(0x1000).set_bounds(128);
        // Attempting to widen must clear the tag.
        let (wider, _) = small.set_bounds(4096);
        assert!(!wider.tag());
        // Narrowing within keeps the tag.
        let (narrower, exact) = small.set_addr(0x1010).set_bounds(16);
        assert!(narrower.tag() && exact);
    }

    #[test]
    fn untagged_data_cannot_be_dereferenced() {
        let forged = CapPipe::from_mem(CapMem::from_bits(0xFFFF_FFFF_0000_2000, false));
        assert_eq!(
            forged.check_access(0x2000, AccessWidth::Word, false, false),
            Err(CapException::TagViolation)
        );
    }

    #[test]
    fn sealed_caps_are_immutable() {
        let s = CapPipe::almighty().seal_entry();
        assert!(s.tag() && s.is_sealed());
        assert!(!s.set_addr(4).tag());
        assert!(!s.and_perm(Perms::LOAD).tag());
        assert!(!s.set_bounds(16).0.tag());
        assert_eq!(
            s.check_access(0, AccessWidth::Word, false, false),
            Err(CapException::SealViolation)
        );
        // CJALR unseals sentries.
        assert!(!s.unseal_sentry().is_sealed());
    }

    #[test]
    fn permission_checks() {
        let ro = CapPipe::almighty().and_perm(Perms::LOAD | Perms::GLOBAL);
        assert!(ro.check_access(0x100, AccessWidth::Word, false, false).is_ok());
        assert_eq!(
            ro.check_access(0x100, AccessWidth::Word, true, false),
            Err(CapException::PermitStoreViolation)
        );
        assert_eq!(
            ro.check_access(0x100, AccessWidth::Cap, false, true),
            Err(CapException::PermitLoadCapViolation)
        );
        let xo = CapPipe::almighty().and_perm(Perms::code());
        assert!(xo.check_fetch(0x100).is_ok());
        assert_eq!(ro.check_fetch(0x100), Err(CapException::PermitExecuteViolation));
    }

    #[test]
    fn cap_access_alignment() {
        let c = CapPipe::almighty();
        assert!(c.check_access(0x1000, AccessWidth::Cap, true, true).is_ok());
        assert_eq!(
            c.check_access(0x1004, AccessWidth::Cap, true, true),
            Err(CapException::AlignmentViolation)
        );
    }

    #[test]
    fn out_of_representable_increment_detags() {
        let (buf, _) = CapPipe::almighty().set_addr(0x10000).set_bounds(4096);
        // Wander slightly out of bounds: representable, tag kept.
        let near = buf.inc_offset(4096);
        assert!(near.tag());
        // Jump far away: unrepresentable, tag cleared.
        let far = buf.inc_offset(0x4000_0000);
        assert!(!far.tag());
    }

    #[test]
    fn split_meta_addr_reassembly() {
        // The register-file model stores meta and address separately.
        let (c, _) = CapPipe::almighty().set_addr(0x3000).set_bounds(256);
        let m = c.to_mem();
        let re = CapMem::from_parts(m.meta(), m.addr(), m.tag());
        assert_eq!(re, m);
        assert_eq!(CapPipe::from_mem(re.with_addr(0x3010)).addr(), 0x3010);
    }
}
