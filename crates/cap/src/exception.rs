//! CHERI exception causes raised by the SM on failed checks.

use core::fmt;

/// Why a capability-checked operation faulted.
///
/// These correspond to the CHERI-RISC-V exception cause codes that matter to
/// the SIMT pipeline; the SM reports the first faulting lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapException {
    /// The capability's tag was clear (dereferencing a non-capability).
    TagViolation,
    /// The capability was sealed and the operation requires it unsealed.
    SealViolation,
    /// The access fell outside the capability's bounds.
    BoundsViolation,
    /// The capability lacks the LOAD permission.
    PermitLoadViolation,
    /// The capability lacks the STORE permission.
    PermitStoreViolation,
    /// The capability lacks the EXECUTE permission (PCC fetch check).
    PermitExecuteViolation,
    /// The capability lacks the LOAD_CAP permission (CLC tag stripping is
    /// modelled as a fault for visibility; real CHERI strips the tag).
    PermitLoadCapViolation,
    /// The capability lacks the STORE_CAP permission.
    PermitStoreCapViolation,
    /// A capability-wide access was not 8-byte aligned.
    AlignmentViolation,
    /// `CSetBoundsExact` requested unrepresentable bounds.
    InexactBounds,
}

impl CapException {
    /// Every variant, in declaration order — drives exhaustive fault
    /// injection and the `repro faults` coverage table.
    pub const ALL: [CapException; 10] = [
        CapException::TagViolation,
        CapException::SealViolation,
        CapException::BoundsViolation,
        CapException::PermitLoadViolation,
        CapException::PermitStoreViolation,
        CapException::PermitExecuteViolation,
        CapException::PermitLoadCapViolation,
        CapException::PermitStoreCapViolation,
        CapException::AlignmentViolation,
        CapException::InexactBounds,
    ];

    /// A stable machine-readable name (used by trace events and coverage
    /// tables; the `Display` impl stays human-oriented).
    pub fn name(self) -> &'static str {
        match self {
            CapException::TagViolation => "tag",
            CapException::SealViolation => "seal",
            CapException::BoundsViolation => "bounds",
            CapException::PermitLoadViolation => "permit_load",
            CapException::PermitStoreViolation => "permit_store",
            CapException::PermitExecuteViolation => "permit_execute",
            CapException::PermitLoadCapViolation => "permit_load_cap",
            CapException::PermitStoreCapViolation => "permit_store_cap",
            CapException::AlignmentViolation => "alignment",
            CapException::InexactBounds => "inexact_bounds",
        }
    }
}

impl fmt::Display for CapException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CapException::TagViolation => "tag violation",
            CapException::SealViolation => "seal violation",
            CapException::BoundsViolation => "bounds violation",
            CapException::PermitLoadViolation => "permit-load violation",
            CapException::PermitStoreViolation => "permit-store violation",
            CapException::PermitExecuteViolation => "permit-execute violation",
            CapException::PermitLoadCapViolation => "permit-load-cap violation",
            CapException::PermitStoreCapViolation => "permit-store-cap violation",
            CapException::AlignmentViolation => "alignment violation",
            CapException::InexactBounds => "inexact bounds",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CapException {}
