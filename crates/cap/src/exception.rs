//! CHERI exception causes raised by the SM on failed checks.

use core::fmt;

/// Why a capability-checked operation faulted.
///
/// These correspond to the CHERI-RISC-V exception cause codes that matter to
/// the SIMT pipeline; the SM reports the first faulting lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapException {
    /// The capability's tag was clear (dereferencing a non-capability).
    TagViolation,
    /// The capability was sealed and the operation requires it unsealed.
    SealViolation,
    /// The access fell outside the capability's bounds.
    BoundsViolation,
    /// The capability lacks the LOAD permission.
    PermitLoadViolation,
    /// The capability lacks the STORE permission.
    PermitStoreViolation,
    /// The capability lacks the EXECUTE permission (PCC fetch check).
    PermitExecuteViolation,
    /// The capability lacks the LOAD_CAP permission (CLC tag stripping is
    /// modelled as a fault for visibility; real CHERI strips the tag).
    PermitLoadCapViolation,
    /// The capability lacks the STORE_CAP permission.
    PermitStoreCapViolation,
    /// A capability-wide access was not 8-byte aligned.
    AlignmentViolation,
    /// `CSetBoundsExact` requested unrepresentable bounds.
    InexactBounds,
}

impl fmt::Display for CapException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CapException::TagViolation => "tag violation",
            CapException::SealViolation => "seal violation",
            CapException::BoundsViolation => "bounds violation",
            CapException::PermitLoadViolation => "permit-load violation",
            CapException::PermitStoreViolation => "permit-store violation",
            CapException::PermitExecuteViolation => "permit-execute violation",
            CapException::PermitLoadCapViolation => "permit-load-cap violation",
            CapException::PermitStoreCapViolation => "permit-store-cap violation",
            CapException::AlignmentViolation => "alignment violation",
            CapException::InexactBounds => "inexact bounds",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CapException {}
