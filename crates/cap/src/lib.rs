//! CHERI Concentrate capabilities for the CHERI-SIMT model.
//!
//! This crate is the Rust counterpart of CheriCapLib (Rugg et al.), the
//! library used by the paper to handle compressed bounds in 64+1-bit
//! capabilities on a 32-bit address space (CHERI-RISC-V v9 flavour).
//!
//! A capability packs, into 64 bits plus a hidden tag:
//!
//! ```text
//!   63        52 51    48 47      46       32 31         0
//!  +------------+--------+-------+-----------+------------+
//!  | perms (12) | otype4 | flag1 | bounds 15 | address 32 |
//!  +------------+--------+-------+-----------+------------+
//! ```
//!
//! The 15-bit bounds field encodes a 32-bit lower bound and a 33-bit upper
//! bound in the floating-point-like *CHERI Concentrate* format
//! (`IE | T[5:0] | B[7:0]`, mantissa width 8). See [`bounds`] for the codec.
//!
//! Two representations are exposed, mirroring the paper's Figure 7:
//!
//! * [`CapMem`] — the in-memory format (`Bit 65`): 64 bits plus tag.
//! * [`CapPipe`] — the in-pipeline, partially-decompressed format (`Bit 91`):
//!   the same fields plus the already-decoded base and top, so that the hot
//!   operations (`set_addr`, `is_access_in_bounds`) are cheap.
//!
//! # Example
//!
//! ```
//! use cheri_cap::{CapPipe, Perms};
//!
//! // Derive a 256-byte buffer capability from the almighty root.
//! let root = CapPipe::almighty();
//! let (buf, exact) = root.set_addr(0x1000).set_bounds(256);
//! assert!(exact);
//! assert_eq!(buf.base(), 0x1000);
//! assert_eq!(buf.length(), 256);
//! assert!(buf.is_access_in_bounds(0x10ff, 1));
//! assert!(!buf.is_access_in_bounds(0x1100, 1));
//! assert!(buf.perms().contains(Perms::LOAD | Perms::STORE));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod bounds;
mod cap;
mod exception;
mod perms;

pub use cap::{CapMem, CapPipe};
pub use exception::CapException;
pub use perms::Perms;

/// Object type carried in the 4-bit `otype` field.
///
/// The all-zero encoding is *unsealed* so that zeroed memory decodes to a
/// harmless (untagged, permissionless) capability.
pub mod otype {
    /// Unsealed (ordinary) capability.
    pub const UNSEALED: u8 = 0;
    /// Sealed entry ("sentry") capability, produced by `CSealEntry`.
    pub const SENTRY: u8 = 1;
    /// First object type available for software sealing.
    pub const FIRST_SW: u8 = 2;
    /// Last representable object type (4-bit field).
    pub const MAX: u8 = 0xF;
}

/// Width of a memory access, as carried by load/store instructions
/// (`AccessWidth` in Figure 7): 1, 2, 4 or 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessWidth {
    /// 1-byte access (`CLB`/`CSB`).
    Byte,
    /// 2-byte access (`CLH`/`CSH`).
    Half,
    /// 4-byte access (`CLW`/`CSW`).
    Word,
    /// 8-byte capability-sized access (`CLC`/`CSC`).
    Cap,
}

impl AccessWidth {
    /// Size of the access in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            AccessWidth::Byte => 1,
            AccessWidth::Half => 2,
            AccessWidth::Word => 4,
            AccessWidth::Cap => 8,
        }
    }

    /// Access width for a power-of-two byte count.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 1, 2, 4, or 8.
    #[inline]
    pub fn from_bytes(bytes: u32) -> Self {
        match bytes {
            1 => AccessWidth::Byte,
            2 => AccessWidth::Half,
            4 => AccessWidth::Word,
            8 => AccessWidth::Cap,
            _ => panic!("invalid access width: {bytes} bytes"),
        }
    }
}
