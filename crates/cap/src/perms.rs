//! The 12-bit architectural permission vector (CHERI-RISC-V v9).

use core::fmt;
use core::ops::{BitAnd, BitOr, Not};

/// A set of capability permissions.
///
/// Permissions are monotonically non-increasing: `CAndPerm` can clear bits
/// but no instruction can set them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u16);

impl Perms {
    /// Capability may flow to other compartments (not enforced by the SM).
    pub const GLOBAL: Perms = Perms(1 << 0);
    /// Instructions may be fetched via this capability (PCC).
    pub const EXECUTE: Perms = Perms(1 << 1);
    /// Data may be loaded.
    pub const LOAD: Perms = Perms(1 << 2);
    /// Data may be stored.
    pub const STORE: Perms = Perms(1 << 3);
    /// Capabilities may be loaded with their tags intact.
    pub const LOAD_CAP: Perms = Perms(1 << 4);
    /// Capabilities may be stored with their tags intact.
    pub const STORE_CAP: Perms = Perms(1 << 5);
    /// Non-global capabilities may be stored.
    pub const STORE_LOCAL_CAP: Perms = Perms(1 << 6);
    /// May be used to seal other capabilities.
    pub const SEAL: Perms = Perms(1 << 7);
    /// May be used with `CInvoke`.
    pub const CINVOKE: Perms = Perms(1 << 8);
    /// May be used to unseal capabilities.
    pub const UNSEAL: Perms = Perms(1 << 9);
    /// Grants access to system registers.
    pub const ACCESS_SYS_REGS: Perms = Perms(1 << 10);
    /// May set the architectural compartment ID.
    pub const SET_CID: Perms = Perms(1 << 11);

    /// The empty permission set.
    pub const NONE: Perms = Perms(0);

    /// All twelve permissions.
    pub const ALL: Perms = Perms(0xFFF);

    /// Typical data capability permissions (everything but EXECUTE/SEAL).
    pub fn data() -> Perms {
        Perms::GLOBAL
            | Perms::LOAD
            | Perms::STORE
            | Perms::LOAD_CAP
            | Perms::STORE_CAP
            | Perms::STORE_LOCAL_CAP
    }

    /// Typical code capability permissions.
    pub fn code() -> Perms {
        Perms::GLOBAL | Perms::EXECUTE | Perms::LOAD
    }

    /// The raw 12-bit field.
    #[inline]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Build from a raw field (masked to 12 bits).
    #[inline]
    pub fn from_bits(bits: u16) -> Perms {
        Perms(bits & 0xFFF)
    }

    /// Does this set include every permission in `other`?
    #[inline]
    pub fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no permission is granted.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Perms {
    type Output = Perms;
    #[inline]
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitAnd for Perms {
    type Output = Perms;
    #[inline]
    fn bitand(self, rhs: Perms) -> Perms {
        Perms(self.0 & rhs.0)
    }
}

impl Not for Perms {
    type Output = Perms;
    #[inline]
    fn not(self) -> Perms {
        Perms(!self.0 & 0xFFF)
    }
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u16, &str); 12] = [
            (1 << 0, "G"),
            (1 << 1, "X"),
            (1 << 2, "R"),
            (1 << 3, "W"),
            (1 << 4, "Rc"),
            (1 << 5, "Wc"),
            (1 << 6, "Wl"),
            (1 << 7, "Se"),
            (1 << 8, "Iv"),
            (1 << 9, "Us"),
            (1 << 10, "Sr"),
            (1 << 11, "Ci"),
        ];
        write!(f, "Perms(")?;
        let mut first = true;
        for (bit, name) in NAMES {
            if self.0 & bit != 0 {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_and_ops() {
        let p = Perms::from_bits(0xFFFF);
        assert_eq!(p, Perms::ALL);
        assert!(Perms::data().contains(Perms::LOAD));
        assert!(!Perms::data().contains(Perms::EXECUTE));
        assert!((Perms::ALL & !Perms::EXECUTE & Perms::EXECUTE).is_empty());
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", Perms::NONE), "Perms(-)");
        assert!(format!("{:?}", Perms::code()).contains('X'));
    }
}
