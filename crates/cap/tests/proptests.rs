//! Property-based tests pinning down the CHERI Concentrate codec and the
//! capability operation invariants.

use cheri_cap::bounds::{self, Bounds, BoundsField, TOP_MAX};
use cheri_cap::{AccessWidth, CapMem, CapPipe, Perms};
use proptest::prelude::*;

/// Arbitrary (base, top) request with a bias towards interesting lengths.
fn base_top() -> impl Strategy<Value = (u32, u64)> {
    let power_biased = (any::<u32>(), 0u64..=33)
        .prop_map(|(base, lsh)| {
            let max_len = TOP_MAX - base as u64;
            let len = ((1u64 << lsh) - 1).min(max_len);
            (base, base as u64 + len)
        })
        .boxed();
    let uniform = (any::<u32>(), any::<u32>())
        .prop_map(|(a, b)| {
            let (base, top) = if (a as u64) <= (b as u64) { (a, b as u64) } else { (b, a as u64) };
            (base, top)
        })
        .boxed();
    power_biased.prop_union(uniform)
}

proptest! {
    /// encode is sound: the decoded bounds contain the request.
    #[test]
    fn encode_contains_request((base, top) in base_top()) {
        let enc = bounds::encode(base, top);
        prop_assert!(enc.bounds.base as u64 <= base as u64);
        prop_assert!(enc.bounds.top >= top);
        prop_assert!(enc.bounds.top <= TOP_MAX);
        // exactness flag is truthful
        prop_assert_eq!(enc.exact, enc.bounds == Bounds { base, top });
    }

    /// The encoded field decodes to the same bounds at any representable
    /// address (round-trip through the 15-bit format).
    #[test]
    fn encode_decode_roundtrip((base, top) in base_top()) {
        let enc = bounds::encode(base, top);
        let b = bounds::decode(enc.field, base);
        prop_assert_eq!(b, enc.bounds);
        // Also from an in-bounds address.
        let mid = ((enc.bounds.base as u64 + enc.bounds.top) / 2) as u32;
        let b2 = bounds::decode(enc.field, mid);
        prop_assert_eq!(b2, enc.bounds);
    }

    /// Rounding never expands by more than one alignment granule on each
    /// side (base rounded down, top rounded up to 2^(E+3)).
    #[test]
    fn rounding_is_bounded((base, top) in base_top()) {
        let enc = bounds::encode(base, top);
        let len = top - base as u64;
        let m = bounds::decode_mantissa(enc.field);
        let granule = if enc.field.ie() { 1u64 << (m.e + 3) } else { 1 };
        prop_assert!(enc.bounds.length() - len < 2 * granule);
        prop_assert!(base as u64 - enc.bounds.base as u64 == 0 || enc.field.ie());
    }

    /// CRRL/CRAM agree: an aligned base + rounded length is always exact.
    #[test]
    fn crrl_cram_exact(len in any::<u32>(), baseword in any::<u32>()) {
        let rl = bounds::representable_length(len);
        let mask = bounds::representable_alignment_mask(len);
        let base = baseword & mask;
        if base as u64 + rl <= TOP_MAX {
            let enc = bounds::encode(base, base as u64 + rl);
            prop_assert!(enc.exact, "len={} rl={} mask={:#x} base={:#x}", len, rl, mask, base);
        }
    }

    /// Any 15-bit pattern decodes to *some* bounds with top <= 2^33 and the
    /// decode is a pure function of (field, addr) — no panics on junk.
    #[test]
    fn decode_total(raw in 0u16..(1 << 15), addr in any::<u32>()) {
        let b = bounds::decode(BoundsField(raw), addr);
        prop_assert!(b.top < (1u64 << 33));
    }

    /// Representability: staying inside the decoded bounds is always
    /// representable (bounds are stable across in-bounds address moves).
    #[test]
    fn in_bounds_moves_are_representable((base, top) in base_top(), off in any::<u32>()) {
        let enc = bounds::encode(base, top);
        let len = enc.bounds.length();
        if len > 0 {
            let addr = enc.bounds.base.wrapping_add((off as u64 % len) as u32);
            prop_assert!(
                bounds::is_representable(enc.field, base, addr),
                "base={:#x} top={:#x} addr={:#x}", base, top, addr
            );
        }
    }

    /// CapMem <-> CapPipe round-trips for arbitrary bit patterns.
    #[test]
    fn mem_pipe_roundtrip(bits in any::<u64>(), tag in any::<bool>()) {
        let m = CapMem::from_bits(bits, tag);
        let p = CapPipe::from_mem(m);
        prop_assert_eq!(p.to_mem(), m);
    }

    /// Monotonicity: any chain of derivations never widens rights.
    #[test]
    fn derivation_is_monotone(
        addr in any::<u32>(),
        len in 0u32..=1 << 20,
        addr2_off in any::<u32>(),
        len2 in 0u32..=1 << 20,
        perm_mask in 0u16..(1 << 12),
    ) {
        let root = CapPipe::almighty();
        let (c1, _) = root.set_addr(addr).set_bounds(len);
        if c1.tag() && c1.length() > 0 {
            let a2 = c1.base().wrapping_add(addr2_off % c1.length() as u32);
            let (c2, _) = c1.set_addr(a2).set_bounds(len2);
            let c2 = c2.and_perm(Perms::from_bits(perm_mask));
            if c2.tag() {
                prop_assert!(c2.base() >= c1.base());
                prop_assert!(c2.top() <= c1.top());
                prop_assert!(c1.perms().contains(c2.perms()));
            }
        }
    }

    /// An access that check_access admits is always within the decoded
    /// bounds; one that's out of bounds is always refused.
    #[test]
    fn check_access_agrees_with_bounds(
        addr in any::<u32>(),
        len in 1u32..=1 << 16,
        probe in any::<u32>(),
        w in prop::sample::select(vec![1u32, 2, 4]),
    ) {
        let (c, _) = CapPipe::almighty().set_addr(addr).set_bounds(len);
        if c.tag() {
            let ok = c.check_access(probe, AccessWidth::from_bytes(w), false, false).is_ok();
            let inside = probe as u64 >= c.base() as u64
                && probe as u64 + w as u64 <= c.top();
            prop_assert_eq!(ok, inside);
        }
    }

    /// set_bounds_exact only keeps the tag when the request was exact.
    #[test]
    fn set_bounds_exact_is_exact(addr in any::<u32>(), len in 0u32..=1 << 24) {
        let c = CapPipe::almighty().set_addr(addr);
        let e = c.set_bounds_exact(len);
        let (r, exact) = c.set_bounds(len);
        prop_assert_eq!(e.tag(), r.tag() && exact);
        if e.tag() {
            prop_assert_eq!(e.base(), addr);
            prop_assert_eq!(e.top(), addr as u64 + len as u64);
        }
    }
}
