//! Property-based tests pinning down the CHERI Concentrate codec and the
//! capability operation invariants.
//!
//! Formerly written against `proptest`; the workspace must build offline, so
//! the same properties are now driven by an explicitly seeded [`sim_prng`]
//! stream plus a bank of pinned regression inputs. Each property runs over
//! every regression case first (like proptest's `.proptest-regressions`
//! replay), then over a large randomized sweep.

use cheri_cap::bounds::{self, Bounds, BoundsField, TOP_MAX};
use cheri_cap::{AccessWidth, CapMem, CapPipe, Perms};
use sim_prng::Prng;

const CASES: usize = 4096;

/// Pinned regression inputs, replayed before the random sweep.
///
/// `(2, 129)` is the historical proptest shrink for the CHERI Concentrate
/// bounds-rounding edge: the smallest request whose first-try exponent
/// overflows the effective mantissa (at `E = 0` the granule-rounded length
/// `ceil(129/8) - floor(2/8) = 17` exceeds the 4-bit mantissa budget) and
/// forces the encoder's retry at `E + 1`. A correct encoder must round it
/// outward to `[0, 144)` and report it inexact.
const REGRESSIONS: &[(u32, u64)] = &[
    (2, 129),
    (0, 0),
    (0, 1),
    (0, 63),
    (0, 64),
    (0, 127),
    (0, 128),
    (1, 128),
    (2, 130),
    (63, 191),
    (u32::MAX, TOP_MAX),
    (u32::MAX - 63, TOP_MAX),
    (0, TOP_MAX),
    (0x8000_0000, TOP_MAX),
];

/// Arbitrary (base, top) request with a bias towards interesting lengths
/// (power-of-two-ish, like the old proptest strategy).
fn base_top(r: &mut Prng) -> (u32, u64) {
    if r.next_bool() {
        let base = r.next_u32();
        let lsh = r.range_u32(0, 34);
        let max_len = TOP_MAX - base as u64;
        let len = (1u64 << lsh).wrapping_sub(1).min(max_len);
        (base, base as u64 + len)
    } else {
        let (a, b) = (r.next_u32(), r.next_u32());
        if a <= b {
            (a, b as u64)
        } else {
            (b, a as u64)
        }
    }
}

/// Run `prop` over the regression bank and `CASES` random requests.
fn for_each_request(mut prop: impl FnMut(u32, u64)) {
    for &(base, top) in REGRESSIONS {
        prop(base, top);
    }
    let mut r = Prng::seed_from_u64(0xCAB0_B0B5);
    for _ in 0..CASES {
        let (base, top) = base_top(&mut r);
        prop(base, top);
    }
}

/// encode is sound: the decoded bounds contain the request.
#[test]
fn encode_contains_request() {
    for_each_request(|base, top| {
        let enc = bounds::encode(base, top);
        assert!(enc.bounds.base as u64 <= base as u64, "base={base:#x} top={top:#x}");
        assert!(enc.bounds.top >= top, "base={base:#x} top={top:#x}");
        assert!(enc.bounds.top <= TOP_MAX, "base={base:#x} top={top:#x}");
        // exactness flag is truthful
        assert_eq!(enc.exact, enc.bounds == Bounds { base, top }, "base={base:#x} top={top:#x}");
    });
}

/// The encoded field decodes to the same bounds at any representable
/// address (round-trip through the 15-bit format).
#[test]
fn encode_decode_roundtrip() {
    for_each_request(|base, top| {
        let enc = bounds::encode(base, top);
        let b = bounds::decode(enc.field, base);
        assert_eq!(b, enc.bounds, "base={base:#x} top={top:#x}");
        // Also from an in-bounds address.
        let mid = ((enc.bounds.base as u64 + enc.bounds.top) / 2) as u32;
        let b2 = bounds::decode(enc.field, mid);
        assert_eq!(b2, enc.bounds, "base={base:#x} top={top:#x} mid={mid:#x}");
    });
}

/// Rounding never expands by more than one alignment granule on each
/// side (base rounded down, top rounded up to 2^(E+3)).
#[test]
fn rounding_is_bounded() {
    for_each_request(|base, top| {
        let enc = bounds::encode(base, top);
        let len = top - base as u64;
        let m = bounds::decode_mantissa(enc.field);
        let granule = if enc.field.ie() { 1u64 << (m.e + 3) } else { 1 };
        assert!(
            enc.bounds.length() - len < 2 * granule,
            "base={base:#x} top={top:#x} granule={granule}"
        );
        assert!(
            base as u64 - enc.bounds.base as u64 == 0 || enc.field.ie(),
            "base={base:#x} top={top:#x}"
        );
    });
}

/// The retry-path regression in full: the encoder must round (2, 129)
/// outward to [0, 144) at E = 1 and stay self-consistent at every
/// in-bounds address.
#[test]
fn regression_2_129_retry_path() {
    let enc = bounds::encode(2, 129);
    assert!(!enc.exact);
    assert_eq!(enc.bounds, Bounds { base: 0, top: 144 });
    assert!(enc.field.ie());
    assert_eq!(bounds::decode_mantissa(enc.field).e, 1);
    for addr in 0..144u32 {
        assert_eq!(bounds::decode(enc.field, addr), enc.bounds, "addr={addr}");
        assert!(bounds::is_representable(enc.field, 2, addr), "addr={addr}");
    }
}

/// CRRL/CRAM agree: an aligned base + rounded length is always exact.
#[test]
fn crrl_cram_exact() {
    let mut r = Prng::seed_from_u64(0xC4A3_11E7);
    for i in 0..CASES {
        let (len, baseword) =
            if i < 4096 { (i as u32, r.next_u32()) } else { (r.next_u32(), r.next_u32()) };
        let rl = bounds::representable_length(len);
        assert!(rl >= len as u64);
        let mask = bounds::representable_alignment_mask(len);
        let base = baseword & mask;
        if base as u64 + rl <= TOP_MAX {
            let enc = bounds::encode(base, base as u64 + rl);
            assert!(enc.exact, "len={len} rl={rl} mask={mask:#x} base={base:#x}");
        }
    }
}

/// Any 15-bit pattern decodes to *some* bounds with top <= 2^33 and the
/// decode is a pure function of (field, addr) — no panics on junk.
#[test]
fn decode_total() {
    let mut r = Prng::seed_from_u64(0x00DE_C0DE);
    for raw in 0u16..(1 << 15) {
        let addr = r.next_u32();
        let b = bounds::decode(BoundsField(raw), addr);
        assert!(b.top < (1u64 << 33), "raw={raw:#x} addr={addr:#x}");
        assert_eq!(b, bounds::decode(BoundsField(raw), addr), "decode must be pure");
    }
}

/// Representability: staying inside the decoded bounds is always
/// representable (bounds are stable across in-bounds address moves).
#[test]
fn in_bounds_moves_are_representable() {
    let mut r = Prng::seed_from_u64(0x1B0);
    for_each_request(|base, top| {
        let enc = bounds::encode(base, top);
        let len = enc.bounds.length();
        if len > 0 {
            let addr = enc.bounds.base.wrapping_add((r.next_u32() as u64 % len) as u32);
            assert!(
                bounds::is_representable(enc.field, base, addr),
                "base={base:#x} top={top:#x} addr={addr:#x}"
            );
        }
    });
}

/// CapMem <-> CapPipe round-trips for arbitrary bit patterns.
#[test]
fn mem_pipe_roundtrip() {
    let mut r = Prng::seed_from_u64(0x3E3);
    for _ in 0..CASES {
        let m = CapMem::from_bits(r.next_u64(), r.next_bool());
        let p = CapPipe::from_mem(m);
        assert_eq!(p.to_mem(), m, "{m:?}");
    }
}

/// Monotonicity: any chain of derivations never widens rights.
#[test]
fn derivation_is_monotone() {
    let mut r = Prng::seed_from_u64(0x3031);
    for _ in 0..CASES {
        let addr = r.next_u32();
        let len = r.range_u32(0, (1 << 20) + 1);
        let addr2_off = r.next_u32();
        let len2 = r.range_u32(0, (1 << 20) + 1);
        let perm_mask = (r.next_u32() & 0xFFF) as u16;

        let root = CapPipe::almighty();
        let (c1, _) = root.set_addr(addr).set_bounds(len);
        if c1.tag() && c1.length() > 0 {
            let a2 = c1.base().wrapping_add(addr2_off % c1.length() as u32);
            let (c2, _) = c1.set_addr(a2).set_bounds(len2);
            let c2 = c2.and_perm(Perms::from_bits(perm_mask));
            if c2.tag() {
                assert!(c2.base() >= c1.base(), "addr={addr:#x} len={len} a2={a2:#x} len2={len2}");
                assert!(c2.top() <= c1.top(), "addr={addr:#x} len={len} a2={a2:#x} len2={len2}");
                assert!(c1.perms().contains(c2.perms()));
            }
        }
    }
}

/// An access that check_access admits is always within the decoded
/// bounds; one that's out of bounds is always refused.
#[test]
fn check_access_agrees_with_bounds() {
    let mut r = Prng::seed_from_u64(0x00AC_CE55);
    for _ in 0..CASES {
        let addr = r.next_u32();
        let len = r.range_u32(1, (1 << 16) + 1);
        let probe = r.next_u32();
        let w = *r.choose(&[1u32, 2, 4]);

        let (c, _) = CapPipe::almighty().set_addr(addr).set_bounds(len);
        if c.tag() {
            let ok = c.check_access(probe, AccessWidth::from_bytes(w), false, false).is_ok();
            let inside = probe as u64 >= c.base() as u64 && probe as u64 + w as u64 <= c.top();
            assert_eq!(ok, inside, "addr={addr:#x} len={len} probe={probe:#x} w={w}");
        }
    }
}

/// set_bounds_exact only keeps the tag when the request was exact.
#[test]
fn set_bounds_exact_is_exact() {
    let mut r = Prng::seed_from_u64(0x5E7B);
    for _ in 0..CASES {
        let addr = r.next_u32();
        let len = r.range_u32(0, (1 << 24) + 1);
        let c = CapPipe::almighty().set_addr(addr);
        let e = c.set_bounds_exact(len);
        let (res, exact) = c.set_bounds(len);
        assert_eq!(e.tag(), res.tag() && exact, "addr={addr:#x} len={len}");
        if e.tag() {
            assert_eq!(e.base(), addr);
            assert_eq!(e.top(), addr as u64 + len as u64);
        }
    }
}
