//! SM configuration, including the paper's three evaluation configurations.

use simt_mem::{map, DramConfig, TagCacheConfig};

/// How CHERI is provisioned in the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheriMode {
    /// No CHERI: plain RV32 with integer addresses and no memory safety.
    Off,
    /// CHERI enabled, with the given cost-amelioration options.
    On(CheriOpts),
}

impl CheriMode {
    /// Is CHERI enabled at all?
    pub fn enabled(self) -> bool {
        matches!(self, CheriMode::On(_))
    }

    /// The options, if enabled.
    pub fn opts(self) -> Option<CheriOpts> {
        match self {
            CheriMode::Off => None,
            CheriMode::On(o) => Some(o),
        }
    }
}

/// The cost-amelioration techniques of Section 3, each independently
/// switchable for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheriOpts {
    /// Compress the capability-metadata register file (detect uniform
    /// metadata vectors and store them in a metadata SRF). When off, the
    /// metadata register file stores full 33-bit vectors for every register
    /// (the naive "CHERI" configuration, 103% register-file overhead).
    pub compress_meta: bool,
    /// Share one VRF between the data and metadata register files; accessing
    /// a register whose data *and* metadata are both uncompressed costs an
    /// extra cycle (serialised read), and `CSC` pays an extra operand-fetch
    /// cycle against the single-read-port metadata SRF.
    pub shared_vrf: bool,
    /// Null-value optimisation in the metadata SRF.
    pub nvo: bool,
    /// Execute `CGetBase`, `CGetLen`, `CSetBounds[..]`, `CRRL` and `CRAM` in
    /// the shared function unit instead of per vector lane.
    pub sfu_cap_ops: bool,
    /// Static PC metadata restriction: PCC metadata is set per kernel launch
    /// and never changes, so active-thread selection compares integer PCs
    /// only.
    pub static_pcc: bool,
}

impl CheriOpts {
    /// The paper's unoptimised **CHERI** configuration.
    pub fn naive() -> Self {
        CheriOpts {
            compress_meta: false,
            shared_vrf: false,
            nvo: false,
            sfu_cap_ops: false,
            static_pcc: false,
        }
    }

    /// The paper's **CHERI (Optimised)** configuration.
    pub fn optimised() -> Self {
        CheriOpts {
            compress_meta: true,
            shared_vrf: true,
            nvo: true,
            sfu_cap_ops: true,
            static_pcc: true,
        }
    }
}

/// What the SM does when a warp traps.
///
/// Policies only affect *delivery*; detection is always warp-precise (the
/// memory stage checks every active lane before committing any of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrapPolicy {
    /// Abort the kernel on the first trap, reporting the full faulting-lane
    /// set. No lane of the faulting warp commits any architectural effect
    /// for the trapping instruction.
    #[default]
    Abort,
    /// Permanently disable the faulting lanes and keep the warp running.
    /// Each suppressed fault is recorded in the SM's fault log and counted
    /// in [`crate::FaultStats`]. Warp-wide faults (fetch, illegal
    /// instruction) disable the whole warp.
    MaskLanes,
}

/// Timing constants of the pipeline model, kept together for calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Scratchpad access latency (network + SRAM), excluding conflicts.
    pub scratch_latency: u32,
    /// Integer divide/remainder latency (iterative divider).
    pub div_latency: u32,
    /// Shared-function-unit fixed latency (pipeline depth), on top of the
    /// one-lane-per-cycle serialisation.
    pub sfu_latency: u32,
    /// Extra issue cycles for the second flit of a capability access.
    pub cap_access_extra: u32,
    /// Pipeline cycles consumed per register spill or fill.
    pub spill_cycles: u32,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            scratch_latency: 4,
            div_latency: 16,
            sfu_latency: 12,
            cap_access_extra: 1,
            spill_cycles: 4,
        }
    }
}

/// Full SM configuration.
#[derive(Debug, Clone, Copy)]
pub struct SmConfig {
    /// Number of resident warps (64 in the evaluation).
    pub warps: u32,
    /// Threads per warp / vector lanes (32 in the evaluation).
    pub lanes: u32,
    /// VRF capacity as slots (the evaluation baseline uses 3/8 of the
    /// architectural register count — see [`SmConfig::vrf_slots_frac`]).
    pub vrf_slots: u32,
    /// CHERI provisioning.
    pub cheri: CheriMode,
    /// DRAM channel model.
    pub dram: DramConfig,
    /// DRAM size in bytes.
    pub dram_size: u32,
    /// Tag cache geometry.
    pub tag_cache: TagCacheConfig,
    /// Pipeline timing constants.
    pub timing: Timing,
    /// SIMTight's proof-of-concept *compressed stack cache* (Section 4.4):
    /// uniform/affine spill vectors are cached compactly instead of going
    /// to DRAM. Off by default, as in the paper's evaluated configurations.
    pub stack_cache: bool,
    /// What to do when a warp traps (default: abort the kernel).
    pub trap_policy: TrapPolicy,
    /// Pre-decode the program into a micro-op ROM at load time and let
    /// converged warps retire straight-line basic blocks without
    /// re-entering the per-issue dispatcher. A host-model speed knob like
    /// [`crate::Sm::set_scalarise`]: statistics, trace events and memory
    /// contents are bit-identical either way (the differential suite pins
    /// this). On by default.
    pub predecode: bool,
}

impl SmConfig {
    /// A full-size SM as evaluated in the paper: 64 warps × 32 lanes with a
    /// 3/8-size VRF.
    pub fn full(cheri: CheriMode) -> Self {
        SmConfig::with_geometry(64, 32, cheri)
    }

    /// A small SM for fast unit tests.
    pub fn small(cheri: CheriMode) -> Self {
        SmConfig::with_geometry(8, 8, cheri)
    }

    /// Arbitrary geometry with the default 3/8 VRF.
    pub fn with_geometry(warps: u32, lanes: u32, cheri: CheriMode) -> Self {
        let total_regs = warps * 32;
        SmConfig {
            warps,
            lanes,
            vrf_slots: total_regs * 3 / 8,
            cheri,
            dram: DramConfig::default(),
            dram_size: map::DRAM_DEFAULT_SIZE,
            tag_cache: TagCacheConfig::default(),
            timing: Timing::default(),
            stack_cache: false,
            trap_policy: TrapPolicy::default(),
            predecode: true,
        }
    }

    /// Set the VRF size as a fraction (`num`/`den`) of the architectural
    /// vector register count, as in Table 2.
    pub fn vrf_slots_frac(mut self, num: u32, den: u32) -> Self {
        self.vrf_slots = self.warps * 32 * num / den;
        self
    }

    /// Threads in the SM.
    pub fn threads(&self) -> u32 {
        self.warps * self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        let base = SmConfig::full(CheriMode::Off);
        assert_eq!(base.threads(), 2048);
        assert_eq!(base.vrf_slots, 768);
        let opt = SmConfig::full(CheriMode::On(CheriOpts::optimised()));
        assert!(opt.cheri.enabled());
        assert!(opt.cheri.opts().unwrap().nvo);
        assert!(!CheriOpts::naive().compress_meta);
        let half = SmConfig::full(CheriMode::Off).vrf_slots_frac(1, 2);
        assert_eq!(half.vrf_slots, 1024);
    }
}
