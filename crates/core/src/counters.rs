//! Performance counters collected during a kernel run.
//!
//! These are the model's equivalent of SIMTight's hardware performance
//! counters, sized to regenerate Figures 6, 10, 11, 12 and 13.

use simt_mem::{DramStats, ScratchStats, TagCacheStats};
use simt_regfile::RfStats;
use std::collections::BTreeMap;

/// Pipeline stall cycles by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Extra operand-fetch cycles for `CSC` (single-read-port metadata SRF).
    pub csc_serialisation: u64,
    /// Serialised data+metadata reads against the shared VRF.
    pub shared_vrf_conflict: u64,
    /// Register spill/fill handling cycles.
    pub spill_fill: u64,
    /// Second flits of capability-wide accesses (`CLC`/`CSC`).
    pub cap_multi_flit: u64,
    /// Cycles with no warp ready to issue (memory/SFU latency not hidden).
    pub idle: u64,
}

impl StallBreakdown {
    /// All stall cycles attributable to CHERI mechanisms.
    pub fn cheri_stalls(&self) -> u64 {
        self.csc_serialisation + self.shared_vrf_conflict + self.cap_multi_flit
    }
}

/// Statistics of one kernel run.
///
/// `PartialEq` (not `Eq` — two fields are time-averaged `f64`s) lets the
/// parallel-runner determinism tests compare whole suites structurally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Total cycles from launch to the last warp's termination.
    pub cycles: u64,
    /// Warp-instructions issued.
    pub instrs: u64,
    /// Thread-instructions executed (warp-instructions × active lanes).
    pub thread_instrs: u64,
    /// Executed CHERI instructions by mnemonic (Figure 6). Standard
    /// encodings executed in capability mode count under their CHERI name
    /// (`lw` → `CLW`, `jal` → `CJAL`, ...).
    pub cheri_histogram: BTreeMap<&'static str, u64>,
    /// Stall cycles by cause.
    pub stalls: StallBreakdown,
    /// DRAM traffic.
    pub dram: DramStats,
    /// Tag-cache behaviour.
    pub tag_cache: TagCacheStats,
    /// Scratchpad behaviour.
    pub scratch: ScratchStats,
    /// Data register file statistics.
    pub data_rf: RfStats,
    /// Metadata register file statistics (zeroed when CHERI is off).
    pub meta_rf: RfStats,
    /// Time-averaged number of data vectors resident in the VRF.
    pub avg_data_vrf_resident: f64,
    /// Time-averaged number of metadata vectors resident in the VRF.
    pub avg_meta_vrf_resident: f64,
    /// Peak data vectors resident in the VRF.
    pub peak_data_vrf_resident: u32,
    /// Peak metadata vectors resident in the VRF.
    pub peak_meta_vrf_resident: u32,
    /// Max architectural registers per thread that ever held a capability
    /// (Figure 11).
    pub cap_regs_used: u32,
    /// Union bitmask of registers that ever held a capability (bit r =
    /// register r) — verifies the §4.3 capability-register-limit forecast.
    pub cap_regs_mask: u32,
    /// SFU requests served (FP div/sqrt and, when offloaded, cap ops).
    pub sfu_requests: u64,
    /// Warp-level barrier waits.
    pub barriers: u64,
    /// Warp accesses absorbed by the compressed stack cache (zero unless
    /// the Section-4.4 proof-of-concept feature is enabled).
    pub stack_cache_hits: u64,
}

impl KernelStats {
    /// Total executed CHERI instructions.
    pub fn cheri_instrs(&self) -> u64 {
        self.cheri_histogram.values().sum()
    }

    /// Fraction of executed instructions that were CHERI instructions.
    pub fn cheri_fraction(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            self.cheri_instrs() as f64 / self.instrs as f64
        }
    }

    /// Instructions per cycle (warp-instruction throughput).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// DRAM bytes moved per cycle (Figure 12's bandwidth usage).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram.total_bytes() as f64 / self.cycles as f64
        }
    }

    /// Record one executed CHERI op.
    pub(crate) fn count_cheri(&mut self, mnemonic: &'static str, n: u64) {
        *self.cheri_histogram.entry(mnemonic).or_insert(0) += n;
    }

    /// Accumulate another run's statistics (for multi-launch benchmarks
    /// such as the global bitonic sorter's phase kernels). Cycle-weighted
    /// averages are re-derived; peaks take the maximum.
    pub fn accumulate(&mut self, other: &KernelStats) {
        let w_old = self.cycles as f64;
        let w_new = other.cycles as f64;
        let total = (w_old + w_new).max(1.0);
        self.avg_data_vrf_resident =
            (self.avg_data_vrf_resident * w_old + other.avg_data_vrf_resident * w_new) / total;
        self.avg_meta_vrf_resident =
            (self.avg_meta_vrf_resident * w_old + other.avg_meta_vrf_resident * w_new) / total;
        self.cycles += other.cycles;
        self.instrs += other.instrs;
        self.thread_instrs += other.thread_instrs;
        for (k, v) in &other.cheri_histogram {
            *self.cheri_histogram.entry(k).or_insert(0) += v;
        }
        self.stalls.csc_serialisation += other.stalls.csc_serialisation;
        self.stalls.shared_vrf_conflict += other.stalls.shared_vrf_conflict;
        self.stalls.spill_fill += other.stalls.spill_fill;
        self.stalls.cap_multi_flit += other.stalls.cap_multi_flit;
        self.stalls.idle += other.stalls.idle;
        self.dram.read_transactions += other.dram.read_transactions;
        self.dram.write_transactions += other.dram.write_transactions;
        self.dram.tag_transactions += other.dram.tag_transactions;
        self.dram.busy_cycles += other.dram.busy_cycles;
        self.tag_cache.hits += other.tag_cache.hits;
        self.tag_cache.misses += other.tag_cache.misses;
        self.tag_cache.writebacks += other.tag_cache.writebacks;
        self.scratch.accesses += other.scratch.accesses;
        self.scratch.conflict_cycles += other.scratch.conflict_cycles;
        self.data_rf.spills += other.data_rf.spills;
        self.data_rf.fills += other.data_rf.fills;
        self.data_rf.scalar_writes += other.data_rf.scalar_writes;
        self.data_rf.vector_writes += other.data_rf.vector_writes;
        self.data_rf.peak_resident = self.data_rf.peak_resident.max(other.data_rf.peak_resident);
        self.meta_rf.spills += other.meta_rf.spills;
        self.meta_rf.fills += other.meta_rf.fills;
        self.meta_rf.scalar_writes += other.meta_rf.scalar_writes;
        self.meta_rf.vector_writes += other.meta_rf.vector_writes;
        self.meta_rf.peak_resident = self.meta_rf.peak_resident.max(other.meta_rf.peak_resident);
        self.peak_data_vrf_resident = self.peak_data_vrf_resident.max(other.peak_data_vrf_resident);
        self.peak_meta_vrf_resident = self.peak_meta_vrf_resident.max(other.peak_meta_vrf_resident);
        self.cap_regs_used = self.cap_regs_used.max(other.cap_regs_used);
        self.cap_regs_mask |= other.cap_regs_mask;
        self.sfu_requests += other.sfu_requests;
        self.barriers += other.barriers;
        self.stack_cache_hits += other.stack_cache_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = KernelStats { cycles: 1000, instrs: 800, ..KernelStats::default() };
        s.count_cheri("CLW", 60);
        s.count_cheri("CIncOffsetImm", 20);
        assert_eq!(s.cheri_instrs(), 80);
        assert!((s.cheri_fraction() - 0.1).abs() < 1e-12);
        assert!((s.ipc() - 0.8).abs() < 1e-12);
    }
}
