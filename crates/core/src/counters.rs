//! Performance counters collected during a kernel run.
//!
//! These are the model's equivalent of SIMTight's hardware performance
//! counters, sized to regenerate Figures 6, 10, 11, 12 and 13. Every field
//! documents the **counters → figures contract**: which SIMTight counter it
//! models and which paper figure/table consumes it (the same table appears
//! in `EXPERIMENTS.md`, with the `repro` invocation that regenerates each
//! figure). The structured tracing layer (`simt-trace`) emits one event per
//! counter increment, so an exported trace reconciles *exactly* with these
//! aggregates — `crates/bench/src/trace.rs::reconcile` is the executable
//! form of that contract.

use simt_mem::{DramStats, ScratchStats, TagCacheStats};
use simt_regfile::RfStats;
use std::collections::BTreeMap;

/// Pipeline stall cycles by cause.
///
/// Attributes the cycle gap between `cycles` and `instrs` to the CHERI
/// mechanisms of Section 3, explaining *where* the Figure 13 slowdown comes
/// from. SIMTight exposes the same information as pipeline-suspension
/// counters; the field names here are also the stable `cause` names used by
/// `simt_trace::StallCause`, and per-cause cycle sums over a trace's
/// `stall` events reconcile exactly with these fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Extra operand-fetch cycles for `CSC` (single-read-port metadata SRF).
    /// Models SIMTight's capability-store serialisation suspension; part of
    /// the Figure 13 cycle overhead attributed to Section 3.1's compressed
    /// metadata register file.
    pub csc_serialisation: u64,
    /// Serialised data+metadata reads against the shared VRF. Models the
    /// shared-VRF port-conflict suspension of Section 3.2; part of the
    /// Figure 13 cycle overhead.
    pub shared_vrf_conflict: u64,
    /// Register spill/fill handling cycles. Models SIMTight's dynamic
    /// register-spill suspension (Section 2.3's scalarising register file);
    /// feeds the Table 2 cycle-overhead column and Figure 13.
    pub spill_fill: u64,
    /// Second flits of capability-wide accesses (`CLC`/`CSC`). Models the
    /// extra occupancy of 64-bit capability transfers on a 32-bit datapath
    /// (Section 3.1); part of the Figure 13 cycle overhead.
    pub cap_multi_flit: u64,
    /// Cycles with no warp ready to issue (memory/SFU latency not hidden).
    /// Models SIMTight's null-issue (pipeline-bubble) counter; the residual
    /// term when decomposing Figure 13 slowdowns.
    pub idle: u64,
}

impl StallBreakdown {
    /// All stall cycles attributable to CHERI mechanisms.
    pub fn cheri_stalls(&self) -> u64 {
        self.csc_serialisation + self.shared_vrf_conflict + self.cap_multi_flit
    }
}

/// Trap and fault counters (the trap-precision subsystem).
///
/// `traps` counts warp-precise trap deliveries; `faulting_lanes` sums the
/// popcount of each trap's faulting-lane mask (a single trap can attribute
/// many lanes); `suppressed` counts traps absorbed by
/// `TrapPolicy::MaskLanes` (their lanes disabled, the warp kept running).
/// Under the default `Abort` policy a kernel either finishes with all three
/// zero or aborts on its first trap, so these counters never perturb the
/// golden-stats fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Warp-precise traps raised (delivered or suppressed).
    pub traps: u64,
    /// Total faulting lanes across all traps.
    pub faulting_lanes: u64,
    /// Traps suppressed under `TrapPolicy::MaskLanes`.
    pub suppressed: u64,
}

/// Statistics of one kernel run.
///
/// `PartialEq` (not `Eq` — two fields are time-averaged `f64`s) lets the
/// parallel-runner determinism tests compare whole suites structurally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Total cycles from launch to the last warp's termination. Models
    /// SIMTight's cycle counter (CSR `mcycle`); the numerator of every
    /// runtime-overhead figure — Table 2, Figures 13 and 14 all compare
    /// per-configuration `cycles` ratios.
    pub cycles: u64,
    /// Warp-instructions issued. Models SIMTight's instruction-retire
    /// counter (CSR `minstret`) at warp granularity; with `cycles` it gives
    /// the IPC used in the Figure 13 discussion. Equals the number of
    /// `issue` events in a structured trace.
    pub instrs: u64,
    /// Thread-instructions executed (warp-instructions × active lanes).
    /// Models SIMTight's SIMT-convergence counter pair (instructions ×
    /// active-thread count), quantifying divergence; equals the sum of
    /// `issue`-event active-mask popcounts in a trace.
    pub thread_instrs: u64,
    /// Executed CHERI instructions by mnemonic — the histogram behind
    /// **Figure 6** (CHERI instruction execution frequency). Standard
    /// encodings executed in capability mode count under their CHERI name
    /// (`lw` → `CLW`, `jal` → `CJAL`, ...).
    pub cheri_histogram: BTreeMap<&'static str, u64>,
    /// Stall cycles by cause — the Figure 13 overhead decomposition; see
    /// [`StallBreakdown`] for the per-field contract.
    pub stalls: StallBreakdown,
    /// DRAM traffic. Models SIMTight's DRAM-access counters; total bytes
    /// feed **Figure 12** (DRAM bandwidth usage) and the Table 2
    /// memory-overhead column, and `tag_transactions` isolates the tag
    /// controller's share (Section 2.4).
    pub dram: DramStats,
    /// Tag-cache behaviour (hits/misses/writebacks). Models the tag
    /// controller's cache counters backing the Section 2.4 claim that a
    /// modest tag cache makes tag traffic "almost zero" (`repro tagsweep`).
    pub tag_cache: TagCacheStats,
    /// Scratchpad behaviour (accesses and bank-conflict serialisation
    /// cycles). Models SIMTight's shared-local-memory counters; background
    /// term of the Figure 13 cycle decomposition.
    pub scratch: ScratchStats,
    /// Data register file statistics (spills, fills, scalar/vector writes).
    /// Models the scalarising-register-file counters of Section 2.3;
    /// baseline term of **Figure 10** and Table 2.
    pub data_rf: RfStats,
    /// Metadata register file statistics (zeroed when CHERI is off). The
    /// Section 3.1 compressed capability-metadata file's counters; CHERI
    /// term of **Figure 10**.
    pub meta_rf: RfStats,
    /// Time-averaged number of data vectors resident in the VRF. Models
    /// SIMTight's vector-register residency counter (sampled per cycle);
    /// the "average" series of **Figure 10**'s left half.
    pub avg_data_vrf_resident: f64,
    /// Time-averaged number of metadata vectors resident in the VRF — the
    /// "average" series of **Figure 10**'s right half, and the quantity the
    /// null-value optimisation (Section 3.2) shrinks.
    pub avg_meta_vrf_resident: f64,
    /// Peak data vectors resident in the VRF. Sizes the VRF so dynamic
    /// spilling stays rare — the "peak" series of **Figure 10** (left).
    pub peak_data_vrf_resident: u32,
    /// Peak metadata vectors resident in the VRF — the "peak" series of
    /// **Figure 10** (right).
    pub peak_meta_vrf_resident: u32,
    /// Max architectural registers per thread that ever held a capability
    /// (**Figure 11**: capability registers in use).
    pub cap_regs_used: u32,
    /// Union bitmask of registers that ever held a capability (bit r =
    /// register r) — verifies the §4.3 capability-register-limit forecast.
    pub cap_regs_mask: u32,
    /// SFU requests served (FP div/sqrt and, when offloaded, cap ops).
    /// Models the shared-function-unit request counter of Section 3.3;
    /// supports the claim that offloading cold CHERI ops barely loads the
    /// SFU. Equals the number of `sfu` events in a trace.
    pub sfu_requests: u64,
    /// Warp-level barrier waits. Models SIMTight's barrier counter; equals
    /// the number of `barrier` arrival events in a trace.
    pub barriers: u64,
    /// Warp accesses absorbed by the compressed stack cache (zero unless
    /// the Section-4.4 proof-of-concept feature is enabled; `repro ablate`
    /// reports its effect).
    pub stack_cache_hits: u64,
    /// Warp-instructions the execute stage ran once per warp over compact
    /// (uniform/affine) operands instead of lane by lane — the dynamic
    /// scalarisation rate of Section 2.3's scalarising register file,
    /// reported by `repro scalarise`. Equals the number of `issue` events
    /// whose `class` is `scalarised` in a structured trace; the remaining
    /// `instrs - scalarised_issues` issues carry `per_lane`. Timing-neutral:
    /// the fast path is bit-identical to the lane-wise one, so this counter
    /// never changes any other statistic.
    pub scalarised_issues: u64,
    /// Trap/fault counters — see [`FaultStats`]. All-zero on a clean run.
    pub faults: FaultStats,
}

impl KernelStats {
    /// Total executed CHERI instructions.
    pub fn cheri_instrs(&self) -> u64 {
        self.cheri_histogram.values().sum()
    }

    /// Fraction of executed instructions that were CHERI instructions.
    pub fn cheri_fraction(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            self.cheri_instrs() as f64 / self.instrs as f64
        }
    }

    /// Instructions per cycle (warp-instruction throughput).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// DRAM bytes moved per cycle (Figure 12's bandwidth usage).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram.total_bytes() as f64 / self.cycles as f64
        }
    }

    /// Record one executed CHERI op.
    pub(crate) fn count_cheri(&mut self, mnemonic: &'static str, n: u64) {
        *self.cheri_histogram.entry(mnemonic).or_insert(0) += n;
    }

    /// Accumulate another run's statistics (for multi-launch benchmarks
    /// such as the global bitonic sorter's phase kernels). Cycle-weighted
    /// averages are re-derived; peaks take the maximum.
    pub fn accumulate(&mut self, other: &KernelStats) {
        let w_old = self.cycles as f64;
        let w_new = other.cycles as f64;
        let total = (w_old + w_new).max(1.0);
        self.avg_data_vrf_resident =
            (self.avg_data_vrf_resident * w_old + other.avg_data_vrf_resident * w_new) / total;
        self.avg_meta_vrf_resident =
            (self.avg_meta_vrf_resident * w_old + other.avg_meta_vrf_resident * w_new) / total;
        self.cycles += other.cycles;
        self.instrs += other.instrs;
        self.thread_instrs += other.thread_instrs;
        for (k, v) in &other.cheri_histogram {
            *self.cheri_histogram.entry(k).or_insert(0) += v;
        }
        self.stalls.csc_serialisation += other.stalls.csc_serialisation;
        self.stalls.shared_vrf_conflict += other.stalls.shared_vrf_conflict;
        self.stalls.spill_fill += other.stalls.spill_fill;
        self.stalls.cap_multi_flit += other.stalls.cap_multi_flit;
        self.stalls.idle += other.stalls.idle;
        self.dram.read_transactions += other.dram.read_transactions;
        self.dram.write_transactions += other.dram.write_transactions;
        self.dram.tag_transactions += other.dram.tag_transactions;
        self.dram.busy_cycles += other.dram.busy_cycles;
        self.tag_cache.hits += other.tag_cache.hits;
        self.tag_cache.misses += other.tag_cache.misses;
        self.tag_cache.writebacks += other.tag_cache.writebacks;
        self.scratch.accesses += other.scratch.accesses;
        self.scratch.conflict_cycles += other.scratch.conflict_cycles;
        self.data_rf.spills += other.data_rf.spills;
        self.data_rf.fills += other.data_rf.fills;
        self.data_rf.scalar_writes += other.data_rf.scalar_writes;
        self.data_rf.vector_writes += other.data_rf.vector_writes;
        self.data_rf.peak_resident = self.data_rf.peak_resident.max(other.data_rf.peak_resident);
        self.meta_rf.spills += other.meta_rf.spills;
        self.meta_rf.fills += other.meta_rf.fills;
        self.meta_rf.scalar_writes += other.meta_rf.scalar_writes;
        self.meta_rf.vector_writes += other.meta_rf.vector_writes;
        self.meta_rf.peak_resident = self.meta_rf.peak_resident.max(other.meta_rf.peak_resident);
        self.peak_data_vrf_resident = self.peak_data_vrf_resident.max(other.peak_data_vrf_resident);
        self.peak_meta_vrf_resident = self.peak_meta_vrf_resident.max(other.peak_meta_vrf_resident);
        self.cap_regs_used = self.cap_regs_used.max(other.cap_regs_used);
        self.cap_regs_mask |= other.cap_regs_mask;
        self.sfu_requests += other.sfu_requests;
        self.barriers += other.barriers;
        self.stack_cache_hits += other.stack_cache_hits;
        self.scalarised_issues += other.scalarised_issues;
        self.faults.traps += other.faults.traps;
        self.faults.faulting_lanes += other.faults.faulting_lanes;
        self.faults.suppressed += other.faults.suppressed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = KernelStats { cycles: 1000, instrs: 800, ..KernelStats::default() };
        s.count_cheri("CLW", 60);
        s.count_cheri("CIncOffsetImm", 20);
        assert_eq!(s.cheri_instrs(), 80);
        assert!((s.cheri_fraction() - 0.1).abs() < 1e-12);
        assert!((s.ipc() - 0.8).abs() < 1e-12);
    }
}
