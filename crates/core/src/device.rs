//! The device layer: N streaming multiprocessors sharing one memory
//! subsystem.
//!
//! A [`Device`] owns `sms` copies of [`Sm`] plus — when `sms > 1` — a
//! single *shared* memory subsystem (functional DRAM, the DRAM channel
//! timing model, and the tag controller) that the SMs arbitrate for. Each
//! SM keeps its own scratchpad, coalescing unit and register files, exactly
//! like SIMTight's per-core local resources.
//!
//! **Single-SM devices are bit-identical to a bare [`Sm`]**: with `sms ==
//! 1` there is no shared state, no arbitration, and every call delegates
//! straight to the one SM — the golden-stats regression test in
//! `crates/bench` pins this down for the whole benchmark suite.
//!
//! # Arbitration model
//!
//! For `sms > 1` the device interleaves the SMs at instruction granularity:
//! each step it picks the *not-yet-finished SM with the smallest local
//! cycle* and advances it by one scheduler step with the shared subsystem
//! installed. The DRAM channel's `free_at` horizon and the tag cache's
//! line state therefore carry across SMs, which is what creates
//! contention: an SM whose transactions queue behind another SM's pays
//! real cycles, visible in `DramStats::cross_sm_wait_cycles` and the tag
//! cache's cross-SM conflict evictions. Because the pick is deterministic
//! (lowest SM index wins ties), a multi-SM run is exactly reproducible.
//!
//! # Work distribution
//!
//! The block dispatcher is the existing grid-stride loop in every kernel's
//! prologue: the device gives SM `k` the hart-id base `k × threads_per_sm`
//! and tells every SM the *device-wide* thread count, so `blockIdx =
//! hartid / blockDim` partitions the grid across SMs with no kernel or
//! compiler changes. Barriers stay SM-local (a thread block never spans
//! SMs).

use crate::config::SmConfig;
use crate::counters::KernelStats;
use crate::pipeline::StepOutcome;
use crate::sm::Sm;
use crate::trap::RunError;
use cheri_cap::CapMem;
use simt_mem::{map, Dram, MainMemory, TagController};

/// The subsystem the SMs share: functional DRAM contents, the DRAM channel
/// timing model, and the tag controller. Parked here between steps and
/// swap-installed into whichever SM is about to execute.
#[derive(Debug)]
struct Shared {
    mem: MainMemory,
    dram: Dram,
    tags: TagController,
}

/// A GPU device: N SMs plus (for N > 1) an arbitrated shared memory
/// subsystem. See the module documentation for the arbitration model.
#[derive(Debug)]
pub struct Device {
    sms: Vec<Sm>,
    /// `Some` iff `sms.len() > 1`; holds the shared subsystem whenever it
    /// is not installed in an SM (i.e. always, outside [`Device::run`]).
    shared: Option<Shared>,
    /// Per-SM end-of-run statistics from the last completed run.
    sm_stats: Vec<Option<KernelStats>>,
    /// Combined device statistics from the last completed run.
    stats: KernelStats,
}

impl Device {
    /// Build a device of `sms` identical SMs. With `sms == 1` this is
    /// exactly a bare [`Sm`]; with more, the SMs share DRAM and the tag
    /// controller and split the grid via their hart-id placement.
    ///
    /// # Panics
    ///
    /// Panics if `sms == 0`.
    pub fn new(cfg: SmConfig, sms: u32) -> Self {
        assert!(sms >= 1, "a device needs at least one SM");
        let threads = cfg.threads();
        let mut cores: Vec<Sm> = (0..sms).map(|_| Sm::new(cfg)).collect();
        for (k, sm) in cores.iter_mut().enumerate() {
            sm.set_hart_base(k as u32 * threads);
            sm.set_device_threads(sms * threads);
            // Multi-SM arbitration interleaves SMs at instruction
            // granularity, so an SM must never retire more than one issue
            // per scheduler step: basic-block runs stay single-SM only.
            sm.block_runs = sms == 1;
        }
        let shared = (sms > 1).then(|| {
            // Move SM 0's subsystem out as the shared one and park stubs in
            // every SM; the stubs are swapped out before any SM executes.
            let mem = std::mem::replace(&mut cores[0].mem, MainMemory::new(map::DRAM_BASE, 0));
            let dram = std::mem::replace(&mut cores[0].dram, Dram::new(cfg.dram));
            let tags = std::mem::replace(
                &mut cores[0].tags,
                TagController::new(cfg.tag_cache, cfg.cheri.enabled()),
            );
            for sm in &mut cores[1..] {
                sm.mem = MainMemory::new(map::DRAM_BASE, 0);
            }
            Shared { mem, dram, tags }
        });
        let n = cores.len();
        Device { sms: cores, shared, sm_stats: vec![None; n], stats: KernelStats::default() }
    }

    /// Number of SMs.
    pub fn num_sms(&self) -> u32 {
        self.sms.len() as u32
    }

    /// The (per-SM) configuration.
    pub fn config(&self) -> &SmConfig {
        self.sms[0].config()
    }

    /// SM `k` (panics if out of range).
    pub fn sm(&self, k: usize) -> &Sm {
        &self.sms[k]
    }

    /// Mutable SM `k` (panics if out of range). Note that on a multi-SM
    /// device an SM's own `memory()` is a parked stub — use
    /// [`Device::memory`] for the real DRAM contents.
    pub fn sm_mut(&mut self, k: usize) -> &mut Sm {
        &mut self.sms[k]
    }

    /// The device's functional DRAM (the shared one on a multi-SM device).
    pub fn memory(&self) -> &MainMemory {
        match &self.shared {
            Some(sh) => &sh.mem,
            None => self.sms[0].memory(),
        }
    }

    /// Mutable device DRAM.
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        match &mut self.shared {
            Some(sh) => &mut sh.mem,
            None => self.sms[0].memory_mut(),
        }
    }

    /// Load the kernel program into every SM's instruction memory.
    pub fn load_program(&mut self, words: &[u32]) {
        for sm in &mut self.sms {
            sm.load_program(words);
        }
    }

    /// Set a special capability register on every SM.
    pub fn set_scr(&mut self, index: u8, cap: CapMem) {
        for sm in &mut self.sms {
            sm.set_scr(index, cap);
        }
    }

    /// Tell every SM where the (device-wide) stack arena lives.
    pub fn set_stack_region(&mut self, base: u32, size: u32) {
        for sm in &mut self.sms {
            sm.set_stack_region(base, size);
        }
    }

    /// Set the warps-per-block barrier grouping on every SM.
    pub fn set_block_warps(&mut self, warps: u32) {
        for sm in &mut self.sms {
            sm.set_block_warps(warps);
        }
    }

    /// Install (or clear) a GPUShield bounds table on every SM.
    pub fn set_bounds_table(&mut self, table: Option<crate::shield::BoundsTable>) {
        for sm in &mut self.sms {
            sm.set_bounds_table(table.clone());
        }
    }

    /// Enable or disable program pre-decoding on every SM (see
    /// [`Sm::set_predecode`]). A host-model speed knob: results are
    /// bit-identical either way.
    pub fn set_predecode(&mut self, enabled: bool) {
        for sm in &mut self.sms {
            sm.set_predecode(enabled);
        }
    }

    /// Reset every SM and the shared subsystem's statistics for a fresh
    /// launch (memory contents are preserved).
    pub fn reset(&mut self) {
        for sm in &mut self.sms {
            sm.reset();
        }
        if let Some(sh) = &mut self.shared {
            sh.dram.reset_stats();
            sh.tags.reset();
        }
        self.sm_stats = vec![None; self.sms.len()];
        self.stats = KernelStats::default();
    }

    /// Swap the shared subsystem into SM `k` (and point the contention
    /// accounting at it). Must be balanced by [`Device::uninstall`].
    fn install(&mut self, k: usize) {
        let sh = self.shared.as_mut().expect("install() is multi-SM only");
        sh.dram.set_accessor(k as u32);
        sh.tags.set_accessor(k as u32);
        let sm = &mut self.sms[k];
        std::mem::swap(&mut sm.mem, &mut sh.mem);
        std::mem::swap(&mut sm.dram, &mut sh.dram);
        std::mem::swap(&mut sm.tags, &mut sh.tags);
    }

    /// Swap the shared subsystem back out of SM `k`.
    fn uninstall(&mut self, k: usize) {
        let sh = self.shared.as_mut().expect("uninstall() is multi-SM only");
        let sm = &mut self.sms[k];
        std::mem::swap(&mut sm.mem, &mut sh.mem);
        std::mem::swap(&mut sm.dram, &mut sh.dram);
        std::mem::swap(&mut sm.tags, &mut sh.tags);
    }

    /// Run every SM to completion and return the combined device
    /// statistics. `max_cycles` bounds each SM's *local* clock.
    ///
    /// # Errors
    ///
    /// The first SM to trap, dead-lock or time out aborts the whole run
    /// with its error (deterministic, because the arbitration is). A
    /// trapped device stays queryable: every SM that ran — including the
    /// trapped one — has its partial statistics snapshotted, so
    /// [`Device::sm_stats`] and [`Device::stats`] report the state at the
    /// moment of the fault instead of panicking.
    pub fn run(&mut self, max_cycles: u64) -> Result<KernelStats, RunError> {
        if self.shared.is_none() {
            // Single SM: the classic path, bit-identical to `Sm::run`.
            let stats = match self.sms[0].run(max_cycles) {
                Ok(s) => s,
                Err(e) => {
                    // Snapshot the partial counters so the device stays
                    // queryable after the trap.
                    let partial = self.sms[0].finalise();
                    self.sm_stats[0] = Some(partial.clone());
                    self.stats = partial;
                    return Err(e);
                }
            };
            self.sm_stats[0] = Some(stats.clone());
            self.stats = stats.clone();
            return Ok(stats);
        }
        let n = self.sms.len();
        let mut live: Vec<usize> = (0..n).collect();
        while !live.is_empty() {
            // Deterministic arbitration: the live SM with the smallest
            // local cycle steps next; ties go to the lowest index.
            let k = *live.iter().min_by_key(|&&k| (self.sms[k].cycle(), k)).expect("nonempty");
            self.install(k);
            let outcome = match self.sms[k].step(max_cycles) {
                Ok(o) => o,
                Err(e) => {
                    // Finalise the trapped SM while the shared subsystem is
                    // still installed (its snapshot sees the live
                    // counters), then take partial snapshots of the other
                    // still-running SMs so the whole device is queryable.
                    self.sm_stats[k] = Some(self.sms[k].finalise());
                    self.uninstall(k);
                    for &other in &live {
                        if other != k {
                            self.sm_stats[other] = Some(self.sms[other].finalise());
                        }
                    }
                    self.stats = self.combine();
                    return Err(e);
                }
            };
            if outcome == StepOutcome::Done {
                // Finalise while the shared subsystem is still installed so
                // the per-SM snapshot sees the live counters.
                self.sm_stats[k] = Some(self.sms[k].finalise());
                live.retain(|&x| x != k);
            }
            self.uninstall(k);
        }
        self.stats = self.combine();
        Ok(self.stats.clone())
    }

    /// Per-SM statistics of the last completed run (`None` before any run).
    /// On a multi-SM device the `dram`/`tag_cache` sub-structs are
    /// snapshots of the *shared* subsystem at that SM's completion time —
    /// use the combined device statistics for end-of-run totals.
    pub fn sm_stats(&self, k: usize) -> Option<&KernelStats> {
        self.sm_stats[k].as_ref()
    }

    /// Combined statistics of the last completed run.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Combine per-SM statistics into device totals: pipeline counters
    /// sum, `cycles` is the slowest SM (the SMs run concurrently),
    /// residency averages are issue-weighted, peaks take the maximum, and
    /// the shared `dram`/`tag_cache` counters are read once from the
    /// shared subsystem rather than summed across per-SM snapshots.
    /// Tolerates missing per-SM snapshots (an aborted run combines only
    /// the SMs that have one).
    fn combine(&self) -> KernelStats {
        let mut out = KernelStats::default();
        let mut weighted_data = 0.0;
        let mut weighted_meta = 0.0;
        for s in self.sm_stats.iter().flatten() {
            out.cycles = out.cycles.max(s.cycles);
            out.instrs += s.instrs;
            out.thread_instrs += s.thread_instrs;
            out.scalarised_issues += s.scalarised_issues;
            for (k, v) in &s.cheri_histogram {
                *out.cheri_histogram.entry(k).or_insert(0) += v;
            }
            out.stalls.csc_serialisation += s.stalls.csc_serialisation;
            out.stalls.shared_vrf_conflict += s.stalls.shared_vrf_conflict;
            out.stalls.spill_fill += s.stalls.spill_fill;
            out.stalls.cap_multi_flit += s.stalls.cap_multi_flit;
            out.stalls.idle += s.stalls.idle;
            out.scratch.accesses += s.scratch.accesses;
            out.scratch.conflict_cycles += s.scratch.conflict_cycles;
            out.data_rf.spills += s.data_rf.spills;
            out.data_rf.fills += s.data_rf.fills;
            out.data_rf.scalar_writes += s.data_rf.scalar_writes;
            out.data_rf.vector_writes += s.data_rf.vector_writes;
            out.data_rf.peak_resident = out.data_rf.peak_resident.max(s.data_rf.peak_resident);
            out.meta_rf.spills += s.meta_rf.spills;
            out.meta_rf.fills += s.meta_rf.fills;
            out.meta_rf.scalar_writes += s.meta_rf.scalar_writes;
            out.meta_rf.vector_writes += s.meta_rf.vector_writes;
            out.meta_rf.peak_resident = out.meta_rf.peak_resident.max(s.meta_rf.peak_resident);
            weighted_data += s.avg_data_vrf_resident * s.instrs as f64;
            weighted_meta += s.avg_meta_vrf_resident * s.instrs as f64;
            out.peak_data_vrf_resident = out.peak_data_vrf_resident.max(s.peak_data_vrf_resident);
            out.peak_meta_vrf_resident = out.peak_meta_vrf_resident.max(s.peak_meta_vrf_resident);
            out.cap_regs_used = out.cap_regs_used.max(s.cap_regs_used);
            out.cap_regs_mask |= s.cap_regs_mask;
            out.sfu_requests += s.sfu_requests;
            out.barriers += s.barriers;
            out.stack_cache_hits += s.stack_cache_hits;
            out.faults.traps += s.faults.traps;
            out.faults.faulting_lanes += s.faults.faulting_lanes;
            out.faults.suppressed += s.faults.suppressed;
        }
        if out.instrs > 0 {
            out.avg_data_vrf_resident = weighted_data / out.instrs as f64;
            out.avg_meta_vrf_resident = weighted_meta / out.instrs as f64;
        }
        if let Some(sh) = &self.shared {
            out.dram = sh.dram.stats();
            out.tag_cache = sh.tags.stats();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheriMode;
    use simt_isa::{csr, AluOp, Instr, Reg, SimtOp, StoreWidth};

    /// Each thread stores its *global* hart id; both SMs' stores land in
    /// the shared DRAM, and the combined stats sum the two pipelines.
    #[test]
    fn two_sms_share_memory_and_split_harts() {
        let cfg = SmConfig::small(CheriMode::Off);
        let threads = cfg.threads();
        let mut dev = Device::new(cfg, 2);
        let prog: Vec<u32> = [
            Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO },
            Instr::OpImm { op: AluOp::Sll, rd: Reg::A1, rs1: Reg::A0, imm: 2 },
            Instr::Lui { rd: Reg::A2, imm: map::DRAM_BASE },
            Instr::Op { op: AluOp::Add, rd: Reg::A1, rs1: Reg::A1, rs2: Reg::A2 },
            Instr::Store { w: StoreWidth::W, rs2: Reg::A0, rs1: Reg::A1, off: 0 },
            Instr::Simt { op: SimtOp::Terminate },
        ]
        .iter()
        .map(|i| i.encode())
        .collect();
        dev.load_program(&prog);
        dev.reset();
        let stats = dev.run(100_000).expect("device run");
        for hart in 0..(2 * threads) {
            assert_eq!(
                dev.memory().read(map::DRAM_BASE + hart * 4, 4).unwrap(),
                hart,
                "hart {hart} stored its global id"
            );
        }
        // Both SMs issued the same program: combined instrs are double one
        // SM's, and the device clock is the slowest SM, not the sum.
        let s0 = dev.sm_stats(0).unwrap();
        let s1 = dev.sm_stats(1).unwrap();
        assert_eq!(stats.instrs, s0.instrs + s1.instrs);
        assert_eq!(stats.cycles, s0.cycles.max(s1.cycles));
        assert!(stats.dram.write_transactions > 0);
    }

    /// One SM of a two-SM device traps (its harts take the faulting
    /// branch); the device reports the trap *and* stays queryable — both
    /// SMs have statistics snapshots and the combined stats are populated.
    #[test]
    fn trapped_device_stays_queryable() {
        use simt_isa::{BranchCond, LoadWidth};
        let cfg = SmConfig::small(CheriMode::Off);
        let threads = cfg.threads();
        let mut dev = Device::new(cfg, 2);
        let prog: Vec<u32> = [
            Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO },
            Instr::OpImm { op: AluOp::Add, rd: Reg::A1, rs1: Reg::ZERO, imm: threads as i32 },
            // Harts on SM 1 (global id >= threads) take the branch into an
            // unmapped load; harts on SM 0 terminate cleanly.
            Instr::Branch { cond: BranchCond::Geu, rs1: Reg::A0, rs2: Reg::A1, off: 8 },
            Instr::Simt { op: SimtOp::Terminate },
            Instr::Load { w: LoadWidth::W, rd: Reg::A2, rs1: Reg::ZERO, off: 0 },
            Instr::Simt { op: SimtOp::Terminate },
        ]
        .iter()
        .map(|i| i.encode())
        .collect();
        dev.load_program(&prog);
        dev.reset();
        let err = dev.run(100_000).expect_err("SM 1 must trap");
        match &err {
            RunError::Trap(t) => assert!(t.lane_mask != 0, "trap names faulting lanes"),
            other => panic!("expected a trap, got {other:?}"),
        }
        // Both SMs are queryable after the trap: the trapped SM has a
        // partial snapshot and the clean SM has whatever it got to.
        let s0 = dev.sm_stats(0).expect("SM 0 snapshot");
        let s1 = dev.sm_stats(1).expect("SM 1 snapshot");
        assert!(s0.instrs > 0 && s1.instrs > 0);
        let combined = dev.stats();
        assert_eq!(combined.instrs, s0.instrs + s1.instrs);
        assert_eq!(combined.faults.traps, 1);
        assert!(combined.cycles > 0);
    }

    #[test]
    fn single_sm_device_matches_bare_sm() {
        let cfg = SmConfig::small(CheriMode::Off);
        let prog: Vec<u32> = [
            Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO },
            Instr::Simt { op: SimtOp::Terminate },
        ]
        .iter()
        .map(|i| i.encode())
        .collect();
        let mut dev = Device::new(cfg, 1);
        dev.load_program(&prog);
        dev.reset();
        let dev_stats = dev.run(100_000).expect("device run");
        let mut sm = Sm::new(cfg);
        sm.load_program(&prog);
        sm.reset();
        let sm_stats = sm.run(100_000).expect("sm run");
        assert_eq!(dev_stats, sm_stats);
        assert_eq!(dev_stats.dram.cross_sm_switches, 0);
    }
}
