//! Per-lane functional execution helpers (integer ALU, multiplier/divider,
//! Zfinx float, atomics).

use simt_isa::{AluOp, AmoOp, BranchCond, FcmpOp, FpOp, MulOp};

/// Integer ALU.
pub fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

/// M-extension multiply/divide with RISC-V semantics (division by zero and
/// overflow produce defined results, no traps).
pub fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    let (sa, sb) = (a as i32, b as i32);
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => ((sa as i64 * sb as i64) >> 32) as u32,
        MulOp::Mulhsu => ((sa as i64).wrapping_mul(b as i64) >> 32) as u32,
        MulOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
        MulOp::Div => {
            if b == 0 {
                u32::MAX
            } else if sa == i32::MIN && sb == -1 {
                a
            } else {
                sa.wrapping_div(sb) as u32
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulOp::Rem => {
            if b == 0 {
                a
            } else if sa == i32::MIN && sb == -1 {
                0
            } else {
                sa.wrapping_rem(sb) as u32
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

/// Branch condition evaluation.
pub fn branch_taken(cond: BranchCond, a: u32, b: u32) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i32) < (b as i32),
        BranchCond::Ge => (a as i32) >= (b as i32),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

/// Zfinx floating-point arithmetic on raw bit patterns.
pub fn fp(op: FpOp, a: u32, b: u32) -> u32 {
    let (x, y) = (f32::from_bits(a), f32::from_bits(b));
    let r = match op {
        FpOp::Add => x + y,
        FpOp::Sub => x - y,
        FpOp::Mul => x * y,
        FpOp::Div => x / y,
        FpOp::Min => x.min(y),
        FpOp::Max => x.max(y),
    };
    r.to_bits()
}

/// Floating-point square root.
pub fn fsqrt(a: u32) -> u32 {
    f32::from_bits(a).sqrt().to_bits()
}

/// Floating-point comparison (0/1 result, false on NaN as per RISC-V).
pub fn fcmp(op: FcmpOp, a: u32, b: u32) -> u32 {
    let (x, y) = (f32::from_bits(a), f32::from_bits(b));
    let r = match op {
        FcmpOp::Eq => x == y,
        FcmpOp::Lt => x < y,
        FcmpOp::Le => x <= y,
    };
    r as u32
}

/// Convert float to (un)signed 32-bit integer, saturating as per RISC-V.
pub fn fcvt_ws(a: u32, signed: bool) -> u32 {
    let x = f32::from_bits(a);
    if signed {
        if x.is_nan() {
            i32::MAX as u32
        } else {
            (x as i64).clamp(i32::MIN as i64, i32::MAX as i64) as i32 as u32
        }
    } else if x.is_nan() {
        u32::MAX
    } else {
        (x as i64).clamp(0, u32::MAX as i64) as u32
    }
}

/// Convert (un)signed 32-bit integer to float.
pub fn fcvt_sw(a: u32, signed: bool) -> u32 {
    if signed {
        (a as i32 as f32).to_bits()
    } else {
        (a as f32).to_bits()
    }
}

/// Atomic read-modify-write combine function: returns the new memory value.
pub fn amo(op: AmoOp, old: u32, operand: u32) -> u32 {
    match op {
        AmoOp::Swap => operand,
        AmoOp::Add => old.wrapping_add(operand),
        AmoOp::Xor => old ^ operand,
        AmoOp::Or => old | operand,
        AmoOp::And => old & operand,
        AmoOp::Min => (old as i32).min(operand as i32) as u32,
        AmoOp::Max => (old as i32).max(operand as i32) as u32,
        AmoOp::Minu => old.min(operand),
        AmoOp::Maxu => old.max(operand),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_basics() {
        assert_eq!(alu(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 3, 5), (-2i32) as u32);
        assert_eq!(alu(AluOp::Sra, (-8i32) as u32, 2), (-2i32) as u32);
        assert_eq!(alu(AluOp::Srl, (-8i32) as u32, 2), 0x3FFF_FFFE);
        assert_eq!(alu(AluOp::Slt, (-1i32) as u32, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i32) as u32, 0), 0);
    }

    #[test]
    fn riscv_division_edge_cases() {
        assert_eq!(muldiv(MulOp::Div, 7, 0), u32::MAX);
        assert_eq!(muldiv(MulOp::Rem, 7, 0), 7);
        assert_eq!(muldiv(MulOp::Div, i32::MIN as u32, -1i32 as u32), i32::MIN as u32);
        assert_eq!(muldiv(MulOp::Rem, i32::MIN as u32, -1i32 as u32), 0);
        assert_eq!(muldiv(MulOp::Mulhu, u32::MAX, u32::MAX), 0xFFFF_FFFE);
        assert_eq!(muldiv(MulOp::Mulh, -2i32 as u32, 3), u32::MAX);
    }

    #[test]
    fn float_ops() {
        let two = 2.0f32.to_bits();
        let three = 3.0f32.to_bits();
        assert_eq!(f32::from_bits(fp(FpOp::Add, two, three)), 5.0);
        assert_eq!(f32::from_bits(fsqrt(9.0f32.to_bits())), 3.0);
        assert_eq!(fcmp(FcmpOp::Lt, two, three), 1);
        assert_eq!(fcmp(FcmpOp::Eq, f32::NAN.to_bits(), f32::NAN.to_bits()), 0);
        assert_eq!(fcvt_ws((-2.7f32).to_bits(), true), (-2i32) as u32);
        assert_eq!(fcvt_ws((-2.7f32).to_bits(), false), 0);
        assert_eq!(f32::from_bits(fcvt_sw(5, true)), 5.0);
    }

    #[test]
    fn atomics() {
        assert_eq!(amo(AmoOp::Add, 10, 5), 15);
        assert_eq!(amo(AmoOp::Min, (-3i32) as u32, 2), (-3i32) as u32);
        assert_eq!(amo(AmoOp::Minu, (-3i32) as u32, 2), 2);
        assert_eq!(amo(AmoOp::Swap, 1, 99), 99);
    }
}
