//! # cheri-simt: a cycle-level model of CHERI memory protection in a SIMT GPU
//!
//! This crate is the primary contribution of the reproduction: a streaming
//! multiprocessor in the style of SIMTight (Naylor et al.) extended with
//! CHERI capabilities, implementing the three cost-amelioration techniques
//! of the paper:
//!
//! 1. a compressed **capability-metadata register file** exploiting
//!    inter-thread value regularity, with a shared VRF and the null-value
//!    optimisation (Sections 3.1–3.2),
//! 2. **shared-function-unit offload** of the cold CHERI Concentrate
//!    operations (`CGetBase`, `CGetLen`, `CSetBounds[..]`, `CRRL`, `CRAM`;
//!    Section 3.3), and
//! 3. the **static PC metadata restriction** so active-thread selection
//!    compares integer PCs only (Section 3.3).
//!
//! The SM executes RV32IMA+Zfinx+Xcheri programs over 8–2048 hardware
//! threads with a barrel scheduler, per-thread PCs (PCCs), min-PC
//! active-thread selection, a coalescing unit, banked scratchpad, tagged
//! DRAM behind a tag controller, and multi-flit 64-bit capability accesses.
//!
//! # Example
//!
//! Run a two-instruction kernel that stores each thread's id to memory:
//!
//! ```
//! use cheri_simt::{CheriMode, Sm, SmConfig};
//! use simt_isa::{csr, Instr, Reg, SimtOp, StoreWidth, AluOp};
//! use simt_mem::map;
//!
//! let mut sm = Sm::new(SmConfig::small(CheriMode::Off));
//! let prog: Vec<u32> = [
//!     Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO },
//!     Instr::OpImm { op: AluOp::Sll, rd: Reg::A1, rs1: Reg::A0, imm: 2 },
//!     Instr::Lui { rd: Reg::A2, imm: map::DRAM_BASE },
//!     Instr::Op { op: AluOp::Add, rd: Reg::A1, rs1: Reg::A1, rs2: Reg::A2 },
//!     Instr::Store { w: StoreWidth::W, rs2: Reg::A0, rs1: Reg::A1, off: 0 },
//!     Instr::Simt { op: SimtOp::Terminate },
//! ].iter().map(|i| i.encode()).collect();
//! sm.load_program(&prog);
//! sm.reset();
//! let stats = sm.run(100_000)?;
//! assert_eq!(sm.memory().read(map::DRAM_BASE + 5 * 4, 4).unwrap(), 5);
//! assert!(stats.cycles > 0);
//! # Ok::<(), cheri_simt::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod counters;
mod device;
pub mod exec;
mod pipeline;
mod rom;
pub mod shield;
mod sm;
mod trap;
pub mod warp;

pub use config::{CheriMode, CheriOpts, SmConfig, Timing, TrapPolicy};
pub use counters::{FaultStats, KernelStats, StallBreakdown};
pub use device::Device;
/// Structured tracing: re-exported so consumers can name sinks and events
/// without depending on `simt-trace` directly.
pub use simt_trace as trace;
pub use sm::Sm;
pub use trap::{LaneFault, RunError, Trap, TrapCause};

// Send audit: the parallel suite runner simulates one whole SM per worker
// thread, so the simulator state — and everything it returns — must stay
// `Send`. Keeping this a compile-time check means a future `Rc`/`RefCell`
// (or other non-`Send` state) inside the model breaks the build here, not
// the runner's callers.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Sm>();
    assert_send::<Device>();
    assert_send::<SmConfig>();
    assert_send::<KernelStats>();
    assert_send::<RunError>();
};
