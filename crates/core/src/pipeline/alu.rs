//! ALU op class: `LUI`/`AUIPC` splats, the integer ALU (`OP-IMM`/`OP`),
//! the M extension and CSR reads.
//!
//! Each handler has two bit-identical paths, chosen by the issue
//! classifier's verdict (see [`super::classify`]): a warp-wide fast path
//! over compact operands and the lane-wise reference path. CSR reads are
//! virtualised for multi-SM devices: `MHARTID` is offset by the SM's
//! [`Sm::set_hart_base`] placement and `SIMT_NUM_THREADS` reads the
//! device-wide thread count, so an unmodified grid-stride kernel
//! distributes its blocks across every SM of a [`crate::Device`].

use super::scalar::linear2;
use super::Costs;
use crate::exec;
use crate::sm::Sm;
use crate::warp::Selection;
use simt_isa::{Instr, MulOp};
use simt_regfile::OperandVec;

impl Sm {
    /// Execute one ALU-class instruction (always writes `rd`, never traps,
    /// sequential PC).
    pub(crate) fn exec_alu_class(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        fast: bool,
        costs: &mut Costs,
    ) {
        if fast {
            self.exec_alu_fast(w, sel, instr, costs);
        } else {
            self.exec_alu_lanewise(w, sel, instr, costs);
        }
        self.advance_uniform(w, sel, sel.pc.wrapping_add(4), None);
    }

    /// The lane-wise reference path. Scratch staleness audit: `a`/`b` are
    /// fully overwritten by `read_data`; `r` is written per active lane (or
    /// `[..lanes]`-filled) and committed under the mask; `rm` is read only
    /// when `rd_is_cap`, which fills it.
    fn exec_alu_lanewise(&mut self, w: u32, sel: &Selection, instr: Instr, costs: &mut Costs) {
        let mut bufs = self.take_bufs();
        self.alu_lanewise_with(&mut bufs, w, sel, instr, costs);
        self.put_bufs(bufs);
    }

    fn alu_lanewise_with(
        &mut self,
        bufs: &mut crate::sm::LaneBufs,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let crate::sm::LaneBufs { a, b, r, rm, .. } = bufs;
        let mut rd_is_cap = false;

        macro_rules! active {
            () => {
                (0..lanes).filter(|i| mask >> i & 1 == 1)
            };
        }

        let rd = match instr {
            Instr::Lui { rd, imm } => {
                r[..lanes].fill(imm as u64);
                rd
            }
            Instr::Auipc { rd, imm } => {
                let target = sel.pc.wrapping_add(imm);
                if self.cheri() {
                    self.stats.count_cheri("AUIPCC", 1);
                    let cap = Self::cap_of(sel.pcc_meta, sel.pc as u64).set_addr(target);
                    let (m, d) = Self::cap_parts(cap);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    r[..lanes].fill(target as u64);
                }
                rd
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                self.read_data(w, rs1, a, costs);
                for i in active!() {
                    r[i] = exec::alu(op, a[i] as u32, imm as u32) as u64;
                }
                rd
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, a, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    r[i] = exec::alu(op, a[i] as u32, b[i] as u32) as u64;
                }
                rd
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, a, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    r[i] = exec::muldiv(op, a[i] as u32, b[i] as u32) as u64;
                }
                self.muldiv_latency(w, op);
                rd
            }
            Instr::Csrrs { rd, csr, .. } => {
                for i in active!() {
                    r[i] = self.csr_value(w, csr, i as u32);
                }
                rd
            }
            _ => unreachable!("not an ALU-class instruction"),
        };
        self.writeback(w, rd, &r[..], rd_is_cap.then_some(&rm[..]), mask, costs);
    }

    /// The warp-wide fast path over compact operands. Only reached for
    /// issues the classifier proved scalarisable; bit-identical to
    /// [`Sm::exec_alu_lanewise`] on those.
    fn exec_alu_fast(&mut self, w: u32, sel: &Selection, instr: Instr, costs: &mut Costs) {
        let mask = sel.mask;
        match instr {
            Instr::Lui { rd, imm } => {
                self.writeback_compact(w, rd, &OperandVec::Uniform(imm as u64), None, mask, costs);
            }
            Instr::Auipc { rd, imm } => {
                let target = sel.pc.wrapping_add(imm);
                if self.cheri() {
                    self.stats.count_cheri("AUIPCC", 1);
                    let cap = Self::cap_of(sel.pcc_meta, sel.pc as u64).set_addr(target);
                    let (m, d) = Self::cap_parts(cap);
                    let meta = OperandVec::Uniform(m);
                    self.writeback_compact(
                        w,
                        rd,
                        &OperandVec::Uniform(d),
                        Some(&meta),
                        mask,
                        costs,
                    );
                } else {
                    self.writeback_compact(
                        w,
                        rd,
                        &OperandVec::Uniform(target as u64),
                        None,
                        mask,
                        costs,
                    );
                }
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = self.read_data_compact(w, rs1, costs);
                let res = linear2(|x, y| exec::alu(op, x, y), &a, &OperandVec::Uniform(imm as u64));
                self.writeback_compact(w, rd, &res, None, mask, costs);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let a = self.read_data_compact(w, rs1, costs);
                let b = self.read_data_compact(w, rs2, costs);
                let res = linear2(|x, y| exec::alu(op, x, y), &a, &b);
                self.writeback_compact(w, rd, &res, None, mask, costs);
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.read_data_compact(w, rs1, costs);
                let b = self.read_data_compact(w, rs2, costs);
                let res = linear2(|x, y| exec::muldiv(op, x, y), &a, &b);
                self.muldiv_latency(w, op);
                self.writeback_compact(w, rd, &res, None, mask, costs);
            }
            Instr::Csrrs { rd, csr, .. } => {
                let lane0 = self.csr_value(w, csr, 0);
                let res = if csr == simt_isa::csr::MHARTID {
                    // Hart ids advance by one per lane.
                    OperandVec::Affine { base: lane0, stride: 1 }
                } else {
                    OperandVec::Uniform(lane0)
                };
                self.writeback_compact(w, rd, &res, None, mask, costs);
            }
            _ => unreachable!("not an ALU-class instruction"),
        }
    }

    /// What lane `i` of warp `w` reads from `csr` (shared by both paths).
    fn csr_value(&self, w: u32, csr: u16, i: u32) -> u64 {
        use simt_isa::csr as c;
        match csr {
            c::MHARTID => (self.hart_base + w * self.cfg.lanes + i) as u64,
            c::SIMT_NUM_WARPS => self.cfg.warps as u64,
            c::SIMT_LOG_LANES => self.cfg.lanes.trailing_zeros() as u64,
            c::SIMT_NUM_THREADS => self.device_threads as u64,
            _ => 0,
        }
    }

    /// Division/remainder keep the warp busy for the divider latency.
    fn muldiv_latency(&mut self, w: u32, op: MulOp) {
        if matches!(op, MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu) {
            self.warps[w as usize].ready_at = self.cycle + self.cfg.timing.div_latency as u64;
        }
    }
}
