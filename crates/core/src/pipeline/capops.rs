//! Capability op class: unary capability queries/moves, capability
//! arithmetic (pointer-shaped ops of Section 3), and SCR access — with
//! their `cheri_histogram` attribution and the SFU offload of the cold
//! bounds-setting ops (Section 3.3).
//!
//! The scalarised fast path runs when the whole capability operand (data
//! *and* metadata) is warp-uniform: one capability computation stands for
//! every lane, and the result is committed compactly.

use super::scalar::expect_uniform;
use super::Costs;
use crate::sm::Sm;
use crate::trap::{LaneFault, RunError, Trap, TrapCause};
use crate::warp::Selection;
use cheri_cap::{bounds, CapException, CapPipe, Perms};
use simt_isa::{scr, Instr, Reg, UnaryCapOp};
use simt_regfile::{OperandVec, MAX_LANES, NULL_META};

impl Sm {
    /// Execute one capability-class instruction (always writes `rd`,
    /// sequential PC).
    ///
    /// # Errors
    ///
    /// `CSetBoundsExact` traps with `InexactBounds` when a tagged, unsealed
    /// source capability is given an unrepresentable bounds request; no lane
    /// commits on a trap (check-then-commit, as in the memory stage).
    pub(crate) fn exec_cap_class(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        fast: bool,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        if fast {
            self.exec_cap_fast(w, sel, instr, costs)?;
        } else {
            self.exec_cap_lanewise(w, sel, instr, costs)?;
        }
        self.advance_uniform(w, sel, sel.pc.wrapping_add(4), None);
        Ok(())
    }

    /// The lane-wise reference path. Scratch staleness audit: `a`/`am`/`b`
    /// are fully overwritten by the operand reads; every arm writes
    /// `r[i]`/`rm[i]` for each active lane (or `[..lanes]`-fills them) and
    /// the commit is under the mask; `rm` is read only when `rd_is_cap`.
    fn exec_cap_lanewise(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let mut bufs = self.take_bufs();
        let res = self.cap_lanewise_with(&mut bufs, w, sel, instr, costs);
        self.put_bufs(bufs);
        res
    }

    fn cap_lanewise_with(
        &mut self,
        bufs: &mut crate::sm::LaneBufs,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let crate::sm::LaneBufs { a, b, am, r, rm, .. } = bufs;
        let mut rd_is_cap = false;

        macro_rules! active {
            () => {
                (0..lanes).filter(|i| mask >> i & 1 == 1)
            };
        }

        let rd = match instr {
            Instr::CapUnary { op, rd, cs1 } => {
                self.exec_cap_unary(w, sel, op, rd, cs1, r, rm, &mut rd_is_cap, costs);
                rd
            }
            Instr::CAndPerm { cd, cs1, rs2 } => {
                self.stats.count_cheri("CAndPerm", 1);
                self.read_cap_operand(w, cs1, a, am, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).and_perm(Perms::from_bits(b[i] as u16));
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                cd
            }
            Instr::CSetFlags { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetFlags", 1);
                self.read_cap_operand(w, cs1, a, am, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_flags(b[i] & 1 == 1);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                cd
            }
            Instr::CSetAddr { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetAddr", 1);
                self.read_cap_operand(w, cs1, a, am, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_addr(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                cd
            }
            Instr::CIncOffset { cd, cs1, rs2 } => {
                self.stats.count_cheri("CIncOffset", 1);
                self.read_cap_operand(w, cs1, a, am, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).inc_offset(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                cd
            }
            Instr::CIncOffsetImm { cd, cs1, imm } => {
                self.stats.count_cheri("CIncOffsetImm", 1);
                self.read_cap_operand(w, cs1, a, am, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).inc_offset(imm as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                cd
            }
            Instr::CSetBounds { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetBounds", 1);
                self.read_cap_operand(w, cs1, a, am, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    let (cap, _) = Self::cap_of(am[i], a[i]).set_bounds(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                cd
            }
            Instr::CSetBoundsExact { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetBoundsExact", 1);
                self.read_cap_operand(w, cs1, a, am, costs);
                self.read_data(w, rs2, b, costs);
                // Check phase: a tagged, unsealed source with an
                // unrepresentable request raises InexactBounds; no lane
                // commits if any lane faults.
                let mut faults: Vec<LaneFault> = Vec::new();
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]);
                    let (_, exact) = cap.set_bounds(b[i] as u32);
                    if cap.tag() && !cap.is_sealed() && !exact {
                        faults.push(LaneFault {
                            lane: i as u32,
                            cause: TrapCause::Cheri(CapException::InexactBounds),
                        });
                    }
                }
                if let Some(t) = Trap::from_lane_faults(w, sel.pc, faults) {
                    return Err(t.into());
                }
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_bounds_exact(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                cd
            }
            Instr::CSetBoundsImm { cd, cs1, imm } => {
                self.stats.count_cheri("CSetBoundsImm", 1);
                self.read_cap_operand(w, cs1, a, am, costs);
                for i in active!() {
                    let (cap, _) = Self::cap_of(am[i], a[i]).set_bounds(imm);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                cd
            }
            Instr::CSpecialRw { cd, scr: s, .. } => {
                self.stats.count_cheri("CSpecialRW", 1);
                let cap = self.scr_cap(sel, s);
                let (m, d) = Self::cap_parts(cap);
                r[..lanes].fill(d);
                rm[..lanes].fill(m);
                rd_is_cap = true;
                cd
            }
            _ => unreachable!("not a capability-class instruction"),
        };
        self.writeback(w, rd, &r[..], rd_is_cap.then_some(&rm[..]), mask, costs);
        Ok(())
    }

    /// The warp-wide fast path: one capability computation per warp.
    fn exec_cap_fast(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let mask = sel.mask;
        // Shape shared by the binary capability ops: histogram attribution,
        // uniform capability (+ scalar) operands, one computation, compact
        // cap-result commit. `CSetBounds*` additionally round-trip the SFU.
        let mut binary = |sm: &mut Self,
                          name: &'static str,
                          cs1: Reg,
                          rs2: Option<Reg>,
                          cd: Reg,
                          sfu: bool,
                          f: &dyn Fn(CapPipe, u32) -> CapPipe| {
            sm.stats.count_cheri(name, 1);
            let (d, m) = sm.read_cap_compact(w, cs1, costs);
            let b = match rs2 {
                Some(reg) => expect_uniform(&sm.read_data_compact(w, reg, costs)),
                None => 0,
            };
            let cap = f(Self::cap_of(expect_uniform(&m), expect_uniform(&d)), b as u32);
            if sfu {
                sm.cap_sfu_suspend(w, sel);
            }
            sm.writeback_cap_uniform(w, cd, cap, mask, costs);
        };
        match instr {
            Instr::CapUnary { op, rd, cs1 } => self.exec_cap_unary_fast(w, sel, op, rd, cs1, costs),
            Instr::CAndPerm { cd, cs1, rs2 } => {
                binary(self, "CAndPerm", cs1, Some(rs2), cd, false, &|c, b| {
                    c.and_perm(Perms::from_bits(b as u16))
                });
            }
            Instr::CSetFlags { cd, cs1, rs2 } => {
                binary(self, "CSetFlags", cs1, Some(rs2), cd, false, &|c, b| {
                    c.set_flags(b & 1 == 1)
                });
            }
            Instr::CSetAddr { cd, cs1, rs2 } => {
                binary(self, "CSetAddr", cs1, Some(rs2), cd, false, &|c, b| c.set_addr(b));
            }
            Instr::CIncOffset { cd, cs1, rs2 } => {
                binary(self, "CIncOffset", cs1, Some(rs2), cd, false, &|c, b| c.inc_offset(b));
            }
            Instr::CIncOffsetImm { cd, cs1, imm } => {
                binary(self, "CIncOffsetImm", cs1, None, cd, false, &|c, _| {
                    c.inc_offset(imm as u32)
                });
            }
            Instr::CSetBounds { cd, cs1, rs2 } => {
                binary(self, "CSetBounds", cs1, Some(rs2), cd, true, &|c, b| c.set_bounds(b).0);
            }
            Instr::CSetBoundsExact { cd, cs1, rs2 } => {
                // Special-cased outside `binary`: the warp-uniform source
                // means one representability verdict covers every lane, and
                // an inexact request traps warp-wide before the commit.
                self.stats.count_cheri("CSetBoundsExact", 1);
                let (d, m) = self.read_cap_compact(w, cs1, costs);
                let b = expect_uniform(&self.read_data_compact(w, rs2, costs)) as u32;
                let cap = Self::cap_of(expect_uniform(&m), expect_uniform(&d));
                let (_, exact) = cap.set_bounds(b);
                if cap.tag() && !cap.is_sealed() && !exact {
                    return Err(Trap::warp_wide(
                        w,
                        sel.mask,
                        sel.pc,
                        TrapCause::Cheri(CapException::InexactBounds),
                    )
                    .into());
                }
                self.cap_sfu_suspend(w, sel);
                self.writeback_cap_uniform(w, cd, cap.set_bounds_exact(b), mask, costs);
            }
            Instr::CSetBoundsImm { cd, cs1, imm } => {
                binary(self, "CSetBoundsImm", cs1, None, cd, true, &|c, _| c.set_bounds(imm).0);
            }
            Instr::CSpecialRw { cd, scr: s, .. } => {
                self.stats.count_cheri("CSpecialRW", 1);
                let cap = self.scr_cap(sel, s);
                self.writeback_cap_uniform(w, cd, cap, mask, costs);
            }
            _ => unreachable!("not a capability-class instruction"),
        }
        Ok(())
    }

    /// `CSpecialRW` source: the live PCC or a special capability register.
    fn scr_cap(&self, sel: &Selection, s: u8) -> CapPipe {
        if s == scr::PCC {
            Self::cap_of(sel.pcc_meta, sel.pc as u64)
        } else {
            CapPipe::from_mem(self.scrs[s as usize])
        }
    }

    /// Commit a warp-uniform capability result compactly.
    fn writeback_cap_uniform(
        &mut self,
        w: u32,
        cd: Reg,
        cap: CapPipe,
        mask: u64,
        costs: &mut Costs,
    ) {
        let (m, d) = Self::cap_parts(cap);
        let meta = OperandVec::Uniform(m);
        self.writeback_compact(w, cd, &OperandVec::Uniform(d), Some(&meta), mask, costs);
    }

    /// Trace-histogram name of a unary capability op.
    fn cap_unary_name(op: UnaryCapOp) -> &'static str {
        match op {
            UnaryCapOp::GetTag => "CGetTag",
            UnaryCapOp::ClearTag => "CClearTag",
            UnaryCapOp::GetPerm => "CGetPerm",
            UnaryCapOp::GetBase => "CGetBase",
            UnaryCapOp::GetLen => "CGetLen",
            UnaryCapOp::GetType => "CGetType",
            UnaryCapOp::GetSealed => "CGetSealed",
            UnaryCapOp::GetFlags => "CGetFlags",
            UnaryCapOp::GetAddr => "CGetAddr",
            UnaryCapOp::Move => "CMove",
            UnaryCapOp::SealEntry => "CSealEntry",
            UnaryCapOp::Crrl => "CRRL",
            UnaryCapOp::Cram => "CRAM",
        }
    }

    /// Does this unary op round-trip the SFU when capability ops are
    /// offloaded? (The bounds-decoding queries of Section 3.3.)
    fn cap_unary_offloads(op: UnaryCapOp) -> bool {
        matches!(op, UnaryCapOp::GetBase | UnaryCapOp::GetLen | UnaryCapOp::Crrl | UnaryCapOp::Cram)
    }

    /// Lane-wise unary capability op, filling `r`/`rm` for the common
    /// writeback tail.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_cap_unary(
        &mut self,
        w: u32,
        sel: &Selection,
        op: UnaryCapOp,
        _rd: Reg,
        cs1: Reg,
        r: &mut [u64; MAX_LANES],
        rm: &mut [u64; MAX_LANES],
        rd_is_cap: &mut bool,
        costs: &mut Costs,
    ) {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let mut a = [0u64; MAX_LANES];
        let mut am = [NULL_META; MAX_LANES];
        self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
        self.stats.count_cheri(Self::cap_unary_name(op), 1);
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let cap = Self::cap_of(am[i], a[i]);
            match op {
                UnaryCapOp::GetTag => r[i] = cap.tag() as u64,
                UnaryCapOp::GetPerm => r[i] = cap.perms().bits() as u64,
                UnaryCapOp::GetBase => r[i] = cap.base() as u64,
                UnaryCapOp::GetLen => r[i] = cap.length().min(u32::MAX as u64),
                UnaryCapOp::GetType => r[i] = cap.otype() as u64,
                UnaryCapOp::GetSealed => r[i] = cap.is_sealed() as u64,
                UnaryCapOp::GetFlags => r[i] = cap.flag() as u64,
                UnaryCapOp::GetAddr => r[i] = cap.addr() as u64,
                UnaryCapOp::Crrl => {
                    r[i] = bounds::representable_length(a[i] as u32).min(u32::MAX as u64)
                }
                UnaryCapOp::Cram => r[i] = bounds::representable_alignment_mask(a[i] as u32) as u64,
                UnaryCapOp::ClearTag => {
                    (rm[i], r[i]) = Self::cap_parts(cap.clear_tag());
                    *rd_is_cap = true;
                }
                UnaryCapOp::Move => {
                    (rm[i], r[i]) = (am[i], a[i]);
                    *rd_is_cap = true;
                }
                UnaryCapOp::SealEntry => {
                    (rm[i], r[i]) = Self::cap_parts(cap.seal_entry());
                    *rd_is_cap = true;
                }
            }
        }
        if Self::cap_unary_offloads(op) {
            self.cap_sfu_suspend(w, sel);
        }
    }

    /// Warp-wide unary capability op over a uniform capability operand.
    fn exec_cap_unary_fast(
        &mut self,
        w: u32,
        sel: &Selection,
        op: UnaryCapOp,
        rd: Reg,
        cs1: Reg,
        costs: &mut Costs,
    ) {
        let (d, m) = self.read_cap_compact(w, cs1, costs);
        let (d, m) = (expect_uniform(&d), expect_uniform(&m));
        self.stats.count_cheri(Self::cap_unary_name(op), 1);
        let cap = Self::cap_of(m, d);
        let (r, rm) = match op {
            UnaryCapOp::GetTag => (cap.tag() as u64, None),
            UnaryCapOp::GetPerm => (cap.perms().bits() as u64, None),
            UnaryCapOp::GetBase => (cap.base() as u64, None),
            UnaryCapOp::GetLen => (cap.length().min(u32::MAX as u64), None),
            UnaryCapOp::GetType => (cap.otype() as u64, None),
            UnaryCapOp::GetSealed => (cap.is_sealed() as u64, None),
            UnaryCapOp::GetFlags => (cap.flag() as u64, None),
            UnaryCapOp::GetAddr => (cap.addr() as u64, None),
            UnaryCapOp::Crrl => (bounds::representable_length(d as u32).min(u32::MAX as u64), None),
            UnaryCapOp::Cram => (bounds::representable_alignment_mask(d as u32) as u64, None),
            UnaryCapOp::ClearTag => {
                let (mm, dd) = Self::cap_parts(cap.clear_tag());
                (dd, Some(mm))
            }
            UnaryCapOp::Move => (d, Some(m)),
            UnaryCapOp::SealEntry => {
                let (mm, dd) = Self::cap_parts(cap.seal_entry());
                (dd, Some(mm))
            }
        };
        if Self::cap_unary_offloads(op) {
            self.cap_sfu_suspend(w, sel);
        }
        let meta = rm.map(OperandVec::Uniform);
        self.writeback_compact(w, rd, &OperandVec::Uniform(r), meta.as_ref(), sel.mask, costs);
    }
}
