//! Issue classification: which execution path a decoded instruction takes.
//!
//! The classifier runs in the issue stage *before* execution, over nothing
//! but the decoded instruction, the active mask and the register file's
//! compact-form metadata ([`simt_regfile::CompressedRegFile::class_of`] —
//! a pure peek). Its verdict is recorded on the `issue` trace event and in
//! [`crate::KernelStats::scalarised_issues`], and the execute stage obeys
//! the same verdict when picking between the warp-wide fast path and the
//! lane-wise reference path — so the counter, the event stream and the
//! executed path can never disagree.
//!
//! An issue is [`IssueClass::Scalarised`] when execute computes its result
//! once per warp from compact (uniform/affine) operands:
//!
//! * **splats** — `LUI`, `AUIPC`, `JAL`, `CSRRS` and `CSpecialRW` produce a
//!   warp-invariant (or hart-affine) result by construction, under any mask;
//! * **uniform control flow** — branches with uniform operands and
//!   non-CHERI `JALR` with a uniform base resolve one target per warp;
//! * **compute ops over compact operands** — ALU/mul/FP/capability ops
//!   whose result provably stays uniform/affine (see [`alu_scalarises`] and
//!   [`muldiv_scalarises`]), under a full mask so the result write needs no
//!   per-lane merge.
//!
//! Memory operations, AMOs, fences, traps, SIMT control and CHERI `JALR`
//! are inherently per-lane ([`IssueClass::PerLane`]).

use crate::sm::Sm;
use crate::warp::Selection;
use simt_isa::{AluOp, Instr, MulOp, Reg};
use simt_regfile::OperandClass;
use simt_trace::IssueClass;

/// The static half of the scalarisation verdict: what can be decided from
/// the instruction and the CHERI mode alone, cached per program-ROM slot
/// at pre-decode time ([`crate::rom`]). `Dynamic` ops still need the
/// per-issue register-class and mask checks of
/// [`Sm::dynamic_issue_class`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StaticClass {
    /// Scalarises under any mask and operand classes (warp-invariant
    /// splats).
    Always,
    /// Never scalarises (the memory pipeline, traps, SIMT control, and
    /// CHERI `JALR`).
    Never,
    /// Depends on the dynamic operand classes (and, for compute ops, a
    /// full mask).
    Dynamic,
}

/// Classify the static half of the scalarisation verdict (see
/// [`StaticClass`]). [`Sm::issue_class`] dispatches through this same
/// function, so the decode-at-issue path and the pre-decoded ROM agree by
/// construction.
pub(crate) fn static_issue_class(instr: Instr, cheri: bool) -> StaticClass {
    match instr {
        // Warp-invariant splats (CSRRS is uniform or hart-affine).
        Instr::Lui { .. }
        | Instr::Auipc { .. }
        | Instr::Jal { .. }
        | Instr::Csrrs { .. }
        | Instr::CSpecialRw { .. } => StaticClass::Always,
        // CHERI JALR stays per-lane: it unseals, checks and installs a
        // per-lane PCC. Non-CHERI JALR scalarises on a uniform base.
        Instr::Jalr { .. } => {
            if cheri {
                StaticClass::Never
            } else {
                StaticClass::Dynamic
            }
        }
        Instr::Branch { .. }
        | Instr::OpImm { .. }
        | Instr::Op { .. }
        | Instr::MulDiv { .. }
        | Instr::FOp { .. }
        | Instr::FSqrt { .. }
        | Instr::FCmp { .. }
        | Instr::FCvtWS { .. }
        | Instr::FCvtSW { .. }
        | Instr::CapUnary { .. }
        | Instr::CAndPerm { .. }
        | Instr::CSetFlags { .. }
        | Instr::CSetAddr { .. }
        | Instr::CIncOffset { .. }
        | Instr::CIncOffsetImm { .. }
        | Instr::CSetBounds { .. }
        | Instr::CSetBoundsExact { .. }
        | Instr::CSetBoundsImm { .. } => StaticClass::Dynamic,
        // Inherently per-lane: the memory pipeline, traps and SIMT
        // control.
        Instr::Load { .. }
        | Instr::Store { .. }
        | Instr::Clc { .. }
        | Instr::Csc { .. }
        | Instr::Amo { .. }
        | Instr::Fence
        | Instr::Ecall
        | Instr::Ebreak
        | Instr::Simt { .. } => StaticClass::Never,
    }
}

/// Does `op` over operand classes `a`/`b` have a warp-wide evaluation that
/// is exactly congruent (mod 2³²) to the lane-wise one?
///
/// Uniform∘uniform always does (one ALU evaluation). With an affine
/// operand, only the operations *linear* in each lane value qualify:
/// add/sub with any compact mix, and a constant left shift of an affine
/// value (a multiplication by 2^k). Everything else — comparisons,
/// bitwise logic, variable or right shifts — breaks affinity.
pub(crate) fn alu_scalarises(op: AluOp, a: OperandClass, b: OperandClass) -> bool {
    use OperandClass::{Uniform, Vector};
    match (a, b) {
        (Vector, _) | (_, Vector) => false,
        (Uniform, Uniform) => true,
        _ => matches!(op, AluOp::Add | AluOp::Sub) || (op == AluOp::Sll && b == Uniform),
    }
}

/// [`alu_scalarises`] for the M extension: uniform∘uniform always; a
/// multiply by a uniform factor keeps an affine operand affine; division
/// and remainder are not linear in anything.
pub(crate) fn muldiv_scalarises(op: MulOp, a: OperandClass, b: OperandClass) -> bool {
    use OperandClass::{Uniform, Vector};
    match (a, b) {
        (Vector, _) | (_, Vector) => false,
        (Uniform, Uniform) => true,
        _ => op == MulOp::Mul && (a == Uniform || b == Uniform),
    }
}

impl Sm {
    /// The compact-form class of a data register (`x0` reads as uniform 0).
    pub(crate) fn data_class(&self, w: u32, reg: Reg) -> OperandClass {
        if reg.is_zero() {
            OperandClass::Uniform
        } else {
            self.data_rf.class_of(w, reg.index() as u32)
        }
    }

    fn data_uniform(&self, w: u32, reg: Reg) -> bool {
        self.data_class(w, reg) == OperandClass::Uniform
    }

    /// Is a full capability operand (data *and* metadata) uniform across
    /// the warp? Without a metadata register file the metadata half is
    /// uniformly null.
    fn cap_uniform(&self, w: u32, reg: Reg) -> bool {
        self.data_uniform(w, reg)
            && match &self.meta_rf {
                Some(rf) => {
                    reg.is_zero() || rf.class_of(w, reg.index() as u32) == OperandClass::Uniform
                }
                None => true,
            }
    }

    /// Classify an issue (see the module docs for the criteria). Pure: no
    /// register-file or statistics state changes between this peek and the
    /// execution it governs. Dispatches through [`static_issue_class`] —
    /// the same split the pre-decoded ROM caches — so the two paths agree
    /// by construction.
    pub(crate) fn issue_class(&self, w: u32, sel: &Selection, instr: Instr) -> IssueClass {
        self.resolve_issue_class(w, sel, instr, static_issue_class(instr, self.cheri()))
    }

    /// Resolve an issue class from a pre-computed [`StaticClass`]: the
    /// `Dynamic` case runs the per-issue register-class and mask checks.
    pub(crate) fn resolve_issue_class(
        &self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        sclass: StaticClass,
    ) -> IssueClass {
        let scalarised = match sclass {
            StaticClass::Always => true,
            StaticClass::Never => false,
            StaticClass::Dynamic => self.dynamic_issue_class(w, sel, instr),
        };
        if scalarised {
            IssueClass::Scalarised
        } else {
            IssueClass::PerLane
        }
    }

    /// The dynamic half of the scalarisation verdict, for
    /// [`StaticClass::Dynamic`] instructions only.
    fn dynamic_issue_class(&self, w: u32, sel: &Selection, instr: Instr) -> bool {
        let full = sel.mask == u64::MAX >> (64 - self.cfg.lanes);
        match instr {
            // Uniform control flow (the CHERI JALR case is statically
            // `Never` and cannot reach here).
            Instr::Jalr { rs1, .. } => !self.cheri() && self.data_uniform(w, rs1),
            Instr::Branch { rs1, rs2, .. } => {
                self.data_uniform(w, rs1) && self.data_uniform(w, rs2)
            }
            // Compute over compact operands; a full mask keeps the result
            // write free of per-lane merging.
            Instr::OpImm { op, rs1, .. } => {
                full && alu_scalarises(op, self.data_class(w, rs1), OperandClass::Uniform)
            }
            Instr::Op { op, rs1, rs2, .. } => {
                full && alu_scalarises(op, self.data_class(w, rs1), self.data_class(w, rs2))
            }
            Instr::MulDiv { op, rs1, rs2, .. } => {
                full && muldiv_scalarises(op, self.data_class(w, rs1), self.data_class(w, rs2))
            }
            Instr::FOp { rs1, rs2, .. } | Instr::FCmp { rs1, rs2, .. } => {
                full && self.data_uniform(w, rs1) && self.data_uniform(w, rs2)
            }
            Instr::FSqrt { rs1, .. } | Instr::FCvtWS { rs1, .. } | Instr::FCvtSW { rs1, .. } => {
                full && self.data_uniform(w, rs1)
            }
            // Capability arithmetic on a uniform capability (and uniform
            // scalar operand, where one exists).
            Instr::CapUnary { cs1, .. } => full && self.cap_uniform(w, cs1),
            Instr::CAndPerm { cs1, rs2, .. }
            | Instr::CSetFlags { cs1, rs2, .. }
            | Instr::CSetAddr { cs1, rs2, .. }
            | Instr::CIncOffset { cs1, rs2, .. }
            | Instr::CSetBounds { cs1, rs2, .. }
            | Instr::CSetBoundsExact { cs1, rs2, .. } => {
                full && self.cap_uniform(w, cs1) && self.data_uniform(w, rs2)
            }
            Instr::CIncOffsetImm { cs1, .. } | Instr::CSetBoundsImm { cs1, .. } => {
                full && self.cap_uniform(w, cs1)
            }
            _ => unreachable!("statically classified instruction reached the dynamic check"),
        }
    }
}
