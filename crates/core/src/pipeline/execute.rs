//! Execute stage: fetch check, issue classification and dispatch to the
//! op-class handlers.
//!
//! Owns instruction-issue accounting (`instrs`, `thread_instrs`,
//! `scalarised_issues`, the occupancy samples, the Issue trace event), the
//! per-warp PCC fetch check, the memory-class dispatch with its CSC
//! serialisation and capability multi-flit stalls, and the SFU suspension
//! helpers shared by the op-class handlers.
//!
//! Every issue is classified *before* execution (see [`super::classify`])
//! and the verdict routes it through [`Sm::execute`]: scalarised issues may
//! take the warp-wide fast path over compact operands (unless the host
//! disabled it with [`Sm::set_scalarise`]), per-lane issues always take the
//! lane-wise reference path. The handlers live in [`super::alu`],
//! [`super::flow`], [`super::sfu`] and [`super::capops`]; memory and
//! system ops are handled here because they are never scalarised.

use super::Costs;
use crate::config::TrapPolicy;
use crate::rom::{pc_index, TrapPlan};
use crate::sm::Sm;
use crate::trap::{RunError, Trap, TrapCause};
use crate::warp::{Selection, ThreadStatus};
use simt_isa::{Instr, LoadWidth, Reg, SimtOp};
use simt_regfile::MAX_LANES;
use simt_trace::{IssueClass, StallCause, TraceEvent};

impl Sm {
    /// Select and issue one instruction for warp `w`, returning the
    /// selection that issued (the scheduler's block runner continues from
    /// it).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::SchedulerInvariant`] — instead of aborting the
    /// process — if `w` has no selectable thread, plus everything
    /// [`Sm::issue_with`] can return.
    pub(crate) fn issue(&mut self, w: usize) -> Result<Selection, RunError> {
        let Some(sel) = self.warps[w].select() else {
            return Err(RunError::SchedulerInvariant { warp: w as u32, cycles: self.cycle });
        };
        self.issue_with(w, sel)?;
        Ok(sel)
    }

    /// Issue one instruction for warp `w` under the given selection,
    /// applying the configured [`TrapPolicy`] to any trap the pipeline
    /// raises: `Abort` delivers it to the caller (ending the run),
    /// `MaskLanes` records it, disables the faulting lanes and keeps the
    /// warp running. Either way the trap is counted in
    /// [`crate::FaultStats`] and emitted as a `trap` trace event.
    pub(crate) fn issue_with(&mut self, w: usize, sel: Selection) -> Result<(), RunError> {
        match self.issue_inner(w, sel) {
            Err(RunError::Trap(t)) => self.deliver_trap(t),
            other => other,
        }
    }

    fn deliver_trap(&mut self, t: Trap) -> Result<(), RunError> {
        let suppress = self.cfg.trap_policy == TrapPolicy::MaskLanes;
        self.stats.faults.traps += 1;
        self.stats.faults.faulting_lanes += t.lane_mask.count_ones() as u64;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Trap {
                cycle: self.cycle,
                warp: t.warp,
                pc: t.pc,
                mask: t.lane_mask,
                cause: t.cause.name(),
                suppressed: suppress,
            });
        }
        if !suppress {
            return Err(RunError::Trap(t));
        }
        // MaskLanes: permanently disable the faulting lanes; the surviving
        // lanes re-issue the instruction (each suppression removes at least
        // one active lane, so the warp always makes progress).
        self.stats.faults.suppressed += 1;
        let warp = &mut self.warps[t.warp as usize];
        for lane in 0..warp.lanes() as usize {
            if t.lane_mask >> lane & 1 == 1 {
                warp.set_status(lane, ThreadStatus::Faulted);
            }
        }
        self.suppressed.push(t);
        Ok(())
    }

    fn issue_inner(&mut self, w: usize, sel: Selection) -> Result<(), RunError> {
        let wid = u32::try_from(w).expect("warp index exceeds u32");

        // Fetch. The instruction-memory range check runs *first*, so a PC
        // outside the program traps as `fetch_oob` under every protection
        // scheme; the CHERI PCC check (one per warp, Section 3.3) then
        // covers in-range PCs reached on a non-launch PCC. See DESIGN.md
        // §3.3.4 for the ordering rationale.
        let idx = match pc_index(sel.pc) {
            Some(i) if i < self.imem.len() => i,
            _ => {
                return Err(Trap::warp_wide(
                    wid,
                    sel.mask,
                    sel.pc,
                    TrapCause::FetchOutOfRange(sel.pc),
                )
                .into())
            }
        };
        if self.cheri()
            && !(self.pcc_fetch_ok
                && sel.pcc_meta == self.launch_pcc_meta
                && sel.pc.is_multiple_of(4))
        {
            let pcc = Self::cap_of(sel.pcc_meta, sel.pc as u64);
            if let Err(e) = pcc.check_fetch(sel.pc) {
                return Err(Trap::warp_wide(wid, sel.mask, sel.pc, TrapCause::Cheri(e)).into());
            }
        }
        // Decode + classify: from the pre-decoded ROM when available (the
        // cached static class resolves through the same dynamic check),
        // from instruction memory otherwise. Classification precedes
        // execution so the event, the counter and the executed path all
        // report the same verdict.
        let (instr, class, plan) = match &self.rom {
            Some(rom) => match rom.ops[idx] {
                Some(op) => {
                    (op.instr, self.resolve_issue_class(wid, &sel, op.instr, op.sclass), op.plan)
                }
                None => {
                    return Err(Trap::warp_wide(
                        wid,
                        sel.mask,
                        sel.pc,
                        TrapCause::IllegalInstr(self.imem_raw[idx]),
                    )
                    .into())
                }
            },
            None => match self.imem[idx] {
                Some(i) => {
                    (i, self.issue_class(wid, &sel, i), TrapPlan::for_instr(i, self.cheri()))
                }
                None => {
                    return Err(Trap::warp_wide(
                        wid,
                        sel.mask,
                        sel.pc,
                        TrapCause::IllegalInstr(self.imem_raw[idx]),
                    )
                    .into())
                }
            },
        };

        // Issue accounting.
        self.cycle += 1;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Issue {
                cycle: self.cycle,
                warp: wid,
                pc: sel.pc,
                mask: sel.mask,
                mnemonic: instr.mnemonic(),
                class,
            });
        }
        self.stats.instrs += 1;
        self.stats.thread_instrs += sel.mask.count_ones() as u64;
        if class == IssueClass::Scalarised {
            self.stats.scalarised_issues += 1;
        }
        self.samples += 1;
        self.sum_data_resident += self.data_rf.vrf_resident() as u64;
        if let Some(m) = &self.meta_rf {
            self.sum_meta_resident += m.vrf_resident() as u64;
        }

        let mut costs = Costs::default();
        let result = self.execute(wid, &sel, instr, class, plan, &mut costs);

        // Apply accumulated costs.
        self.cycle += (costs.extra_cycles + costs.spill_cycles) as u64;
        self.stats.stalls.spill_fill += costs.spill_cycles as u64;
        self.emit_stall(wid, StallCause::SpillFill, costs.spill_cycles as u64);
        if costs.dram_reads + costs.dram_writes > 0 {
            match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.dram.access_traced(
                        self.cycle,
                        costs.dram_reads,
                        costs.dram_writes,
                        0,
                        wid,
                        sink,
                    );
                }
                None => {
                    self.dram.access(self.cycle, costs.dram_reads, costs.dram_writes, 0);
                }
            }
        }
        result
    }

    /// Execute `instr` for the selected threads of warp `w`, honouring the
    /// issue classifier's verdict: scalarised issues take the warp-wide
    /// compact path (when enabled), everything else the lane-wise one.
    pub(crate) fn execute(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        class: IssueClass,
        plan: TrapPlan,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let fast = self.scalarise && class == IssueClass::Scalarised;
        match instr {
            Instr::Lui { .. }
            | Instr::Auipc { .. }
            | Instr::OpImm { .. }
            | Instr::Op { .. }
            | Instr::MulDiv { .. }
            | Instr::Csrrs { .. } => {
                self.exec_alu_class(w, sel, instr, fast, costs);
                Ok(())
            }
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. } => {
                self.exec_flow_class(w, sel, instr, fast, costs)
            }
            Instr::FOp { .. }
            | Instr::FSqrt { .. }
            | Instr::FCmp { .. }
            | Instr::FCvtWS { .. }
            | Instr::FCvtSW { .. } => {
                self.exec_sfu_class(w, sel, instr, fast, costs);
                Ok(())
            }
            Instr::CapUnary { .. }
            | Instr::CAndPerm { .. }
            | Instr::CSetFlags { .. }
            | Instr::CSetAddr { .. }
            | Instr::CIncOffset { .. }
            | Instr::CIncOffsetImm { .. }
            | Instr::CSetBounds { .. }
            | Instr::CSetBoundsExact { .. }
            | Instr::CSetBoundsImm { .. }
            | Instr::CSpecialRw { .. } => self.exec_cap_class(w, sel, instr, fast, costs),
            Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::Clc { .. }
            | Instr::Csc { .. }
            | Instr::Amo { .. } => self.exec_mem_class(w, sel, instr, plan, costs),
            Instr::Fence | Instr::Ecall | Instr::Ebreak | Instr::Simt { .. } => {
                self.exec_sys_class(w, sel, instr)
            }
        }
    }

    /// Memory op class: loads, stores, capability-wide transfers and AMOs.
    /// Always per-lane (addresses diverge); the memory pipeline proper
    /// lives in [`super::memstage`].
    fn exec_mem_class(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        plan: TrapPlan,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let cheri = self.cheri();
        match instr {
            Instr::Load { w: lw, rd, rs1, off } => {
                if cheri {
                    self.stats.count_cheri(
                        match lw {
                            LoadWidth::B => "CLB",
                            LoadWidth::H => "CLH",
                            LoadWidth::W => "CLW",
                            LoadWidth::Bu => "CLBU",
                            LoadWidth::Hu => "CLHU",
                        },
                        1,
                    );
                }
                self.do_load_store(
                    w,
                    sel,
                    rs1,
                    Some(rd),
                    Reg::ZERO,
                    off,
                    lw.bytes(),
                    false,
                    false,
                    lw,
                    plan,
                    costs,
                )?;
            }
            Instr::Store { w: sw, rs2, rs1, off } => {
                if cheri {
                    self.stats.count_cheri(
                        match sw {
                            simt_isa::StoreWidth::B => "CSB",
                            simt_isa::StoreWidth::H => "CSH",
                            simt_isa::StoreWidth::W => "CSW",
                        },
                        1,
                    );
                }
                self.do_load_store(
                    w,
                    sel,
                    rs1,
                    None,
                    rs2,
                    off,
                    sw.bytes(),
                    true,
                    false,
                    LoadWidth::W,
                    plan,
                    costs,
                )?;
            }
            Instr::Clc { cd, cs1, off } => {
                self.stats.count_cheri("CLC", 1);
                self.cap_multi_flit_stall(w, costs);
                self.do_load_store(
                    w,
                    sel,
                    cs1,
                    Some(cd),
                    Reg::ZERO,
                    off,
                    8,
                    false,
                    true,
                    LoadWidth::W,
                    plan,
                    costs,
                )?;
            }
            Instr::Csc { cs2, cs1, off } => {
                self.stats.count_cheri("CSC", 1);
                self.cap_multi_flit_stall(w, costs);
                // Single-read-port metadata SRF: CSC needs cs1 and cs2
                // metadata, costing an extra operand-fetch cycle in the
                // optimised configuration (Section 3.2).
                if let Some(o) = self.opts {
                    if o.compress_meta {
                        costs.extra_cycles += 1;
                        self.stats.stalls.csc_serialisation += 1;
                        self.emit_stall(w, StallCause::CscSerialisation, 1);
                    }
                }
                self.do_load_store(
                    w,
                    sel,
                    cs1,
                    None,
                    cs2,
                    off,
                    8,
                    true,
                    true,
                    LoadWidth::W,
                    plan,
                    costs,
                )?;
            }
            Instr::Amo { op, rd, rs1, rs2 } => {
                if cheri {
                    self.stats.count_cheri("CAMO", 1);
                }
                let mut b = [0u64; MAX_LANES];
                self.read_data(w, rs2, &mut b, costs);
                self.do_amo(w, sel, rs1, rd, op, &b, plan, costs)?;
            }
            _ => unreachable!("not a memory-class instruction"),
        }
        self.advance_uniform(w, sel, sel.pc.wrapping_add(4), None);
        Ok(())
    }

    /// The second flit of a capability-wide access (`CLC`/`CSC`) on the
    /// 32-bit datapath (Section 3.1).
    fn cap_multi_flit_stall(&mut self, w: u32, costs: &mut Costs) {
        self.stats.stalls.cap_multi_flit += self.cfg.timing.cap_access_extra as u64;
        self.emit_stall(w, StallCause::CapMultiFlit, self.cfg.timing.cap_access_extra as u64);
        costs.extra_cycles += self.cfg.timing.cap_access_extra;
    }

    /// System op class: fences, environment traps and SIMT control.
    fn exec_sys_class(&mut self, w: u32, sel: &Selection, instr: Instr) -> Result<(), RunError> {
        let status_change = match instr {
            Instr::Fence => None,
            Instr::Ecall | Instr::Ebreak => {
                return Err(Trap::warp_wide(w, sel.mask, sel.pc, TrapCause::Environment).into());
            }
            Instr::Simt { op: SimtOp::Terminate } => Some(ThreadStatus::Terminated),
            Instr::Simt { op: SimtOp::Barrier } => {
                self.stats.barriers += 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.emit(TraceEvent::Barrier { cycle: self.cycle, warp: w, release: false });
                }
                Some(ThreadStatus::AtBarrier)
            }
            _ => unreachable!("not a system-class instruction"),
        };
        self.advance_uniform(w, sel, sel.pc.wrapping_add(4), status_change);
        Ok(())
    }

    pub(crate) fn sfu_suspend(&mut self, w: u32, sel: &Selection) {
        self.stats.sfu_requests += 1;
        let lat = self.cfg.timing.sfu_latency as u64 + sel.mask.count_ones() as u64;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Sfu {
                cycle: self.cycle,
                warp: w,
                lanes: sel.mask.count_ones(),
                latency: lat,
            });
        }
        self.warps[w as usize].ready_at = self.cycle + lat;
    }

    /// Capability slow-path ops: SFU round-trip when offloaded (optimised
    /// configuration), single-cycle per-lane logic otherwise.
    pub(crate) fn cap_sfu_suspend(&mut self, w: u32, sel: &Selection) {
        if self.opts.map(|o| o.sfu_cap_ops).unwrap_or(false) {
            self.sfu_suspend(w, sel);
        }
    }
}
