//! Execute stage: fetch check, the lane ALUs, and SFU offload.
//!
//! Owns instruction-issue accounting (`instrs`, `thread_instrs`, the
//! occupancy samples, the Issue trace event), the per-warp PCC fetch check,
//! capability arithmetic and its `cheri_histogram` attribution, the CSC
//! serialisation and capability multi-flit stalls, and SFU round-trips.
//!
//! CSR reads are virtualised for multi-SM devices: `MHARTID` is offset by
//! the SM's [`Sm::set_hart_base`] placement and `SIMT_NUM_THREADS` reads
//! the device-wide thread count, so an unmodified grid-stride kernel
//! distributes its blocks across every SM of a [`crate::Device`].

use super::Costs;
use crate::exec;
use crate::sm::Sm;
use crate::trap::{RunError, Trap, TrapCause};
use crate::warp::{Selection, ThreadStatus};
use cheri_cap::{bounds, CapPipe, Perms};
use simt_isa::{scr, Instr, LoadWidth, Reg, SimtOp, UnaryCapOp};
use simt_mem::map;
use simt_regfile::{MAX_LANES, NULL_META};
use simt_trace::{StallCause, TraceEvent};

impl Sm {
    pub(crate) fn trap(&self, w: u32, sel: &Selection, lane: u32, cause: TrapCause) -> Trap {
        Trap { warp: w, lane, pc: sel.pc, cause }
    }

    pub(crate) fn issue(&mut self, w: usize) -> Result<(), RunError> {
        let sel = self.warps[w].select().expect("issue() requires a selectable warp");
        let wid = w as u32;

        // Fetch: one PCC bounds check per warp (Section 3.3).
        if self.cheri() {
            let pcc = Self::cap_of(sel.pcc_meta, sel.pc as u64);
            if let Err(e) = pcc.check_fetch(sel.pc) {
                return Err(self
                    .trap(wid, &sel, sel.mask.trailing_zeros(), TrapCause::Cheri(e))
                    .into());
            }
        }
        if sel.pc < map::TCIM_BASE || ((sel.pc - map::TCIM_BASE) / 4) as usize >= self.imem.len() {
            return Err(self
                .trap(wid, &sel, sel.mask.trailing_zeros(), TrapCause::FetchOutOfRange(sel.pc))
                .into());
        }
        let idx = ((sel.pc - map::TCIM_BASE) / 4) as usize;
        let instr = match self.imem[idx] {
            Some(i) => i,
            None => {
                return Err(self
                    .trap(
                        wid,
                        &sel,
                        sel.mask.trailing_zeros(),
                        TrapCause::IllegalInstr(self.imem_raw[idx]),
                    )
                    .into())
            }
        };

        // Issue accounting.
        self.cycle += 1;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Issue {
                cycle: self.cycle,
                warp: wid,
                pc: sel.pc,
                mask: sel.mask,
                mnemonic: instr.mnemonic(),
            });
        }
        self.stats.instrs += 1;
        self.stats.thread_instrs += sel.mask.count_ones() as u64;
        self.samples += 1;
        self.sum_data_resident += self.data_rf.vrf_resident() as u64;
        if let Some(m) = &self.meta_rf {
            self.sum_meta_resident += m.vrf_resident() as u64;
        }

        let mut costs = Costs::default();
        let result = self.execute(wid, &sel, instr, &mut costs);

        // Apply accumulated costs.
        self.cycle += (costs.extra_cycles + costs.spill_cycles) as u64;
        self.stats.stalls.spill_fill += costs.spill_cycles as u64;
        self.emit_stall(wid, StallCause::SpillFill, costs.spill_cycles as u64);
        if costs.dram_reads + costs.dram_writes > 0 {
            match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.dram.access_traced(
                        self.cycle,
                        costs.dram_reads,
                        costs.dram_writes,
                        0,
                        wid,
                        sink,
                    );
                }
                None => {
                    self.dram.access(self.cycle, costs.dram_reads, costs.dram_writes, 0);
                }
            }
        }
        result
    }

    /// Execute `instr` for the selected threads of warp `w`.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn execute(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        let mut a = [0u64; MAX_LANES];
        let mut b = [0u64; MAX_LANES];
        let mut am = [NULL_META; MAX_LANES];
        let mut r = [0u64; MAX_LANES];
        let mut rm = [NULL_META; MAX_LANES];
        // Default next PC: sequential.
        let mut next_pc = [sel.pc.wrapping_add(4); MAX_LANES];
        let mut status_change: Option<ThreadStatus> = None;
        let mut write_rd: Option<Reg> = None;
        let mut rd_is_cap = false;

        macro_rules! active {
            () => {
                (0..lanes).filter(|i| mask >> i & 1 == 1)
            };
        }

        match instr {
            Instr::Lui { rd, imm } => {
                r[..lanes].fill(imm as u64);
                write_rd = Some(rd);
            }
            Instr::Auipc { rd, imm } => {
                let target = sel.pc.wrapping_add(imm);
                if cheri {
                    self.stats.count_cheri("AUIPCC", 1);
                    let cap = Self::cap_of(sel.pcc_meta, sel.pc as u64).set_addr(target);
                    let (m, d) = Self::cap_parts(cap);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    r[..lanes].fill(target as u64);
                }
                write_rd = Some(rd);
            }
            Instr::Jal { rd, off } => {
                if cheri {
                    self.stats.count_cheri("CJAL", 1);
                    let link = Self::cap_of(sel.pcc_meta, sel.pc as u64)
                        .set_addr(sel.pc.wrapping_add(4))
                        .seal_entry();
                    let (m, d) = Self::cap_parts(link);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    r[..lanes].fill(sel.pc.wrapping_add(4) as u64);
                }
                let target = sel.pc.wrapping_add(off as u32);
                for i in active!() {
                    next_pc[i] = target;
                }
                write_rd = Some(rd);
            }
            Instr::Jalr { rd, rs1, off } => {
                if cheri {
                    self.stats.count_cheri("CJALR", 1);
                    self.read_cap_operand(w, rs1, &mut a, &mut am, costs);
                    for i in active!() {
                        let cap = Self::cap_of(am[i], a[i]);
                        let target = (cap.addr().wrapping_add(off as u32)) & !1;
                        let cap = cap.unseal_sentry();
                        if let Err(e) = cap.check_fetch(target) {
                            return Err(self.trap(w, sel, i as u32, TrapCause::Cheri(e)).into());
                        }
                        let (m, _) = Self::cap_parts(cap);
                        self.warps[w as usize].set_pcc_meta(i, m);
                        next_pc[i] = target;
                    }
                    let link = Self::cap_of(sel.pcc_meta, sel.pc as u64)
                        .set_addr(sel.pc.wrapping_add(4))
                        .seal_entry();
                    let (m, d) = Self::cap_parts(link);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    self.read_data(w, rs1, &mut a, costs);
                    for i in active!() {
                        next_pc[i] = (a[i] as u32).wrapping_add(off as u32) & !1;
                    }
                    r[..lanes].fill(sel.pc.wrapping_add(4) as u64);
                }
                write_rd = Some(rd);
            }
            Instr::Branch { cond, rs1, rs2, off } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                let target = sel.pc.wrapping_add(off as u32);
                for i in active!() {
                    if exec::branch_taken(cond, a[i] as u32, b[i] as u32) {
                        next_pc[i] = target;
                    }
                }
            }
            Instr::Load { w: lw, rd, rs1, off } => {
                if cheri {
                    self.stats.count_cheri(
                        match lw {
                            LoadWidth::B => "CLB",
                            LoadWidth::H => "CLH",
                            LoadWidth::W => "CLW",
                            LoadWidth::Bu => "CLBU",
                            LoadWidth::Hu => "CLHU",
                        },
                        1,
                    );
                }
                self.do_load_store(
                    w,
                    sel,
                    rs1,
                    Some(rd),
                    Reg::ZERO,
                    off,
                    lw.bytes(),
                    false,
                    false,
                    lw,
                    costs,
                )?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::Store { w: sw, rs2, rs1, off } => {
                if cheri {
                    self.stats.count_cheri(
                        match sw {
                            simt_isa::StoreWidth::B => "CSB",
                            simt_isa::StoreWidth::H => "CSH",
                            simt_isa::StoreWidth::W => "CSW",
                        },
                        1,
                    );
                }
                self.do_load_store(
                    w,
                    sel,
                    rs1,
                    None,
                    rs2,
                    off,
                    sw.bytes(),
                    true,
                    false,
                    LoadWidth::W,
                    costs,
                )?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::Clc { cd, cs1, off } => {
                self.stats.count_cheri("CLC", 1);
                self.stats.stalls.cap_multi_flit += self.cfg.timing.cap_access_extra as u64;
                self.emit_stall(
                    w,
                    StallCause::CapMultiFlit,
                    self.cfg.timing.cap_access_extra as u64,
                );
                costs.extra_cycles += self.cfg.timing.cap_access_extra;
                self.do_load_store(
                    w,
                    sel,
                    cs1,
                    Some(cd),
                    Reg::ZERO,
                    off,
                    8,
                    false,
                    true,
                    LoadWidth::W,
                    costs,
                )?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::Csc { cs2, cs1, off } => {
                self.stats.count_cheri("CSC", 1);
                self.stats.stalls.cap_multi_flit += self.cfg.timing.cap_access_extra as u64;
                self.emit_stall(
                    w,
                    StallCause::CapMultiFlit,
                    self.cfg.timing.cap_access_extra as u64,
                );
                costs.extra_cycles += self.cfg.timing.cap_access_extra;
                // Single-read-port metadata SRF: CSC needs cs1 and cs2
                // metadata, costing an extra operand-fetch cycle in the
                // optimised configuration (Section 3.2).
                if let Some(o) = self.opts {
                    if o.compress_meta {
                        costs.extra_cycles += 1;
                        self.stats.stalls.csc_serialisation += 1;
                        self.emit_stall(w, StallCause::CscSerialisation, 1);
                    }
                }
                self.do_load_store(
                    w,
                    sel,
                    cs1,
                    None,
                    cs2,
                    off,
                    8,
                    true,
                    true,
                    LoadWidth::W,
                    costs,
                )?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                self.read_data(w, rs1, &mut a, costs);
                for i in active!() {
                    r[i] = exec::alu(op, a[i] as u32, imm as u32) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    r[i] = exec::alu(op, a[i] as u32, b[i] as u32) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    r[i] = exec::muldiv(op, a[i] as u32, b[i] as u32) as u64;
                }
                if matches!(
                    op,
                    simt_isa::MulOp::Div
                        | simt_isa::MulOp::Divu
                        | simt_isa::MulOp::Rem
                        | simt_isa::MulOp::Remu
                ) {
                    self.warps[w as usize].ready_at =
                        self.cycle + self.cfg.timing.div_latency as u64;
                }
                write_rd = Some(rd);
            }
            Instr::Amo { op, rd, rs1, rs2 } => {
                if cheri {
                    self.stats.count_cheri("CAMO", 1);
                }
                self.read_data(w, rs2, &mut b, costs);
                self.do_amo(w, sel, rs1, rd, op, &b, costs)?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::Fence => {}
            Instr::Ecall | Instr::Ebreak => {
                return Err(self
                    .trap(w, sel, sel.mask.trailing_zeros(), TrapCause::Environment)
                    .into());
            }
            Instr::Csrrs { rd, csr, .. } => {
                use simt_isa::csr as c;
                for i in active!() {
                    r[i] = match csr {
                        c::MHARTID => (self.hart_base + w * self.cfg.lanes + i as u32) as u64,
                        c::SIMT_NUM_WARPS => self.cfg.warps as u64,
                        c::SIMT_LOG_LANES => self.cfg.lanes.trailing_zeros() as u64,
                        c::SIMT_NUM_THREADS => self.device_threads as u64,
                        _ => 0,
                    };
                }
                write_rd = Some(rd);
            }
            Instr::FOp { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    r[i] = exec::fp(op, a[i] as u32, b[i] as u32) as u64;
                }
                if op == simt_isa::FpOp::Div {
                    self.sfu_suspend(w, sel);
                }
                write_rd = Some(rd);
            }
            Instr::FSqrt { rd, rs1 } => {
                self.read_data(w, rs1, &mut a, costs);
                for i in active!() {
                    r[i] = exec::fsqrt(a[i] as u32) as u64;
                }
                self.sfu_suspend(w, sel);
                write_rd = Some(rd);
            }
            Instr::FCmp { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    r[i] = exec::fcmp(op, a[i] as u32, b[i] as u32) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::FCvtWS { rd, rs1, signed } => {
                self.read_data(w, rs1, &mut a, costs);
                for i in active!() {
                    r[i] = exec::fcvt_ws(a[i] as u32, signed) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::FCvtSW { rd, rs1, signed } => {
                self.read_data(w, rs1, &mut a, costs);
                for i in active!() {
                    r[i] = exec::fcvt_sw(a[i] as u32, signed) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::CapUnary { op, rd, cs1 } => {
                self.exec_cap_unary(w, sel, op, rd, cs1, &mut r, &mut rm, &mut rd_is_cap, costs);
                write_rd = Some(rd);
            }
            Instr::CAndPerm { cd, cs1, rs2 } => {
                self.stats.count_cheri("CAndPerm", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).and_perm(Perms::from_bits(b[i] as u16));
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetFlags { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetFlags", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_flags(b[i] & 1 == 1);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetAddr { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetAddr", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_addr(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CIncOffset { cd, cs1, rs2 } => {
                self.stats.count_cheri("CIncOffset", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).inc_offset(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CIncOffsetImm { cd, cs1, imm } => {
                self.stats.count_cheri("CIncOffsetImm", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).inc_offset(imm as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetBounds { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetBounds", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let (cap, _) = Self::cap_of(am[i], a[i]).set_bounds(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetBoundsExact { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetBoundsExact", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_bounds_exact(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetBoundsImm { cd, cs1, imm } => {
                self.stats.count_cheri("CSetBoundsImm", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                for i in active!() {
                    let (cap, _) = Self::cap_of(am[i], a[i]).set_bounds(imm);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSpecialRw { cd, scr: s, .. } => {
                self.stats.count_cheri("CSpecialRW", 1);
                let cap = if s == scr::PCC {
                    Self::cap_of(sel.pcc_meta, sel.pc as u64)
                } else {
                    CapPipe::from_mem(self.scrs[s as usize])
                };
                let (m, d) = Self::cap_parts(cap);
                r[..lanes].fill(d);
                rm[..lanes].fill(m);
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::Simt { op: SimtOp::Terminate } => {
                status_change = Some(ThreadStatus::Terminated);
            }
            Instr::Simt { op: SimtOp::Barrier } => {
                self.stats.barriers += 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.emit(TraceEvent::Barrier { cycle: self.cycle, warp: w, release: false });
                }
                status_change = Some(ThreadStatus::AtBarrier);
            }
        }

        if let Some(rd) = write_rd {
            self.write_data(w, rd, &r, mask, costs);
            if cheri {
                if rd_is_cap {
                    self.write_meta(w, rd, &rm, mask, costs);
                } else {
                    self.write_meta_null(w, rd, mask, costs);
                }
            }
        }
        self.advance(w, sel, &next_pc, status_change);
        Ok(())
    }

    pub(crate) fn sfu_suspend(&mut self, w: u32, sel: &Selection) {
        self.stats.sfu_requests += 1;
        let lat = self.cfg.timing.sfu_latency as u64 + sel.mask.count_ones() as u64;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Sfu {
                cycle: self.cycle,
                warp: w,
                lanes: sel.mask.count_ones(),
                latency: lat,
            });
        }
        self.warps[w as usize].ready_at = self.cycle + lat;
    }

    /// Capability slow-path ops: SFU round-trip when offloaded (optimised
    /// configuration), single-cycle per-lane logic otherwise.
    pub(crate) fn cap_sfu_suspend(&mut self, w: u32, sel: &Selection) {
        if self.opts.map(|o| o.sfu_cap_ops).unwrap_or(false) {
            self.sfu_suspend(w, sel);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_cap_unary(
        &mut self,
        w: u32,
        sel: &Selection,
        op: UnaryCapOp,
        _rd: Reg,
        cs1: Reg,
        r: &mut [u64; MAX_LANES],
        rm: &mut [u64; MAX_LANES],
        rd_is_cap: &mut bool,
        costs: &mut Costs,
    ) {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let mut a = [0u64; MAX_LANES];
        let mut am = [NULL_META; MAX_LANES];
        self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
        let name = match op {
            UnaryCapOp::GetTag => "CGetTag",
            UnaryCapOp::ClearTag => "CClearTag",
            UnaryCapOp::GetPerm => "CGetPerm",
            UnaryCapOp::GetBase => "CGetBase",
            UnaryCapOp::GetLen => "CGetLen",
            UnaryCapOp::GetType => "CGetType",
            UnaryCapOp::GetSealed => "CGetSealed",
            UnaryCapOp::GetFlags => "CGetFlags",
            UnaryCapOp::GetAddr => "CGetAddr",
            UnaryCapOp::Move => "CMove",
            UnaryCapOp::SealEntry => "CSealEntry",
            UnaryCapOp::Crrl => "CRRL",
            UnaryCapOp::Cram => "CRAM",
        };
        self.stats.count_cheri(name, 1);
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let cap = Self::cap_of(am[i], a[i]);
            match op {
                UnaryCapOp::GetTag => r[i] = cap.tag() as u64,
                UnaryCapOp::GetPerm => r[i] = cap.perms().bits() as u64,
                UnaryCapOp::GetBase => r[i] = cap.base() as u64,
                UnaryCapOp::GetLen => r[i] = cap.length().min(u32::MAX as u64),
                UnaryCapOp::GetType => r[i] = cap.otype() as u64,
                UnaryCapOp::GetSealed => r[i] = cap.is_sealed() as u64,
                UnaryCapOp::GetFlags => r[i] = cap.flag() as u64,
                UnaryCapOp::GetAddr => r[i] = cap.addr() as u64,
                UnaryCapOp::Crrl => {
                    r[i] = bounds::representable_length(a[i] as u32).min(u32::MAX as u64)
                }
                UnaryCapOp::Cram => r[i] = bounds::representable_alignment_mask(a[i] as u32) as u64,
                UnaryCapOp::ClearTag => {
                    (rm[i], r[i]) = Self::cap_parts(cap.clear_tag());
                    *rd_is_cap = true;
                }
                UnaryCapOp::Move => {
                    (rm[i], r[i]) = (am[i], a[i]);
                    *rd_is_cap = true;
                }
                UnaryCapOp::SealEntry => {
                    (rm[i], r[i]) = Self::cap_parts(cap.seal_entry());
                    *rd_is_cap = true;
                }
            }
        }
        if matches!(
            op,
            UnaryCapOp::GetBase | UnaryCapOp::GetLen | UnaryCapOp::Crrl | UnaryCapOp::Cram
        ) {
            self.cap_sfu_suspend(w, sel);
        }
    }
}
