//! Control-flow op class: `JAL`, `JALR` and conditional branches.
//!
//! Under CHERI, `JAL`/`JALR` become `CJAL`/`CJALR`: the link register is a
//! sealed (sentry) capability and the jump target is fetch-checked against
//! the unsealed target capability, per lane. The scalarised fast path
//! covers warp-invariant flow — `JAL` (the target is an immediate),
//! non-CHERI `JALR` with a uniform base, and branches whose operands are
//! uniform so the whole warp takes one direction.

use super::scalar::expect_uniform;
use super::Costs;
use crate::exec;
use crate::sm::Sm;
use crate::trap::{LaneFault, RunError, Trap, TrapCause};
use crate::warp::Selection;
use simt_isa::Instr;
use simt_regfile::OperandVec;

impl Sm {
    /// Execute one control-flow instruction.
    ///
    /// # Errors
    ///
    /// CHERI `JALR` traps when the target capability fails the fetch check.
    pub(crate) fn exec_flow_class(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        fast: bool,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        if fast {
            self.exec_flow_fast(w, sel, instr, costs);
            Ok(())
        } else {
            self.exec_flow_lanewise(w, sel, instr, costs)
        }
    }

    /// The lane-wise reference path. Scratch staleness audit: `a`/`am`/`b`
    /// are fully overwritten by the operand reads; `next_pc` is explicitly
    /// re-filled with the sequential PC; `metas` (the spare `bm` scratch) is
    /// written for every active lane that survives the check phase before
    /// any lane reads it back; `r`/`rm` are `[..lanes]`-filled when written
    /// back at all.
    fn exec_flow_lanewise(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let mut bufs = self.take_bufs();
        let res = self.flow_lanewise_with(&mut bufs, w, sel, instr, costs);
        self.put_bufs(bufs);
        res
    }

    fn flow_lanewise_with(
        &mut self,
        bufs: &mut crate::sm::LaneBufs,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        let crate::sm::LaneBufs { a, am, b, bm: metas, r, rm, pcs: next_pc, .. } = bufs;
        next_pc[..lanes].fill(sel.pc.wrapping_add(4));
        let mut rd_is_cap = false;

        macro_rules! active {
            () => {
                (0..lanes).filter(|i| mask >> i & 1 == 1)
            };
        }

        let write_rd = match instr {
            Instr::Jal { rd, off } => {
                if cheri {
                    self.stats.count_cheri("CJAL", 1);
                    let link = Self::cap_of(sel.pcc_meta, sel.pc as u64)
                        .set_addr(sel.pc.wrapping_add(4))
                        .seal_entry();
                    let (m, d) = Self::cap_parts(link);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    r[..lanes].fill(sel.pc.wrapping_add(4) as u64);
                }
                let target = sel.pc.wrapping_add(off as u32);
                for i in active!() {
                    next_pc[i] = target;
                }
                Some(rd)
            }
            Instr::Jalr { rd, rs1, off } => {
                if cheri {
                    self.stats.count_cheri("CJALR", 1);
                    self.read_cap_operand(w, rs1, a, am, costs);
                    // Check phase: fetch-check every active lane's target
                    // before installing any lane's PCC metadata, so a trap
                    // leaves the whole warp's PCC state untouched.
                    let mut faults: Vec<LaneFault> = Vec::new();
                    for i in active!() {
                        let cap = Self::cap_of(am[i], a[i]);
                        let target = (cap.addr().wrapping_add(off as u32)) & !1;
                        let cap = cap.unseal_sentry();
                        if let Err(e) = cap.check_fetch(target) {
                            faults.push(LaneFault { lane: i as u32, cause: TrapCause::Cheri(e) });
                            continue;
                        }
                        let (m, _) = Self::cap_parts(cap);
                        metas[i] = m;
                        next_pc[i] = target;
                    }
                    if let Some(t) = Trap::from_lane_faults(w, sel.pc, faults) {
                        return Err(t.into());
                    }
                    for i in active!() {
                        self.warps[w as usize].set_pcc_meta(i, metas[i]);
                    }
                    let link = Self::cap_of(sel.pcc_meta, sel.pc as u64)
                        .set_addr(sel.pc.wrapping_add(4))
                        .seal_entry();
                    let (m, d) = Self::cap_parts(link);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    self.read_data(w, rs1, a, costs);
                    for i in active!() {
                        next_pc[i] = (a[i] as u32).wrapping_add(off as u32) & !1;
                    }
                    r[..lanes].fill(sel.pc.wrapping_add(4) as u64);
                }
                Some(rd)
            }
            Instr::Branch { cond, rs1, rs2, off } => {
                self.read_data(w, rs1, a, costs);
                self.read_data(w, rs2, b, costs);
                let target = sel.pc.wrapping_add(off as u32);
                for i in active!() {
                    if exec::branch_taken(cond, a[i] as u32, b[i] as u32) {
                        next_pc[i] = target;
                    }
                }
                None
            }
            _ => unreachable!("not a flow-class instruction"),
        };
        if let Some(rd) = write_rd {
            self.writeback(w, rd, &r[..], rd_is_cap.then_some(&rm[..]), mask, costs);
        }
        self.advance(w, sel, next_pc, None);
        Ok(())
    }

    /// The warp-wide fast path: one target resolution per warp. Never
    /// reached for CHERI `JALR` (per-lane PCC installation), so it cannot
    /// trap.
    fn exec_flow_fast(&mut self, w: u32, sel: &Selection, instr: Instr, costs: &mut Costs) {
        let mask = sel.mask;
        let seq = sel.pc.wrapping_add(4);
        match instr {
            Instr::Jal { rd, off } => {
                if self.cheri() {
                    self.stats.count_cheri("CJAL", 1);
                    let link = Self::cap_of(sel.pcc_meta, sel.pc as u64).set_addr(seq).seal_entry();
                    let (m, d) = Self::cap_parts(link);
                    let meta = OperandVec::Uniform(m);
                    self.writeback_compact(
                        w,
                        rd,
                        &OperandVec::Uniform(d),
                        Some(&meta),
                        mask,
                        costs,
                    );
                } else {
                    self.writeback_compact(
                        w,
                        rd,
                        &OperandVec::Uniform(seq as u64),
                        None,
                        mask,
                        costs,
                    );
                }
                let target = sel.pc.wrapping_add(off as u32);
                self.advance_uniform(w, sel, target, None);
            }
            Instr::Jalr { rd, rs1, off } => {
                let base = expect_uniform(&self.read_data_compact(w, rs1, costs));
                let target = (base as u32).wrapping_add(off as u32) & !1;
                self.writeback_compact(w, rd, &OperandVec::Uniform(seq as u64), None, mask, costs);
                self.advance_uniform(w, sel, target, None);
            }
            Instr::Branch { cond, rs1, rs2, off } => {
                let a = expect_uniform(&self.read_data_compact(w, rs1, costs));
                let b = expect_uniform(&self.read_data_compact(w, rs2, costs));
                let next = if exec::branch_taken(cond, a as u32, b as u32) {
                    sel.pc.wrapping_add(off as u32)
                } else {
                    seq
                };
                self.advance_uniform(w, sel, next, None);
            }
            _ => unreachable!("not a flow-class instruction"),
        }
    }
}
