//! Memory stage: coalescer → tag controller → DRAM, and the scratchpad.
//!
//! Owns the functional load/store/AMO paths, the per-lane effective-address
//! computation with CHERI/bounds-table checks, the compressed stack cache
//! filter (`stack_cache_hits`), coalescing, tag-cache lookups, DRAM and
//! scratchpad timing, and the atomic-conflict serialisation model.

use super::Costs;
use crate::exec;
use crate::rom::TrapPlan;
use crate::sm::Sm;
use crate::trap::{LaneFault, RunError, Trap, TrapCause};
use crate::warp::Selection;
use cheri_cap::{AccessWidth, CapMem};
use simt_isa::{LoadWidth, Reg};
use simt_mem::{map, LaneRequest, MemFault};
use simt_regfile::{MAX_LANES, NULL_META};
use simt_trace::{MemSpace, TraceEvent};

impl Sm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn do_load_store(
        &mut self,
        w: u32,
        sel: &Selection,
        addr_reg: Reg,
        load_rd: Option<Reg>,
        store_rs: Reg,
        off: i32,
        bytes: u32,
        is_store: bool,
        is_cap: bool,
        lw: LoadWidth,
        plan: TrapPlan,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let mut bufs = self.take_bufs();
        let res = self.load_store_with(
            &mut bufs, w, sel, addr_reg, load_rd, store_rs, off, bytes, is_store, is_cap, lw, plan,
            costs,
        );
        self.put_bufs(bufs);
        res
    }

    /// [`Sm::do_load_store`] over the loaned scratch. Staleness audit:
    /// `addr`(/`addr_m` under CHERI) and `val`(/`val_m`, explicitly nulled
    /// for the non-CHERI capability-store corner) are fully overwritten by
    /// the operand reads before use; `eas` is written per active lane in
    /// the check phase; `results`/`results_m` are written per active lane
    /// in the commit phase and committed under the mask.
    #[allow(clippy::too_many_arguments)]
    fn load_store_with(
        &mut self,
        bufs: &mut crate::sm::LaneBufs,
        w: u32,
        sel: &Selection,
        addr_reg: Reg,
        load_rd: Option<Reg>,
        store_rs: Reg,
        off: i32,
        bytes: u32,
        is_store: bool,
        is_cap: bool,
        lw: LoadWidth,
        plan: TrapPlan,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        debug_assert_eq!(plan.has(TrapPlan::CHERI_ACCESS), cheri);
        let crate::sm::LaneBufs {
            a: addr,
            am: addr_m,
            b: val,
            bm: val_m,
            r: results,
            rm: results_m,
            eas,
            dram_reqs,
            scratch_reqs,
            ..
        } = bufs;
        if cheri {
            self.read_cap_operand(w, addr_reg, addr, addr_m, costs);
        } else {
            self.read_data(w, addr_reg, addr, costs);
        }
        if is_store {
            if is_cap && cheri {
                self.read_cap_operand(w, store_rs, val, val_m, costs);
            } else {
                self.read_data(w, store_rs, val, costs);
                if is_cap {
                    // Capability store without CHERI metadata: commit null
                    // metadata, exactly as the zero-initialised scratch did.
                    val_m[..lanes].fill(NULL_META);
                }
            }
        }

        // Check phase: effective address, routing, CHERI/bounds-table and
        // mapping checks for *every* active lane. Nothing commits unless
        // the whole warp is clean, so traps are warp-precise and carry the
        // full faulting-lane set. The pre-decoded trap plan skips probes
        // the op can never need (e.g. the alignment check of a byte
        // access); the probes it keeps behave exactly as before.
        let mut faults: Vec<LaneFault> = Vec::new();
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let ea = (addr[i] as u32).wrapping_add(off as u32);
            eas[i] = ea;
            let mut cause = None;
            if plan.has(TrapPlan::CHERI_ACCESS) {
                let cap = Self::cap_of(addr_m[i], addr[i]);
                cause = cap
                    .check_access(ea, AccessWidth::from_bytes(bytes), is_store, is_cap)
                    .err()
                    .map(TrapCause::Cheri);
            } else {
                if plan.has(TrapPlan::BOUNDS_TABLE) {
                    if let Some(t) = &self.bounds_table {
                        match t.translate(ea, bytes) {
                            Ok(real) => eas[i] = real,
                            Err(c) => cause = Some(c),
                        }
                    }
                }
                if plan.has(TrapPlan::ALIGNMENT) && cause.is_none() && eas[i] % bytes != 0 {
                    cause = Some(TrapCause::Mem(MemFault::Misaligned(eas[i])));
                }
            }
            // Mapping probe: read-side checks are identical to write-side
            // checks in both memories, so a validation-only probe catches
            // every mapping fault the commit phase could hit without
            // paying for the data assembly twice.
            if plan.has(TrapPlan::MAPPING) && cause.is_none() {
                cause = match (map::route(eas[i], self.cfg.dram_size), is_cap) {
                    (map::Region::Dram, false) => self.mem.check(eas[i], bytes).err(),
                    (map::Region::Dram, true) => self.mem.check_cap(eas[i]).err(),
                    (map::Region::Scratch, false) => self.scratch.check(eas[i], bytes).err(),
                    (map::Region::Scratch, true) => self.scratch.check_cap(eas[i]).err(),
                    _ => Some(MemFault::Unmapped(eas[i])),
                }
                .map(TrapCause::Mem);
            }
            if let Some(c) = cause {
                faults.push(LaneFault { lane: i as u32, cause: c });
            }
        }
        if let Some(t) = Trap::from_lane_faults(w, sel.pc, faults) {
            return Err(t.into());
        }

        // Commit phase: functional access + request collection. The check
        // phase vouched for every lane, so no access below can fault.
        dram_reqs.clear();
        scratch_reqs.clear();
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let ea = eas[i];
            let region = map::route(ea, self.cfg.dram_size);
            let req = LaneRequest { addr: ea, bytes };
            let res: Result<(), MemFault> = (|| {
                match (region, is_store, is_cap) {
                    (map::Region::Dram, false, false) => {
                        dram_reqs.push(req);
                        results[i] = sign_extend(self.mem.read(ea, bytes)?, lw) as u64;
                    }
                    (map::Region::Dram, true, false) => {
                        dram_reqs.push(req);
                        self.mem.write(ea, val[i] as u32, bytes)?;
                    }
                    (map::Region::Dram, false, true) => {
                        dram_reqs.push(req);
                        let c = self.mem.read_cap(ea)?;
                        results[i] = c.addr() as u64;
                        results_m[i] = c.meta() as u64 | ((c.tag() as u64) << 32);
                    }
                    (map::Region::Dram, true, true) => {
                        dram_reqs.push(req);
                        let c = CapMem::from_parts(
                            val_m[i] as u32,
                            val[i] as u32,
                            val_m[i] >> 32 & 1 == 1,
                        );
                        self.mem.write_cap(ea, c)?;
                    }
                    (map::Region::Scratch, false, false) => {
                        scratch_reqs.push(req);
                        results[i] = sign_extend(self.scratch.read(ea, bytes)?, lw) as u64;
                    }
                    (map::Region::Scratch, true, false) => {
                        scratch_reqs.push(req);
                        self.scratch.write(ea, val[i] as u32, bytes)?;
                    }
                    (map::Region::Scratch, false, true) => {
                        scratch_reqs.push(req);
                        let c = self.scratch.read_cap(ea)?;
                        results[i] = c.addr() as u64;
                        results_m[i] = c.meta() as u64 | ((c.tag() as u64) << 32);
                    }
                    (map::Region::Scratch, true, true) => {
                        scratch_reqs.push(req);
                        let c = CapMem::from_parts(
                            val_m[i] as u32,
                            val[i] as u32,
                            val_m[i] >> 32 & 1 == 1,
                        );
                        self.scratch.write_cap(ea, c)?;
                    }
                    _ => return Err(MemFault::Unmapped(ea)),
                }
                Ok(())
            })();
            if let Err(f) = res {
                unreachable!("memory fault escaped the check phase: {f}");
            }
        }

        // Timing.
        self.charge_memory(w, dram_reqs, scratch_reqs, is_store);

        // Writeback.
        if let Some(rd) = load_rd {
            self.write_data(w, rd, &results[..], mask, costs);
            if cheri {
                if is_cap {
                    self.write_meta(w, rd, &results_m[..], mask, costs);
                } else {
                    self.write_meta_null(w, rd, mask, costs);
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn do_amo(
        &mut self,
        w: u32,
        sel: &Selection,
        addr_reg: Reg,
        rd: Reg,
        op: simt_isa::AmoOp,
        operands: &[u64; MAX_LANES],
        plan: TrapPlan,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let mut bufs = self.take_bufs();
        let res = self.amo_with(&mut bufs, w, sel, addr_reg, rd, op, operands, plan, costs);
        self.put_bufs(bufs);
        res
    }

    /// [`Sm::do_amo`] over the loaned scratch. Staleness audit: `addr`
    /// (/`addr_m` under CHERI) is fully overwritten by the operand read;
    /// `eas` is written per active lane in the check phase; `results` is
    /// written per active lane in the commit phase and committed under the
    /// mask.
    #[allow(clippy::too_many_arguments)]
    fn amo_with(
        &mut self,
        bufs: &mut crate::sm::LaneBufs,
        w: u32,
        sel: &Selection,
        addr_reg: Reg,
        rd: Reg,
        op: simt_isa::AmoOp,
        operands: &[u64; MAX_LANES],
        plan: TrapPlan,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        debug_assert_eq!(plan.has(TrapPlan::CHERI_ACCESS), cheri);
        let crate::sm::LaneBufs {
            a: addr,
            am: addr_m,
            r: results,
            eas,
            dram_reqs,
            scratch_reqs,
            ..
        } = bufs;
        if cheri {
            self.read_cap_operand(w, addr_reg, addr, addr_m, costs);
        } else {
            self.read_data(w, addr_reg, addr, costs);
        }
        // Check phase: an AMO both loads and stores, so every active lane
        // passes both CHERI checks plus the mapping probe before any lane's
        // read-modify-write commits.
        let mut faults: Vec<LaneFault> = Vec::new();
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let mut ea = addr[i] as u32;
            let mut cause = None;
            if plan.has(TrapPlan::CHERI_ACCESS) {
                let cap = Self::cap_of(addr_m[i], addr[i]);
                cause = cap
                    .check_access(ea, AccessWidth::Word, false, false)
                    .and_then(|_| cap.check_access(ea, AccessWidth::Word, true, false))
                    .err()
                    .map(TrapCause::Cheri);
            } else if plan.has(TrapPlan::BOUNDS_TABLE) {
                if let Some(t) = &self.bounds_table {
                    match t.translate(ea, 4) {
                        Ok(real) => ea = real,
                        Err(c) => cause = Some(c),
                    }
                }
            }
            eas[i] = ea;
            if plan.has(TrapPlan::MAPPING) && cause.is_none() {
                cause = match map::route(ea, self.cfg.dram_size) {
                    map::Region::Dram => self.mem.check(ea, 4).err(),
                    map::Region::Scratch => self.scratch.check(ea, 4).err(),
                    _ => Some(MemFault::Unmapped(ea)),
                }
                .map(TrapCause::Mem);
            }
            if let Some(c) = cause {
                faults.push(LaneFault { lane: i as u32, cause: c });
            }
        }
        if let Some(t) = Trap::from_lane_faults(w, sel.pc, faults) {
            return Err(t.into());
        }

        dram_reqs.clear();
        scratch_reqs.clear();
        // Commit phase. Lanes perform their RMW in lane order, which defines
        // the intra-warp atomicity order.
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let ea = eas[i];
            let req = LaneRequest { addr: ea, bytes: 4 };
            let region = map::route(ea, self.cfg.dram_size);
            let res: Result<(), MemFault> = (|| {
                match region {
                    map::Region::Dram => {
                        dram_reqs.push(req);
                        let old = self.mem.read(ea, 4)?;
                        self.mem.write(ea, exec::amo(op, old, operands[i] as u32), 4)?;
                        results[i] = old as u64;
                    }
                    map::Region::Scratch => {
                        scratch_reqs.push(req);
                        let old = self.scratch.read(ea, 4)?;
                        self.scratch.write(ea, exec::amo(op, old, operands[i] as u32), 4)?;
                        results[i] = old as u64;
                    }
                    _ => return Err(MemFault::Unmapped(ea)),
                }
                Ok(())
            })();
            if let Err(f) = res {
                unreachable!("memory fault escaped the check phase: {f}");
            }
        }
        // An atomic is a read + write transaction per block.
        self.charge_memory(w, dram_reqs, scratch_reqs, true);
        if !dram_reqs.is_empty() || !scratch_reqs.is_empty() {
            // Serialise conflicting atomics: lanes hitting the same word pay
            // one cycle each (approximating SIMTight's atomic unit). At most
            // one request per lane, so the addresses fit on the stack.
            let mut addrs = [0u32; MAX_LANES];
            let total = dram_reqs.len() + scratch_reqs.len();
            for (slot, r) in addrs.iter_mut().zip(dram_reqs.iter().chain(scratch_reqs.iter())) {
                *slot = r.addr;
            }
            let addrs = &mut addrs[..total];
            addrs.sort_unstable();
            let unique = 1 + addrs.windows(2).filter(|w| w[0] != w[1]).count();
            let conflicts = (total - unique) as u64;
            self.warps[w as usize].ready_at =
                self.warps[w as usize].ready_at.max(self.cycle + conflicts);
        }
        self.write_data(w, rd, &results[..], mask, costs);
        if cheri {
            self.write_meta_null(w, rd, mask, costs);
        }
        Ok(())
    }

    /// Charge the timing/traffic of one warp-wide memory access and suspend
    /// the warp until the data returns.
    pub(crate) fn charge_memory(
        &mut self,
        w: u32,
        dram_reqs: &[LaneRequest],
        scratch_reqs: &[LaneRequest],
        is_store: bool,
    ) {
        let mut done_at = self.cycle;
        // Compressed stack cache (Section 4.4 proof of concept): a
        // warp-uniform or affine access pattern — the shape of register
        // spill traffic — is served from a small compressed cache instead
        // of DRAM.
        let in_stack = |r: &LaneRequest| {
            self.stack_region.map(|(b, sz)| r.addr >= b && r.addr < b + sz).unwrap_or(false)
        };
        let dram_reqs: &[LaneRequest] = if self.cfg.stack_cache
            && dram_reqs.len() > 1
            && dram_reqs.iter().all(in_stack)
            && is_affine(dram_reqs)
        {
            self.stats.stack_cache_hits += 1;
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.emit(TraceEvent::Mem {
                    cycle: self.cycle,
                    warp: w,
                    space: MemSpace::StackCache,
                    is_store,
                    lanes: dram_reqs.len() as u32,
                    transactions: 0,
                    uniform: dram_reqs.iter().all(|r| r.addr == dram_reqs[0].addr),
                    conflict_cycles: 0,
                });
            }
            done_at = done_at.max(self.cycle + 2);
            &[]
        } else {
            dram_reqs
        };
        if !dram_reqs.is_empty() {
            let co = match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.coalescer.coalesce_traced(dram_reqs, self.cycle, w, is_store, sink)
                }
                None => self.coalescer.coalesce(dram_reqs),
            };
            // Tag controller: one lookup per unique 64-byte block. One
            // request per lane at most, so the block list fits on the stack.
            debug_assert!(dram_reqs.len() <= MAX_LANES);
            let mut blocks = [0u32; MAX_LANES];
            for (slot, r) in blocks.iter_mut().zip(dram_reqs) {
                *slot = r.addr / 64;
            }
            let blocks = &mut blocks[..dram_reqs.len().min(MAX_LANES)];
            blocks.sort_unstable();
            let mut tag_txns = 0;
            let mut prev = None;
            for &b in blocks.iter() {
                if prev == Some(b) {
                    continue;
                }
                prev = Some(b);
                tag_txns += match self.sink.as_deref_mut() {
                    Some(sink) => self.tags.on_access_traced(b * 64, is_store, self.cycle, w, sink),
                    None => self.tags.on_access(b * 64, is_store),
                };
            }
            let (reads, writes) =
                if is_store { (0, co.transactions) } else { (co.transactions, 0) };
            done_at = done_at.max(match self.sink.as_deref_mut() {
                Some(sink) => self.dram.access_traced(self.cycle, reads, writes, tag_txns, w, sink),
                None => self.dram.access(self.cycle, reads, writes, tag_txns),
            });
        }
        if !scratch_reqs.is_empty() {
            let cycles = match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.scratch.warp_cycles_traced(scratch_reqs, self.cycle, w, is_store, sink)
                }
                None => self.scratch.warp_cycles(scratch_reqs),
            };
            done_at = done_at.max(self.cycle + (self.cfg.timing.scratch_latency + cycles) as u64);
        }
        let warp = &mut self.warps[w as usize];
        warp.ready_at = warp.ready_at.max(done_at);
    }
}

/// Do the lane addresses form a uniform or affine sequence?
pub(crate) fn is_affine(reqs: &[LaneRequest]) -> bool {
    if reqs.len() < 2 {
        return true;
    }
    let stride = reqs[1].addr.wrapping_sub(reqs[0].addr);
    reqs.windows(2).all(|w| w[1].addr.wrapping_sub(w[0].addr) == stride)
}

pub(crate) fn sign_extend(v: u32, lw: LoadWidth) -> u32 {
    match lw {
        LoadWidth::B => v as u8 as i8 as i32 as u32,
        LoadWidth::H => v as u16 as i16 as i32 as u32,
        _ => v,
    }
}
