//! Memory stage: coalescer → tag controller → DRAM, and the scratchpad.
//!
//! Owns the functional load/store/AMO paths, the per-lane effective-address
//! computation with CHERI/bounds-table checks, the compressed stack cache
//! filter (`stack_cache_hits`), coalescing, tag-cache lookups, DRAM and
//! scratchpad timing, and the atomic-conflict serialisation model.

use super::Costs;
use crate::exec;
use crate::sm::Sm;
use crate::trap::{LaneFault, RunError, Trap, TrapCause};
use crate::warp::Selection;
use cheri_cap::{AccessWidth, CapMem};
use simt_isa::{LoadWidth, Reg};
use simt_mem::{map, LaneRequest, MemFault};
use simt_regfile::{MAX_LANES, NULL_META};
use simt_trace::{MemSpace, TraceEvent};

impl Sm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn do_load_store(
        &mut self,
        w: u32,
        sel: &Selection,
        addr_reg: Reg,
        load_rd: Option<Reg>,
        store_rs: Reg,
        off: i32,
        bytes: u32,
        is_store: bool,
        is_cap: bool,
        lw: LoadWidth,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        let mut addr = [0u64; MAX_LANES];
        let mut addr_m = [NULL_META; MAX_LANES];
        let mut val = [0u64; MAX_LANES];
        let mut val_m = [NULL_META; MAX_LANES];
        if cheri {
            self.read_cap_operand(w, addr_reg, &mut addr, &mut addr_m, costs);
        } else {
            self.read_data(w, addr_reg, &mut addr, costs);
        }
        if is_store {
            if is_cap && cheri {
                self.read_cap_operand(w, store_rs, &mut val, &mut val_m, costs);
            } else {
                self.read_data(w, store_rs, &mut val, costs);
            }
        }

        // Check phase: effective address, routing, CHERI/bounds-table and
        // mapping checks for *every* active lane. Nothing commits unless
        // the whole warp is clean, so traps are warp-precise and carry the
        // full faulting-lane set.
        let mut eas = [0u32; MAX_LANES];
        let mut faults: Vec<LaneFault> = Vec::new();
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let ea = (addr[i] as u32).wrapping_add(off as u32);
            eas[i] = ea;
            let mut cause = None;
            if cheri {
                let cap = Self::cap_of(addr_m[i], addr[i]);
                cause = cap
                    .check_access(ea, AccessWidth::from_bytes(bytes), is_store, is_cap)
                    .err()
                    .map(TrapCause::Cheri);
            } else {
                if let Some(t) = &self.bounds_table {
                    match t.translate(ea, bytes) {
                        Ok(real) => eas[i] = real,
                        Err(c) => cause = Some(c),
                    }
                }
                if cause.is_none() && eas[i] % bytes != 0 {
                    cause = Some(TrapCause::Mem(MemFault::Misaligned(eas[i])));
                }
            }
            // Mapping probe: read-side checks are identical to write-side
            // checks in both memories, so a non-mutating read catches every
            // mapping fault the commit phase could hit.
            if cause.is_none() {
                cause = match (map::route(eas[i], self.cfg.dram_size), is_cap) {
                    (map::Region::Dram, false) => self.mem.read(eas[i], bytes).err(),
                    (map::Region::Dram, true) => self.mem.read_cap(eas[i]).err(),
                    (map::Region::Scratch, false) => self.scratch.read(eas[i], bytes).err(),
                    (map::Region::Scratch, true) => self.scratch.read_cap(eas[i]).err(),
                    _ => Some(MemFault::Unmapped(eas[i])),
                }
                .map(TrapCause::Mem);
            }
            if let Some(c) = cause {
                faults.push(LaneFault { lane: i as u32, cause: c });
            }
        }
        if let Some(t) = Trap::from_lane_faults(w, sel.pc, faults) {
            return Err(t.into());
        }

        // Commit phase: functional access + request collection. The check
        // phase vouched for every lane, so no access below can fault.
        let mut dram_reqs: Vec<LaneRequest> = Vec::new();
        let mut scratch_reqs: Vec<LaneRequest> = Vec::new();
        let mut results = [0u64; MAX_LANES];
        let mut results_m = [NULL_META; MAX_LANES];
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let ea = eas[i];
            let region = map::route(ea, self.cfg.dram_size);
            let req = LaneRequest { addr: ea, bytes };
            let res: Result<(), MemFault> = (|| {
                match (region, is_store, is_cap) {
                    (map::Region::Dram, false, false) => {
                        dram_reqs.push(req);
                        results[i] = sign_extend(self.mem.read(ea, bytes)?, lw) as u64;
                    }
                    (map::Region::Dram, true, false) => {
                        dram_reqs.push(req);
                        self.mem.write(ea, val[i] as u32, bytes)?;
                    }
                    (map::Region::Dram, false, true) => {
                        dram_reqs.push(req);
                        let c = self.mem.read_cap(ea)?;
                        results[i] = c.addr() as u64;
                        results_m[i] = c.meta() as u64 | ((c.tag() as u64) << 32);
                    }
                    (map::Region::Dram, true, true) => {
                        dram_reqs.push(req);
                        let c = CapMem::from_parts(
                            val_m[i] as u32,
                            val[i] as u32,
                            val_m[i] >> 32 & 1 == 1,
                        );
                        self.mem.write_cap(ea, c)?;
                    }
                    (map::Region::Scratch, false, false) => {
                        scratch_reqs.push(req);
                        results[i] = sign_extend(self.scratch.read(ea, bytes)?, lw) as u64;
                    }
                    (map::Region::Scratch, true, false) => {
                        scratch_reqs.push(req);
                        self.scratch.write(ea, val[i] as u32, bytes)?;
                    }
                    (map::Region::Scratch, false, true) => {
                        scratch_reqs.push(req);
                        let c = self.scratch.read_cap(ea)?;
                        results[i] = c.addr() as u64;
                        results_m[i] = c.meta() as u64 | ((c.tag() as u64) << 32);
                    }
                    (map::Region::Scratch, true, true) => {
                        scratch_reqs.push(req);
                        let c = CapMem::from_parts(
                            val_m[i] as u32,
                            val[i] as u32,
                            val_m[i] >> 32 & 1 == 1,
                        );
                        self.scratch.write_cap(ea, c)?;
                    }
                    _ => return Err(MemFault::Unmapped(ea)),
                }
                Ok(())
            })();
            if let Err(f) = res {
                unreachable!("memory fault escaped the check phase: {f}");
            }
        }

        // Timing.
        self.charge_memory(w, &dram_reqs, &scratch_reqs, is_store);

        // Writeback.
        if let Some(rd) = load_rd {
            self.write_data(w, rd, &results, mask, costs);
            if cheri {
                if is_cap {
                    self.write_meta(w, rd, &results_m, mask, costs);
                } else {
                    self.write_meta_null(w, rd, mask, costs);
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn do_amo(
        &mut self,
        w: u32,
        sel: &Selection,
        addr_reg: Reg,
        rd: Reg,
        op: simt_isa::AmoOp,
        operands: &[u64; MAX_LANES],
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        let mut addr = [0u64; MAX_LANES];
        let mut addr_m = [NULL_META; MAX_LANES];
        if cheri {
            self.read_cap_operand(w, addr_reg, &mut addr, &mut addr_m, costs);
        } else {
            self.read_data(w, addr_reg, &mut addr, costs);
        }
        // Check phase: an AMO both loads and stores, so every active lane
        // passes both CHERI checks plus the mapping probe before any lane's
        // read-modify-write commits.
        let mut eas = [0u32; MAX_LANES];
        let mut faults: Vec<LaneFault> = Vec::new();
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let mut ea = addr[i] as u32;
            let mut cause = None;
            if cheri {
                let cap = Self::cap_of(addr_m[i], addr[i]);
                cause = cap
                    .check_access(ea, AccessWidth::Word, false, false)
                    .and_then(|_| cap.check_access(ea, AccessWidth::Word, true, false))
                    .err()
                    .map(TrapCause::Cheri);
            } else if let Some(t) = &self.bounds_table {
                match t.translate(ea, 4) {
                    Ok(real) => ea = real,
                    Err(c) => cause = Some(c),
                }
            }
            eas[i] = ea;
            if cause.is_none() {
                cause = match map::route(ea, self.cfg.dram_size) {
                    map::Region::Dram => self.mem.read(ea, 4).err(),
                    map::Region::Scratch => self.scratch.read(ea, 4).err(),
                    _ => Some(MemFault::Unmapped(ea)),
                }
                .map(TrapCause::Mem);
            }
            if let Some(c) = cause {
                faults.push(LaneFault { lane: i as u32, cause: c });
            }
        }
        if let Some(t) = Trap::from_lane_faults(w, sel.pc, faults) {
            return Err(t.into());
        }

        let mut dram_reqs: Vec<LaneRequest> = Vec::new();
        let mut scratch_reqs: Vec<LaneRequest> = Vec::new();
        let mut results = [0u64; MAX_LANES];
        // Commit phase. Lanes perform their RMW in lane order, which defines
        // the intra-warp atomicity order.
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let ea = eas[i];
            let req = LaneRequest { addr: ea, bytes: 4 };
            let region = map::route(ea, self.cfg.dram_size);
            let res: Result<(), MemFault> = (|| {
                match region {
                    map::Region::Dram => {
                        dram_reqs.push(req);
                        let old = self.mem.read(ea, 4)?;
                        self.mem.write(ea, exec::amo(op, old, operands[i] as u32), 4)?;
                        results[i] = old as u64;
                    }
                    map::Region::Scratch => {
                        scratch_reqs.push(req);
                        let old = self.scratch.read(ea, 4)?;
                        self.scratch.write(ea, exec::amo(op, old, operands[i] as u32), 4)?;
                        results[i] = old as u64;
                    }
                    _ => return Err(MemFault::Unmapped(ea)),
                }
                Ok(())
            })();
            if let Err(f) = res {
                unreachable!("memory fault escaped the check phase: {f}");
            }
        }
        // An atomic is a read + write transaction per block.
        self.charge_memory(w, &dram_reqs, &scratch_reqs, true);
        if !dram_reqs.is_empty() || !scratch_reqs.is_empty() {
            // Serialise conflicting atomics: lanes hitting the same word pay
            // one cycle each (approximating SIMTight's atomic unit).
            let mut addrs: Vec<u32> =
                dram_reqs.iter().chain(&scratch_reqs).map(|r| r.addr).collect();
            let total = addrs.len();
            addrs.sort_unstable();
            addrs.dedup();
            let conflicts = (total - addrs.len()) as u64;
            self.warps[w as usize].ready_at =
                self.warps[w as usize].ready_at.max(self.cycle + conflicts);
        }
        self.write_data(w, rd, &results, mask, costs);
        if cheri {
            self.write_meta_null(w, rd, mask, costs);
        }
        Ok(())
    }

    /// Charge the timing/traffic of one warp-wide memory access and suspend
    /// the warp until the data returns.
    pub(crate) fn charge_memory(
        &mut self,
        w: u32,
        dram_reqs: &[LaneRequest],
        scratch_reqs: &[LaneRequest],
        is_store: bool,
    ) {
        let mut done_at = self.cycle;
        // Compressed stack cache (Section 4.4 proof of concept): a
        // warp-uniform or affine access pattern — the shape of register
        // spill traffic — is served from a small compressed cache instead
        // of DRAM.
        let in_stack = |r: &LaneRequest| {
            self.stack_region.map(|(b, sz)| r.addr >= b && r.addr < b + sz).unwrap_or(false)
        };
        let dram_reqs: &[LaneRequest] = if self.cfg.stack_cache
            && dram_reqs.len() > 1
            && dram_reqs.iter().all(in_stack)
            && is_affine(dram_reqs)
        {
            self.stats.stack_cache_hits += 1;
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.emit(TraceEvent::Mem {
                    cycle: self.cycle,
                    warp: w,
                    space: MemSpace::StackCache,
                    is_store,
                    lanes: dram_reqs.len() as u32,
                    transactions: 0,
                    uniform: dram_reqs.iter().all(|r| r.addr == dram_reqs[0].addr),
                    conflict_cycles: 0,
                });
            }
            done_at = done_at.max(self.cycle + 2);
            &[]
        } else {
            dram_reqs
        };
        if !dram_reqs.is_empty() {
            let co = match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.coalescer.coalesce_traced(dram_reqs, self.cycle, w, is_store, sink)
                }
                None => self.coalescer.coalesce(dram_reqs),
            };
            // Tag controller: one lookup per unique 64-byte block.
            let mut blocks: Vec<u32> = dram_reqs.iter().map(|r| r.addr / 64).collect();
            blocks.sort_unstable();
            blocks.dedup();
            let mut tag_txns = 0;
            for b in &blocks {
                tag_txns += match self.sink.as_deref_mut() {
                    Some(sink) => self.tags.on_access_traced(b * 64, is_store, self.cycle, w, sink),
                    None => self.tags.on_access(b * 64, is_store),
                };
            }
            let (reads, writes) =
                if is_store { (0, co.transactions) } else { (co.transactions, 0) };
            done_at = done_at.max(match self.sink.as_deref_mut() {
                Some(sink) => self.dram.access_traced(self.cycle, reads, writes, tag_txns, w, sink),
                None => self.dram.access(self.cycle, reads, writes, tag_txns),
            });
        }
        if !scratch_reqs.is_empty() {
            let cycles = match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.scratch.warp_cycles_traced(scratch_reqs, self.cycle, w, is_store, sink)
                }
                None => self.scratch.warp_cycles(scratch_reqs),
            };
            done_at = done_at.max(self.cycle + (self.cfg.timing.scratch_latency + cycles) as u64);
        }
        let warp = &mut self.warps[w as usize];
        warp.ready_at = warp.ready_at.max(done_at);
    }
}

/// Do the lane addresses form a uniform or affine sequence?
pub(crate) fn is_affine(reqs: &[LaneRequest]) -> bool {
    if reqs.len() < 2 {
        return true;
    }
    let stride = reqs[1].addr.wrapping_sub(reqs[0].addr);
    reqs.windows(2).all(|w| w[1].addr.wrapping_sub(w[0].addr) == stride)
}

pub(crate) fn sign_extend(v: u32, lw: LoadWidth) -> u32 {
    match lw {
        LoadWidth::B => v as u8 as i8 as i32 as u32,
        LoadWidth::H => v as u16 as i16 as i32 as u32,
        _ => v,
    }
}
