//! The SM pipeline, split by stage (Figure 2).
//!
//! Each submodule contributes one `impl Sm` block and owns the statistics
//! counters and trace events of its stage:
//!
//! * [`schedule`] — barrel scheduler: round-robin warp pick, active-thread
//!   selection, barrier release, idle accounting, deadlock detection.
//! * [`operands`] — operand collection: data/metadata register-file reads
//!   (lane-wise and compact), the shared-VRF serialisation penalty,
//!   capability marshalling.
//! * [`classify`] — pre-execute issue classification: scalarised
//!   (warp-wide over compact operands) versus per-lane, recorded on the
//!   issue event and `scalarised_issues`.
//! * [`execute`] — fetch check, issue accounting and dispatch to the
//!   op-class handlers; owns the memory/system classes.
//! * [`alu`] / [`flow`] / [`sfu`] / [`capops`] — the op-class handlers,
//!   each with a bit-identical lane-wise reference path and warp-wide
//!   fast path (see [`scalar`] for the compact arithmetic).
//! * [`memstage`] — the memory stage: coalescer → tag controller → DRAM
//!   and the banked scratchpad, plus the compressed stack cache filter.
//! * [`writeback`] — register writeback (spill/fill costing, lane-wise and
//!   compact) and PC/status commit.
//!
//! `Sm` itself (in [`crate::sm`]) keeps only the state and the host API;
//! the stages reach into its `pub(crate)` fields exactly as the monolithic
//! implementation did, so the cycle-level behaviour is unchanged.

pub(crate) mod alu;
pub(crate) mod capops;
pub(crate) mod classify;
pub(crate) mod execute;
pub(crate) mod flow;
pub(crate) mod memstage;
pub(crate) mod operands;
pub(crate) mod scalar;
pub(crate) mod schedule;
pub(crate) mod sfu;
pub(crate) mod writeback;

use simt_regfile::{ReadInfo, WriteInfo};

/// What one scheduler step did (see [`schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Every thread has terminated; the run is complete.
    Done,
    /// An instruction issued or time advanced to the next resume point.
    Progress,
}

/// Costs accumulated while executing one instruction.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Costs {
    /// Stalls from CHERI mechanisms (CSC serialisation, shared-VRF
    /// conflicts, capability multi-flit accesses).
    pub(crate) extra_cycles: u32,
    /// Stalls from register spill/fill handling.
    pub(crate) spill_cycles: u32,
    pub(crate) dram_reads: u32,
    pub(crate) dram_writes: u32,
}

impl Costs {
    pub(crate) fn add_read(&mut self, spill_cycles: u32, lanes: u32, info: ReadInfo) {
        let txns = lanes.div_ceil(16); // lanes * 4 bytes / 64-byte blocks
        self.spill_cycles += (info.fills + info.spills) * spill_cycles;
        self.dram_reads += info.fills * txns;
        self.dram_writes += info.spills * txns;
    }

    pub(crate) fn add_write(&mut self, spill_cycles: u32, lanes: u32, info: WriteInfo) {
        let txns = lanes.div_ceil(16);
        self.spill_cycles += (info.fills + info.spills) * spill_cycles;
        self.dram_reads += info.fills * txns;
        self.dram_writes += info.spills * txns;
    }
}
