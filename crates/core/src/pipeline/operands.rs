//! Operand-collection stage: register-file reads.
//!
//! Owns the data/metadata RF read paths (including the NVO scalar path
//! inside the compressed register file), the shared-VRF serialisation
//! penalty and its `shared_vrf_conflict` counter, and the
//! capability-marshalling helpers shared by every stage downstream.

use super::Costs;
use crate::sm::Sm;
use cheri_cap::{CapMem, CapPipe};
use simt_isa::Reg;
use simt_regfile::{OperandVec, ReadInfo, MAX_LANES, NULL_META};
use simt_trace::StallCause;

impl Sm {
    pub(crate) fn cheri(&self) -> bool {
        self.opts.is_some()
    }

    pub(crate) fn read_data(
        &mut self,
        w: u32,
        reg: Reg,
        out: &mut [u64; MAX_LANES],
        costs: &mut Costs,
    ) -> ReadInfo {
        if reg.is_zero() {
            out[..self.cfg.lanes as usize].fill(0);
            return ReadInfo::default();
        }
        let info = self.data_rf.read(w, reg.index() as u32, out);
        costs.add_read(self.cfg.timing.spill_cycles, self.cfg.lanes, info);
        info
    }

    pub(crate) fn read_meta(
        &mut self,
        w: u32,
        reg: Reg,
        out: &mut [u64; MAX_LANES],
        costs: &mut Costs,
    ) -> ReadInfo {
        if reg.is_zero() {
            out[..self.cfg.lanes as usize].fill(NULL_META);
            return ReadInfo::default();
        }
        let lanes = self.cfg.lanes;
        let spill = self.cfg.timing.spill_cycles;
        match self.meta_rf.as_mut() {
            Some(rf) => {
                let info = rf.read(w, reg.index() as u32, out);
                costs.add_read(spill, lanes, info);
                info
            }
            None => {
                out[..lanes as usize].fill(NULL_META);
                ReadInfo::default()
            }
        }
    }

    /// Compact read of a data operand: the stored register-file form
    /// without lane expansion. Cost accounting matches [`Sm::read_data`]
    /// exactly (compact entries never spill or fill, so on the scalarised
    /// path this is free, as the lane-wise read of the same entry is).
    pub(crate) fn read_data_compact(&mut self, w: u32, reg: Reg, costs: &mut Costs) -> OperandVec {
        if reg.is_zero() {
            return OperandVec::Uniform(0);
        }
        let (v, info) = self.data_rf.read_compact(w, reg.index() as u32);
        costs.add_read(self.cfg.timing.spill_cycles, self.cfg.lanes, info);
        v
    }

    /// Compact read of a full capability operand (data + metadata), the
    /// counterpart of [`Sm::read_cap_operand`] including its shared-VRF
    /// serialisation penalty (which cannot fire for the compact entries the
    /// issue classifier admits, but the bookkeeping stays in one shape).
    pub(crate) fn read_cap_compact(
        &mut self,
        w: u32,
        reg: Reg,
        costs: &mut Costs,
    ) -> (OperandVec, OperandVec) {
        let lanes = self.cfg.lanes;
        let spill = self.cfg.timing.spill_cycles;
        let (d, di) = if reg.is_zero() {
            (OperandVec::Uniform(0), ReadInfo::default())
        } else {
            let (v, info) = self.data_rf.read_compact(w, reg.index() as u32);
            costs.add_read(spill, lanes, info);
            (v, info)
        };
        let (m, mi) = match self.meta_rf.as_mut() {
            Some(rf) if !reg.is_zero() => {
                let (v, info) = rf.read_compact(w, reg.index() as u32);
                costs.add_read(spill, lanes, info);
                (v, info)
            }
            _ => (OperandVec::Uniform(NULL_META), ReadInfo::default()),
        };
        if let Some(o) = self.opts {
            if o.shared_vrf && di.from_vrf && mi.from_vrf {
                costs.extra_cycles += 1;
                self.stats.stalls.shared_vrf_conflict += 1;
                self.emit_stall(w, StallCause::SharedVrfConflict, 1);
            }
        }
        (d, m)
    }

    /// Read a full capability operand: data (address) + metadata, with the
    /// shared-VRF serialisation penalty when both halves are uncompressed.
    pub(crate) fn read_cap_operand(
        &mut self,
        w: u32,
        reg: Reg,
        data: &mut [u64; MAX_LANES],
        meta: &mut [u64; MAX_LANES],
        costs: &mut Costs,
    ) {
        let d = self.read_data(w, reg, data, costs);
        let m = self.read_meta(w, reg, meta, costs);
        if let Some(o) = self.opts {
            if o.shared_vrf && d.from_vrf && m.from_vrf {
                costs.extra_cycles += 1;
                self.stats.stalls.shared_vrf_conflict += 1;
                self.emit_stall(w, StallCause::SharedVrfConflict, 1);
            }
        }
    }

    // ---- Capability marshalling ----

    #[inline]
    pub(crate) fn cap_of(meta: u64, addr: u64) -> CapPipe {
        CapPipe::from_mem(CapMem::from_parts(meta as u32, addr as u32, meta >> 32 & 1 == 1))
    }

    #[inline]
    pub(crate) fn cap_parts(cap: CapPipe) -> (u64, u64) {
        let m = cap.to_mem();
        (m.meta() as u64 | ((m.tag() as u64) << 32), m.addr() as u64)
    }
}
