//! Compact-operand arithmetic for the scalarised execute path.
//!
//! The fast path computes a warp's result from [`OperandVec`]s without
//! expanding them: uniform∘uniform is one ALU evaluation, and the
//! operations that are *linear* in an affine operand (see
//! [`super::classify`]) are reconstructed from two lane samples — the
//! result of a linear operation over affine lanes is itself affine, so
//! lanes 0 and 1 determine base and stride exactly (modulo 2³², matching
//! the register-file compressor's comparators).

use simt_regfile::OperandVec;

/// Lane `i`'s value of a compact operand, in the 32-bit data domain
/// (the [`OperandVec`] lane contract).
///
/// # Panics
///
/// Panics on a `Vector` operand — the issue classifier never routes one
/// to the fast path.
pub(crate) fn lane_val(v: &OperandVec, i: u32) -> u32 {
    match *v {
        OperandVec::Uniform(x) => x as u32,
        OperandVec::Affine { base, stride } => {
            (base as u32).wrapping_add((stride as u32).wrapping_mul(i))
        }
        OperandVec::Vector(_) => unreachable!("vector operand on the scalarised path"),
    }
}

/// The value of an operand the classifier proved uniform.
///
/// # Panics
///
/// Panics on non-uniform operands.
pub(crate) fn expect_uniform(v: &OperandVec) -> u64 {
    match *v {
        OperandVec::Uniform(x) => x,
        _ => unreachable!("non-uniform operand on a uniform-only fast path"),
    }
}

/// Evaluate a lane-wise binary operation over compact operands, for
/// `(op, a, b)` combinations where the result is provably uniform or
/// affine (the classifier's [`super::classify::alu_scalarises`] /
/// [`super::classify::muldiv_scalarises`] contract): one evaluation for
/// uniform∘uniform, two lane samples otherwise.
pub(crate) fn linear2(f: impl Fn(u32, u32) -> u32, a: &OperandVec, b: &OperandVec) -> OperandVec {
    if let (&OperandVec::Uniform(x), &OperandVec::Uniform(y)) = (a, b) {
        return OperandVec::Uniform(f(x as u32, y as u32) as u64);
    }
    let r0 = f(lane_val(a, 0), lane_val(b, 0));
    let r1 = f(lane_val(a, 1), lane_val(b, 1));
    let stride = r1.wrapping_sub(r0);
    // Linearity check: lane 2 must continue the sampled progression.
    debug_assert_eq!(
        f(lane_val(a, 2), lane_val(b, 2)),
        r0.wrapping_add(stride.wrapping_mul(2)),
        "non-linear operation classified as scalarisable"
    );
    OperandVec::Affine { base: r0 as u64, stride: stride as i64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fold() {
        let r = linear2(|x, y| x.wrapping_add(y), &OperandVec::Uniform(7), &OperandVec::Uniform(5));
        assert!(matches!(r, OperandVec::Uniform(12)));
    }

    #[test]
    fn affine_sampling_matches_lanewise() {
        let a = OperandVec::Affine { base: 100, stride: 4 };
        let b = OperandVec::Uniform(0xffff_fff0); // -16 mod 2^32
        let r = linear2(|x, y| x.wrapping_add(y), &a, &b);
        let mut out = [0u64; 8];
        r.expand_into(&mut out);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v as u32, (100 + 4 * i as u32).wrapping_add(0xffff_fff0));
        }
    }

    #[test]
    fn shift_by_uniform_stays_affine() {
        let a = OperandVec::Affine { base: 3, stride: -2 };
        let r = linear2(|x, y| x << (y & 31), &a, &OperandVec::Uniform(4));
        let mut out = [0u64; 4];
        r.expand_into(&mut out);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v as u32, (3u32.wrapping_add((-2i32 as u32).wrapping_mul(i as u32))) << 4);
        }
    }
}
