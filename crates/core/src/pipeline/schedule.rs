//! Schedule stage: the barrel scheduler.
//!
//! Owns the round-robin warp pick, barrier release, the `idle` stall
//! counter and its trace events, and deadlock detection. One call to
//! [`Sm::step`] is one scheduler decision: issue an instruction, advance
//! time to the next resume point, or report the run finished/deadlocked.

use super::StepOutcome;
use crate::sm::Sm;
use crate::trap::RunError;
use crate::warp::{ThreadStatus, Warp};
use simt_trace::{StallCause, TraceEvent, NO_WARP};

impl Sm {
    /// One scheduler step: release barriers, pick a ready warp round-robin
    /// and issue it, or advance time to the next resume point.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trap`] on a thread fault, [`RunError::Timeout`]
    /// past `max_cycles`, and [`RunError::Deadlock`] when only
    /// barrier-blocked warps remain and no block can release.
    pub(crate) fn step(&mut self, max_cycles: u64) -> Result<StepOutcome, RunError> {
        if self.warps.iter().all(Warp::done) {
            return Ok(StepOutcome::Done);
        }
        if self.cycle >= max_cycles {
            return Err(RunError::Timeout { cycles: self.cycle });
        }
        self.release_barriers();

        let n = self.warps.len();
        let mut picked = None;
        for i in 0..n {
            let w = (self.rr + i) % n;
            let warp = &self.warps[w];
            if !warp.done()
                && !warp.blocked_at_barrier()
                && warp.ready_at <= self.cycle
                && warp.select().is_some()
            {
                picked = Some(w);
                break;
            }
        }
        match picked {
            Some(w) => {
                self.rr = (w + 1) % n;
                self.issue(w)?;
            }
            None => {
                // Advance time to the next resume point.
                let next = self
                    .warps
                    .iter()
                    .filter(|w| !w.done() && !w.blocked_at_barrier())
                    .map(|w| w.ready_at)
                    .min();
                match next {
                    Some(t) if t > self.cycle => {
                        self.stats.stalls.idle += t - self.cycle;
                        self.emit_stall(NO_WARP, StallCause::Idle, t - self.cycle);
                        self.cycle = t;
                    }
                    _ => {
                        // Only barrier-blocked warps remain and the
                        // release pass freed none: deadlock.
                        let blocked_warps =
                            self.warps.iter().filter(|w| w.blocked_at_barrier()).count() as u32;
                        return Err(RunError::Deadlock { cycles: self.cycle, blocked_warps });
                    }
                }
            }
        }
        Ok(StepOutcome::Progress)
    }

    /// Release barriers: a block whose live warps are all blocked at the
    /// barrier resumes as a unit.
    pub(crate) fn release_barriers(&mut self) {
        let per_block = self.block_warps as usize;
        let n = self.warps.len();
        let mut b = 0;
        while b < n {
            let group = b..(b + per_block).min(n);
            let any_blocked = group.clone().any(|w| self.warps[w].blocked_at_barrier());
            let all_parked =
                group.clone().all(|w| self.warps[w].done() || self.warps[w].blocked_at_barrier());
            if any_blocked && all_parked {
                for w in group {
                    let released = {
                        let warp = &mut self.warps[w];
                        let mut released = false;
                        for s in &mut warp.status {
                            if *s == ThreadStatus::AtBarrier {
                                *s = ThreadStatus::Active;
                                released = true;
                            }
                        }
                        warp.ready_at = warp.ready_at.max(self.cycle + 1);
                        released
                    };
                    if released {
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.emit(TraceEvent::Barrier {
                                cycle: self.cycle,
                                warp: w as u32,
                                release: true,
                            });
                        }
                    }
                }
            }
            b += per_block;
        }
    }
}
