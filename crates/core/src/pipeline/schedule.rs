//! Schedule stage: the barrel scheduler.
//!
//! Owns the round-robin warp pick, barrier release, the `idle` stall
//! counter and its trace events, and deadlock detection. One call to
//! [`Sm::step`] is one scheduler decision: issue an instruction, advance
//! time to the next resume point, or report the run finished/deadlocked.
//!
//! # Basic-block runs
//!
//! With the pre-decoded ROM available, one step may retire a whole
//! straight-line run: after issuing warp `w`, the scheduler re-issues `w`
//! directly — skipping the pick scan, the barrier-release pass and
//! active-thread selection — for as long as re-issuing `w` is exactly what
//! the per-issue dispatcher would have decided. That holds iff, each
//! iteration:
//!
//! * the op just issued was straight-line and delivered no trap, so every
//!   selected lane sits at `pc + 4` with unchanged status and PCC
//!   metadata;
//! * the next slot exists, decodes, and is not a block leader;
//! * `w` was converged (its selection covered every runnable lane), so
//!   the incremented selection *is* `select()`'s answer;
//! * `w` is still ready and the watchdog has not expired; and
//! * no other warp is pickable — the round-robin pointer is at `w + 1`
//!   and `w` scans last, so the dispatcher would re-pick `w` exactly when
//!   every other warp is done, parked or not yet ready.
//!
//! Barrier release needs no re-check inside a run: statuses are frozen
//! while it lasts (a status change ends it), `w` stays live so `w`'s own
//! block cannot release, and any block releasable before the run was
//! released by the pass that preceded it. Each issue still runs the full
//! fetch/classify/execute/account path, so trace events, statistics and
//! architectural state are bit-identical with block runs disabled — the
//! differential suite pins this.

use super::StepOutcome;
use crate::rom::pc_index;
use crate::sm::Sm;
use crate::trap::RunError;
use crate::warp::{Selection, ThreadStatus};
use simt_trace::{StallCause, TraceEvent, NO_WARP};

impl Sm {
    /// One scheduler step: release barriers, pick a ready warp round-robin
    /// and issue it (plus, with the pre-decoded ROM, the rest of its
    /// straight-line run), or advance time to the next resume point.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trap`] on a thread fault, [`RunError::Timeout`]
    /// past `max_cycles`, and [`RunError::Deadlock`] when only
    /// barrier-blocked warps remain and no block can release.
    pub(crate) fn step(&mut self, max_cycles: u64) -> Result<StepOutcome, RunError> {
        // Barrier maintenance (and the done/timeout checks that must
        // precede it) runs only while some thread may be parked:
        // `maybe_parked` is raised by the barrier op and lowered here once
        // a scan finds nothing parked, so barrier-free stretches pay no
        // per-step warp scans at all. A released warp resumes no earlier
        // than `cycle + 1`, so releasing before the pick never changes
        // this step's pick.
        if self.maybe_parked {
            let mut any_parked = false;
            let mut all_done = true;
            for w in &self.warps {
                debug_assert_eq!(w.runnable == 0 && w.parked == 0, w.done_fast());
                any_parked |= w.parked > 0;
                all_done &= w.runnable == 0 && w.parked == 0;
            }
            if all_done {
                return Ok(StepOutcome::Done);
            }
            if self.cycle >= max_cycles {
                return Err(RunError::Timeout { cycles: self.cycle });
            }
            if any_parked {
                self.release_barriers();
            } else {
                self.maybe_parked = false;
            }
        }

        let n = self.warps.len();
        let mut picked = None;
        for i in 0..n {
            let w = (self.rr + i) % n;
            if self.pickable(w) {
                picked = Some(w);
                break;
            }
        }
        match picked {
            Some(w) => {
                // A pickable warp implies the SM is not done, so the Done
                // check is needed only on the no-pick path below.
                if self.cycle >= max_cycles {
                    return Err(RunError::Timeout { cycles: self.cycle });
                }
                self.rr = (w + 1) % n;
                let pre_suppressed = self.suppressed.len();
                let sel = self.issue(w)?;
                self.block_run(w, sel, pre_suppressed, max_cycles)?;
            }
            None => {
                let mut all_done = true;
                for w in &self.warps {
                    debug_assert_eq!(w.runnable == 0 && w.parked == 0, w.done_fast());
                    all_done &= w.runnable == 0 && w.parked == 0;
                }
                if all_done {
                    return Ok(StepOutcome::Done);
                }
                if self.cycle >= max_cycles {
                    return Err(RunError::Timeout { cycles: self.cycle });
                }
                // Advance time to the next resume point.
                let next = self.warps.iter().filter(|w| w.runnable > 0).map(|w| w.ready_at).min();
                match next {
                    Some(t) if t > self.cycle => {
                        self.stats.stalls.idle += t - self.cycle;
                        self.emit_stall(NO_WARP, StallCause::Idle, t - self.cycle);
                        self.cycle = t;
                    }
                    _ => {
                        // Only barrier-blocked warps remain and the
                        // release pass freed none: deadlock.
                        let blocked_warps =
                            self.warps.iter().filter(|w| w.blocked_at_barrier_fast()).count()
                                as u32;
                        return Err(RunError::Deadlock { cycles: self.cycle, blocked_warps });
                    }
                }
            }
        }
        Ok(StepOutcome::Progress)
    }

    /// Would the pick scan take warp `w` this cycle? A runnable thread
    /// implies the warp is neither done nor barrier-blocked and that
    /// `select()` returns a selection, so the whole original four-part
    /// test collapses to two O(1) reads.
    #[inline]
    fn pickable(&self, w: usize) -> bool {
        let warp = &self.warps[w];
        debug_assert_eq!(
            warp.runnable > 0,
            !warp.done() && !warp.blocked_at_barrier() && warp.select().is_some()
        );
        warp.runnable > 0 && warp.ready_at <= self.cycle
    }

    /// Retire the rest of warp `w`'s straight-line run (see the module
    /// docs). `sel` is the selection just issued and `pre_suppressed` the
    /// suppressed-trap count from before that issue.
    fn block_run(
        &mut self,
        w: usize,
        mut sel: Selection,
        mut pre_suppressed: usize,
        max_cycles: u64,
    ) -> Result<(), RunError> {
        if !self.block_runs || self.rom.is_none() {
            return Ok(());
        }
        loop {
            // A suppressed trap abandoned the issue without advancing the
            // PCs, so the incremented selection would be wrong.
            if self.suppressed.len() != pre_suppressed {
                return Ok(());
            }
            let rom = self.rom.as_ref().expect("checked on entry");
            let Some(idx) = pc_index(sel.pc) else { return Ok(()) };
            let straight = match rom.ops.get(idx) {
                Some(Some(op)) => op.straight,
                _ => false,
            };
            if !straight {
                return Ok(());
            }
            match rom.ops.get(idx + 1) {
                Some(Some(next)) if !next.leader => {}
                _ => return Ok(()),
            }
            let warp = &self.warps[w];
            if warp.ready_at > self.cycle || self.cycle >= max_cycles {
                return Ok(());
            }
            // Convergence: the selection must have covered every runnable
            // lane (select() only ever picks runnable lanes, so equal
            // counts mean equal sets).
            if sel.mask.count_ones() != warp.runnable {
                return Ok(());
            }
            if (0..self.warps.len()).any(|o| o != w && self.pickable(o)) {
                return Ok(());
            }
            sel = Selection { mask: sel.mask, pc: sel.pc.wrapping_add(4), pcc_meta: sel.pcc_meta };
            debug_assert_eq!(self.warps[w].select(), Some(sel));
            pre_suppressed = self.suppressed.len();
            self.issue_with(w, sel)?;
        }
    }

    /// Release barriers: a block whose live warps are all blocked at the
    /// barrier resumes as a unit.
    pub(crate) fn release_barriers(&mut self) {
        let per_block = self.block_warps as usize;
        let n = self.warps.len();
        let mut b = 0;
        while b < n {
            let group = b..(b + per_block).min(n);
            let any_blocked = group.clone().any(|w| self.warps[w].blocked_at_barrier_fast());
            let all_parked = group
                .clone()
                .all(|w| self.warps[w].done_fast() || self.warps[w].blocked_at_barrier_fast());
            if any_blocked && all_parked {
                for w in group {
                    let released = {
                        let warp = &mut self.warps[w];
                        let mut released = false;
                        for i in 0..warp.lanes() as usize {
                            if warp.status[i] == ThreadStatus::AtBarrier {
                                warp.set_status(i, ThreadStatus::Active);
                                released = true;
                            }
                        }
                        warp.ready_at = warp.ready_at.max(self.cycle + 1);
                        released
                    };
                    if released {
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.emit(TraceEvent::Barrier {
                                cycle: self.cycle,
                                warp: w as u32,
                                release: true,
                            });
                        }
                    }
                }
            }
            b += per_block;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::sm::Sm;
    use crate::trap::RunError;
    use crate::warp::ThreadStatus;
    use crate::{CheriMode, SmConfig};
    use simt_isa::asm::Assembler;

    /// A scheduler bug that issues a warp with no selectable thread must
    /// surface as a typed [`RunError::SchedulerInvariant`], not a process
    /// abort (the former `expect("issue() requires a selectable warp")`).
    #[test]
    fn issue_without_selectable_warp_is_a_typed_error() {
        let mut a = Assembler::new();
        a.terminate();
        let mut sm = Sm::new(SmConfig::small(CheriMode::Off));
        sm.load_program(&a.assemble());
        sm.reset();
        // Simulate the bug: every thread of warp 0 finished, yet the warp
        // is handed to issue() anyway.
        for lane in 0..sm.warps[0].lanes() as usize {
            sm.warps[0].set_status(lane, ThreadStatus::Terminated);
        }
        match sm.issue(0) {
            Err(RunError::SchedulerInvariant { warp: 0, .. }) => {}
            other => panic!("expected SchedulerInvariant, got {other:?}"),
        }
    }
}
