//! Floating-point op class: lane FP ALU plus SFU round-trips for the
//! long-latency operations (`FDIV`, `FSQRT`).
//!
//! The scalarised fast path evaluates one FP operation per warp when every
//! operand is uniform; the SFU suspension (which charges per *active lane*)
//! is identical on both paths.

use super::scalar::expect_uniform;
use super::Costs;
use crate::exec;
use crate::sm::Sm;
use crate::warp::Selection;
use simt_isa::Instr;
use simt_regfile::OperandVec;

impl Sm {
    /// Execute one FP-class instruction (always writes `rd`, never traps,
    /// sequential PC).
    pub(crate) fn exec_sfu_class(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        fast: bool,
        costs: &mut Costs,
    ) {
        if fast {
            self.exec_sfu_fast(w, sel, instr, costs);
        } else {
            self.exec_sfu_lanewise(w, sel, instr, costs);
        }
        self.advance_uniform(w, sel, sel.pc.wrapping_add(4), None);
    }

    /// The lane-wise reference path. Scratch staleness audit: `a`/`b` are
    /// fully overwritten by `read_data`; `r` is written per active lane and
    /// committed under the mask.
    fn exec_sfu_lanewise(&mut self, w: u32, sel: &Selection, instr: Instr, costs: &mut Costs) {
        let mut bufs = self.take_bufs();
        self.sfu_lanewise_with(&mut bufs, w, sel, instr, costs);
        self.put_bufs(bufs);
    }

    fn sfu_lanewise_with(
        &mut self,
        bufs: &mut crate::sm::LaneBufs,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let crate::sm::LaneBufs { a, b, r, .. } = bufs;

        macro_rules! active {
            () => {
                (0..lanes).filter(|i| mask >> i & 1 == 1)
            };
        }

        let rd = match instr {
            Instr::FOp { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, a, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    r[i] = exec::fp(op, a[i] as u32, b[i] as u32) as u64;
                }
                if op == simt_isa::FpOp::Div {
                    self.sfu_suspend(w, sel);
                }
                rd
            }
            Instr::FSqrt { rd, rs1 } => {
                self.read_data(w, rs1, a, costs);
                for i in active!() {
                    r[i] = exec::fsqrt(a[i] as u32) as u64;
                }
                self.sfu_suspend(w, sel);
                rd
            }
            Instr::FCmp { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, a, costs);
                self.read_data(w, rs2, b, costs);
                for i in active!() {
                    r[i] = exec::fcmp(op, a[i] as u32, b[i] as u32) as u64;
                }
                rd
            }
            Instr::FCvtWS { rd, rs1, signed } => {
                self.read_data(w, rs1, a, costs);
                for i in active!() {
                    r[i] = exec::fcvt_ws(a[i] as u32, signed) as u64;
                }
                rd
            }
            Instr::FCvtSW { rd, rs1, signed } => {
                self.read_data(w, rs1, a, costs);
                for i in active!() {
                    r[i] = exec::fcvt_sw(a[i] as u32, signed) as u64;
                }
                rd
            }
            _ => unreachable!("not an FP-class instruction"),
        };
        self.writeback(w, rd, &r[..], None, mask, costs);
    }

    /// The warp-wide fast path (uniform operands only).
    fn exec_sfu_fast(&mut self, w: u32, sel: &Selection, instr: Instr, costs: &mut Costs) {
        let mask = sel.mask;
        let (rd, v) = match instr {
            Instr::FOp { op, rd, rs1, rs2 } => {
                let a = expect_uniform(&self.read_data_compact(w, rs1, costs));
                let b = expect_uniform(&self.read_data_compact(w, rs2, costs));
                let v = exec::fp(op, a as u32, b as u32) as u64;
                if op == simt_isa::FpOp::Div {
                    self.sfu_suspend(w, sel);
                }
                (rd, v)
            }
            Instr::FSqrt { rd, rs1 } => {
                let a = expect_uniform(&self.read_data_compact(w, rs1, costs));
                let v = exec::fsqrt(a as u32) as u64;
                self.sfu_suspend(w, sel);
                (rd, v)
            }
            Instr::FCmp { op, rd, rs1, rs2 } => {
                let a = expect_uniform(&self.read_data_compact(w, rs1, costs));
                let b = expect_uniform(&self.read_data_compact(w, rs2, costs));
                (rd, exec::fcmp(op, a as u32, b as u32) as u64)
            }
            Instr::FCvtWS { rd, rs1, signed } => {
                let a = expect_uniform(&self.read_data_compact(w, rs1, costs));
                (rd, exec::fcvt_ws(a as u32, signed) as u64)
            }
            Instr::FCvtSW { rd, rs1, signed } => {
                let a = expect_uniform(&self.read_data_compact(w, rs1, costs));
                (rd, exec::fcvt_sw(a as u32, signed) as u64)
            }
            _ => unreachable!("not an FP-class instruction"),
        };
        self.writeback_compact(w, rd, &OperandVec::Uniform(v), None, mask, costs);
    }
}
