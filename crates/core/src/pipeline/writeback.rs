//! Writeback stage: register-file writes and PC/status commit.
//!
//! Owns the data/metadata write paths (spill/fill costing, traced RF
//! writes) and the final commit of per-thread PCs and status changes.

use super::Costs;
use crate::sm::Sm;
use crate::warp::{Selection, ThreadStatus};
use simt_isa::Reg;
use simt_regfile::{MAX_LANES, NULL_META};

impl Sm {
    pub(crate) fn write_data(
        &mut self,
        w: u32,
        rd: Reg,
        vals: &[u64],
        mask: u64,
        costs: &mut Costs,
    ) {
        if rd.is_zero() {
            return;
        }
        let info = match self.sink.as_deref_mut() {
            Some(sink) => {
                self.data_rf.write_traced(w, rd.index() as u32, vals, mask, self.cycle, sink)
            }
            None => self.data_rf.write(w, rd.index() as u32, vals, mask),
        };
        costs.add_write(self.cfg.timing.spill_cycles, self.cfg.lanes, info);
    }

    pub(crate) fn write_meta(
        &mut self,
        w: u32,
        rd: Reg,
        vals: &[u64],
        mask: u64,
        costs: &mut Costs,
    ) {
        if rd.is_zero() {
            return;
        }
        let lanes = self.cfg.lanes;
        let spill = self.cfg.timing.spill_cycles;
        let cycle = self.cycle;
        if let Some(rf) = self.meta_rf.as_mut() {
            let info = match self.sink.as_deref_mut() {
                Some(sink) => rf.write_traced(w, rd.index() as u32, vals, mask, cycle, sink),
                None => rf.write(w, rd.index() as u32, vals, mask),
            };
            costs.add_write(spill, lanes, info);
        }
    }

    pub(crate) fn write_meta_null(&mut self, w: u32, rd: Reg, mask: u64, costs: &mut Costs) {
        if self.cheri() {
            let nulls = [NULL_META; MAX_LANES];
            self.write_meta(w, rd, &nulls, mask, costs);
        }
    }

    /// Commit PC updates and status changes for the selected threads.
    pub(crate) fn advance(
        &mut self,
        w: u32,
        sel: &Selection,
        next_pc: &[u32; MAX_LANES],
        status_change: Option<ThreadStatus>,
    ) {
        let warp = &mut self.warps[w as usize];
        for (i, &pc) in next_pc.iter().enumerate().take(self.cfg.lanes as usize) {
            if sel.mask >> i & 1 == 1 {
                warp.pc[i] = pc;
                if let Some(s) = status_change {
                    warp.status[i] = s;
                }
            }
        }
    }
}
