//! Writeback stage: register-file writes and PC/status commit.
//!
//! Owns the data/metadata write paths (spill/fill costing, traced RF
//! writes) and the final commit of per-thread PCs and status changes.

use super::Costs;
use crate::sm::Sm;
use crate::warp::{Selection, ThreadStatus};
use simt_isa::Reg;
use simt_regfile::{OperandVec, MAX_LANES, NULL_META};

impl Sm {
    pub(crate) fn write_data(
        &mut self,
        w: u32,
        rd: Reg,
        vals: &[u64],
        mask: u64,
        costs: &mut Costs,
    ) {
        if rd.is_zero() {
            return;
        }
        let info = match self.sink.as_deref_mut() {
            Some(sink) => {
                self.data_rf.write_traced(w, rd.index() as u32, vals, mask, self.cycle, sink)
            }
            None => self.data_rf.write(w, rd.index() as u32, vals, mask),
        };
        costs.add_write(self.cfg.timing.spill_cycles, self.cfg.lanes, info);
    }

    pub(crate) fn write_meta(
        &mut self,
        w: u32,
        rd: Reg,
        vals: &[u64],
        mask: u64,
        costs: &mut Costs,
    ) {
        if rd.is_zero() {
            return;
        }
        let lanes = self.cfg.lanes;
        let spill = self.cfg.timing.spill_cycles;
        let cycle = self.cycle;
        if let Some(rf) = self.meta_rf.as_mut() {
            let info = match self.sink.as_deref_mut() {
                Some(sink) => rf.write_traced(w, rd.index() as u32, vals, mask, cycle, sink),
                None => rf.write(w, rd.index() as u32, vals, mask),
            };
            costs.add_write(spill, lanes, info);
        }
    }

    pub(crate) fn write_meta_null(&mut self, w: u32, rd: Reg, mask: u64, costs: &mut Costs) {
        if self.cheri() {
            let nulls = [NULL_META; MAX_LANES];
            self.write_meta(w, rd, &nulls, mask, costs);
        }
    }

    /// The common result-commit tail of the lane-wise execute path: data
    /// write plus (under CHERI) the matching metadata — `rm` for
    /// capability results, null metadata otherwise.
    pub(crate) fn writeback(
        &mut self,
        w: u32,
        rd: Reg,
        r: &[u64],
        rm: Option<&[u64]>,
        mask: u64,
        costs: &mut Costs,
    ) {
        self.write_data(w, rd, r, mask, costs);
        if self.cheri() {
            match rm {
                Some(rm) => self.write_meta(w, rd, rm, mask, costs),
                None => self.write_meta_null(w, rd, mask, costs),
            }
        }
    }

    /// Compact data write: the counterpart of [`Sm::write_data`] accepting
    /// the result in register-file form (no recompression scan on the
    /// scalarised path).
    pub(crate) fn write_data_compact(
        &mut self,
        w: u32,
        rd: Reg,
        val: &OperandVec,
        mask: u64,
        costs: &mut Costs,
    ) {
        if rd.is_zero() {
            return;
        }
        let info = match self.sink.as_deref_mut() {
            Some(sink) => {
                self.data_rf.write_compact_traced(w, rd.index() as u32, val, mask, self.cycle, sink)
            }
            None => self.data_rf.write_compact(w, rd.index() as u32, val, mask),
        };
        costs.add_write(self.cfg.timing.spill_cycles, self.cfg.lanes, info);
    }

    /// Compact metadata write (no-op without a metadata register file).
    pub(crate) fn write_meta_compact(
        &mut self,
        w: u32,
        rd: Reg,
        val: &OperandVec,
        mask: u64,
        costs: &mut Costs,
    ) {
        if rd.is_zero() {
            return;
        }
        let lanes = self.cfg.lanes;
        let spill = self.cfg.timing.spill_cycles;
        let cycle = self.cycle;
        if let Some(rf) = self.meta_rf.as_mut() {
            let info = match self.sink.as_deref_mut() {
                Some(sink) => rf.write_compact_traced(w, rd.index() as u32, val, mask, cycle, sink),
                None => rf.write_compact(w, rd.index() as u32, val, mask),
            };
            costs.add_write(spill, lanes, info);
        }
    }

    /// The result-commit tail of the scalarised execute path: compact data
    /// write plus (under CHERI) the capability metadata (`meta` for
    /// capability results, null metadata otherwise). Bit-identical to
    /// [`Sm::writeback`] over the expanded equivalents.
    pub(crate) fn writeback_compact(
        &mut self,
        w: u32,
        rd: Reg,
        val: &OperandVec,
        meta: Option<&OperandVec>,
        mask: u64,
        costs: &mut Costs,
    ) {
        self.write_data_compact(w, rd, val, mask, costs);
        if self.cheri() {
            let null = OperandVec::Uniform(NULL_META);
            self.write_meta_compact(w, rd, meta.unwrap_or(&null), mask, costs);
        }
    }

    /// Commit PC updates and status changes for the selected threads.
    pub(crate) fn advance(
        &mut self,
        w: u32,
        sel: &Selection,
        next_pc: &[u32; MAX_LANES],
        status_change: Option<ThreadStatus>,
    ) {
        if status_change == Some(ThreadStatus::AtBarrier) {
            self.maybe_parked = true;
        }
        let warp = &mut self.warps[w as usize];
        warp.cached_sel = None;
        for (i, &pc) in next_pc.iter().enumerate().take(self.cfg.lanes as usize) {
            if sel.mask >> i & 1 == 1 {
                warp.pc[i] = pc;
                if let Some(s) = status_change {
                    warp.set_status(i, s);
                }
            }
        }
    }

    /// [`Sm::advance`] for the common case of every selected thread
    /// stepping to the same `next_pc` with no PCC-metadata change. When the
    /// selection covered every runnable thread, the next [`Warp::select`]
    /// answer is fully determined — same mask and metadata at `next_pc` —
    /// so it is memoised instead of rescanned (a `status_change` forces a
    /// rescan: the surviving selection depends on the new statuses).
    pub(crate) fn advance_uniform(
        &mut self,
        w: u32,
        sel: &Selection,
        next_pc: u32,
        status_change: Option<ThreadStatus>,
    ) {
        if status_change == Some(ThreadStatus::AtBarrier) {
            self.maybe_parked = true;
        }
        let warp = &mut self.warps[w as usize];
        warp.cached_sel = None;
        for i in 0..self.cfg.lanes as usize {
            if sel.mask >> i & 1 == 1 {
                warp.pc[i] = next_pc;
                if let Some(s) = status_change {
                    warp.set_status(i, s);
                }
            }
        }
        if status_change.is_none() && sel.mask.count_ones() == warp.runnable {
            // select() only ever picks runnable threads, so equal counts
            // mean the selection covered exactly the runnable set; they all
            // now sit at `next_pc` with unchanged metadata.
            warp.cached_sel =
                Some(Selection { mask: sel.mask, pc: next_pc, pcc_meta: sel.pcc_meta });
        }
    }
}
