//! The pre-decoded program ROM: one-time decode of the loaded kernel into
//! dense micro-ops so the hot interpreter loop never re-derives per-issue
//! facts that are static per instruction (§3.3.4 of DESIGN.md).
//!
//! Each slot caches, for the instruction word at the same index of
//! instruction memory:
//!
//! * the decoded [`Instr`] (`None` for undecodable words, which trap as
//!   `illegal_instr` exactly like the decode-at-issue path),
//! * the **static half of the scalarisation verdict**
//!   ([`StaticClass`]): instructions that scalarise under any mask and
//!   operand classes, instructions that never do, and the rest — for
//!   which only the dynamic register-compactness check runs at issue,
//! * a [`TrapPlan`] naming which memory-stage probes (CHERI access,
//!   bounds-table, alignment, mapping) the op can *ever* need, so the
//!   memory stage skips the others,
//! * whether the op is **straight-line** (always advances every selected
//!   lane to `pc + 4` with no status change), and
//! * whether the slot is a **basic-block leader** (index 0, the successor
//!   of any non-straight-line op or undecodable word, and the static
//!   target of every `JAL`/branch).
//!
//! The `straight`/`leader` bits drive the scheduler's basic-block runs: a
//! converged warp that is the only pickable warp retires a straight-line
//! run without re-entering the per-issue dispatcher (see
//! [`crate::pipeline::schedule`]). The ROM is a pure function of the
//! program words and the CHERI mode, so toggling predecode
//! ([`crate::Sm::set_predecode`]) cannot change any architectural result —
//! the differential suite pins this.

use crate::pipeline::classify::{static_issue_class, StaticClass};
use simt_isa::Instr;
use simt_mem::map;

/// Which memory-stage trap probes an instruction can ever need, fixed at
/// decode time from the instruction and the CHERI mode. The dynamic parts
/// of each probe (is a bounds table installed? does the address fault?)
/// are still evaluated at execute time; the plan only licenses *skipping*
/// probes that are statically impossible for the op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TrapPlan(u8);

impl TrapPlan {
    /// Per-lane CHERI access check against the address capability.
    pub(crate) const CHERI_ACCESS: TrapPlan = TrapPlan(1);
    /// GPUShield bounds-table translation (comparator schemes only).
    pub(crate) const BOUNDS_TABLE: TrapPlan = TrapPlan(1 << 1);
    /// Natural-alignment check of the effective address.
    pub(crate) const ALIGNMENT: TrapPlan = TrapPlan(1 << 2);
    /// Address-map routing / mapping probe.
    pub(crate) const MAPPING: TrapPlan = TrapPlan(1 << 3);

    /// No probes (every non-memory instruction).
    pub(crate) const fn empty() -> Self {
        TrapPlan(0)
    }

    /// Does the plan include probe `f`?
    #[inline]
    pub(crate) fn has(self, f: TrapPlan) -> bool {
        self.0 & f.0 != 0
    }

    const fn with(self, f: TrapPlan) -> Self {
        TrapPlan(self.0 | f.0)
    }

    /// The trap-check plan of `instr` under the given CHERI mode. Memory
    /// ops under CHERI take the capability check plus the mapping probe;
    /// under the integer schemes they take the bounds-table and (for
    /// multi-byte widths) alignment checks plus the mapping probe. AMOs
    /// carry no separate alignment probe: the mapping probe's word read
    /// reports misalignment, exactly as the un-planned path did.
    pub(crate) fn for_instr(instr: Instr, cheri: bool) -> TrapPlan {
        let bytes = match instr {
            Instr::Load { w, .. } => w.bytes(),
            Instr::Store { w, .. } => w.bytes(),
            Instr::Clc { .. } | Instr::Csc { .. } => 8,
            Instr::Amo { .. } => 4,
            _ => return TrapPlan::empty(),
        };
        let plan = TrapPlan::empty().with(TrapPlan::MAPPING);
        if cheri {
            plan.with(TrapPlan::CHERI_ACCESS)
        } else {
            let plan = plan.with(TrapPlan::BOUNDS_TABLE);
            if bytes > 1 && !matches!(instr, Instr::Amo { .. }) {
                plan.with(TrapPlan::ALIGNMENT)
            } else {
                plan
            }
        }
    }
}

/// One pre-decoded program-ROM slot (see the module docs).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    /// The decoded instruction.
    pub(crate) instr: Instr,
    /// The static half of the scalarisation verdict.
    pub(crate) sclass: StaticClass,
    /// Which memory-stage trap probes the op can ever need.
    pub(crate) plan: TrapPlan,
    /// Does the op always advance every selected lane to `pc + 4` with no
    /// status change? (Memory ops qualify: a trap abandons the issue
    /// before any commit, ending a block run through the suppression
    /// check rather than a status edit.)
    pub(crate) straight: bool,
    /// Is this slot a basic-block leader? A block run never *continues*
    /// into a leader; it may start on one.
    pub(crate) leader: bool,
}

/// Can `instr` do anything other than advance every selected lane to
/// `pc + 4` with no status change? Control flow rewrites PCs (and, under
/// CHERI, per-lane PCC metadata), SIMT ops edit thread status, and
/// `ecall`/`ebreak` always trap.
fn is_straight(instr: Instr) -> bool {
    !matches!(
        instr,
        Instr::Jal { .. }
            | Instr::Jalr { .. }
            | Instr::Branch { .. }
            | Instr::Simt { .. }
            | Instr::Ecall
            | Instr::Ebreak
    )
}

/// The pre-decoded program: one [`MicroOp`] per instruction-memory word
/// (`None` where the word is undecodable).
#[derive(Debug, Clone)]
pub(crate) struct ProgramRom {
    pub(crate) ops: Vec<Option<MicroOp>>,
}

impl ProgramRom {
    /// Pre-decode `words` under the given CHERI mode: decode every word,
    /// resolve the static classification and trap plan, then mark block
    /// leaders (index 0, successors of non-straight-line ops and of
    /// undecodable words, and in-range static `JAL`/branch targets).
    pub(crate) fn build(words: &[u32], cheri: bool) -> Self {
        let mut ops: Vec<Option<MicroOp>> = words
            .iter()
            .map(|&raw| {
                Instr::decode(raw).map(|instr| MicroOp {
                    instr,
                    sclass: static_issue_class(instr, cheri),
                    plan: TrapPlan::for_instr(instr, cheri),
                    straight: is_straight(instr),
                    leader: false,
                })
            })
            .collect();
        let n = ops.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for i in 0..n {
            let (straight, target_off) = match &ops[i] {
                Some(op) => (
                    op.straight,
                    match op.instr {
                        Instr::Jal { off, .. } | Instr::Branch { off, .. } => Some(off),
                        _ => None,
                    },
                ),
                None => (false, None),
            };
            if !straight && i + 1 < n {
                leader[i + 1] = true;
            }
            if let Some(off) = target_off {
                let pc = map::TCIM_BASE + (i as u32) * 4;
                let target = pc.wrapping_add(off as u32);
                if target >= map::TCIM_BASE && target.is_multiple_of(4) {
                    if let Some(ti) = pc_index(target) {
                        if ti < n {
                            leader[ti] = true;
                        }
                    }
                }
            }
        }
        for (op, l) in ops.iter_mut().zip(leader) {
            if let Some(op) = op {
                op.leader = l;
            }
        }
        ProgramRom { ops }
    }
}

/// The instruction-memory index of `pc`, or `None` when `pc` is below the
/// TCIM base. Checked conversion: the subtraction cannot wrap and the
/// widening cannot truncate (part of the issue-path narrowing-cast audit).
#[inline]
pub(crate) fn pc_index(pc: u32) -> Option<usize> {
    if pc < map::TCIM_BASE {
        return None;
    }
    usize::try_from((pc - map::TCIM_BASE) / 4).ok()
}
