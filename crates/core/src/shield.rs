//! A GPUShield-style bounds table (Lee et al., ISCA 2022) — the prior
//! hardware approach the paper compares against in Section 5.2/Figure 15.
//!
//! Buffer pointers carry a 4-bit table index in address bits 27:24 (free
//! bits: the modelled DRAM is at `0x8000_0000` and at most 16 MiB). On
//! every DRAM access the SM looks the index up, checks the stripped
//! address against the region bounds, and forwards the real address.
//! Index 0 marks an *unprotected* pointer that bypasses the check — the
//! mechanism GPUShield uses for statically-safe accesses, and the source
//! of its forgeability weakness (any kernel can craft an index-0 pointer
//! to anywhere).

use crate::trap::TrapCause;

/// Bit position of the 4-bit region id within a pointer.
pub const ID_SHIFT: u32 = 24;
/// Mask of the id field (within the address).
pub const ID_MASK: u32 = 0xF << ID_SHIFT;
/// Number of protectable regions (id 0 is "unprotected").
pub const MAX_REGIONS: usize = 15;

/// The per-launch bounds table. Set up by the host before the kernel runs
/// and immutable during execution (GPUShield cannot protect dynamically
/// allocated buffers — Figure 15).
#[derive(Debug, Clone, Default)]
pub struct BoundsTable {
    /// `entries[id - 1] = (base, length_bytes)`.
    entries: Vec<(u32, u32)>,
}

impl BoundsTable {
    /// Build a table from `(base, length)` pairs, in id order (1, 2, ...).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_REGIONS`] regions are given.
    pub fn new(regions: Vec<(u32, u32)>) -> Self {
        assert!(regions.len() <= MAX_REGIONS, "bounds table overflow");
        BoundsTable { entries: regions }
    }

    /// Tag `addr` with region `id` (1-based).
    pub fn tag(addr: u32, id: u32) -> u32 {
        debug_assert!(id >= 1 && id <= MAX_REGIONS as u32);
        debug_assert_eq!(addr & ID_MASK, 0, "address bits collide with the id field");
        addr | (id << ID_SHIFT)
    }

    /// Check and translate an effective address: strips the id and verifies
    /// the access is inside the region. Unprotected (id 0) and non-DRAM
    /// addresses pass through untouched.
    ///
    /// # Errors
    ///
    /// Returns the trap cause on a bounds violation.
    pub fn translate(&self, ea: u32, bytes: u32) -> Result<u32, TrapCause> {
        if ea & 0x8000_0000 == 0 {
            return Ok(ea); // scratchpad/TCIM: GPUShield cannot protect these
        }
        let id = (ea & ID_MASK) >> ID_SHIFT;
        if id == 0 {
            return Ok(ea); // unprotected pointer: unchecked
        }
        let real = ea & !ID_MASK;
        match self.entries.get(id as usize - 1) {
            Some(&(base, len))
                if real >= base && real as u64 + bytes as u64 <= base as u64 + len as u64 =>
            {
                Ok(real)
            }
            _ => Err(TrapCause::RegionBound(real)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_check_strip() {
        let t = BoundsTable::new(vec![(0x8000_1000, 256)]);
        let p = BoundsTable::tag(0x8000_1000, 1);
        assert_eq!(t.translate(p, 4).unwrap(), 0x8000_1000);
        assert_eq!(t.translate(p + 252, 4).unwrap(), 0x8000_10FC);
        assert!(t.translate(p + 256, 1).is_err());
        assert!(t.translate(p + 253, 4).is_err(), "straddles the end");
        assert!(t.translate(p.wrapping_sub(4), 4).is_err());
    }

    #[test]
    fn unprotected_and_foreign_addresses_bypass() {
        let t = BoundsTable::new(vec![(0x8000_1000, 16)]);
        // id 0: anything goes — the forgeability hole.
        assert_eq!(t.translate(0x80FF_FFFC & !ID_MASK, 4).unwrap(), 0x80FF_FFFC & !ID_MASK);
        // scratchpad: not translatable at all.
        assert_eq!(t.translate(0x4000_0010, 4).unwrap(), 0x4000_0010);
    }

    #[test]
    fn unknown_id_faults() {
        let t = BoundsTable::new(vec![(0x8000_1000, 16)]);
        let p = BoundsTable::tag(0x8000_1000, 1) | (7 << ID_SHIFT);
        assert!(t.translate(p, 4).is_err());
    }
}
