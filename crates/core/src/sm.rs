//! The streaming multiprocessor: state, host-facing control surface, and
//! the run loop driving the pipeline stages (Figure 2 + Figure 8).
//!
//! The per-stage logic lives in [`crate::pipeline`] — `schedule`,
//! `operands`, `execute`, `memstage` and `writeback` each contribute an
//! `impl Sm` block owning their slice of the statistics and trace events.
//! This module keeps only the state, the host API (program loading,
//! SCRs, sinks, reset) and the cycle loop.

use crate::config::{CheriOpts, SmConfig};
use crate::counters::KernelStats;
use crate::pipeline::StepOutcome;
use crate::trap::{RunError, Trap};
use crate::warp::Warp;
use cheri_cap::{CapMem, CapPipe, Perms};
use simt_isa::Instr;
use simt_mem::{map, CoalescingUnit, Dram, MainMemory, Scratchpad, TagController};
use simt_regfile::{CompressedRegFile, RfConfig, MAX_LANES};
use simt_trace::{EventSink, StallCause, TraceEvent};

/// Reusable per-lane scratch buffers for the lane-wise execute paths.
///
/// The reference handlers work over `MAX_LANES`-sized arrays regardless of
/// the configured lane count; allocating (and zero-filling) those on the
/// stack per issue dominates the host-model cost of small geometries. One
/// boxed copy lives on the [`Sm`] instead, loaned out with a take/put
/// pattern (see [`Sm::take_bufs`]). Contents are *stale* between issues by
/// design: every handler fully writes the lanes it reads back, or reads
/// only under the mask it wrote (audited per handler at the use sites).
#[derive(Debug)]
pub(crate) struct LaneBufs {
    /// First data operand (or memory address).
    pub a: [u64; MAX_LANES],
    /// Second data operand (or store value).
    pub b: [u64; MAX_LANES],
    /// Metadata of `a`.
    pub am: [u64; MAX_LANES],
    /// Metadata of `b` (or a spare metadata scratch).
    pub bm: [u64; MAX_LANES],
    /// Result data.
    pub r: [u64; MAX_LANES],
    /// Result metadata.
    pub rm: [u64; MAX_LANES],
    /// Per-lane next PCs (control flow).
    pub pcs: [u32; MAX_LANES],
    /// Per-lane effective addresses (memory stage).
    pub eas: [u32; MAX_LANES],
    /// DRAM lane requests of the in-flight memory op (capacity retained
    /// across issues; cleared by each user before filling).
    pub dram_reqs: Vec<simt_mem::LaneRequest>,
    /// Scratchpad lane requests (same contract as `dram_reqs`).
    pub scratch_reqs: Vec<simt_mem::LaneRequest>,
}

impl LaneBufs {
    fn new() -> Box<Self> {
        Box::new(LaneBufs {
            a: [0; MAX_LANES],
            b: [0; MAX_LANES],
            am: [0; MAX_LANES],
            bm: [0; MAX_LANES],
            r: [0; MAX_LANES],
            rm: [0; MAX_LANES],
            pcs: [0; MAX_LANES],
            eas: [0; MAX_LANES],
            dram_reqs: Vec::with_capacity(MAX_LANES),
            scratch_reqs: Vec::with_capacity(MAX_LANES),
        })
    }
}

/// The streaming multiprocessor model.
#[derive(Debug)]
pub struct Sm {
    pub(crate) cfg: SmConfig,
    pub(crate) opts: Option<CheriOpts>,
    pub(crate) imem: Vec<Option<Instr>>,
    pub(crate) imem_raw: Vec<u32>,
    /// The pre-decoded program ROM (`Some` iff `cfg.predecode` and a
    /// program is loaded). Pure cache over `imem_raw`: see [`crate::rom`].
    pub(crate) rom: Option<crate::rom::ProgramRom>,
    pub(crate) warps: Vec<Warp>,
    pub(crate) data_rf: CompressedRegFile,
    pub(crate) meta_rf: Option<CompressedRegFile>,
    pub(crate) scrs: [CapMem; 32],
    /// PCC for kernel launch (code capability over the loaded program).
    pub(crate) launch_pcc: CapPipe,
    /// The launch PCC in warp-metadata form (`meta | tag << 32`), for the
    /// memoised fetch check: a warp still running on the launch PCC needs
    /// no per-issue `check_fetch` once the whole program is known covered.
    pub(crate) launch_pcc_meta: u64,
    /// Verified at load time: `check_fetch` passes for **every** aligned
    /// PC of the loaded program under the launch PCC metadata, so the
    /// issue path may skip the check whenever the selection's metadata
    /// equals `launch_pcc_meta`, its PC is aligned and its index is in
    /// range. Exact, not heuristic — each slot was probed.
    pub(crate) pcc_fetch_ok: bool,
    pub(crate) mem: MainMemory,
    pub(crate) scratch: Scratchpad,
    pub(crate) dram: Dram,
    pub(crate) tags: TagController,
    pub(crate) coalescer: CoalescingUnit,
    /// Warps per thread block, for barrier grouping.
    pub(crate) block_warps: u32,
    /// Stack arena (base, size) for the compressed stack cache filter.
    pub(crate) stack_region: Option<(u32, u32)>,
    /// GPUShield comparator mode: a per-launch bounds table.
    pub(crate) bounds_table: Option<crate::shield::BoundsTable>,
    /// Structured event sink (`None` = tracing off; the pipeline and the
    /// memory hierarchy emit nothing and take only an `Option` branch).
    pub(crate) sink: Option<Box<dyn EventSink>>,
    pub(crate) stats: KernelStats,
    pub(crate) cycle: u64,
    pub(crate) rr: usize,
    /// Occupancy sampling accumulators.
    pub(crate) samples: u64,
    pub(crate) sum_data_resident: u64,
    pub(crate) sum_meta_resident: u64,
    /// First global hart id on this SM (`sm_index × threads_per_sm` on a
    /// multi-SM [`crate::Device`]; 0 stand-alone).
    pub(crate) hart_base: u32,
    /// What `SIMT_NUM_THREADS` reads: the *device-wide* thread count, so
    /// grid-stride kernels distribute work across every SM. Equals
    /// `cfg.threads()` stand-alone.
    pub(crate) device_threads: u32,
    /// Execute scalarised issues warp-wide over compact operands (the fast
    /// path). Purely a host-model speed knob: issue classification, the
    /// `scalarised_issues` counter and every other statistic are identical
    /// either way (the differential test pins this).
    pub(crate) scalarise: bool,
    /// Traps suppressed under `TrapPolicy::MaskLanes` this launch, in
    /// delivery order (empty under `Abort`).
    pub(crate) suppressed: Vec<Trap>,
    /// Let the scheduler retire straight-line basic blocks without
    /// re-entering the per-issue pick loop (requires the pre-decoded ROM).
    /// Disabled by [`crate::Device`] for multi-SM devices, whose
    /// instruction-granular arbitration must interleave SMs per issue.
    pub(crate) block_runs: bool,
    /// Loaned-out lane scratch (`None` only while a handler holds it).
    pub(crate) bufs: Option<Box<LaneBufs>>,
    /// Conservative "some thread may be parked at a barrier" flag: raised
    /// by the commit path whenever a thread parks, lowered by the
    /// scheduler once a scan finds nothing parked. Lets barrier-free
    /// stretches skip the per-step barrier/done scans entirely.
    pub(crate) maybe_parked: bool,
}

impl Sm {
    /// Borrow the lane scratch buffers for a lane-wise handler. Callers
    /// must hand them back with [`Sm::put_bufs`] on every exit path
    /// (including trap returns).
    #[inline]
    pub(crate) fn take_bufs(&mut self) -> Box<LaneBufs> {
        self.bufs.take().expect("lane scratch buffers already loaned out")
    }

    /// Return the lane scratch buffers taken by [`Sm::take_bufs`].
    #[inline]
    pub(crate) fn put_bufs(&mut self, bufs: Box<LaneBufs>) {
        self.bufs = Some(bufs);
    }
}

impl Sm {
    /// Build an SM from a configuration. The program must be loaded with
    /// [`Sm::load_program`] before [`Sm::run`].
    pub fn new(cfg: SmConfig) -> Self {
        let opts = cfg.cheri.opts();
        let data_rf = CompressedRegFile::new(RfConfig::data(cfg.warps, cfg.lanes, cfg.vrf_slots));
        let meta_rf = opts.map(|o| {
            let slots = if o.compress_meta {
                // Shared VRF: metadata vectors compete for the same slots;
                // modelled as an equal-capacity pool (see DESIGN.md).
                cfg.vrf_slots
            } else {
                // Naive CHERI: full-size uncompressed metadata storage.
                cfg.warps * 32
            };
            let mut rf_cfg = RfConfig::meta(cfg.warps, cfg.lanes, slots, o.nvo);
            if !o.compress_meta {
                // The naive configuration has a full three-port register
                // file; no CSC port penalty applies (handled in issue()).
                rf_cfg.srf_copies = 2;
            }
            CompressedRegFile::new(rf_cfg)
        });
        Sm {
            opts,
            imem: Vec::new(),
            imem_raw: Vec::new(),
            rom: None,
            warps: Vec::new(),
            data_rf,
            meta_rf,
            scrs: [CapMem::NULL; 32],
            launch_pcc: CapPipe::null(),
            launch_pcc_meta: 0,
            pcc_fetch_ok: false,
            mem: MainMemory::new(map::DRAM_BASE, cfg.dram_size),
            scratch: Scratchpad::new(map::SCRATCH_BASE, map::SCRATCH_SIZE, cfg.lanes),
            dram: Dram::new(cfg.dram),
            tags: TagController::new(cfg.tag_cache, cfg.cheri.enabled()),
            coalescer: CoalescingUnit::new(),
            block_warps: 1,
            stack_region: None,
            bounds_table: None,
            sink: None,
            stats: KernelStats::default(),
            cycle: 0,
            rr: 0,
            samples: 0,
            sum_data_resident: 0,
            sum_meta_resident: 0,
            hart_base: 0,
            device_threads: cfg.threads(),
            scalarise: true,
            suppressed: Vec::new(),
            block_runs: true,
            bufs: Some(LaneBufs::new()),
            maybe_parked: true,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SmConfig {
        &self.cfg
    }

    /// Main memory (host-side access for buffer setup/readback).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable main memory.
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// The scratchpad.
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.scratch
    }

    /// Set a special capability register (host side, at launch).
    pub fn set_scr(&mut self, index: u8, cap: CapMem) {
        self.scrs[index as usize] = cap;
    }

    /// Place this SM at `hart_base` within a device: `MHARTID` reads
    /// `hart_base + warp × lanes + lane`. A stand-alone SM keeps the
    /// default 0.
    pub fn set_hart_base(&mut self, hart_base: u32) {
        self.hart_base = hart_base;
    }

    /// First global hart id on this SM.
    pub fn hart_base(&self) -> u32 {
        self.hart_base
    }

    /// Override what `SIMT_NUM_THREADS` reads (the device-wide hardware
    /// thread count on a multi-SM device). Defaults to this SM's own
    /// thread count.
    pub fn set_device_threads(&mut self, threads: u32) {
        assert!(
            threads >= self.cfg.threads() && threads.is_multiple_of(self.cfg.threads()),
            "device threads must be a whole number of SMs"
        );
        self.device_threads = threads;
    }

    /// Attach a structured event sink: the pipeline, memory hierarchy and
    /// register files will emit [`simt_trace::TraceEvent`]s into it from now
    /// on. The sink survives [`Sm::reset`] (each launch is delimited by a
    /// [`simt_trace::TraceEvent::Launch`] marker), so a multi-launch
    /// benchmark accumulates one continuous stream. Replaces any previously
    /// attached sink.
    ///
    /// For a bounded always-on trace, attach a [`simt_trace::RingSink`]: it
    /// keeps the most recent events and counts evictions, which is the tool
    /// for "how did this kernel reach the trap?" post-mortems.
    pub fn set_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Detach and return the current event sink, disabling structured
    /// tracing. Use [`EventSink::as_any`] to downcast to the concrete sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Is a structured event sink attached?
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Enable or disable the warp-wide execute fast path over compact
    /// (uniform/affine) operands. On by default; turning it off forces the
    /// lane-wise reference path for every issue. The two paths are
    /// bit-identical — statistics (including [`KernelStats::scalarised_issues`],
    /// which counts issue *classification*, not which path ran), trace
    /// events and memory contents do not depend on this knob, so it exists
    /// only for differential testing of the fast path itself.
    pub fn set_scalarise(&mut self, enabled: bool) {
        self.scalarise = enabled;
    }

    /// Enable or disable program pre-decoding (the micro-op ROM and the
    /// scheduler's basic-block runs). On by default via
    /// [`SmConfig::predecode`]. Like [`Sm::set_scalarise`] this is purely a
    /// host-model speed knob: statistics, trace events and memory contents
    /// are bit-identical either way, so it exists only for differential
    /// testing of the pre-decoded path itself. Takes effect immediately —
    /// the ROM is rebuilt from (or dropped for) the currently loaded
    /// program.
    pub fn set_predecode(&mut self, enabled: bool) {
        self.cfg.predecode = enabled;
        self.rom = (enabled && !self.imem_raw.is_empty())
            .then(|| crate::rom::ProgramRom::build(&self.imem_raw, self.cfg.cheri.enabled()));
    }

    /// Emit a stall event (no-op without a sink or for zero-cycle stalls, so
    /// per-cause cycle sums always reconcile with `StallBreakdown`).
    pub(crate) fn emit_stall(&mut self, warp: u32, cause: StallCause, cycles: u64) {
        if cycles > 0 {
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.emit(TraceEvent::Stall { cycle: self.cycle, warp, cause, cycles });
            }
        }
    }

    /// Install (or clear) a GPUShield-style bounds table for the next run
    /// — the comparator of Section 5.2. Ignored under CHERI.
    pub fn set_bounds_table(&mut self, table: Option<crate::shield::BoundsTable>) {
        self.bounds_table = table;
    }

    /// Tell the SM where the per-thread stack arena lives, so the
    /// compressed stack cache (when enabled) only filters spill traffic.
    pub fn set_stack_region(&mut self, base: u32, size: u32) {
        self.stack_region = Some((base, size));
    }

    /// Set the number of warps per thread block (barrier grouping).
    ///
    /// # Panics
    ///
    /// Panics unless the block size divides the warp count.
    pub fn set_block_warps(&mut self, warps: u32) {
        assert!(warps >= 1 && self.cfg.warps.is_multiple_of(warps), "blocks must tile the SM");
        self.block_warps = warps;
    }

    /// Load a program at the base of instruction memory and mint the launch
    /// PCC over it.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the TCIM.
    pub fn load_program(&mut self, words: &[u32]) {
        assert!((words.len() * 4) as u32 <= map::TCIM_SIZE, "program too large for TCIM");
        self.imem_raw = words.to_vec();
        self.imem = words.iter().map(|&w| Instr::decode(w)).collect();
        let (pcc, exact) = CapPipe::almighty()
            .and_perm(Perms::code())
            .set_addr(map::TCIM_BASE)
            .set_bounds((words.len() * 4) as u32);
        debug_assert!(exact || pcc.tag());
        self.launch_pcc = pcc;
        // Memoise the fetch check: probe every program slot once under the
        // launch PCC metadata, exactly as the issue path would, so a warp
        // still running on that metadata skips the per-issue check.
        if self.cfg.cheri.enabled() {
            let m = self.launch_pcc.to_mem();
            self.launch_pcc_meta = m.meta() as u64 | ((m.tag() as u64) << 32);
            self.pcc_fetch_ok = (0..words.len()).all(|i| {
                let pc = map::TCIM_BASE + (i as u32) * 4;
                Self::cap_of(self.launch_pcc_meta, pc as u64).check_fetch(pc).is_ok()
            });
        } else {
            self.launch_pcc_meta = 0;
            self.pcc_fetch_ok = false;
        }
        self.rom = self
            .cfg
            .predecode
            .then(|| crate::rom::ProgramRom::build(words, self.cfg.cheri.enabled()));
    }

    /// Reset warps, register files and statistics for a fresh launch.
    /// Memory contents (program, buffers, scratchpad) are preserved.
    pub fn reset(&mut self) {
        let static_pcc = self.opts.map(|o| o.static_pcc).unwrap_or(true);
        let pcc_meta = if self.cfg.cheri.enabled() {
            let m = self.launch_pcc.to_mem();
            m.meta() as u64 | ((m.tag() as u64) << 32)
        } else {
            0
        };
        self.warps = (0..self.cfg.warps)
            .map(|_| Warp::new(self.cfg.lanes, map::TCIM_BASE, pcc_meta, static_pcc))
            .collect();
        self.data_rf = CompressedRegFile::new(RfConfig::data(
            self.cfg.warps,
            self.cfg.lanes,
            self.cfg.vrf_slots,
        ));
        if let Some(meta_cfg) = self.meta_rf.as_ref().map(|m| *m.config()) {
            self.meta_rf = Some(CompressedRegFile::new(meta_cfg));
        }
        self.dram.reset_stats();
        self.tags.reset();
        self.scratch.reset_stats();
        self.stats = KernelStats::default();
        self.cycle = 0;
        self.rr = 0;
        self.samples = 0;
        self.sum_data_resident = 0;
        self.sum_meta_resident = 0;
        self.suppressed.clear();
        // Conservative: let the first step scan once and lower the flag.
        self.maybe_parked = true;
        // The sink deliberately survives the reset: each launch contributes
        // a delimited segment to one continuous stream.
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Launch { cycle: 0, warps: self.cfg.warps });
        }
    }

    /// Run until every thread terminates; returns the collected statistics.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trap`] on the first thread fault,
    /// [`RunError::Timeout`] if the watchdog expires, and
    /// [`RunError::Deadlock`] when only barrier-blocked warps remain.
    pub fn run(&mut self, max_cycles: u64) -> Result<KernelStats, RunError> {
        assert!(!self.warps.is_empty(), "call reset() before run()");
        loop {
            match self.step(max_cycles)? {
                StepOutcome::Done => return Ok(self.finalise()),
                StepOutcome::Progress => {}
            }
        }
    }

    /// The local pipeline clock.
    pub(crate) fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Snapshot the end-of-run statistics from the pipeline accumulators
    /// and the attached memory subsystem.
    pub(crate) fn finalise(&mut self) -> KernelStats {
        let mut s = self.stats.clone();
        s.cycles = self.cycle;
        s.dram = self.dram.stats();
        s.tag_cache = self.tags.stats();
        s.scratch = self.scratch.stats();
        s.data_rf = self.data_rf.stats();
        s.peak_data_vrf_resident = self.data_rf.stats().peak_resident;
        if let Some(m) = &self.meta_rf {
            s.meta_rf = m.stats();
            s.peak_meta_vrf_resident = m.stats().peak_resident;
            s.cap_regs_used = m.max_nonnull_regs();
            s.cap_regs_mask = m.nonnull_mask_union();
        }
        if self.samples > 0 {
            s.avg_data_vrf_resident = self.sum_data_resident as f64 / self.samples as f64;
            s.avg_meta_vrf_resident = self.sum_meta_resident as f64 / self.samples as f64;
        }
        self.stats = s.clone();
        s
    }

    /// Read back the statistics of the last completed run.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Traps suppressed under `TrapPolicy::MaskLanes` during the current
    /// launch, in delivery order. Always empty under `TrapPolicy::Abort`.
    pub fn suppressed_traps(&self) -> &[Trap] {
        &self.suppressed
    }
}
