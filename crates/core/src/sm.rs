//! The streaming multiprocessor: barrel scheduler, execute units, CHERI
//! checks, SFU, and the wiring to the memory subsystem (Figure 2 + Figure 8).

use crate::config::{CheriOpts, SmConfig};
use crate::counters::KernelStats;
use crate::exec;
use crate::trap::{RunError, Trap, TrapCause};
use crate::warp::{Selection, ThreadStatus, Warp};
use cheri_cap::{bounds, AccessWidth, CapMem, CapPipe, Perms};
use simt_isa::{scr, Instr, LoadWidth, Reg, SimtOp, UnaryCapOp};
use simt_mem::{
    map, CoalescingUnit, Dram, LaneRequest, MainMemory, MemFault, Scratchpad, TagController,
};
use simt_regfile::{CompressedRegFile, ReadInfo, RfConfig, WriteInfo, MAX_LANES, NULL_META};
use simt_trace::{EventSink, MemSpace, StallCause, TraceEvent, NO_WARP};

/// One retired warp-instruction, captured when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue cycle.
    pub cycle: u64,
    /// Issuing warp.
    pub warp: u32,
    /// Active-lane mask.
    pub mask: u64,
    /// Program counter.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
}

impl core::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{:>8}] w{:02} {:016b} {:08x}: {}",
            self.cycle, self.warp, self.mask, self.pc, self.instr
        )
    }
}

/// The streaming multiprocessor model.
#[derive(Debug)]
pub struct Sm {
    cfg: SmConfig,
    opts: Option<CheriOpts>,
    imem: Vec<Option<Instr>>,
    imem_raw: Vec<u32>,
    warps: Vec<Warp>,
    data_rf: CompressedRegFile,
    meta_rf: Option<CompressedRegFile>,
    scrs: [CapMem; 32],
    /// PCC for kernel launch (code capability over the loaded program).
    launch_pcc: CapPipe,
    mem: MainMemory,
    scratch: Scratchpad,
    dram: Dram,
    tags: TagController,
    coalescer: CoalescingUnit,
    /// Warps per thread block, for barrier grouping.
    block_warps: u32,
    /// Stack arena (base, size) for the compressed stack cache filter.
    stack_region: Option<(u32, u32)>,
    /// GPUShield comparator mode: a per-launch bounds table.
    bounds_table: Option<crate::shield::BoundsTable>,
    /// Execution trace ring buffer (empty capacity = tracing off).
    trace: std::collections::VecDeque<TraceEntry>,
    trace_capacity: usize,
    /// Entries evicted from the legacy ring since it was last enabled.
    trace_dropped: u64,
    /// Structured event sink (`None` = tracing off; the pipeline and the
    /// memory hierarchy emit nothing and take only an `Option` branch).
    sink: Option<Box<dyn EventSink>>,
    stats: KernelStats,
    cycle: u64,
    rr: usize,
    /// Occupancy sampling accumulators.
    samples: u64,
    sum_data_resident: u64,
    sum_meta_resident: u64,
}

/// Costs accumulated while executing one instruction.
#[derive(Debug, Default, Clone, Copy)]
struct Costs {
    /// Stalls from CHERI mechanisms (CSC serialisation, shared-VRF
    /// conflicts, capability multi-flit accesses).
    extra_cycles: u32,
    /// Stalls from register spill/fill handling.
    spill_cycles: u32,
    dram_reads: u32,
    dram_writes: u32,
}

impl Costs {
    fn add_read(&mut self, spill_cycles: u32, lanes: u32, info: ReadInfo) {
        let txns = lanes.div_ceil(16); // lanes * 4 bytes / 64-byte blocks
        self.spill_cycles += (info.fills + info.spills) * spill_cycles;
        self.dram_reads += info.fills * txns;
        self.dram_writes += info.spills * txns;
    }

    fn add_write(&mut self, spill_cycles: u32, lanes: u32, info: WriteInfo) {
        let txns = lanes.div_ceil(16);
        self.spill_cycles += (info.fills + info.spills) * spill_cycles;
        self.dram_reads += info.fills * txns;
        self.dram_writes += info.spills * txns;
    }
}

impl Sm {
    /// Build an SM from a configuration. The program must be loaded with
    /// [`Sm::load_program`] before [`Sm::run`].
    pub fn new(cfg: SmConfig) -> Self {
        let opts = cfg.cheri.opts();
        let data_rf = CompressedRegFile::new(RfConfig::data(cfg.warps, cfg.lanes, cfg.vrf_slots));
        let meta_rf = opts.map(|o| {
            let slots = if o.compress_meta {
                // Shared VRF: metadata vectors compete for the same slots;
                // modelled as an equal-capacity pool (see DESIGN.md).
                cfg.vrf_slots
            } else {
                // Naive CHERI: full-size uncompressed metadata storage.
                cfg.warps * 32
            };
            let mut rf_cfg = RfConfig::meta(cfg.warps, cfg.lanes, slots, o.nvo);
            if !o.compress_meta {
                // The naive configuration has a full three-port register
                // file; no CSC port penalty applies (handled in issue()).
                rf_cfg.srf_copies = 2;
            }
            CompressedRegFile::new(rf_cfg)
        });
        Sm {
            opts,
            imem: Vec::new(),
            imem_raw: Vec::new(),
            warps: Vec::new(),
            data_rf,
            meta_rf,
            scrs: [CapMem::NULL; 32],
            launch_pcc: CapPipe::null(),
            mem: MainMemory::new(map::DRAM_BASE, cfg.dram_size),
            scratch: Scratchpad::new(map::SCRATCH_BASE, map::SCRATCH_SIZE, cfg.lanes),
            dram: Dram::new(cfg.dram),
            tags: TagController::new(cfg.tag_cache, cfg.cheri.enabled()),
            coalescer: CoalescingUnit::new(),
            block_warps: 1,
            stack_region: None,
            bounds_table: None,
            trace: std::collections::VecDeque::new(),
            trace_capacity: 0,
            trace_dropped: 0,
            sink: None,
            stats: KernelStats::default(),
            cycle: 0,
            rr: 0,
            samples: 0,
            sum_data_resident: 0,
            sum_meta_resident: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SmConfig {
        &self.cfg
    }

    /// Main memory (host-side access for buffer setup/readback).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable main memory.
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// The scratchpad.
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.scratch
    }

    /// Set a special capability register (host side, at launch).
    pub fn set_scr(&mut self, index: u8, cap: CapMem) {
        self.scrs[index as usize] = cap;
    }

    /// Keep a rolling trace of the last `capacity` retired
    /// warp-instructions (0 disables tracing). Invaluable when a kernel
    /// traps: the tail of the trace shows how it got there.
    ///
    /// **Ring-buffer semantics**: once `capacity` entries have been
    /// recorded, each further retirement evicts the *oldest* entry — the
    /// buffer always holds the most recent `capacity` warp-instructions.
    /// Evictions are counted and reported by [`Sm::trace_dropped`].
    /// Re-enabling clears the buffer and the dropped count.
    #[deprecated(
        since = "0.1.0",
        note = "use Sm::set_sink with a simt_trace::RingSink or VecSink — the structured \
                sink API captures the same issue stream plus stalls, memory shape and \
                register-file events, with explicit overflow accounting"
    )]
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace_capacity = capacity;
        self.trace.clear();
        self.trace_dropped = 0;
    }

    /// The legacy trace buffer, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.trace.iter()
    }

    /// Entries evicted from the legacy ring buffer since tracing was last
    /// enabled. A non-zero value means [`Sm::trace`] shows only the tail of
    /// the execution.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }

    /// Attach a structured event sink: the pipeline, memory hierarchy and
    /// register files will emit [`simt_trace::TraceEvent`]s into it from now
    /// on. The sink survives [`Sm::reset`] (each launch is delimited by a
    /// [`simt_trace::TraceEvent::Launch`] marker), so a multi-launch
    /// benchmark accumulates one continuous stream. Replaces any previously
    /// attached sink.
    pub fn set_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Detach and return the current event sink, disabling structured
    /// tracing. Use [`EventSink::as_any`] to downcast to the concrete sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Is a structured event sink attached?
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit a stall event (no-op without a sink or for zero-cycle stalls, so
    /// per-cause cycle sums always reconcile with `StallBreakdown`).
    fn emit_stall(&mut self, warp: u32, cause: StallCause, cycles: u64) {
        if cycles > 0 {
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.emit(TraceEvent::Stall { cycle: self.cycle, warp, cause, cycles });
            }
        }
    }

    /// Install (or clear) a GPUShield-style bounds table for the next run
    /// — the comparator of Section 5.2. Ignored under CHERI.
    pub fn set_bounds_table(&mut self, table: Option<crate::shield::BoundsTable>) {
        self.bounds_table = table;
    }

    /// Tell the SM where the per-thread stack arena lives, so the
    /// compressed stack cache (when enabled) only filters spill traffic.
    pub fn set_stack_region(&mut self, base: u32, size: u32) {
        self.stack_region = Some((base, size));
    }

    /// Set the number of warps per thread block (barrier grouping).
    ///
    /// # Panics
    ///
    /// Panics unless the block size divides the warp count.
    pub fn set_block_warps(&mut self, warps: u32) {
        assert!(warps >= 1 && self.cfg.warps.is_multiple_of(warps), "blocks must tile the SM");
        self.block_warps = warps;
    }

    /// Load a program at the base of instruction memory and mint the launch
    /// PCC over it.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the TCIM.
    pub fn load_program(&mut self, words: &[u32]) {
        assert!((words.len() * 4) as u32 <= map::TCIM_SIZE, "program too large for TCIM");
        self.imem_raw = words.to_vec();
        self.imem = words.iter().map(|&w| Instr::decode(w)).collect();
        let (pcc, exact) = CapPipe::almighty()
            .and_perm(Perms::code())
            .set_addr(map::TCIM_BASE)
            .set_bounds((words.len() * 4) as u32);
        debug_assert!(exact || pcc.tag());
        self.launch_pcc = pcc;
    }

    /// Reset warps, register files and statistics for a fresh launch.
    /// Memory contents (program, buffers, scratchpad) are preserved.
    pub fn reset(&mut self) {
        let static_pcc = self.opts.map(|o| o.static_pcc).unwrap_or(true);
        let pcc_meta = if self.cfg.cheri.enabled() {
            let m = self.launch_pcc.to_mem();
            m.meta() as u64 | ((m.tag() as u64) << 32)
        } else {
            0
        };
        self.warps = (0..self.cfg.warps)
            .map(|_| Warp::new(self.cfg.lanes, map::TCIM_BASE, pcc_meta, static_pcc))
            .collect();
        self.data_rf = CompressedRegFile::new(RfConfig::data(
            self.cfg.warps,
            self.cfg.lanes,
            self.cfg.vrf_slots,
        ));
        if let Some(meta_cfg) = self.meta_rf.as_ref().map(|m| *m.config()) {
            self.meta_rf = Some(CompressedRegFile::new(meta_cfg));
        }
        self.dram.reset_stats();
        self.tags.reset();
        self.scratch.reset_stats();
        self.stats = KernelStats::default();
        self.cycle = 0;
        self.rr = 0;
        self.samples = 0;
        self.sum_data_resident = 0;
        self.sum_meta_resident = 0;
        // The sink deliberately survives the reset: each launch contributes
        // a delimited segment to one continuous stream.
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Launch { cycle: 0, warps: self.cfg.warps });
        }
    }

    /// Run until every thread terminates; returns the collected statistics.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Trap`] on the first thread fault and
    /// [`RunError::Timeout`] if the watchdog expires.
    pub fn run(&mut self, max_cycles: u64) -> Result<KernelStats, RunError> {
        assert!(!self.warps.is_empty(), "call reset() before run()");
        loop {
            if self.warps.iter().all(Warp::done) {
                return Ok(self.finalise());
            }
            if self.cycle >= max_cycles {
                return Err(RunError::Timeout { cycles: self.cycle });
            }
            self.release_barriers();

            let n = self.warps.len();
            let mut picked = None;
            for i in 0..n {
                let w = (self.rr + i) % n;
                let warp = &self.warps[w];
                if !warp.done()
                    && !warp.blocked_at_barrier()
                    && warp.ready_at <= self.cycle
                    && warp.select().is_some()
                {
                    picked = Some(w);
                    break;
                }
            }
            match picked {
                Some(w) => {
                    self.rr = (w + 1) % n;
                    self.issue(w)?;
                }
                None => {
                    // Advance time to the next resume point.
                    let next = self
                        .warps
                        .iter()
                        .filter(|w| !w.done() && !w.blocked_at_barrier())
                        .map(|w| w.ready_at)
                        .min();
                    match next {
                        Some(t) if t > self.cycle => {
                            self.stats.stalls.idle += t - self.cycle;
                            self.emit_stall(NO_WARP, StallCause::Idle, t - self.cycle);
                            self.cycle = t;
                        }
                        _ => {
                            // Only barrier-blocked warps remain and the
                            // release pass freed none: deadlock.
                            return Err(RunError::Timeout { cycles: self.cycle });
                        }
                    }
                }
            }
        }
    }

    fn finalise(&mut self) -> KernelStats {
        let mut s = self.stats.clone();
        s.cycles = self.cycle;
        s.dram = self.dram.stats();
        s.tag_cache = self.tags.stats();
        s.scratch = self.scratch.stats();
        s.data_rf = self.data_rf.stats();
        s.peak_data_vrf_resident = self.data_rf.stats().peak_resident;
        if let Some(m) = &self.meta_rf {
            s.meta_rf = m.stats();
            s.peak_meta_vrf_resident = m.stats().peak_resident;
            s.cap_regs_used = m.max_nonnull_regs();
            s.cap_regs_mask = m.nonnull_mask_union();
        }
        if self.samples > 0 {
            s.avg_data_vrf_resident = self.sum_data_resident as f64 / self.samples as f64;
            s.avg_meta_vrf_resident = self.sum_meta_resident as f64 / self.samples as f64;
        }
        self.stats = s.clone();
        s
    }

    /// Release barriers: a block whose live warps are all blocked at the
    /// barrier resumes as a unit.
    fn release_barriers(&mut self) {
        let per_block = self.block_warps as usize;
        let n = self.warps.len();
        let mut b = 0;
        while b < n {
            let group = b..(b + per_block).min(n);
            let any_blocked = group.clone().any(|w| self.warps[w].blocked_at_barrier());
            let all_parked =
                group.clone().all(|w| self.warps[w].done() || self.warps[w].blocked_at_barrier());
            if any_blocked && all_parked {
                for w in group {
                    let released = {
                        let warp = &mut self.warps[w];
                        let mut released = false;
                        for s in &mut warp.status {
                            if *s == ThreadStatus::AtBarrier {
                                *s = ThreadStatus::Active;
                                released = true;
                            }
                        }
                        warp.ready_at = warp.ready_at.max(self.cycle + 1);
                        released
                    };
                    if released {
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.emit(TraceEvent::Barrier {
                                cycle: self.cycle,
                                warp: w as u32,
                                release: true,
                            });
                        }
                    }
                }
            }
            b += per_block;
        }
    }

    // ---- Register access helpers ----

    fn cheri(&self) -> bool {
        self.opts.is_some()
    }

    fn read_data(
        &mut self,
        w: u32,
        reg: Reg,
        out: &mut [u64; MAX_LANES],
        costs: &mut Costs,
    ) -> ReadInfo {
        if reg.is_zero() {
            out[..self.cfg.lanes as usize].fill(0);
            return ReadInfo::default();
        }
        let info = self.data_rf.read(w, reg.index() as u32, out);
        costs.add_read(self.cfg.timing.spill_cycles, self.cfg.lanes, info);
        info
    }

    fn read_meta(
        &mut self,
        w: u32,
        reg: Reg,
        out: &mut [u64; MAX_LANES],
        costs: &mut Costs,
    ) -> ReadInfo {
        if reg.is_zero() {
            out[..self.cfg.lanes as usize].fill(NULL_META);
            return ReadInfo::default();
        }
        let lanes = self.cfg.lanes;
        let spill = self.cfg.timing.spill_cycles;
        match self.meta_rf.as_mut() {
            Some(rf) => {
                let info = rf.read(w, reg.index() as u32, out);
                costs.add_read(spill, lanes, info);
                info
            }
            None => {
                out[..lanes as usize].fill(NULL_META);
                ReadInfo::default()
            }
        }
    }

    /// Read a full capability operand: data (address) + metadata, with the
    /// shared-VRF serialisation penalty when both halves are uncompressed.
    fn read_cap_operand(
        &mut self,
        w: u32,
        reg: Reg,
        data: &mut [u64; MAX_LANES],
        meta: &mut [u64; MAX_LANES],
        costs: &mut Costs,
    ) {
        let d = self.read_data(w, reg, data, costs);
        let m = self.read_meta(w, reg, meta, costs);
        if let Some(o) = self.opts {
            if o.shared_vrf && d.from_vrf && m.from_vrf {
                costs.extra_cycles += 1;
                self.stats.stalls.shared_vrf_conflict += 1;
                self.emit_stall(w, StallCause::SharedVrfConflict, 1);
            }
        }
    }

    fn write_data(&mut self, w: u32, rd: Reg, vals: &[u64], mask: u64, costs: &mut Costs) {
        if rd.is_zero() {
            return;
        }
        let info = match self.sink.as_deref_mut() {
            Some(sink) => {
                self.data_rf.write_traced(w, rd.index() as u32, vals, mask, self.cycle, sink)
            }
            None => self.data_rf.write(w, rd.index() as u32, vals, mask),
        };
        costs.add_write(self.cfg.timing.spill_cycles, self.cfg.lanes, info);
    }

    fn write_meta(&mut self, w: u32, rd: Reg, vals: &[u64], mask: u64, costs: &mut Costs) {
        if rd.is_zero() {
            return;
        }
        let lanes = self.cfg.lanes;
        let spill = self.cfg.timing.spill_cycles;
        let cycle = self.cycle;
        if let Some(rf) = self.meta_rf.as_mut() {
            let info = match self.sink.as_deref_mut() {
                Some(sink) => rf.write_traced(w, rd.index() as u32, vals, mask, cycle, sink),
                None => rf.write(w, rd.index() as u32, vals, mask),
            };
            costs.add_write(spill, lanes, info);
        }
    }

    fn write_meta_null(&mut self, w: u32, rd: Reg, mask: u64, costs: &mut Costs) {
        if self.cheri() {
            let nulls = [NULL_META; MAX_LANES];
            self.write_meta(w, rd, &nulls, mask, costs);
        }
    }

    // ---- Capability marshalling ----

    #[inline]
    fn cap_of(meta: u64, addr: u64) -> CapPipe {
        CapPipe::from_mem(CapMem::from_parts(meta as u32, addr as u32, meta >> 32 & 1 == 1))
    }

    #[inline]
    fn cap_parts(cap: CapPipe) -> (u64, u64) {
        let m = cap.to_mem();
        (m.meta() as u64 | ((m.tag() as u64) << 32), m.addr() as u64)
    }

    // ---- The issue path ----

    fn trap(&self, w: u32, sel: &Selection, lane: u32, cause: TrapCause) -> Trap {
        Trap { warp: w, lane, pc: sel.pc, cause }
    }

    fn issue(&mut self, w: usize) -> Result<(), RunError> {
        let sel = self.warps[w].select().expect("issue() requires a selectable warp");
        let wid = w as u32;

        // Fetch: one PCC bounds check per warp (Section 3.3).
        if self.cheri() {
            let pcc = Self::cap_of(sel.pcc_meta, sel.pc as u64);
            if let Err(e) = pcc.check_fetch(sel.pc) {
                return Err(self
                    .trap(wid, &sel, sel.mask.trailing_zeros(), TrapCause::Cheri(e))
                    .into());
            }
        }
        if sel.pc < map::TCIM_BASE || ((sel.pc - map::TCIM_BASE) / 4) as usize >= self.imem.len() {
            return Err(self
                .trap(wid, &sel, sel.mask.trailing_zeros(), TrapCause::FetchOutOfRange(sel.pc))
                .into());
        }
        let idx = ((sel.pc - map::TCIM_BASE) / 4) as usize;
        let instr = match self.imem[idx] {
            Some(i) => i,
            None => {
                return Err(self
                    .trap(
                        wid,
                        &sel,
                        sel.mask.trailing_zeros(),
                        TrapCause::IllegalInstr(self.imem_raw[idx]),
                    )
                    .into())
            }
        };

        // Issue accounting.
        self.cycle += 1;
        if self.trace_capacity > 0 {
            if self.trace.len() == self.trace_capacity {
                self.trace.pop_front();
                self.trace_dropped += 1;
            }
            self.trace.push_back(TraceEntry {
                cycle: self.cycle,
                warp: wid,
                mask: sel.mask,
                pc: sel.pc,
                instr,
            });
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Issue {
                cycle: self.cycle,
                warp: wid,
                pc: sel.pc,
                mask: sel.mask,
                mnemonic: instr.mnemonic(),
            });
        }
        self.stats.instrs += 1;
        self.stats.thread_instrs += sel.mask.count_ones() as u64;
        self.samples += 1;
        self.sum_data_resident += self.data_rf.vrf_resident() as u64;
        if let Some(m) = &self.meta_rf {
            self.sum_meta_resident += m.vrf_resident() as u64;
        }

        let mut costs = Costs::default();
        let result = self.execute(wid, &sel, instr, &mut costs);

        // Apply accumulated costs.
        self.cycle += (costs.extra_cycles + costs.spill_cycles) as u64;
        self.stats.stalls.spill_fill += costs.spill_cycles as u64;
        self.emit_stall(wid, StallCause::SpillFill, costs.spill_cycles as u64);
        if costs.dram_reads + costs.dram_writes > 0 {
            match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.dram.access_traced(
                        self.cycle,
                        costs.dram_reads,
                        costs.dram_writes,
                        0,
                        wid,
                        sink,
                    );
                }
                None => {
                    self.dram.access(self.cycle, costs.dram_reads, costs.dram_writes, 0);
                }
            }
        }
        result
    }

    /// Execute `instr` for the selected threads of warp `w`.
    #[allow(clippy::too_many_lines)]
    fn execute(
        &mut self,
        w: u32,
        sel: &Selection,
        instr: Instr,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        let mut a = [0u64; MAX_LANES];
        let mut b = [0u64; MAX_LANES];
        let mut am = [NULL_META; MAX_LANES];
        let mut r = [0u64; MAX_LANES];
        let mut rm = [NULL_META; MAX_LANES];
        // Default next PC: sequential.
        let mut next_pc = [sel.pc.wrapping_add(4); MAX_LANES];
        let mut status_change: Option<ThreadStatus> = None;
        let mut write_rd: Option<Reg> = None;
        let mut rd_is_cap = false;

        macro_rules! active {
            () => {
                (0..lanes).filter(|i| mask >> i & 1 == 1)
            };
        }

        match instr {
            Instr::Lui { rd, imm } => {
                r[..lanes].fill(imm as u64);
                write_rd = Some(rd);
            }
            Instr::Auipc { rd, imm } => {
                let target = sel.pc.wrapping_add(imm);
                if cheri {
                    self.stats.count_cheri("AUIPCC", 1);
                    let cap = Self::cap_of(sel.pcc_meta, sel.pc as u64).set_addr(target);
                    let (m, d) = Self::cap_parts(cap);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    r[..lanes].fill(target as u64);
                }
                write_rd = Some(rd);
            }
            Instr::Jal { rd, off } => {
                if cheri {
                    self.stats.count_cheri("CJAL", 1);
                    let link = Self::cap_of(sel.pcc_meta, sel.pc as u64)
                        .set_addr(sel.pc.wrapping_add(4))
                        .seal_entry();
                    let (m, d) = Self::cap_parts(link);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    r[..lanes].fill(sel.pc.wrapping_add(4) as u64);
                }
                let target = sel.pc.wrapping_add(off as u32);
                for i in active!() {
                    next_pc[i] = target;
                }
                write_rd = Some(rd);
            }
            Instr::Jalr { rd, rs1, off } => {
                if cheri {
                    self.stats.count_cheri("CJALR", 1);
                    self.read_cap_operand(w, rs1, &mut a, &mut am, costs);
                    for i in active!() {
                        let cap = Self::cap_of(am[i], a[i]);
                        let target = (cap.addr().wrapping_add(off as u32)) & !1;
                        let cap = cap.unseal_sentry();
                        if let Err(e) = cap.check_fetch(target) {
                            return Err(self.trap(w, sel, i as u32, TrapCause::Cheri(e)).into());
                        }
                        let (m, _) = Self::cap_parts(cap);
                        self.warps[w as usize].set_pcc_meta(i, m);
                        next_pc[i] = target;
                    }
                    let link = Self::cap_of(sel.pcc_meta, sel.pc as u64)
                        .set_addr(sel.pc.wrapping_add(4))
                        .seal_entry();
                    let (m, d) = Self::cap_parts(link);
                    r[..lanes].fill(d);
                    rm[..lanes].fill(m);
                    rd_is_cap = true;
                } else {
                    self.read_data(w, rs1, &mut a, costs);
                    for i in active!() {
                        next_pc[i] = (a[i] as u32).wrapping_add(off as u32) & !1;
                    }
                    r[..lanes].fill(sel.pc.wrapping_add(4) as u64);
                }
                write_rd = Some(rd);
            }
            Instr::Branch { cond, rs1, rs2, off } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                let target = sel.pc.wrapping_add(off as u32);
                for i in active!() {
                    if exec::branch_taken(cond, a[i] as u32, b[i] as u32) {
                        next_pc[i] = target;
                    }
                }
            }
            Instr::Load { w: lw, rd, rs1, off } => {
                if cheri {
                    self.stats.count_cheri(
                        match lw {
                            LoadWidth::B => "CLB",
                            LoadWidth::H => "CLH",
                            LoadWidth::W => "CLW",
                            LoadWidth::Bu => "CLBU",
                            LoadWidth::Hu => "CLHU",
                        },
                        1,
                    );
                }
                self.do_load_store(
                    w,
                    sel,
                    rs1,
                    Some(rd),
                    Reg::ZERO,
                    off,
                    lw.bytes(),
                    false,
                    false,
                    lw,
                    costs,
                )?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::Store { w: sw, rs2, rs1, off } => {
                if cheri {
                    self.stats.count_cheri(
                        match sw {
                            simt_isa::StoreWidth::B => "CSB",
                            simt_isa::StoreWidth::H => "CSH",
                            simt_isa::StoreWidth::W => "CSW",
                        },
                        1,
                    );
                }
                self.do_load_store(
                    w,
                    sel,
                    rs1,
                    None,
                    rs2,
                    off,
                    sw.bytes(),
                    true,
                    false,
                    LoadWidth::W,
                    costs,
                )?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::Clc { cd, cs1, off } => {
                self.stats.count_cheri("CLC", 1);
                self.stats.stalls.cap_multi_flit += self.cfg.timing.cap_access_extra as u64;
                self.emit_stall(
                    w,
                    StallCause::CapMultiFlit,
                    self.cfg.timing.cap_access_extra as u64,
                );
                costs.extra_cycles += self.cfg.timing.cap_access_extra;
                self.do_load_store(
                    w,
                    sel,
                    cs1,
                    Some(cd),
                    Reg::ZERO,
                    off,
                    8,
                    false,
                    true,
                    LoadWidth::W,
                    costs,
                )?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::Csc { cs2, cs1, off } => {
                self.stats.count_cheri("CSC", 1);
                self.stats.stalls.cap_multi_flit += self.cfg.timing.cap_access_extra as u64;
                self.emit_stall(
                    w,
                    StallCause::CapMultiFlit,
                    self.cfg.timing.cap_access_extra as u64,
                );
                costs.extra_cycles += self.cfg.timing.cap_access_extra;
                // Single-read-port metadata SRF: CSC needs cs1 and cs2
                // metadata, costing an extra operand-fetch cycle in the
                // optimised configuration (Section 3.2).
                if let Some(o) = self.opts {
                    if o.compress_meta {
                        costs.extra_cycles += 1;
                        self.stats.stalls.csc_serialisation += 1;
                        self.emit_stall(w, StallCause::CscSerialisation, 1);
                    }
                }
                self.do_load_store(
                    w,
                    sel,
                    cs1,
                    None,
                    cs2,
                    off,
                    8,
                    true,
                    true,
                    LoadWidth::W,
                    costs,
                )?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                self.read_data(w, rs1, &mut a, costs);
                for i in active!() {
                    r[i] = exec::alu(op, a[i] as u32, imm as u32) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    r[i] = exec::alu(op, a[i] as u32, b[i] as u32) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    r[i] = exec::muldiv(op, a[i] as u32, b[i] as u32) as u64;
                }
                if matches!(
                    op,
                    simt_isa::MulOp::Div
                        | simt_isa::MulOp::Divu
                        | simt_isa::MulOp::Rem
                        | simt_isa::MulOp::Remu
                ) {
                    self.warps[w as usize].ready_at =
                        self.cycle + self.cfg.timing.div_latency as u64;
                }
                write_rd = Some(rd);
            }
            Instr::Amo { op, rd, rs1, rs2 } => {
                if cheri {
                    self.stats.count_cheri("CAMO", 1);
                }
                self.read_data(w, rs2, &mut b, costs);
                self.do_amo(w, sel, rs1, rd, op, &b, costs)?;
                return {
                    self.advance(w, sel, &next_pc, None);
                    Ok(())
                };
            }
            Instr::Fence => {}
            Instr::Ecall | Instr::Ebreak => {
                return Err(self
                    .trap(w, sel, sel.mask.trailing_zeros(), TrapCause::Environment)
                    .into());
            }
            Instr::Csrrs { rd, csr, .. } => {
                use simt_isa::csr as c;
                for i in active!() {
                    r[i] = match csr {
                        c::MHARTID => (w * self.cfg.lanes + i as u32) as u64,
                        c::SIMT_NUM_WARPS => self.cfg.warps as u64,
                        c::SIMT_LOG_LANES => self.cfg.lanes.trailing_zeros() as u64,
                        c::SIMT_NUM_THREADS => self.cfg.threads() as u64,
                        _ => 0,
                    };
                }
                write_rd = Some(rd);
            }
            Instr::FOp { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    r[i] = exec::fp(op, a[i] as u32, b[i] as u32) as u64;
                }
                if op == simt_isa::FpOp::Div {
                    self.sfu_suspend(w, sel);
                }
                write_rd = Some(rd);
            }
            Instr::FSqrt { rd, rs1 } => {
                self.read_data(w, rs1, &mut a, costs);
                for i in active!() {
                    r[i] = exec::fsqrt(a[i] as u32) as u64;
                }
                self.sfu_suspend(w, sel);
                write_rd = Some(rd);
            }
            Instr::FCmp { op, rd, rs1, rs2 } => {
                self.read_data(w, rs1, &mut a, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    r[i] = exec::fcmp(op, a[i] as u32, b[i] as u32) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::FCvtWS { rd, rs1, signed } => {
                self.read_data(w, rs1, &mut a, costs);
                for i in active!() {
                    r[i] = exec::fcvt_ws(a[i] as u32, signed) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::FCvtSW { rd, rs1, signed } => {
                self.read_data(w, rs1, &mut a, costs);
                for i in active!() {
                    r[i] = exec::fcvt_sw(a[i] as u32, signed) as u64;
                }
                write_rd = Some(rd);
            }
            Instr::CapUnary { op, rd, cs1 } => {
                self.exec_cap_unary(w, sel, op, rd, cs1, &mut r, &mut rm, &mut rd_is_cap, costs);
                write_rd = Some(rd);
            }
            Instr::CAndPerm { cd, cs1, rs2 } => {
                self.stats.count_cheri("CAndPerm", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).and_perm(Perms::from_bits(b[i] as u16));
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetFlags { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetFlags", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_flags(b[i] & 1 == 1);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetAddr { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetAddr", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_addr(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CIncOffset { cd, cs1, rs2 } => {
                self.stats.count_cheri("CIncOffset", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).inc_offset(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CIncOffsetImm { cd, cs1, imm } => {
                self.stats.count_cheri("CIncOffsetImm", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).inc_offset(imm as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetBounds { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetBounds", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let (cap, _) = Self::cap_of(am[i], a[i]).set_bounds(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetBoundsExact { cd, cs1, rs2 } => {
                self.stats.count_cheri("CSetBoundsExact", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                self.read_data(w, rs2, &mut b, costs);
                for i in active!() {
                    let cap = Self::cap_of(am[i], a[i]).set_bounds_exact(b[i] as u32);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSetBoundsImm { cd, cs1, imm } => {
                self.stats.count_cheri("CSetBoundsImm", 1);
                self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
                for i in active!() {
                    let (cap, _) = Self::cap_of(am[i], a[i]).set_bounds(imm);
                    (rm[i], r[i]) = Self::cap_parts(cap);
                }
                self.cap_sfu_suspend(w, sel);
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::CSpecialRw { cd, scr: s, .. } => {
                self.stats.count_cheri("CSpecialRW", 1);
                let cap = if s == scr::PCC {
                    Self::cap_of(sel.pcc_meta, sel.pc as u64)
                } else {
                    CapPipe::from_mem(self.scrs[s as usize])
                };
                let (m, d) = Self::cap_parts(cap);
                r[..lanes].fill(d);
                rm[..lanes].fill(m);
                rd_is_cap = true;
                write_rd = Some(cd);
            }
            Instr::Simt { op: SimtOp::Terminate } => {
                status_change = Some(ThreadStatus::Terminated);
            }
            Instr::Simt { op: SimtOp::Barrier } => {
                self.stats.barriers += 1;
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.emit(TraceEvent::Barrier { cycle: self.cycle, warp: w, release: false });
                }
                status_change = Some(ThreadStatus::AtBarrier);
            }
        }

        if let Some(rd) = write_rd {
            self.write_data(w, rd, &r, mask, costs);
            if cheri {
                if rd_is_cap {
                    self.write_meta(w, rd, &rm, mask, costs);
                } else {
                    self.write_meta_null(w, rd, mask, costs);
                }
            }
        }
        self.advance(w, sel, &next_pc, status_change);
        Ok(())
    }

    /// Commit PC updates and status changes for the selected threads.
    fn advance(
        &mut self,
        w: u32,
        sel: &Selection,
        next_pc: &[u32; MAX_LANES],
        status_change: Option<ThreadStatus>,
    ) {
        let warp = &mut self.warps[w as usize];
        for (i, &pc) in next_pc.iter().enumerate().take(self.cfg.lanes as usize) {
            if sel.mask >> i & 1 == 1 {
                warp.pc[i] = pc;
                if let Some(s) = status_change {
                    warp.status[i] = s;
                }
            }
        }
    }

    fn sfu_suspend(&mut self, w: u32, sel: &Selection) {
        self.stats.sfu_requests += 1;
        let lat = self.cfg.timing.sfu_latency as u64 + sel.mask.count_ones() as u64;
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.emit(TraceEvent::Sfu {
                cycle: self.cycle,
                warp: w,
                lanes: sel.mask.count_ones(),
                latency: lat,
            });
        }
        self.warps[w as usize].ready_at = self.cycle + lat;
    }

    /// Capability slow-path ops: SFU round-trip when offloaded (optimised
    /// configuration), single-cycle per-lane logic otherwise.
    fn cap_sfu_suspend(&mut self, w: u32, sel: &Selection) {
        if self.opts.map(|o| o.sfu_cap_ops).unwrap_or(false) {
            self.sfu_suspend(w, sel);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_cap_unary(
        &mut self,
        w: u32,
        sel: &Selection,
        op: UnaryCapOp,
        _rd: Reg,
        cs1: Reg,
        r: &mut [u64; MAX_LANES],
        rm: &mut [u64; MAX_LANES],
        rd_is_cap: &mut bool,
        costs: &mut Costs,
    ) {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let mut a = [0u64; MAX_LANES];
        let mut am = [NULL_META; MAX_LANES];
        self.read_cap_operand(w, cs1, &mut a, &mut am, costs);
        let name = match op {
            UnaryCapOp::GetTag => "CGetTag",
            UnaryCapOp::ClearTag => "CClearTag",
            UnaryCapOp::GetPerm => "CGetPerm",
            UnaryCapOp::GetBase => "CGetBase",
            UnaryCapOp::GetLen => "CGetLen",
            UnaryCapOp::GetType => "CGetType",
            UnaryCapOp::GetSealed => "CGetSealed",
            UnaryCapOp::GetFlags => "CGetFlags",
            UnaryCapOp::GetAddr => "CGetAddr",
            UnaryCapOp::Move => "CMove",
            UnaryCapOp::SealEntry => "CSealEntry",
            UnaryCapOp::Crrl => "CRRL",
            UnaryCapOp::Cram => "CRAM",
        };
        self.stats.count_cheri(name, 1);
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let cap = Self::cap_of(am[i], a[i]);
            match op {
                UnaryCapOp::GetTag => r[i] = cap.tag() as u64,
                UnaryCapOp::GetPerm => r[i] = cap.perms().bits() as u64,
                UnaryCapOp::GetBase => r[i] = cap.base() as u64,
                UnaryCapOp::GetLen => r[i] = cap.length().min(u32::MAX as u64),
                UnaryCapOp::GetType => r[i] = cap.otype() as u64,
                UnaryCapOp::GetSealed => r[i] = cap.is_sealed() as u64,
                UnaryCapOp::GetFlags => r[i] = cap.flag() as u64,
                UnaryCapOp::GetAddr => r[i] = cap.addr() as u64,
                UnaryCapOp::Crrl => {
                    r[i] = bounds::representable_length(a[i] as u32).min(u32::MAX as u64)
                }
                UnaryCapOp::Cram => r[i] = bounds::representable_alignment_mask(a[i] as u32) as u64,
                UnaryCapOp::ClearTag => {
                    (rm[i], r[i]) = Self::cap_parts(cap.clear_tag());
                    *rd_is_cap = true;
                }
                UnaryCapOp::Move => {
                    (rm[i], r[i]) = (am[i], a[i]);
                    *rd_is_cap = true;
                }
                UnaryCapOp::SealEntry => {
                    (rm[i], r[i]) = Self::cap_parts(cap.seal_entry());
                    *rd_is_cap = true;
                }
            }
        }
        if matches!(
            op,
            UnaryCapOp::GetBase | UnaryCapOp::GetLen | UnaryCapOp::Crrl | UnaryCapOp::Cram
        ) {
            self.cap_sfu_suspend(w, sel);
        }
    }

    // ---- Memory operations ----

    #[allow(clippy::too_many_arguments)]
    fn do_load_store(
        &mut self,
        w: u32,
        sel: &Selection,
        addr_reg: Reg,
        load_rd: Option<Reg>,
        store_rs: Reg,
        off: i32,
        bytes: u32,
        is_store: bool,
        is_cap: bool,
        lw: LoadWidth,
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        let mut addr = [0u64; MAX_LANES];
        let mut addr_m = [NULL_META; MAX_LANES];
        let mut val = [0u64; MAX_LANES];
        let mut val_m = [NULL_META; MAX_LANES];
        if cheri {
            self.read_cap_operand(w, addr_reg, &mut addr, &mut addr_m, costs);
        } else {
            self.read_data(w, addr_reg, &mut addr, costs);
        }
        if is_store {
            if is_cap && cheri {
                self.read_cap_operand(w, store_rs, &mut val, &mut val_m, costs);
            } else {
                self.read_data(w, store_rs, &mut val, costs);
            }
        }

        // Per-lane effective addresses + CHERI checks.
        let mut eas = [0u32; MAX_LANES];
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let ea = (addr[i] as u32).wrapping_add(off as u32);
            eas[i] = ea;
            if cheri {
                let cap = Self::cap_of(addr_m[i], addr[i]);
                if let Err(e) =
                    cap.check_access(ea, AccessWidth::from_bytes(bytes), is_store, is_cap)
                {
                    return Err(self.trap(w, sel, i as u32, TrapCause::Cheri(e)).into());
                }
            } else {
                if let Some(t) = &self.bounds_table {
                    match t.translate(ea, bytes) {
                        Ok(real) => eas[i] = real,
                        Err(c) => return Err(self.trap(w, sel, i as u32, c).into()),
                    }
                }
                if eas[i] % bytes != 0 {
                    return Err(self
                        .trap(w, sel, i as u32, TrapCause::Mem(MemFault::Misaligned(eas[i])))
                        .into());
                }
            }
        }

        // Functional access + request collection.
        let mut dram_reqs: Vec<LaneRequest> = Vec::new();
        let mut scratch_reqs: Vec<LaneRequest> = Vec::new();
        let mut results = [0u64; MAX_LANES];
        let mut results_m = [NULL_META; MAX_LANES];
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let ea = eas[i];
            let region = map::route(ea, self.cfg.dram_size);
            let req = LaneRequest { addr: ea, bytes };
            let res: Result<(), MemFault> = (|| {
                match (region, is_store, is_cap) {
                    (map::Region::Dram, false, false) => {
                        dram_reqs.push(req);
                        results[i] = sign_extend(self.mem.read(ea, bytes)?, lw) as u64;
                    }
                    (map::Region::Dram, true, false) => {
                        dram_reqs.push(req);
                        self.mem.write(ea, val[i] as u32, bytes)?;
                    }
                    (map::Region::Dram, false, true) => {
                        dram_reqs.push(req);
                        let c = self.mem.read_cap(ea)?;
                        results[i] = c.addr() as u64;
                        results_m[i] = c.meta() as u64 | ((c.tag() as u64) << 32);
                    }
                    (map::Region::Dram, true, true) => {
                        dram_reqs.push(req);
                        let c = CapMem::from_parts(
                            val_m[i] as u32,
                            val[i] as u32,
                            val_m[i] >> 32 & 1 == 1,
                        );
                        self.mem.write_cap(ea, c)?;
                    }
                    (map::Region::Scratch, false, false) => {
                        scratch_reqs.push(req);
                        results[i] = sign_extend(self.scratch.read(ea, bytes)?, lw) as u64;
                    }
                    (map::Region::Scratch, true, false) => {
                        scratch_reqs.push(req);
                        self.scratch.write(ea, val[i] as u32, bytes)?;
                    }
                    (map::Region::Scratch, false, true) => {
                        scratch_reqs.push(req);
                        let c = self.scratch.read_cap(ea)?;
                        results[i] = c.addr() as u64;
                        results_m[i] = c.meta() as u64 | ((c.tag() as u64) << 32);
                    }
                    (map::Region::Scratch, true, true) => {
                        scratch_reqs.push(req);
                        let c = CapMem::from_parts(
                            val_m[i] as u32,
                            val[i] as u32,
                            val_m[i] >> 32 & 1 == 1,
                        );
                        self.scratch.write_cap(ea, c)?;
                    }
                    _ => return Err(MemFault::Unmapped(ea)),
                }
                Ok(())
            })();
            if let Err(f) = res {
                return Err(self.trap(w, sel, i as u32, TrapCause::Mem(f)).into());
            }
        }

        // Timing.
        self.charge_memory(w, &dram_reqs, &scratch_reqs, is_store);

        // Writeback.
        if let Some(rd) = load_rd {
            self.write_data(w, rd, &results, mask, costs);
            if cheri {
                if is_cap {
                    self.write_meta(w, rd, &results_m, mask, costs);
                } else {
                    self.write_meta_null(w, rd, mask, costs);
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn do_amo(
        &mut self,
        w: u32,
        sel: &Selection,
        addr_reg: Reg,
        rd: Reg,
        op: simt_isa::AmoOp,
        operands: &[u64; MAX_LANES],
        costs: &mut Costs,
    ) -> Result<(), RunError> {
        let lanes = self.cfg.lanes as usize;
        let mask = sel.mask;
        let cheri = self.cheri();
        let mut addr = [0u64; MAX_LANES];
        let mut addr_m = [NULL_META; MAX_LANES];
        if cheri {
            self.read_cap_operand(w, addr_reg, &mut addr, &mut addr_m, costs);
        } else {
            self.read_data(w, addr_reg, &mut addr, costs);
        }
        let mut dram_reqs: Vec<LaneRequest> = Vec::new();
        let mut scratch_reqs: Vec<LaneRequest> = Vec::new();
        let mut results = [0u64; MAX_LANES];
        // Lanes perform their RMW in lane order, which defines the intra-warp
        // atomicity order.
        for i in (0..lanes).filter(|i| mask >> i & 1 == 1) {
            let mut ea = addr[i] as u32;
            if cheri {
                let cap = Self::cap_of(addr_m[i], addr[i]);
                // An AMO both loads and stores.
                if let Err(e) = cap
                    .check_access(ea, AccessWidth::Word, false, false)
                    .and_then(|_| cap.check_access(ea, AccessWidth::Word, true, false))
                {
                    return Err(self.trap(w, sel, i as u32, TrapCause::Cheri(e)).into());
                }
            } else if let Some(t) = &self.bounds_table {
                match t.translate(ea, 4) {
                    Ok(real) => ea = real,
                    Err(c) => return Err(self.trap(w, sel, i as u32, c).into()),
                }
            }
            let req = LaneRequest { addr: ea, bytes: 4 };
            let region = map::route(ea, self.cfg.dram_size);
            let res: Result<(), MemFault> = (|| {
                match region {
                    map::Region::Dram => {
                        dram_reqs.push(req);
                        let old = self.mem.read(ea, 4)?;
                        self.mem.write(ea, exec::amo(op, old, operands[i] as u32), 4)?;
                        results[i] = old as u64;
                    }
                    map::Region::Scratch => {
                        scratch_reqs.push(req);
                        let old = self.scratch.read(ea, 4)?;
                        self.scratch.write(ea, exec::amo(op, old, operands[i] as u32), 4)?;
                        results[i] = old as u64;
                    }
                    _ => return Err(MemFault::Unmapped(ea)),
                }
                Ok(())
            })();
            if let Err(f) = res {
                return Err(self.trap(w, sel, i as u32, TrapCause::Mem(f)).into());
            }
        }
        // An atomic is a read + write transaction per block.
        self.charge_memory(w, &dram_reqs, &scratch_reqs, true);
        if !dram_reqs.is_empty() || !scratch_reqs.is_empty() {
            // Serialise conflicting atomics: lanes hitting the same word pay
            // one cycle each (approximating SIMTight's atomic unit).
            let mut addrs: Vec<u32> =
                dram_reqs.iter().chain(&scratch_reqs).map(|r| r.addr).collect();
            let total = addrs.len();
            addrs.sort_unstable();
            addrs.dedup();
            let conflicts = (total - addrs.len()) as u64;
            self.warps[w as usize].ready_at =
                self.warps[w as usize].ready_at.max(self.cycle + conflicts);
        }
        self.write_data(w, rd, &results, mask, costs);
        if cheri {
            self.write_meta_null(w, rd, mask, costs);
        }
        Ok(())
    }

    /// Charge the timing/traffic of one warp-wide memory access and suspend
    /// the warp until the data returns.
    fn charge_memory(
        &mut self,
        w: u32,
        dram_reqs: &[LaneRequest],
        scratch_reqs: &[LaneRequest],
        is_store: bool,
    ) {
        let mut done_at = self.cycle;
        // Compressed stack cache (Section 4.4 proof of concept): a
        // warp-uniform or affine access pattern — the shape of register
        // spill traffic — is served from a small compressed cache instead
        // of DRAM.
        let in_stack = |r: &LaneRequest| {
            self.stack_region.map(|(b, sz)| r.addr >= b && r.addr < b + sz).unwrap_or(false)
        };
        let dram_reqs: &[LaneRequest] = if self.cfg.stack_cache
            && dram_reqs.len() > 1
            && dram_reqs.iter().all(in_stack)
            && is_affine(dram_reqs)
        {
            self.stats.stack_cache_hits += 1;
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.emit(TraceEvent::Mem {
                    cycle: self.cycle,
                    warp: w,
                    space: MemSpace::StackCache,
                    is_store,
                    lanes: dram_reqs.len() as u32,
                    transactions: 0,
                    uniform: dram_reqs.iter().all(|r| r.addr == dram_reqs[0].addr),
                    conflict_cycles: 0,
                });
            }
            done_at = done_at.max(self.cycle + 2);
            &[]
        } else {
            dram_reqs
        };
        if !dram_reqs.is_empty() {
            let co = match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.coalescer.coalesce_traced(dram_reqs, self.cycle, w, is_store, sink)
                }
                None => self.coalescer.coalesce(dram_reqs),
            };
            // Tag controller: one lookup per unique 64-byte block.
            let mut blocks: Vec<u32> = dram_reqs.iter().map(|r| r.addr / 64).collect();
            blocks.sort_unstable();
            blocks.dedup();
            let mut tag_txns = 0;
            for b in &blocks {
                tag_txns += match self.sink.as_deref_mut() {
                    Some(sink) => self.tags.on_access_traced(b * 64, is_store, self.cycle, w, sink),
                    None => self.tags.on_access(b * 64, is_store),
                };
            }
            let (reads, writes) =
                if is_store { (0, co.transactions) } else { (co.transactions, 0) };
            done_at = done_at.max(match self.sink.as_deref_mut() {
                Some(sink) => self.dram.access_traced(self.cycle, reads, writes, tag_txns, w, sink),
                None => self.dram.access(self.cycle, reads, writes, tag_txns),
            });
        }
        if !scratch_reqs.is_empty() {
            let cycles = match self.sink.as_deref_mut() {
                Some(sink) => {
                    self.scratch.warp_cycles_traced(scratch_reqs, self.cycle, w, is_store, sink)
                }
                None => self.scratch.warp_cycles(scratch_reqs),
            };
            done_at = done_at.max(self.cycle + (self.cfg.timing.scratch_latency + cycles) as u64);
        }
        let warp = &mut self.warps[w as usize];
        warp.ready_at = warp.ready_at.max(done_at);
    }

    /// Read back the statistics of the last completed run.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }
}

/// Do the lane addresses form a uniform or affine sequence?
fn is_affine(reqs: &[LaneRequest]) -> bool {
    if reqs.len() < 2 {
        return true;
    }
    let stride = reqs[1].addr.wrapping_sub(reqs[0].addr);
    reqs.windows(2).all(|w| w[1].addr.wrapping_sub(w[0].addr) == stride)
}

fn sign_extend(v: u32, lw: LoadWidth) -> u32 {
    match lw {
        LoadWidth::B => v as u8 as i8 as i32 as u32,
        LoadWidth::H => v as u16 as i16 as i32 as u32,
        _ => v,
    }
}
