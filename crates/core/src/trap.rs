//! Traps and run failures.

use cheri_cap::CapException;
use core::fmt;
use simt_mem::MemFault;

/// Why a thread trapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapCause {
    /// A CHERI check failed (the whole point of the exercise).
    Cheri(CapException),
    /// The memory subsystem faulted (unmapped/misaligned).
    Mem(MemFault),
    /// An undecodable or unsupported instruction was fetched.
    IllegalInstr(u32),
    /// `ecall`/`ebreak` executed (unsupported in kernels).
    Environment,
    /// Instruction fetch left the program.
    FetchOutOfRange(u32),
    /// A GPUShield bounds-table check failed (comparator mode only).
    RegionBound(u32),
}

impl TrapCause {
    /// A stable machine-readable name for trace events and coverage tables
    /// (e.g. `cheri:tag`, `mem:unmapped`, `fetch_oob`).
    pub fn name(&self) -> &'static str {
        match self {
            TrapCause::Cheri(e) => match e {
                CapException::TagViolation => "cheri:tag",
                CapException::SealViolation => "cheri:seal",
                CapException::BoundsViolation => "cheri:bounds",
                CapException::PermitLoadViolation => "cheri:permit_load",
                CapException::PermitStoreViolation => "cheri:permit_store",
                CapException::PermitExecuteViolation => "cheri:permit_execute",
                CapException::PermitLoadCapViolation => "cheri:permit_load_cap",
                CapException::PermitStoreCapViolation => "cheri:permit_store_cap",
                CapException::AlignmentViolation => "cheri:alignment",
                CapException::InexactBounds => "cheri:inexact_bounds",
            },
            TrapCause::Mem(MemFault::Unmapped(_)) => "mem:unmapped",
            TrapCause::Mem(MemFault::Misaligned(_)) => "mem:misaligned",
            TrapCause::Mem(MemFault::BadWidth(_)) => "mem:bad_width",
            TrapCause::IllegalInstr(_) => "illegal_instr",
            TrapCause::Environment => "environment",
            TrapCause::FetchOutOfRange(_) => "fetch_oob",
            TrapCause::RegionBound(_) => "region_bound",
        }
    }
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Cheri(e) => write!(f, "CHERI fault: {e}"),
            TrapCause::Mem(e) => write!(f, "memory fault: {e}"),
            TrapCause::IllegalInstr(w) => write!(f, "illegal instruction {w:#010x}"),
            TrapCause::Environment => write!(f, "environment call"),
            TrapCause::FetchOutOfRange(pc) => write!(f, "fetch out of range at {pc:#010x}"),
            TrapCause::RegionBound(a) => write!(f, "bounds-table violation at {a:#010x}"),
        }
    }
}

/// One lane's fault within a warp-precise trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneFault {
    /// Lane index within the warp.
    pub lane: u32,
    /// Why this lane faulted.
    pub cause: TrapCause,
}

/// A warp-precise trap.
///
/// The memory stage checks *every* active lane before committing any of
/// them, so a trap carries the full set of faulting lanes: `lane_mask` is
/// the bitmask of faulting lanes and `lane_causes` their individual causes.
/// `lane`/`cause` summarise the leader (lowest-numbered) faulting lane for
/// display and for call sites that only care about the first fault.
/// Warp-wide causes (fetch, illegal instruction, environment call) attribute
/// the whole active mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// Faulting warp.
    pub warp: u32,
    /// Leader (lowest-numbered) faulting lane within the warp.
    pub lane: u32,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// Cause of the leader lane's fault.
    pub cause: TrapCause,
    /// Bitmask of all faulting lanes.
    pub lane_mask: u64,
    /// Per-lane causes, ordered by ascending lane index.
    pub lane_causes: Vec<LaneFault>,
}

impl Trap {
    /// A trap with a single faulting lane (the common case outside the
    /// memory stage).
    pub fn single(warp: u32, lane: u32, pc: u32, cause: TrapCause) -> Self {
        Trap {
            warp,
            lane,
            pc,
            cause,
            lane_mask: 1u64 << lane,
            lane_causes: vec![LaneFault { lane, cause }],
        }
    }

    /// A warp-wide trap: every lane in `mask` faulted for the same reason
    /// (fetch/decode-stage causes that precede per-lane execution).
    pub fn warp_wide(warp: u32, mask: u64, pc: u32, cause: TrapCause) -> Self {
        let lane = mask.trailing_zeros().min(63);
        Trap {
            warp,
            lane,
            pc,
            cause,
            lane_mask: mask,
            lane_causes: (0..64)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| LaneFault { lane: i, cause })
                .collect(),
        }
    }

    /// Build a trap from the per-lane faults collected by a check phase.
    /// Returns `None` if no lane faulted. Faults must be in ascending lane
    /// order (the natural order of a lane loop).
    pub fn from_lane_faults(warp: u32, pc: u32, faults: Vec<LaneFault>) -> Option<Self> {
        let first = *faults.first()?;
        let mask = faults.iter().fold(0u64, |m, f| m | 1u64 << f.lane);
        Some(Trap {
            warp,
            lane: first.lane,
            pc,
            cause: first.cause,
            lane_mask: mask,
            lane_causes: faults,
        })
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trap in warp {} lane {} at pc {:#010x}: {}",
            self.warp, self.lane, self.pc, self.cause
        )?;
        if self.lane_causes.len() > 1 {
            write!(
                f,
                " (+{} more faulting lane(s), mask {:#x})",
                self.lane_causes.len() - 1,
                self.lane_mask
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for Trap {}

/// Failure modes of a kernel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A thread trapped.
    Trap(Trap),
    /// The watchdog expired (a runaway kernel).
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
    /// Barrier deadlock: every live warp is parked at a barrier, but no
    /// block can release — e.g. a barrier reached by only part of a block
    /// whose other warps already terminated. Detected the moment progress
    /// becomes impossible, not when the watchdog expires.
    Deadlock {
        /// Cycles simulated when the deadlock was detected.
        cycles: u64,
        /// Warps parked at a barrier at that point.
        blocked_warps: u32,
    },
    /// The scheduler issued a warp with no selectable thread — an internal
    /// pipeline invariant violation, reported as a typed error instead of
    /// aborting the process.
    SchedulerInvariant {
        /// The warp the scheduler tried to issue.
        warp: u32,
        /// Cycles simulated when the violation was detected.
        cycles: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Trap(t) => t.fmt(f),
            RunError::Timeout { cycles } => write!(f, "watchdog timeout after {cycles} cycles"),
            RunError::Deadlock { cycles, blocked_warps } => write!(
                f,
                "barrier deadlock after {cycles} cycles ({blocked_warps} warp(s) parked at a barrier that can never release)"
            ),
            RunError::SchedulerInvariant { warp, cycles } => write!(
                f,
                "scheduler invariant violation: warp {warp} issued with no selectable thread at cycle {cycles}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Trap> for RunError {
    fn from(t: Trap) -> Self {
        RunError::Trap(t)
    }
}
