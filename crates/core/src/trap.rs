//! Traps and run failures.

use cheri_cap::CapException;
use core::fmt;
use simt_mem::MemFault;

/// Why a thread trapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapCause {
    /// A CHERI check failed (the whole point of the exercise).
    Cheri(CapException),
    /// The memory subsystem faulted (unmapped/misaligned).
    Mem(MemFault),
    /// An undecodable or unsupported instruction was fetched.
    IllegalInstr(u32),
    /// `ecall`/`ebreak` executed (unsupported in kernels).
    Environment,
    /// Instruction fetch left the program.
    FetchOutOfRange(u32),
    /// A GPUShield bounds-table check failed (comparator mode only).
    RegionBound(u32),
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Cheri(e) => write!(f, "CHERI fault: {e}"),
            TrapCause::Mem(e) => write!(f, "memory fault: {e}"),
            TrapCause::IllegalInstr(w) => write!(f, "illegal instruction {w:#010x}"),
            TrapCause::Environment => write!(f, "environment call"),
            TrapCause::FetchOutOfRange(pc) => write!(f, "fetch out of range at {pc:#010x}"),
            TrapCause::RegionBound(a) => write!(f, "bounds-table violation at {a:#010x}"),
        }
    }
}

/// A trap, attributed to the first faulting thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// Faulting warp.
    pub warp: u32,
    /// Faulting lane within the warp.
    pub lane: u32,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// Cause.
    pub cause: TrapCause,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trap in warp {} lane {} at pc {:#010x}: {}",
            self.warp, self.lane, self.pc, self.cause
        )
    }
}

impl std::error::Error for Trap {}

/// Failure modes of a kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// A thread trapped.
    Trap(Trap),
    /// The watchdog expired (a runaway kernel).
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
    /// Barrier deadlock: every live warp is parked at a barrier, but no
    /// block can release — e.g. a barrier reached by only part of a block
    /// whose other warps already terminated. Detected the moment progress
    /// becomes impossible, not when the watchdog expires.
    Deadlock {
        /// Cycles simulated when the deadlock was detected.
        cycles: u64,
        /// Warps parked at a barrier at that point.
        blocked_warps: u32,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Trap(t) => t.fmt(f),
            RunError::Timeout { cycles } => write!(f, "watchdog timeout after {cycles} cycles"),
            RunError::Deadlock { cycles, blocked_warps } => write!(
                f,
                "barrier deadlock after {cycles} cycles ({blocked_warps} warp(s) parked at a barrier that can never release)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Trap> for RunError {
    fn from(t: Trap) -> Self {
        RunError::Trap(t)
    }
}
