//! Warp state and active-thread selection.
//!
//! Each thread has its own program counter (and, under CHERI, its own PCC
//! metadata). The Active Thread Selection stage picks the subset of threads
//! that execute together: those sharing the minimum PC (a convergence-optimal
//! policy for the structured code our compiler emits, standing in for
//! SIMTight's nesting-level scheme) — and, under CHERI without the static-PC-
//! metadata restriction, sharing the same PCC metadata as well.

use simt_regfile::MAX_LANES;

/// Per-thread execution status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Runnable.
    Active,
    /// Waiting at a block barrier.
    AtBarrier,
    /// Finished the kernel.
    Terminated,
    /// Permanently disabled after a suppressed fault
    /// (`TrapPolicy::MaskLanes`). Like `Terminated`, the thread never
    /// issues again, but the distinct status keeps the suppression visible
    /// in warp state.
    Faulted,
}

/// State of one warp.
///
/// The per-thread state lives in fixed `MAX_LANES`-sized arrays (only the
/// first [`Warp::lanes`] entries are meaningful) so the scheduler's hot
/// scans walk contiguous memory instead of chasing per-warp heap vectors.
/// `repr(C)` pins the declaration order: the scheduler-hot scalars come
/// first, so the pick scan touches one cache line per warp instead of
/// straddling the kilobyte of lane arrays.
#[derive(Debug, Clone)]
#[repr(C)]
pub struct Warp {
    /// Cycle at which this warp may issue again.
    pub ready_at: u64,
    /// Cached count of [`ThreadStatus::Active`] threads. Maintained by
    /// [`Warp::set_status`]; the scheduler's O(1) pickability checks read it
    /// instead of rescanning the status vector every step. Code that writes
    /// `status` directly (tests of the scan-based queries) leaves it stale,
    /// so the scan-based methods below never consult it.
    pub(crate) runnable: u32,
    /// Cached count of [`ThreadStatus::AtBarrier`] threads (same contract
    /// as `runnable`).
    pub(crate) parked: u32,
    /// Number of live lanes.
    lanes: u32,
    /// Static-PC-metadata restriction: all threads share `pcc_meta[0]`.
    static_pcc: bool,
    /// Memoised answer of the next [`Warp::select`] call, set by the
    /// uniform-advance commit path when it can prove the outcome (every
    /// runnable thread stepped to the same PC with statuses and PCC
    /// metadata untouched) and cleared by every other state mutation.
    /// Like the cached counts, direct `status`/`pc` writes bypass the
    /// maintenance, but such writers never see a stale value: the cache
    /// only becomes `Some` via [`crate::Sm`]'s commit path.
    pub(crate) cached_sel: Option<Selection>,
    /// Per-thread program counters (`[..lanes]` live).
    pub pc: [u32; MAX_LANES],
    /// Per-thread PCC metadata (33-bit: tag in bit 32). Under the
    /// static-PC-metadata restriction only entry 0 is used.
    pub pcc_meta: [u64; MAX_LANES],
    /// Per-thread status (`[..lanes]` live; the tail is `Terminated`).
    pub status: [ThreadStatus; MAX_LANES],
}

/// The outcome of active-thread selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Lane mask of the selected threads.
    pub mask: u64,
    /// Their common PC.
    pub pc: u32,
    /// Their common PCC metadata.
    pub pcc_meta: u64,
}

impl Warp {
    /// A warp of `lanes` threads, all starting at `pc` with the given PCC
    /// metadata (`static_pcc` collapses the metadata to one copy).
    pub fn new(lanes: u32, pc: u32, pcc_meta: u64, static_pcc: bool) -> Self {
        let mut status = [ThreadStatus::Terminated; MAX_LANES];
        status[..lanes as usize].fill(ThreadStatus::Active);
        Warp {
            pc: [pc; MAX_LANES],
            pcc_meta: [pcc_meta; MAX_LANES],
            status,
            lanes,
            static_pcc,
            ready_at: 0,
            runnable: lanes,
            parked: 0,
            cached_sel: None,
        }
    }

    /// Transition thread `lane` to status `s`, keeping the cached
    /// `runnable`/`parked` counts exact. All status mutations on the issue
    /// path go through here so the scheduler can trust the counts.
    #[inline]
    pub(crate) fn set_status(&mut self, lane: usize, s: ThreadStatus) {
        self.cached_sel = None;
        let old = self.status[lane];
        if old == s {
            return;
        }
        match old {
            ThreadStatus::Active => self.runnable -= 1,
            ThreadStatus::AtBarrier => self.parked -= 1,
            _ => {}
        }
        match s {
            ThreadStatus::Active => self.runnable += 1,
            ThreadStatus::AtBarrier => self.parked += 1,
            _ => {}
        }
        self.status[lane] = s;
    }

    /// O(1) equivalent of [`Warp::done`] via the cached counts. Valid only
    /// when every status mutation went through [`Warp::set_status`].
    #[inline]
    pub(crate) fn done_fast(&self) -> bool {
        debug_assert_eq!(self.runnable == 0 && self.parked == 0, self.done());
        self.runnable == 0 && self.parked == 0
    }

    /// O(1) equivalent of [`Warp::blocked_at_barrier`] via the cached counts.
    #[inline]
    pub(crate) fn blocked_at_barrier_fast(&self) -> bool {
        debug_assert_eq!(self.runnable == 0 && self.parked > 0, self.blocked_at_barrier());
        self.runnable == 0 && self.parked > 0
    }

    /// Is every thread finished (terminated, or faulted under
    /// `TrapPolicy::MaskLanes`)?
    pub fn done(&self) -> bool {
        self.status[..self.lanes as usize]
            .iter()
            .all(|&s| matches!(s, ThreadStatus::Terminated | ThreadStatus::Faulted))
    }

    /// Is the warp blocked on a barrier (no runnable thread, at least one
    /// waiting)?
    pub fn blocked_at_barrier(&self) -> bool {
        !self.done()
            && self.status[..self.lanes as usize].iter().all(|&s| s != ThreadStatus::Active)
    }

    /// Number of live lanes.
    #[inline]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The PCC metadata of thread `lane`.
    #[inline]
    pub fn pcc_meta_of(&self, lane: usize) -> u64 {
        if self.static_pcc {
            self.pcc_meta[0]
        } else {
            self.pcc_meta[lane]
        }
    }

    /// Set the PCC metadata of thread `lane` (a no-op redundancy under the
    /// static restriction, where all threads share one copy).
    pub fn set_pcc_meta(&mut self, lane: usize, meta: u64) {
        self.cached_sel = None;
        if self.static_pcc {
            self.pcc_meta[0] = meta;
        } else {
            self.pcc_meta[lane] = meta;
        }
    }

    /// Active-thread selection: the runnable threads at the minimum PC whose
    /// PCC metadata matches the first such thread's (metadata comparison is
    /// skipped under the static-PC-metadata restriction, letting the
    /// hardware drop `lanes × 33` comparators).
    pub fn select(&self) -> Option<Selection> {
        if let Some(s) = self.cached_sel {
            debug_assert_eq!(self.select_scan(), Some(s));
            return Some(s);
        }
        self.select_scan()
    }

    /// The full selection scan behind [`Warp::select`], bypassing the
    /// memoised answer.
    fn select_scan(&self) -> Option<Selection> {
        // The leader is the lowest-numbered runnable thread at the minimum
        // PC; finding the lane (not just the PC) in the first pass makes
        // "nonempty selection ⇒ leader metadata" hold by construction.
        let lanes = self.lanes as usize;
        let mut leader: Option<(usize, u32)> = None;
        for (i, &s) in self.status[..lanes].iter().enumerate() {
            if s == ThreadStatus::Active {
                match leader {
                    Some((_, pc)) if pc <= self.pc[i] => {}
                    _ => leader = Some((i, self.pc[i])),
                }
            }
        }
        let (leader_lane, min_pc) = leader?;
        let leader_meta = self.pcc_meta_of(leader_lane);
        let static_pcc = self.static_pcc;
        let mut mask = 0u64;
        for i in 0..lanes {
            if self.status[i] == ThreadStatus::Active
                && self.pc[i] == min_pc
                && (static_pcc || self.pcc_meta_of(i) == leader_meta)
            {
                mask |= 1 << i;
            }
            // Min-PC threads with differing PCC metadata defer to a later issue.
        }
        Some(Selection { mask, pc: min_pc, pcc_meta: leader_meta })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_pc_selection_reconverges() {
        let mut w = Warp::new(4, 0x100, 0, true);
        // Two threads took a forward branch to 0x120, two fell through.
        w.pc[1] = 0x120;
        w.pc[3] = 0x120;
        let s = w.select().unwrap();
        assert_eq!(s.pc, 0x100);
        assert_eq!(s.mask, 0b0101);
        // After the laggards advance to the join point, all reconverge.
        w.pc[0] = 0x120;
        w.pc[2] = 0x120;
        let s = w.select().unwrap();
        assert_eq!(s.mask, 0b1111);
    }

    #[test]
    fn pcc_metadata_divergence_splits_selection() {
        let mut w = Warp::new(4, 0x100, 7, false);
        w.set_pcc_meta(2, 9);
        let s = w.select().unwrap();
        assert_eq!(s.mask, 0b1011, "thread 2 has different PCC metadata");
        assert_eq!(s.pcc_meta, 7);
    }

    #[test]
    fn static_pcc_ignores_metadata() {
        let mut w = Warp::new(4, 0x100, 7, true);
        w.set_pcc_meta(2, 9); // updates the single shared copy
        let s = w.select().unwrap();
        assert_eq!(s.mask, 0b1111);
    }

    #[test]
    fn barrier_and_termination() {
        let mut w = Warp::new(2, 0, 0, true);
        w.status[0] = ThreadStatus::AtBarrier;
        assert!(!w.blocked_at_barrier());
        let s = w.select().unwrap();
        assert_eq!(s.mask, 0b10);
        w.status[1] = ThreadStatus::Terminated;
        assert!(w.blocked_at_barrier());
        assert!(w.select().is_none());
        w.status[0] = ThreadStatus::Terminated;
        assert!(w.done());
    }

    #[test]
    fn select_handles_empty_and_finished_warps() {
        // All-terminated warp: select() must return None, not panic.
        let mut w = Warp::new(4, 0x100, 0, false);
        for s in &mut w.status {
            *s = ThreadStatus::Terminated;
        }
        assert!(w.select().is_none());
        assert!(w.done());
        // Mixed faulted/terminated: also finished, also None.
        w.status[1] = ThreadStatus::Faulted;
        assert!(w.select().is_none());
        assert!(w.done());
        assert!(!w.blocked_at_barrier());
        // Faulted lanes never appear in a selection mask.
        w.status[3] = ThreadStatus::Active;
        let s = w.select().unwrap();
        assert_eq!(s.mask, 0b1000);
    }
}
