//! Per-instruction semantics of the Xcheri extension (Figure 4), checked
//! through the SM: each test runs a tiny program and inspects the values it
//! stores back to memory.

use cheri_cap::{bounds, CapPipe, Perms};
use cheri_simt::{CheriMode, CheriOpts, RunError, Sm, SmConfig, TrapCause};
use simt_isa::asm::Assembler;
use simt_isa::{scr, AluOp, Instr, LoadWidth, Reg, StoreWidth, UnaryCapOp};
use simt_mem::map;

const MAX: u64 = 1_000_000;
const OUT: u32 = map::DRAM_BASE + 0x200;

/// Run `prog` on a 1-warp CHERI SM with `cap` in SCR ARG and an almighty
/// data capability in SCR GLOBAL; returns the SM for result inspection.
fn run_with(prog: Vec<u32>, cap: CapPipe, opts: CheriOpts) -> Result<Sm, RunError> {
    let mut sm = Sm::new(SmConfig::with_geometry(1, 4, CheriMode::On(opts)));
    sm.load_program(&prog);
    sm.set_scr(scr::ARG, cap.to_mem());
    sm.set_scr(scr::GLOBAL, CapPipe::almighty().and_perm(Perms::data()).to_mem());
    sm.reset();
    sm.run(MAX)?;
    Ok(sm)
}

/// Emit: out[slot] = value-of(rd) using the GLOBAL capability.
fn store_out(a: &mut Assembler, rs: Reg, slot: i32) {
    a.push(Instr::CSpecialRw { cd: Reg::T0, cs1: Reg::ZERO, scr: scr::GLOBAL });
    let t = Reg::T1;
    a.li(t, OUT);
    a.push(Instr::CSetAddr { cd: Reg::T0, cs1: Reg::T0, rs2: t });
    a.push(Instr::Store { w: StoreWidth::W, rs2: rs, rs1: Reg::T0, off: slot * 4 });
}

fn arg_cap() -> CapPipe {
    CapPipe::almighty().and_perm(Perms::data()).set_addr(map::DRAM_BASE + 0x1000).set_bounds(256).0
}

#[test]
fn inspection_instructions_read_the_right_fields() {
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    let ops = [
        UnaryCapOp::GetTag,
        UnaryCapOp::GetAddr,
        UnaryCapOp::GetBase,
        UnaryCapOp::GetLen,
        UnaryCapOp::GetPerm,
        UnaryCapOp::GetType,
        UnaryCapOp::GetSealed,
        UnaryCapOp::GetFlags,
    ];
    for (i, op) in ops.iter().enumerate() {
        a.push(Instr::CapUnary { op: *op, rd: Reg::A1, cs1: Reg::A0 });
        store_out(&mut a, Reg::A1, i as i32);
    }
    a.terminate();
    let cap = arg_cap();
    let sm = run_with(a.assemble(), cap, CheriOpts::optimised()).unwrap();
    let word = |slot: u32| sm.memory().read(OUT + slot * 4, 4).unwrap();
    assert_eq!(word(0), 1, "CGetTag");
    assert_eq!(word(1), map::DRAM_BASE + 0x1000, "CGetAddr");
    assert_eq!(word(2), cap.base(), "CGetBase");
    assert_eq!(word(3), cap.length() as u32, "CGetLen");
    assert_eq!(word(4), Perms::data().bits() as u32, "CGetPerm");
    assert_eq!(word(5), 0, "CGetType (unsealed)");
    assert_eq!(word(6), 0, "CGetSealed");
    assert_eq!(word(7), 0, "CGetFlags");
}

#[test]
fn crrl_and_cram_match_the_codec() {
    let mut a = Assembler::new();
    for (i, len) in [100u32, 4096, 100_000].into_iter().enumerate() {
        a.li(Reg::A0, len);
        a.push(Instr::CapUnary { op: UnaryCapOp::Crrl, rd: Reg::A1, cs1: Reg::A0 });
        store_out(&mut a, Reg::A1, 2 * i as i32);
        a.push(Instr::CapUnary { op: UnaryCapOp::Cram, rd: Reg::A1, cs1: Reg::A0 });
        store_out(&mut a, Reg::A1, 2 * i as i32 + 1);
    }
    a.terminate();
    let sm = run_with(a.assemble(), arg_cap(), CheriOpts::optimised()).unwrap();
    for (i, len) in [100u32, 4096, 100_000].into_iter().enumerate() {
        let got_rl = sm.memory().read(OUT + 8 * i as u32, 4).unwrap();
        let got_mask = sm.memory().read(OUT + 8 * i as u32 + 4, 4).unwrap();
        assert_eq!(got_rl as u64, bounds::representable_length(len), "CRRL({len})");
        assert_eq!(got_mask, bounds::representable_alignment_mask(len), "CRAM({len})");
    }
}

#[test]
fn candperm_removes_rights_monotonically() {
    // Drop STORE from the arg capability; a subsequent store must trap.
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.li(Reg::A1, (Perms::data() & !Perms::STORE).bits() as u32);
    a.push(Instr::CAndPerm { cd: Reg::A2, cs1: Reg::A0, rs2: Reg::A1 });
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A3, rs1: Reg::A2, off: 0 }); // load ok
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A3, rs1: Reg::A2, off: 0 }); // trap
    a.terminate();
    match run_with(a.assemble(), arg_cap(), CheriOpts::optimised()) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(cheri_cap::CapException::PermitStoreViolation))
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn csetflags_and_cmove_roundtrip() {
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A1, rs1: Reg::ZERO, imm: 1 });
    a.push(Instr::CSetFlags { cd: Reg::A2, cs1: Reg::A0, rs2: Reg::A1 });
    a.push(Instr::CapUnary { op: UnaryCapOp::Move, rd: Reg::A3, cs1: Reg::A2 });
    a.push(Instr::CapUnary { op: UnaryCapOp::GetFlags, rd: Reg::A4, cs1: Reg::A3 });
    store_out(&mut a, Reg::A4, 0);
    // CMove preserves the tag too.
    a.push(Instr::CapUnary { op: UnaryCapOp::GetTag, rd: Reg::A4, cs1: Reg::A3 });
    store_out(&mut a, Reg::A4, 1);
    a.terminate();
    let sm = run_with(a.assemble(), arg_cap(), CheriOpts::optimised()).unwrap();
    assert_eq!(sm.memory().read(OUT, 4).unwrap(), 1, "flag set and preserved by CMove");
    assert_eq!(sm.memory().read(OUT + 4, 4).unwrap(), 1, "tag preserved by CMove");
}

#[test]
fn ccleartag_kills_the_capability() {
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.push(Instr::CapUnary { op: UnaryCapOp::ClearTag, rd: Reg::A1, cs1: Reg::A0 });
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A2, rs1: Reg::A1, off: 0 });
    a.terminate();
    match run_with(a.assemble(), arg_cap(), CheriOpts::optimised()) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(cheri_cap::CapException::TagViolation))
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn csetaddr_out_of_representable_range_detags() {
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.li(Reg::A1, 0x4000_0000); // far outside the 256-byte object
    a.push(Instr::CSetAddr { cd: Reg::A2, cs1: Reg::A0, rs2: Reg::A1 });
    a.push(Instr::CapUnary { op: UnaryCapOp::GetTag, rd: Reg::A3, cs1: Reg::A2 });
    store_out(&mut a, Reg::A3, 0);
    a.terminate();
    let sm = run_with(a.assemble(), arg_cap(), CheriOpts::optimised()).unwrap();
    assert_eq!(sm.memory().read(OUT, 4).unwrap(), 0, "unrepresentable CSetAddr clears the tag");
}

#[test]
fn csetbounds_exact_traps_on_imprecise_request() {
    // Base misaligned for a large object: the exact variant must trap with
    // InexactBounds (CHERI-RISC-V semantics; earlier revisions detagged).
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::GLOBAL });
    a.li(Reg::A1, map::DRAM_BASE + 0x1001); // odd base
    a.push(Instr::CSetAddr { cd: Reg::A0, cs1: Reg::A0, rs2: Reg::A1 });
    a.li(Reg::A2, 1 << 20); // 1 MiB: needs coarse alignment
    a.push(Instr::CSetBoundsExact { cd: Reg::A3, cs1: Reg::A0, rs2: Reg::A2 });
    a.terminate();
    match run_with(a.assemble(), arg_cap(), CheriOpts::optimised()) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(cheri_cap::CapException::InexactBounds));
            assert!(t.lane_mask != 0, "trap names the faulting lanes");
        }
        other => panic!("expected an InexactBounds trap, got {other:?}"),
    }
}

#[test]
fn csetbounds_inexact_rounds_and_keeps_the_tag() {
    // The non-exact variant keeps the tag but rounds the base down to the
    // representable granule.
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::GLOBAL });
    a.li(Reg::A1, map::DRAM_BASE + 0x1001); // odd base
    a.push(Instr::CSetAddr { cd: Reg::A0, cs1: Reg::A0, rs2: Reg::A1 });
    a.li(Reg::A2, 1 << 20); // 1 MiB: needs coarse alignment
    a.push(Instr::CSetBounds { cd: Reg::A3, cs1: Reg::A0, rs2: Reg::A2 });
    a.push(Instr::CapUnary { op: UnaryCapOp::GetTag, rd: Reg::A4, cs1: Reg::A3 });
    store_out(&mut a, Reg::A4, 0);
    a.push(Instr::CapUnary { op: UnaryCapOp::GetBase, rd: Reg::A4, cs1: Reg::A3 });
    store_out(&mut a, Reg::A4, 1);
    a.terminate();
    let sm = run_with(a.assemble(), arg_cap(), CheriOpts::optimised()).unwrap();
    assert_eq!(sm.memory().read(OUT, 4).unwrap(), 1, "CSetBounds keeps the tag");
    let base = sm.memory().read(OUT + 4, 4).unwrap();
    assert!(base <= map::DRAM_BASE + 0x1001, "base rounded down");
    assert_eq!(
        base & !bounds::representable_alignment_mask(1 << 20),
        0,
        "base aligned to the representable granule"
    );
}

#[test]
fn cjalr_calls_through_sentries_and_returns() {
    // Layout: a jump over the function body, then main derives a sentry to
    // the function from its own PCC (AUIPCC + CIncOffset + CSealEntry),
    // calls through it with CJALR, and the function returns through the
    // sealed link capability.
    let mut a = Assembler::new();
    let main = a.label();
    a.jump(main);
    let func_idx = a.len() as i32;
    // The function: store 7, return through the link capability.
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A2, rs1: Reg::ZERO, imm: 7 });
    store_out(&mut a, Reg::A2, 0);
    a.push(Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, off: 0 });
    a.bind(main);
    let auipc_idx = a.len() as i32;
    a.push(Instr::Auipc { rd: Reg::A0, imm: 0 }); // AUIPCC: cap to here
    a.push(Instr::CIncOffsetImm { cd: Reg::A0, cs1: Reg::A0, imm: (func_idx - auipc_idx) * 4 });
    a.push(Instr::CapUnary { op: UnaryCapOp::SealEntry, rd: Reg::A0, cs1: Reg::A0 });
    a.push(Instr::CapUnary { op: UnaryCapOp::GetSealed, rd: Reg::A1, cs1: Reg::A0 });
    a.push(Instr::Jalr { rd: Reg::RA, rs1: Reg::A0, off: 0 }); // CJALR via the sentry
                                                               // Return point: store 9, then the sealedness observed earlier.
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A2, rs1: Reg::ZERO, imm: 9 });
    store_out(&mut a, Reg::A2, 1);
    store_out(&mut a, Reg::A1, 2);
    a.terminate();
    // Dynamic PCC metadata: disable the static restriction.
    let opts = CheriOpts { static_pcc: false, ..CheriOpts::optimised() };
    let sm = run_with(a.assemble(), arg_cap(), opts).unwrap();
    assert_eq!(sm.memory().read(OUT, 4).unwrap(), 7, "function body ran");
    assert_eq!(sm.memory().read(OUT + 4, 4).unwrap(), 9, "returned to the call site");
    assert_eq!(sm.memory().read(OUT + 8, 4).unwrap(), 1, "the target was sealed");
}

#[test]
fn jumping_through_a_data_capability_traps() {
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.push(Instr::Jalr { rd: Reg::RA, rs1: Reg::A0, off: 0 });
    a.terminate();
    match run_with(a.assemble(), arg_cap(), CheriOpts::optimised()) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(cheri_cap::CapException::PermitExecuteViolation))
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn auipcc_derives_a_code_capability() {
    let mut a = Assembler::new();
    a.push(Instr::Auipc { rd: Reg::A0, imm: 0 });
    a.push(Instr::CapUnary { op: UnaryCapOp::GetTag, rd: Reg::A1, cs1: Reg::A0 });
    store_out(&mut a, Reg::A1, 0);
    a.push(Instr::CapUnary { op: UnaryCapOp::GetAddr, rd: Reg::A1, cs1: Reg::A0 });
    store_out(&mut a, Reg::A1, 1);
    a.push(Instr::CapUnary { op: UnaryCapOp::GetPerm, rd: Reg::A1, cs1: Reg::A0 });
    store_out(&mut a, Reg::A1, 2);
    a.terminate();
    let sm = run_with(a.assemble(), arg_cap(), CheriOpts::optimised()).unwrap();
    assert_eq!(sm.memory().read(OUT, 4).unwrap(), 1, "AUIPCC result is tagged");
    assert_eq!(sm.memory().read(OUT + 4, 4).unwrap(), map::TCIM_BASE, "address = pc");
    let perms = Perms::from_bits(sm.memory().read(OUT + 8, 4).unwrap() as u16);
    assert!(perms.contains(Perms::EXECUTE), "inherits the PCC's execute permission");
    assert!(!perms.contains(Perms::STORE), "no data-store rights from the PCC");
}

#[test]
fn writes_to_rd_null_the_metadata() {
    // Figure 4's note: when an instruction writes rd (not cd), the
    // register's capability metadata becomes null — so using a capability
    // register for integer arithmetic destroys the capability.
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    // Clobber the data half with an integer op; the metadata must die too.
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 0 });
    a.push(Instr::CapUnary { op: UnaryCapOp::GetTag, rd: Reg::A1, cs1: Reg::A0 });
    store_out(&mut a, Reg::A1, 0);
    a.terminate();
    let sm = run_with(a.assemble(), arg_cap(), CheriOpts::optimised()).unwrap();
    assert_eq!(sm.memory().read(OUT, 4).unwrap(), 0, "integer write nulls the metadata");
}
