//! Injector-driven trap precision: every CHERI exception variant, raised by
//! sabotaging a resident victim capability with [`FaultInjector`], must
//! surface as a warp-precise [`TrapCause::Cheri`] trap with full
//! warp/lane/pc attribution; and the check-then-commit split must keep a
//! faulting store from committing *any* lane under `Abort` while
//! `MaskLanes` commits exactly the clean lanes.

use cheri_cap::{CapException, CapPipe, Perms};
use cheri_simt::{CheriMode, CheriOpts, RunError, Sm, SmConfig, TrapCause, TrapPolicy};
use simt_isa::asm::Assembler;
use simt_isa::{csr, scr, AluOp, Instr, LoadWidth, Reg, StoreWidth};
use simt_mem::{map, FaultInjector};

const MAX: u64 = 1_000_000;
const LANES: u32 = 4;
/// Where the probes park their sabotage victim.
const VICTIM: u32 = map::DRAM_BASE + 0x400;

/// A 1-warp SM with an almighty data capability in `GLOBAL`, `arg` in
/// `ARG`, and a full-perms victim capability resident at `VICTIM`;
/// `setup` mutates memory after reset, like the GPU pre-launch hook.
fn probe_sm(
    prog: Vec<u32>,
    arg: CapPipe,
    policy: TrapPolicy,
    setup: impl FnOnce(&mut simt_mem::MainMemory),
) -> (Sm, Result<(), RunError>) {
    let mut cfg = SmConfig::with_geometry(1, LANES, CheriMode::On(CheriOpts::optimised()));
    cfg.trap_policy = policy;
    let mut sm = Sm::new(cfg);
    sm.load_program(&prog);
    sm.set_scr(scr::ARG, arg.to_mem());
    sm.set_scr(scr::GLOBAL, CapPipe::almighty().and_perm(Perms::data()).to_mem());
    let victim = CapPipe::almighty().set_addr(VICTIM).set_bounds(256).0;
    sm.memory_mut().write_cap(VICTIM, victim.to_mem()).expect("victim slot is mapped");
    sm.reset();
    setup(sm.memory_mut());
    let r = sm.run(MAX).map(|_| ());
    (sm, r)
}

/// Load the (sabotaged) victim capability into `A0` through `GLOBAL`.
fn load_victim(a: &mut Assembler) {
    a.push(Instr::CSpecialRw { cd: Reg::T0, cs1: Reg::ZERO, scr: scr::GLOBAL });
    a.li(Reg::T1, VICTIM);
    a.push(Instr::CSetAddr { cd: Reg::T0, cs1: Reg::T0, rs2: Reg::T1 });
    a.push(Instr::Clc { cd: Reg::A0, cs1: Reg::T0, off: 0 });
}

/// The per-target probe kernel: the prologue loads the (sabotaged) victim
/// capability, then one target-specific use of it faults. Returns the
/// program and the index of the faulting instruction.
fn probe_program(target: CapException) -> (Vec<u32>, usize) {
    let mut a = Assembler::new();
    load_victim(&mut a);
    let fault_idx = match target {
        CapException::PermitStoreViolation => {
            let i = a.len();
            a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::ZERO, rs1: Reg::A0, off: 0 });
            i
        }
        CapException::PermitStoreCapViolation => {
            let i = a.len();
            a.push(Instr::Csc { cs2: Reg::A0, cs1: Reg::A0, off: 0 });
            i
        }
        CapException::PermitExecuteViolation => {
            let i = a.len();
            a.push(Instr::Jalr { rd: Reg::ZERO, rs1: Reg::A0, off: 0 });
            i
        }
        CapException::PermitLoadCapViolation | CapException::AlignmentViolation => {
            let i = a.len();
            a.push(Instr::Clc { cd: Reg::A1, cs1: Reg::A0, off: 0 });
            i
        }
        CapException::InexactBounds => {
            a.li(Reg::A2, 1 << 20);
            let i = a.len();
            a.push(Instr::CSetBoundsExact { cd: Reg::A1, cs1: Reg::A0, rs2: Reg::A2 });
            i
        }
        _ => {
            let i = a.len();
            a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::A0, off: 0 });
            i
        }
    };
    a.terminate();
    (a.assemble(), fault_idx)
}

#[test]
fn every_cheri_exception_surfaces_with_full_attribution() {
    for target in CapException::ALL {
        let (prog, fault_idx) = probe_program(target);
        let (_, result) = probe_sm(prog, arg_cap(), TrapPolicy::Abort, |m| {
            FaultInjector::new(0xFA07 + target as u64).sabotage(m, VICTIM, target);
        });
        let t = match result {
            Err(RunError::Trap(t)) => t,
            other => panic!("{target:?}: expected a trap, got {other:?}"),
        };
        assert_eq!(t.cause, TrapCause::Cheri(target), "{target:?}: cause");
        assert_eq!(t.warp, 0, "{target:?}: warp attribution");
        assert_eq!(
            t.pc,
            map::TCIM_BASE + 4 * fault_idx as u32,
            "{target:?}: pc names the faulting instruction"
        );
        assert_eq!(t.lane_mask, 0xF, "{target:?}: all active lanes fault");
        assert_eq!(t.lane_causes.len(), LANES as usize, "{target:?}: per-lane causes");
        for (i, lf) in t.lane_causes.iter().enumerate() {
            assert_eq!(lf.lane, i as u32, "{target:?}: lane id");
            assert_eq!(lf.cause, TrapCause::Cheri(target), "{target:?}: lane cause");
        }
    }
}

/// Cached trap-check plans must not skip a reachable fault: every injected
/// CHERI exception, under both trap policies, must produce an identical
/// outcome (trap value under `Abort`, full `KernelStats` including the
/// fault log summary under `MaskLanes`) with predecode on and off.
#[test]
fn predecode_preserves_injected_fault_attribution() {
    let run = |target: CapException, policy: TrapPolicy, predecode: bool| {
        let (prog, _) = probe_program(target);
        let mut cfg = SmConfig::with_geometry(1, LANES, CheriMode::On(CheriOpts::optimised()));
        cfg.trap_policy = policy;
        cfg.predecode = predecode;
        let mut sm = Sm::new(cfg);
        sm.load_program(&prog);
        sm.set_scr(scr::ARG, arg_cap().to_mem());
        sm.set_scr(scr::GLOBAL, CapPipe::almighty().and_perm(Perms::data()).to_mem());
        let victim = CapPipe::almighty().set_addr(VICTIM).set_bounds(256).0;
        sm.memory_mut().write_cap(VICTIM, victim.to_mem()).expect("victim slot is mapped");
        sm.reset();
        FaultInjector::new(0xFA07 + target as u64).sabotage(sm.memory_mut(), VICTIM, target);
        sm.run(MAX)
    };
    for target in CapException::ALL {
        for policy in [TrapPolicy::Abort, TrapPolicy::MaskLanes] {
            let with_rom = run(target, policy, true);
            let without = run(target, policy, false);
            assert_eq!(with_rom, without, "{target:?}/{policy:?}: predecode changed the outcome");
        }
    }
}

fn arg_cap() -> CapPipe {
    CapPipe::almighty().and_perm(Perms::data()).set_addr(VICTIM).set_bounds(256).0
}

/// Output area of the per-lane store tests — zeroed, clear of the victim
/// capability that `probe_sm` parks at `VICTIM`.
const OUT: u32 = map::DRAM_BASE + 0x600;

/// `ARG` holds a 12-byte capability (3 words); each lane stores at
/// `OUT + 4 * lane`, so lane 3 lands out of bounds.
fn per_lane_store_prog() -> Vec<u32> {
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.push(Instr::Csrrs { rd: Reg::T2, csr: csr::MHARTID, rs1: Reg::ZERO });
    a.push(Instr::OpImm { op: AluOp::Sll, rd: Reg::T2, rs1: Reg::T2, imm: 2 });
    a.push(Instr::CIncOffset { cd: Reg::A0, cs1: Reg::A0, rs2: Reg::T2 });
    a.li(Reg::A1, 0x5EED_5EED_u32 as i32 as u32);
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A1, rs1: Reg::A0, off: 0 });
    a.terminate();
    a.assemble()
}

fn narrow_arg() -> CapPipe {
    CapPipe::almighty().and_perm(Perms::data()).set_addr(OUT).set_bounds(12).0
}

#[test]
fn faulting_store_commits_zero_lanes_under_abort() {
    let (sm, result) = probe_sm(per_lane_store_prog(), narrow_arg(), TrapPolicy::Abort, |_| {});
    let t = match result {
        Err(RunError::Trap(t)) => t,
        other => panic!("expected a bounds trap, got {other:?}"),
    };
    assert_eq!(t.cause, TrapCause::Cheri(CapException::BoundsViolation));
    assert_eq!(t.lane_mask, 0b1000, "only lane 3 is out of bounds");
    // Check-then-commit: the three in-bounds lanes must not have stored.
    for lane in 0..3 {
        assert_eq!(
            sm.memory().read(OUT + 4 * lane, 4).unwrap(),
            0,
            "lane {lane} must not commit when a sibling lane faults"
        );
    }
}

#[test]
fn mask_lanes_commits_the_clean_lanes_and_logs_the_fault() {
    let (sm, result) = probe_sm(per_lane_store_prog(), narrow_arg(), TrapPolicy::MaskLanes, |_| {});
    result.expect("mask-lanes suppresses the trap and completes");
    // The surviving lanes re-issue and commit; the faulting lane never does.
    for lane in 0..3 {
        assert_eq!(sm.memory().read(OUT + 4 * lane, 4).unwrap(), 0x5EED_5EED, "lane {lane}");
    }
    assert_eq!(sm.memory().read(OUT + 12, 4).unwrap(), 0, "faulted lane commits nothing");
    let log = sm.suppressed_traps();
    assert_eq!(log.len(), 1, "one suppressed fault recorded");
    assert_eq!(log[0].cause, TrapCause::Cheri(CapException::BoundsViolation));
    assert_eq!(log[0].lane_mask, 0b1000);
    assert_eq!(sm.stats().faults.suppressed, 1);
}
