//! Integration tests for the SM: hand-assembled kernels exercising
//! divergence, barriers, atomics, scratchpad, and the CHERI protection
//! machinery.

use cheri_cap::{CapException, CapPipe, Perms};
use cheri_simt::{CheriMode, CheriOpts, RunError, Sm, SmConfig, TrapCause};
use simt_isa::asm::Assembler;
use simt_isa::{csr, scr, AluOp, AmoOp, BranchCond, Instr, LoadWidth, Reg, StoreWidth, UnaryCapOp};
use simt_mem::map;

const MAX: u64 = 2_000_000;

fn run_sm(cfg: SmConfig, prog: Vec<u32>) -> (Sm, Result<cheri_simt::KernelStats, RunError>) {
    let mut sm = Sm::new(cfg);
    sm.load_program(&prog);
    sm.reset();
    let r = sm.run(MAX);
    (sm, r)
}

/// Mint a data capability over `[base, base+len)`.
fn data_cap(base: u32, len: u32) -> CapPipe {
    let (c, exact) = CapPipe::almighty().and_perm(Perms::data()).set_addr(base).set_bounds(len);
    assert!(exact && c.tag());
    c
}

// ---------------------------------------------------------------------------
// Baseline behaviour
// ---------------------------------------------------------------------------

#[test]
fn divergent_if_else_reconverges() {
    // Even threads add 10, odd threads add 20; all store tid+delta.
    let mut a = Assembler::new();
    a.push(Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO });
    a.push(Instr::OpImm { op: AluOp::And, rd: Reg::A1, rs1: Reg::A0, imm: 1 });
    let odd = a.label();
    let join = a.label();
    a.bnez(Reg::A1, odd);
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A2, rs1: Reg::A0, imm: 10 });
    a.jump(join);
    a.bind(odd);
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A2, rs1: Reg::A0, imm: 20 });
    a.bind(join);
    a.push(Instr::OpImm { op: AluOp::Sll, rd: Reg::A3, rs1: Reg::A0, imm: 2 });
    a.li(Reg::A4, map::DRAM_BASE);
    a.push(Instr::Op { op: AluOp::Add, rd: Reg::A3, rs1: Reg::A3, rs2: Reg::A4 });
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A2, rs1: Reg::A3, off: 0 });
    a.terminate();

    let (sm, r) = run_sm(SmConfig::small(CheriMode::Off), a.assemble());
    r.unwrap();
    for t in 0..64u32 {
        let want = t + if t % 2 == 1 { 20 } else { 10 };
        assert_eq!(sm.memory().read(map::DRAM_BASE + t * 4, 4).unwrap(), want, "thread {t}");
    }
}

#[test]
fn loop_with_divergent_trip_counts() {
    // Each thread sums 1..=tid%4 by looping; result = tid%4*(tid%4+1)/2.
    let mut a = Assembler::new();
    a.push(Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO });
    a.push(Instr::OpImm { op: AluOp::And, rd: Reg::A1, rs1: Reg::A0, imm: 3 });
    a.push(Instr::Op { op: AluOp::Add, rd: Reg::A2, rs1: Reg::ZERO, rs2: Reg::ZERO });
    let done = a.label();
    let top = a.here();
    a.beqz(Reg::A1, done);
    a.push(Instr::Op { op: AluOp::Add, rd: Reg::A2, rs1: Reg::A2, rs2: Reg::A1 });
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A1, rs1: Reg::A1, imm: -1 });
    a.jump(top);
    a.bind(done);
    a.push(Instr::OpImm { op: AluOp::Sll, rd: Reg::A3, rs1: Reg::A0, imm: 2 });
    a.li(Reg::A4, map::DRAM_BASE);
    a.push(Instr::Op { op: AluOp::Add, rd: Reg::A3, rs1: Reg::A3, rs2: Reg::A4 });
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A2, rs1: Reg::A3, off: 0 });
    a.terminate();

    let (sm, r) = run_sm(SmConfig::small(CheriMode::Off), a.assemble());
    r.unwrap();
    for t in 0..64u32 {
        let n = t % 4;
        assert_eq!(sm.memory().read(map::DRAM_BASE + t * 4, 4).unwrap(), n * (n + 1) / 2);
    }
}

#[test]
fn atomic_histogram_in_dram() {
    // All threads atomically increment one counter.
    let mut a = Assembler::new();
    a.li(Reg::A0, map::DRAM_BASE + 0x100);
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A1, rs1: Reg::ZERO, imm: 1 });
    a.push(Instr::Amo { op: AmoOp::Add, rd: Reg::A2, rs1: Reg::A0, rs2: Reg::A1 });
    a.terminate();
    let cfg = SmConfig::small(CheriMode::Off);
    let threads = cfg.threads();
    let (sm, r) = run_sm(cfg, a.assemble());
    r.unwrap();
    assert_eq!(sm.memory().read(map::DRAM_BASE + 0x100, 4).unwrap(), threads);
}

#[test]
fn barrier_synchronises_scratchpad() {
    // Thread 0 of each "block" (= whole SM here) writes a flag before the
    // barrier; all threads read it after and store it.
    let mut a = Assembler::new();
    a.push(Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO });
    let skip = a.label();
    a.bnez(Reg::A0, skip);
    a.li(Reg::A1, map::SCRATCH_BASE);
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A2, rs1: Reg::ZERO, imm: 77 });
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A2, rs1: Reg::A1, off: 0 });
    a.bind(skip);
    a.barrier();
    a.li(Reg::A1, map::SCRATCH_BASE);
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A3, rs1: Reg::A1, off: 0 });
    a.push(Instr::OpImm { op: AluOp::Sll, rd: Reg::A4, rs1: Reg::A0, imm: 2 });
    a.li(Reg::A5, map::DRAM_BASE);
    a.push(Instr::Op { op: AluOp::Add, rd: Reg::A4, rs1: Reg::A4, rs2: Reg::A5 });
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A3, rs1: Reg::A4, off: 0 });
    a.terminate();

    let mut sm = Sm::new(SmConfig::small(CheriMode::Off));
    sm.load_program(&a.assemble());
    sm.set_block_warps(8); // all 8 warps form one block
    sm.reset();
    let stats = sm.run(MAX).unwrap();
    assert!(stats.barriers > 0);
    for t in 0..64u32 {
        assert_eq!(sm.memory().read(map::DRAM_BASE + t * 4, 4).unwrap(), 77, "thread {t}");
    }
}

#[test]
fn unmapped_access_faults() {
    let mut a = Assembler::new();
    a.li(Reg::A0, 0x0000_1000); // not TCIM, not scratch, not DRAM
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::A0, off: 0 });
    a.terminate();
    let (_, r) = run_sm(SmConfig::small(CheriMode::Off), a.assemble());
    match r {
        Err(RunError::Trap(t)) => assert!(matches!(t.cause, TrapCause::Mem(_))),
        other => panic!("expected memory trap, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// CHERI behaviour
// ---------------------------------------------------------------------------

fn cheri_cfg() -> SmConfig {
    SmConfig::small(CheriMode::On(CheriOpts::optimised()))
}

/// Kernel storing each thread's id through a bounded capability from SCR.
fn purecap_store_ids() -> Vec<u32> {
    let mut a = Assembler::new();
    a.push(Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO });
    a.push(Instr::CSpecialRw { cd: Reg::A1, cs1: Reg::ZERO, scr: scr::ARG });
    a.push(Instr::OpImm { op: AluOp::Sll, rd: Reg::A2, rs1: Reg::A0, imm: 2 });
    a.push(Instr::CIncOffset { cd: Reg::A3, cs1: Reg::A1, rs2: Reg::A2 });
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A0, rs1: Reg::A3, off: 0 });
    a.terminate();
    a.assemble()
}

#[test]
fn purecap_bounded_stores_succeed() {
    let mut sm = Sm::new(cheri_cfg());
    sm.load_program(&purecap_store_ids());
    let buf = data_cap(map::DRAM_BASE, 64 * 4);
    sm.set_scr(scr::ARG, buf.to_mem());
    sm.reset();
    let stats = sm.run(MAX).unwrap();
    for t in 0..64u32 {
        assert_eq!(sm.memory().read(map::DRAM_BASE + t * 4, 4).unwrap(), t);
    }
    // The histogram saw capability stores and pointer arithmetic.
    assert!(stats.cheri_histogram["CSW"] > 0);
    assert!(stats.cheri_histogram["CIncOffset"] > 0);
    assert!(stats.cheri_histogram["CSpecialRW"] > 0);
    assert!(stats.cheri_fraction() > 0.0);
}

#[test]
fn purecap_out_of_bounds_store_traps() {
    let mut sm = Sm::new(cheri_cfg());
    sm.load_program(&purecap_store_ids());
    // Bounds cover only half the threads: thread 32's store must trap.
    let buf = data_cap(map::DRAM_BASE, 32 * 4);
    sm.set_scr(scr::ARG, buf.to_mem());
    sm.reset();
    match sm.run(MAX) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(CapException::BoundsViolation));
        }
        other => panic!("expected bounds violation, got {other:?}"),
    }
}

#[test]
fn untagged_capability_dereference_traps() {
    // SCR left null: the very first store trips a tag violation.
    let mut sm = Sm::new(cheri_cfg());
    sm.load_program(&purecap_store_ids());
    sm.reset();
    match sm.run(MAX) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(CapException::TagViolation));
        }
        other => panic!("expected tag violation, got {other:?}"),
    }
}

#[test]
fn figure1_overread_demo() {
    // The paper's Figure 1: ptr points to `data`, ptr[1] reads `secret`.
    // Both variables live on the (emulated) stack; the baseline leaks the
    // secret, CHERI with a bounded stack-slot capability traps.
    const DATA: u32 = map::DRAM_BASE + 0x40;
    const SECRET_VAL: u32 = 0xC0DE;

    // Baseline: plain pointer arithmetic reads the neighbouring variable.
    let mut a = Assembler::new();
    a.li(Reg::A0, DATA);
    a.li(Reg::A1, 0xDA1A);
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A1, rs1: Reg::A0, off: 0 });
    a.li(Reg::A2, SECRET_VAL);
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A2, rs1: Reg::A0, off: 4 });
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A3, rs1: Reg::A0, off: 4 }); // ptr[1]
    a.li(Reg::A4, map::DRAM_BASE);
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A3, rs1: Reg::A4, off: 0 });
    a.terminate();
    let (sm, r) = run_sm(SmConfig::small(CheriMode::Off), a.assemble());
    r.unwrap();
    assert_eq!(sm.memory().read(map::DRAM_BASE, 4).unwrap(), SECRET_VAL, "baseline leaks");

    // CHERI: the same access through a 4-byte capability for `data`.
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A3, rs1: Reg::A0, off: 4 }); // ptr[1]
    a.terminate();
    let mut sm = Sm::new(cheri_cfg());
    sm.load_program(&a.assemble());
    sm.memory_mut().write(DATA + 4, SECRET_VAL, 4).unwrap();
    sm.set_scr(scr::ARG, data_cap(DATA, 4).to_mem());
    sm.reset();
    match sm.run(MAX) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(CapException::BoundsViolation));
        }
        other => panic!("CHERI must trap the overread, got {other:?}"),
    }
}

#[test]
fn clc_csc_roundtrip_preserves_tags_and_forgery_fails() {
    // Store a derived capability to memory with CSC, load it back with CLC,
    // then dereference it. Also verify CGetTag sees the tag.
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    // Spill the capability to the second half of the buffer and reload.
    a.push(Instr::Csc { cs2: Reg::A0, cs1: Reg::A0, off: 8 });
    a.push(Instr::Clc { cd: Reg::A1, cs1: Reg::A0, off: 8 });
    a.push(Instr::CapUnary { op: UnaryCapOp::GetTag, rd: Reg::A2, cs1: Reg::A1 });
    // Dereference the reloaded capability.
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A3, rs1: Reg::A1, off: 0 });
    // Store the observed tag for the host.
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A2, rs1: Reg::A0, off: 4 });
    a.terminate();

    let mut sm = Sm::new(cheri_cfg());
    sm.load_program(&a.assemble());
    sm.set_scr(scr::ARG, data_cap(map::DRAM_BASE, 16).to_mem());
    sm.reset();
    let stats = sm.run(MAX).unwrap();
    assert_eq!(sm.memory().read(map::DRAM_BASE + 4, 4).unwrap(), 1, "tag observed");
    assert!(stats.cheri_histogram["CSC"] >= 1);
    assert!(stats.cheri_histogram["CLC"] >= 1);
    // The CSC port penalty was charged in the optimised configuration.
    assert!(stats.stalls.csc_serialisation >= 1);

    // Forgery: overwrite one word of the stored capability with data, then
    // dereferencing the reloaded value must trap.
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.push(Instr::Csc { cs2: Reg::A0, cs1: Reg::A0, off: 8 });
    a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A4, rs1: Reg::ZERO, imm: 42 });
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A4, rs1: Reg::A0, off: 8 });
    a.push(Instr::Clc { cd: Reg::A1, cs1: Reg::A0, off: 8 });
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A3, rs1: Reg::A1, off: 0 });
    a.terminate();
    let mut sm = Sm::new(cheri_cfg());
    sm.load_program(&a.assemble());
    sm.set_scr(scr::ARG, data_cap(map::DRAM_BASE, 16).to_mem());
    sm.reset();
    match sm.run(MAX) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(CapException::TagViolation));
        }
        other => panic!("forged capability must not be dereferenceable: {other:?}"),
    }
}

#[test]
fn csetbounds_in_kernel_narrows() {
    // Derive a narrower capability in-kernel and overflow it.
    let mut a = Assembler::new();
    a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
    a.push(Instr::CSetBoundsImm { cd: Reg::A1, cs1: Reg::A0, imm: 8 });
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A2, rs1: Reg::A1, off: 0 }); // ok
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A2, rs1: Reg::A1, off: 8 }); // trap
    a.terminate();
    let mut sm = Sm::new(cheri_cfg());
    sm.load_program(&a.assemble());
    sm.set_scr(scr::ARG, data_cap(map::DRAM_BASE, 64).to_mem());
    sm.reset();
    match sm.run(MAX) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(CapException::BoundsViolation));
        }
        other => panic!("expected bounds violation, got {other:?}"),
    }
}

#[test]
fn uniform_metadata_stays_out_of_vrf() {
    // All threads use the same argument capability: with the compressed
    // metadata RF + NVO, the metadata register file should keep everything
    // scalar (peak metadata VRF residency 0) — the paper's key result.
    let mut sm = Sm::new(cheri_cfg());
    sm.load_program(&purecap_store_ids());
    sm.set_scr(scr::ARG, data_cap(map::DRAM_BASE, 64 * 4).to_mem());
    sm.reset();
    let stats = sm.run(MAX).unwrap();
    assert_eq!(stats.peak_meta_vrf_resident, 0, "metadata should compress fully");
    assert!(stats.cap_regs_used >= 1);
    assert!(stats.cap_regs_used <= 16, "few registers hold capabilities");
}

#[test]
fn naive_vs_optimised_same_results() {
    // The three CHERI configurations are functionally identical.
    for opts in [CheriOpts::naive(), CheriOpts::optimised()] {
        let mut sm = Sm::new(SmConfig::small(CheriMode::On(opts)));
        sm.load_program(&purecap_store_ids());
        sm.set_scr(scr::ARG, data_cap(map::DRAM_BASE, 64 * 4).to_mem());
        sm.reset();
        sm.run(MAX).unwrap();
        for t in 0..64u32 {
            assert_eq!(sm.memory().read(map::DRAM_BASE + t * 4, 4).unwrap(), t);
        }
    }
}

#[test]
fn branch_cond_coverage() {
    // Exercise all six branch conditions: store 1 if taken else 0, with
    // operands -1 and 1.
    let conds = [
        (BranchCond::Eq, 0u32),
        (BranchCond::Ne, 1),
        (BranchCond::Lt, 1), // -1 < 1 signed
        (BranchCond::Ge, 0),
        (BranchCond::Ltu, 0), // 0xFFFF_FFFF < 1 unsigned is false
        (BranchCond::Geu, 1),
    ];
    for (i, (cond, want)) in conds.into_iter().enumerate() {
        let mut a = Assembler::new();
        a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: -1 });
        a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A1, rs1: Reg::ZERO, imm: 1 });
        a.push(Instr::Op { op: AluOp::Add, rd: Reg::A2, rs1: Reg::ZERO, rs2: Reg::ZERO });
        let taken = a.label();
        a.branch(cond, Reg::A0, Reg::A1, taken);
        let done = a.label();
        a.jump(done);
        a.bind(taken);
        a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A2, rs1: Reg::ZERO, imm: 1 });
        a.bind(done);
        a.li(Reg::A3, map::DRAM_BASE);
        a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A2, rs1: Reg::A3, off: 0 });
        a.terminate();
        let (sm, r) = run_sm(SmConfig::with_geometry(1, 1, CheriMode::Off), a.assemble());
        r.unwrap();
        assert_eq!(sm.memory().read(map::DRAM_BASE, 4).unwrap(), want, "cond #{i}");
    }
}

#[test]
fn deadlock_error_is_distinct_from_timeout() {
    let e = RunError::Deadlock { cycles: 42, blocked_warps: 3 };
    assert!(e.to_string().contains("barrier deadlock after 42 cycles"), "{e}");
    assert!(e.to_string().contains("3 warp(s)"), "{e}");
    assert_ne!(e, RunError::Timeout { cycles: 42 });
}

#[test]
fn ring_sink_captures_the_tail() {
    use cheri_simt::trace::{EventSink, RingSink, TraceEvent};

    let mut a = Assembler::new();
    a.push(Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO });
    for i in 0..10 {
        a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A1, rs1: Reg::A0, imm: i });
    }
    a.terminate();
    let mut sm = Sm::new(SmConfig::with_geometry(1, 4, CheriMode::Off));
    sm.load_program(&a.assemble());
    sm.set_sink(Box::new(RingSink::new(4)));
    sm.reset();
    sm.run(MAX).unwrap();
    let sink = sm.take_sink().expect("sink attached");
    let ring = sink.as_any().downcast_ref::<RingSink>().expect("RingSink");
    let events: Vec<_> = ring.events().collect();
    assert_eq!(events.len(), 4, "ring buffer keeps only the tail");
    // 12 instructions issued but only 4 events retained: the rest were
    // evicted and counted (stall events, if any, add to the evictions).
    assert!(ring.dropped() >= 8, "evictions are reported");
    // The last event is the issue of the terminate instruction.
    assert!(
        matches!(events[3], TraceEvent::Issue { mnemonic: "simt.terminate", .. }),
        "last event is the terminate issue, got {:?}",
        events[3]
    );
    // Events are retained in emission order.
    assert!(events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));

    // No sink attached: nothing is recorded anywhere.
    let mut sm2 = Sm::new(SmConfig::with_geometry(1, 4, CheriMode::Off));
    let mut b = Assembler::new();
    b.terminate();
    sm2.load_program(&b.assemble());
    sm2.reset();
    sm2.run(MAX).unwrap();
    assert!(!sm2.has_sink());
}

#[test]
fn structured_sink_reconciles_with_stats() {
    use cheri_simt::trace::{StallCause, TraceEvent, VecSink};

    // A kernel with stores (DRAM traffic), a barrier and divergence.
    let mut a = Assembler::new();
    a.push(Instr::Csrrs { rd: Reg::A0, csr: csr::MHARTID, rs1: Reg::ZERO });
    a.push(Instr::OpImm { op: AluOp::Sll, rd: Reg::A3, rs1: Reg::A0, imm: 2 });
    a.li(Reg::A4, map::DRAM_BASE);
    a.push(Instr::Op { op: AluOp::Add, rd: Reg::A3, rs1: Reg::A3, rs2: Reg::A4 });
    a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A0, rs1: Reg::A3, off: 0 });
    a.barrier();
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A5, rs1: Reg::A3, off: 0 });
    a.terminate();
    let prog = a.assemble();

    let mut sm = Sm::new(SmConfig::small(CheriMode::Off));
    sm.load_program(&prog);
    sm.set_sink(Box::new(VecSink::new()));
    sm.reset();
    let stats = sm.run(MAX).unwrap();
    let sink = sm.take_sink().expect("sink attached");
    let events = sink.as_any().downcast_ref::<VecSink>().expect("VecSink").events().to_vec();

    // Launch marker delimits the (single) launch.
    assert_eq!(
        events.iter().filter(|e| matches!(e, TraceEvent::Launch { .. })).count(),
        1,
        "reset() emits one launch marker"
    );
    // Issue events reconcile with the instruction counters.
    let issues: Vec<_> = events.iter().filter(|e| matches!(e, TraceEvent::Issue { .. })).collect();
    assert_eq!(issues.len() as u64, stats.instrs, "one issue event per instruction");
    let thread_instrs: u64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Issue { mask, .. } => Some(mask.count_ones() as u64),
            _ => None,
        })
        .sum();
    assert_eq!(thread_instrs, stats.thread_instrs, "mask popcounts sum to thread-instrs");
    // Barrier arrivals reconcile.
    let arrivals =
        events.iter().filter(|e| matches!(e, TraceEvent::Barrier { release: false, .. })).count();
    assert_eq!(arrivals as u64, stats.barriers);
    assert!(
        events.iter().any(|e| matches!(e, TraceEvent::Barrier { release: true, .. })),
        "barrier releases are traced"
    );
    // Idle stall cycles reconcile.
    let idle: u64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Stall { cause: StallCause::Idle, cycles, .. } => Some(*cycles),
            _ => None,
        })
        .sum();
    assert_eq!(idle, stats.stalls.idle);
    // DRAM transaction sums reconcile.
    let (mut reads, mut writes) = (0u64, 0u64);
    for e in &events {
        if let TraceEvent::Dram { reads: r, writes: w, .. } = e {
            reads += *r as u64;
            writes += *w as u64;
        }
    }
    assert_eq!(reads, stats.dram.read_transactions);
    assert_eq!(writes, stats.dram.write_transactions);
    assert!(
        events.iter().any(|e| matches!(e, TraceEvent::Mem { .. })),
        "coalesced accesses are traced"
    );

    // Zero drift: the same kernel without a sink produces identical stats.
    let mut plain = Sm::new(SmConfig::small(CheriMode::Off));
    plain.load_program(&prog);
    plain.reset();
    let base = plain.run(MAX).unwrap();
    assert_eq!(base, stats, "tracing must not perturb the model");
}

// ---------------------------------------------------------------------------
// Fetch-trap attribution
// ---------------------------------------------------------------------------

/// An out-of-range PC must trap as `fetch_oob` with identical attribution
/// under every protection scheme: the instruction-memory range check runs
/// before the CHERI PCC fetch check (DESIGN.md §3.3.4), so baseline and
/// CHERI configs cannot disagree on the cause of the same bad PC. The
/// integer-comparator schemes (Rust, GPUShield) share the baseline SM
/// configuration — their differences are codegen and the memory-stage
/// bounds table, neither of which touches fetch.
#[test]
fn out_of_range_pc_traps_as_fetch_oob_under_every_scheme() {
    let schemes =
        [CheriMode::Off, CheriMode::On(CheriOpts::naive()), CheriMode::On(CheriOpts::optimised())];
    for cheri in schemes {
        // Run off the end of the program: a kernel with no terminator
        // falls through to the first PC past instruction memory. Before
        // the ordering fix, CHERI configs reported this as a PCC bounds
        // violation while the baseline said `fetch_oob`.
        let mut a = Assembler::new();
        a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 1 });
        a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 });
        let prog = a.assemble();
        let bad = map::TCIM_BASE + 4 * prog.len() as u32;
        let (_, r) = run_sm(SmConfig::small(cheri), prog);
        let t = match r {
            Err(RunError::Trap(t)) => t,
            other => panic!("{cheri:?}: expected a fetch trap, got {other:?}"),
        };
        assert_eq!(t.cause, TrapCause::FetchOutOfRange(bad), "{cheri:?}: cause");
        assert_eq!(t.cause.name(), "fetch_oob", "{cheri:?}: stable cause name");
        assert_eq!(t.pc, bad, "{cheri:?}: the trap names the bad PC, not the jump");
        assert_eq!(t.warp, 0, "{cheri:?}: warp attribution");
    }
}
