//! Timing-model accounting tests: the stall/latency mechanisms that drive
//! the evaluation's cycle numbers must be attributed to the right causes.

use cheri_cap::{CapPipe, Perms};
use cheri_simt::{CheriMode, CheriOpts, KernelStats, Sm, SmConfig};
use simt_isa::asm::Assembler;
use simt_isa::{scr, AluOp, FpOp, Instr, LoadWidth, Reg, StoreWidth};
use simt_mem::map;

fn run(cfg: SmConfig, prog: Vec<u32>, setup: impl FnOnce(&mut Sm)) -> KernelStats {
    let mut sm = Sm::new(cfg);
    sm.load_program(&prog);
    setup(&mut sm);
    sm.reset();
    sm.run(1_000_000).expect("run")
}

fn data_cap(base: u32, len: u32) -> cheri_cap::CapMem {
    CapPipe::almighty().and_perm(Perms::data()).set_addr(base).set_bounds(len).0.to_mem()
}

/// One warp, one dependent DRAM load: the memory latency must appear as
/// idle cycles (nothing else to issue).
#[test]
fn unhidden_memory_latency_is_idle() {
    let mut a = Assembler::new();
    a.li(Reg::A0, map::DRAM_BASE);
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::A0, off: 0 });
    a.push(Instr::Op { op: AluOp::Add, rd: Reg::A2, rs1: Reg::A1, rs2: Reg::A1 });
    a.terminate();
    let cfg = SmConfig::with_geometry(1, 4, CheriMode::Off);
    let stats = run(cfg, a.assemble(), |_| {});
    assert!(
        stats.stalls.idle >= cfg.dram.latency as u64,
        "idle {} < latency {}",
        stats.stalls.idle,
        cfg.dram.latency
    );
}

/// Many warps hide the same latency: idle shrinks dramatically.
#[test]
fn multithreading_hides_memory_latency() {
    let mut a = Assembler::new();
    a.li(Reg::A0, map::DRAM_BASE);
    // Ten dependent load+add pairs to keep each warp busy with memory.
    for _ in 0..10 {
        a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::A0, off: 0 });
        a.push(Instr::Op { op: AluOp::Add, rd: Reg::A2, rs1: Reg::A1, rs2: Reg::A1 });
    }
    a.terminate();
    let one = run(SmConfig::with_geometry(1, 4, CheriMode::Off), a.assemble(), |_| {});

    let mut a = Assembler::new();
    a.li(Reg::A0, map::DRAM_BASE);
    for _ in 0..10 {
        a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::A0, off: 0 });
        a.push(Instr::Op { op: AluOp::Add, rd: Reg::A2, rs1: Reg::A1, rs2: Reg::A1 });
    }
    a.terminate();
    let many = run(SmConfig::with_geometry(32, 4, CheriMode::Off), a.assemble(), |_| {});

    // 32x the work in far less than 32x the time.
    assert!(many.cycles < one.cycles * 4, "one={} many={}", one.cycles, many.cycles);
    let idle_frac_one = one.stalls.idle as f64 / one.cycles as f64;
    let idle_frac_many = many.stalls.idle as f64 / many.cycles as f64;
    assert!(
        idle_frac_many < idle_frac_one * 0.8,
        "idle fraction {idle_frac_many:.2} vs {idle_frac_one:.2}"
    );
}

/// The SFU serialises active lanes: a warp-wide `fdiv` takes about
/// `sfu_latency + active_lanes` cycles of suspension.
#[test]
fn sfu_serialises_lanes() {
    let prog = |n_divs: usize| {
        let mut a = Assembler::new();
        a.li(Reg::A0, 0x3F80_0000); // 1.0f
        for _ in 0..n_divs {
            a.push(Instr::FOp { op: FpOp::Div, rd: Reg::A1, rs1: Reg::A0, rs2: Reg::A0 });
        }
        a.terminate();
        a.assemble()
    };
    let cfg = SmConfig::with_geometry(1, 16, CheriMode::Off);
    let base = run(cfg, prog(1), |_| {});
    let more = run(cfg, prog(11), |_| {});
    let per_div = (more.cycles - base.cycles) / 10;
    let expect = cfg.timing.sfu_latency as u64 + 16;
    assert!(per_div >= expect && per_div <= expect + 4, "per_div {per_div} vs expected ~{expect}");
    assert_eq!(more.sfu_requests, 11);
}

/// `CSC` pays the single-read-port metadata SRF penalty only in the
/// compressed-metadata configuration; `CLC`/`CSC` both pay the multi-flit
/// cycle everywhere.
#[test]
fn csc_and_multi_flit_accounting() {
    let prog = {
        let mut a = Assembler::new();
        a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
        a.push(Instr::Csc { cs2: Reg::A0, cs1: Reg::A0, off: 0 });
        a.push(Instr::Clc { cd: Reg::A1, cs1: Reg::A0, off: 0 });
        a.terminate();
        a.assemble()
    };
    let setup = |sm: &mut Sm| sm.set_scr(scr::ARG, data_cap(map::DRAM_BASE, 64));

    // Single warp so the counts are exact.
    let opt = run(
        SmConfig::with_geometry(1, 8, CheriMode::On(CheriOpts::optimised())),
        prog.clone(),
        setup,
    );
    assert_eq!(opt.stalls.csc_serialisation, 1);
    assert_eq!(opt.stalls.cap_multi_flit, 2); // one CSC + one CLC

    let naive = run(SmConfig::with_geometry(1, 8, CheriMode::On(CheriOpts::naive())), prog, setup);
    assert_eq!(naive.stalls.csc_serialisation, 0, "naive meta RF has full ports");
    assert_eq!(naive.stalls.cap_multi_flit, 2);
}

/// Scratchpad bank conflicts serialise the warp.
#[test]
fn scratchpad_conflicts_cost_cycles() {
    let prog = |stride_shift: i32| {
        let mut a = Assembler::new();
        a.push(Instr::Csrrs { rd: Reg::A0, csr: simt_isa::csr::MHARTID, rs1: Reg::ZERO });
        a.push(Instr::OpImm { op: AluOp::Sll, rd: Reg::A1, rs1: Reg::A0, imm: stride_shift });
        a.li(Reg::A2, map::SCRATCH_BASE);
        a.push(Instr::Op { op: AluOp::Add, rd: Reg::A1, rs1: Reg::A1, rs2: Reg::A2 });
        for _ in 0..8 {
            a.push(Instr::Store { w: StoreWidth::W, rs2: Reg::A0, rs1: Reg::A1, off: 0 });
        }
        a.terminate();
        a.assemble()
    };
    let cfg = SmConfig::with_geometry(1, 8, CheriMode::Off);
    // Stride 4 bytes: conflict-free. Stride 8*4 bytes: all lanes same bank.
    let clean = run(cfg, prog(2), |_| {});
    let conflicted = run(cfg, prog(5), |_| {});
    assert_eq!(clean.scratch.conflict_cycles, 0);
    assert!(conflicted.scratch.conflict_cycles >= 7 * 8);
    assert!(conflicted.cycles > clean.cycles);
}

/// VRF pressure causes spills whose cycles land in the spill_fill bucket
/// and whose traffic lands on DRAM.
#[test]
fn vrf_spills_are_accounted() {
    // Write many non-compressible vectors: hartid * hartid is neither
    // uniform nor affine.
    let mut a = Assembler::new();
    a.push(Instr::Csrrs { rd: Reg::A0, csr: simt_isa::csr::MHARTID, rs1: Reg::ZERO });
    a.push(Instr::MulDiv { op: simt_isa::MulOp::Mul, rd: Reg::A1, rs1: Reg::A0, rs2: Reg::A0 });
    for r in 10..26u8 {
        a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::new(r), rs1: Reg::A1, imm: r as i32 });
    }
    // Read them all back so spilled ones must be filled.
    for r in 10..26u8 {
        a.push(Instr::Op { op: AluOp::Add, rd: Reg::A2, rs1: Reg::new(r), rs2: Reg::A2 });
    }
    a.terminate();
    let mut cfg = SmConfig::with_geometry(4, 8, CheriMode::Off);
    cfg.vrf_slots = 8; // tiny VRF: 4 warps x 16 vectors >> 8 slots
    let stats = run(cfg, a.assemble(), |_| {});
    assert!(stats.data_rf.spills > 0);
    assert!(stats.data_rf.fills > 0);
    assert!(stats.stalls.spill_fill > 0);
    assert!(stats.dram.write_transactions > 0, "spills write DRAM");
}

/// Tag traffic only exists under CHERI, and the tag cache absorbs most of
/// it for streaming accesses.
#[test]
fn tag_cache_behaviour() {
    let prog = {
        let mut a = Assembler::new();
        a.push(Instr::CSpecialRw { cd: Reg::A0, cs1: Reg::ZERO, scr: scr::ARG });
        a.push(Instr::Csrrs { rd: Reg::A1, csr: simt_isa::csr::MHARTID, rs1: Reg::ZERO });
        a.push(Instr::OpImm { op: AluOp::Sll, rd: Reg::A1, rs1: Reg::A1, imm: 2 });
        a.push(Instr::CIncOffset { cd: Reg::A2, cs1: Reg::A0, rs2: Reg::A1 });
        for i in 0..16 {
            a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A3, rs1: Reg::A2, off: i * 4 });
        }
        a.terminate();
        a.assemble()
    };
    let stats = run(SmConfig::small(CheriMode::On(CheriOpts::optimised())), prog, |sm| {
        sm.set_scr(scr::ARG, data_cap(map::DRAM_BASE, 1 << 16))
    });
    let tc = stats.tag_cache;
    assert!(tc.hits + tc.misses > 0, "tag controller saw traffic");
    assert!(tc.miss_rate() < 0.2, "miss rate {}", tc.miss_rate());
    // Baseline sees no tag traffic at all.
    let mut a = Assembler::new();
    a.li(Reg::A0, map::DRAM_BASE);
    a.push(Instr::Load { w: LoadWidth::W, rd: Reg::A1, rs1: Reg::A0, off: 0 });
    a.terminate();
    let base = run(SmConfig::small(CheriMode::Off), a.assemble(), |_| {});
    assert_eq!(base.tag_cache.hits + base.tag_cache.misses, 0);
    assert_eq!(base.dram.tag_transactions, 0);
}
