//! A tiny two-pass assembler: emit [`Instr`]s with symbolic labels, then
//! resolve branch/jump offsets. Used by the NoCL kernel compiler and by
//! hand-written test programs.
//!
//! ```
//! use simt_isa::asm::Assembler;
//! use simt_isa::{AluOp, Instr, Reg};
//!
//! let mut a = Assembler::new();
//! let done = a.label();
//! a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 3 });
//! let loop_top = a.here();
//! a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: -1 });
//! a.beqz(Reg::A0, done);
//! a.jump(loop_top);
//! a.bind(done);
//! a.terminate();
//! let words = a.assemble();
//! assert_eq!(words.len(), 5);
//! ```

use crate::{BranchCond, Instr, Reg, SimtOp};

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum Patch {
    Branch(Label),
    Jal(Label),
}

/// The assembler: a growing instruction list plus pending label fixups.
#[derive(Debug, Default)]
pub struct Assembler {
    instrs: Vec<Instr>,
    patches: Vec<(usize, Patch)>,
    /// `labels[l] = Some(instruction index)` once bound.
    labels: Vec<Option<usize>>,
}

impl Assembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Create a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Is the program empty?
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Append an instruction verbatim.
    pub fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.patches.push((self.instrs.len(), Patch::Branch(target)));
        self.instrs.push(Instr::Branch { cond, rs1, rs2, off: 0 });
    }

    /// Branch if `rs` is zero.
    pub fn beqz(&mut self, rs: Reg, target: Label) {
        self.branch(BranchCond::Eq, rs, Reg::ZERO, target);
    }

    /// Branch if `rs` is non-zero.
    pub fn bnez(&mut self, rs: Reg, target: Label) {
        self.branch(BranchCond::Ne, rs, Reg::ZERO, target);
    }

    /// Unconditional jump to a label (`jal zero`).
    pub fn jump(&mut self, target: Label) {
        self.patches.push((self.instrs.len(), Patch::Jal(target)));
        self.instrs.push(Instr::Jal { rd: Reg::ZERO, off: 0 });
    }

    /// Load a 32-bit constant with `lui`+`addi` (or just one of them when
    /// possible).
    pub fn li(&mut self, rd: Reg, value: u32) {
        let lo = (value << 20) as i32 >> 20; // sign-extended low 12 bits
        let hi = value.wrapping_sub(lo as u32);
        if hi != 0 {
            self.push(Instr::Lui { rd, imm: hi });
            if lo != 0 {
                self.push(Instr::OpImm { op: crate::AluOp::Add, rd, rs1: rd, imm: lo });
            }
        } else {
            self.push(Instr::OpImm { op: crate::AluOp::Add, rd, rs1: Reg::ZERO, imm: lo });
        }
    }

    /// The SIMT terminate instruction.
    pub fn terminate(&mut self) {
        self.push(Instr::Simt { op: SimtOp::Terminate });
    }

    /// The SIMT block-barrier instruction.
    pub fn barrier(&mut self) {
        self.push(Instr::Simt { op: SimtOp::Barrier });
    }

    /// Resolve labels and encode to instruction words.
    ///
    /// # Panics
    ///
    /// Panics if a label is unbound or an offset does not fit its encoding.
    pub fn assemble(mut self) -> Vec<u32> {
        for (at, patch) in std::mem::take(&mut self.patches) {
            let target = |l: Label| {
                let t = self.labels[l.0].expect("unbound label");
                (t as i64 - at as i64) * 4
            };
            match patch {
                Patch::Branch(l) => {
                    let off = target(l);
                    assert!((-4096..=4094).contains(&off), "branch offset {off} out of range");
                    if let Instr::Branch { off: o, .. } = &mut self.instrs[at] {
                        *o = off as i32;
                    }
                }
                Patch::Jal(l) => {
                    let off = target(l);
                    assert!((-(1 << 20)..(1 << 20)).contains(&off), "jump offset out of range");
                    if let Instr::Jal { off: o, .. } = &mut self.instrs[at] {
                        *o = off as i32;
                    }
                }
            }
        }
        self.instrs.iter().map(|i| i.encode()).collect()
    }

    /// The instruction list before encoding (for inspection/disassembly).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AluOp;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Assembler::new();
        let end = a.label();
        let top = a.here();
        a.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 });
        a.beqz(Reg::A1, end);
        a.jump(top);
        a.bind(end);
        a.terminate();
        let words = a.assemble();
        let decoded: Vec<Instr> = words.iter().map(|&w| Instr::decode(w).unwrap()).collect();
        assert_eq!(
            decoded[1],
            Instr::Branch { cond: BranchCond::Eq, rs1: Reg::A1, rs2: Reg::ZERO, off: 8 }
        );
        assert_eq!(decoded[2], Instr::Jal { rd: Reg::ZERO, off: -8 });
    }

    #[test]
    fn li_variants() {
        for v in [0u32, 1, 0x7FF, 0x800, 0xFFFF_FFFF, 0x8000_0000, 0x1234_5678] {
            let mut a = Assembler::new();
            a.li(Reg::A0, v);
            let words = a.assemble();
            // Emulate the two instructions to verify the constant.
            let mut r = 0u32;
            for w in words {
                match Instr::decode(w).unwrap() {
                    Instr::Lui { imm, .. } => r = imm,
                    Instr::OpImm { imm, .. } => r = r.wrapping_add(imm as u32),
                    _ => unreachable!(),
                }
            }
            assert_eq!(r, v, "li {v:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Assembler::new();
        let l = a.label();
        a.jump(l);
        let _ = a.assemble();
    }
}
