//! Control and status register numbers visible to kernels.
//!
//! SIMTight exposes the SIMT geometry to software through a handful of
//! read-only CSRs; the NoCL runtime uses them to compute thread and block
//! indices.

/// Hardware thread id within the SM: `warp_id * warp_size + lane`.
pub const MHARTID: u16 = 0xF14;

/// Number of warps resident in the SM.
pub const SIMT_NUM_WARPS: u16 = 0xF20;

/// Logarithm (base 2) of the number of threads per warp.
pub const SIMT_LOG_LANES: u16 = 0xF21;

/// Total hardware threads in the SM (`num_warps << log_lanes`).
pub const SIMT_NUM_THREADS: u16 = 0xF22;

/// Human-readable name of a CSR, for the disassembler.
pub fn name(csr: u16) -> Option<&'static str> {
    match csr {
        MHARTID => Some("mhartid"),
        SIMT_NUM_WARPS => Some("simt_num_warps"),
        SIMT_LOG_LANES => Some("simt_log_lanes"),
        SIMT_NUM_THREADS => Some("simt_num_threads"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn names() {
        assert_eq!(super::name(super::MHARTID), Some("mhartid"));
        assert_eq!(super::name(0x123), None);
    }
}
