//! Binary decoding from 32-bit instruction words.

use crate::encode::{cheri_f3, cheri_f7, unary_from_code, *};
use crate::instr::*;
use crate::Reg;

#[inline]
fn rd(w: u32) -> Reg {
    Reg::new(((w >> 7) & 0x1F) as u8)
}

#[inline]
fn rs1(w: u32) -> Reg {
    Reg::new(((w >> 15) & 0x1F) as u8)
}

#[inline]
fn rs2(w: u32) -> Reg {
    Reg::new(((w >> 20) & 0x1F) as u8)
}

#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}

#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}

#[inline]
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

#[inline]
fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | ((w >> 7) & 0x1F) as i32
}

#[inline]
fn imm_b(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 12 of the offset, sign-extended
    (sign << 12)
        | (((w >> 7) & 1) as i32) << 11
        | (((w >> 25) & 0x3F) as i32) << 5
        | (((w >> 8) & 0xF) as i32) << 1
}

#[inline]
fn imm_u(w: u32) -> u32 {
    w & 0xFFFF_F000
}

#[inline]
fn imm_j(w: u32) -> i32 {
    let sign = (w as i32) >> 31; // bit 20, sign-extended
    (sign << 20)
        | ((((w >> 12) & 0xFF) as i32) << 12)
        | ((((w >> 20) & 1) as i32) << 11)
        | ((((w >> 21) & 0x3FF) as i32) << 1)
}

impl Instr {
    /// Decode a 32-bit instruction word; `None` for unimplemented encodings.
    #[allow(clippy::too_many_lines)] // one match arm per opcode, by design
    pub fn decode(w: u32) -> Option<Instr> {
        use Instr::*;
        Some(match w & 0x7F {
            OP_LUI => Lui { rd: rd(w), imm: imm_u(w) },
            OP_AUIPC => Auipc { rd: rd(w), imm: imm_u(w) },
            OP_JAL => Jal { rd: rd(w), off: imm_j(w) },
            OP_JALR if funct3(w) == 0 => Jalr { rd: rd(w), rs1: rs1(w), off: imm_i(w) },
            OP_BRANCH => {
                let cond = match funct3(w) {
                    0 => BranchCond::Eq,
                    1 => BranchCond::Ne,
                    4 => BranchCond::Lt,
                    5 => BranchCond::Ge,
                    6 => BranchCond::Ltu,
                    7 => BranchCond::Geu,
                    _ => return None,
                };
                Branch { cond, rs1: rs1(w), rs2: rs2(w), off: imm_b(w) }
            }
            OP_LOAD => {
                let lw = match funct3(w) {
                    0 => LoadWidth::B,
                    1 => LoadWidth::H,
                    2 => LoadWidth::W,
                    4 => LoadWidth::Bu,
                    5 => LoadWidth::Hu,
                    _ => return None,
                };
                Load { w: lw, rd: rd(w), rs1: rs1(w), off: imm_i(w) }
            }
            OP_STORE => {
                let sw = match funct3(w) {
                    0 => StoreWidth::B,
                    1 => StoreWidth::H,
                    2 => StoreWidth::W,
                    _ => return None,
                };
                Store { w: sw, rs2: rs2(w), rs1: rs1(w), off: imm_s(w) }
            }
            OP_OPIMM => {
                let op = match funct3(w) {
                    0 => AluOp::Add,
                    1 => AluOp::Sll,
                    2 => AluOp::Slt,
                    3 => AluOp::Sltu,
                    4 => AluOp::Xor,
                    5 if funct7(w) == 0x20 => AluOp::Sra,
                    5 => AluOp::Srl,
                    6 => AluOp::Or,
                    7 => AluOp::And,
                    _ => return None,
                };
                let imm = match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => ((w >> 20) & 0x1F) as i32,
                    _ => imm_i(w),
                };
                OpImm { op, rd: rd(w), rs1: rs1(w), imm }
            }
            OP_OP if funct7(w) == 0x01 => {
                let op = match funct3(w) {
                    0 => MulOp::Mul,
                    1 => MulOp::Mulh,
                    2 => MulOp::Mulhsu,
                    3 => MulOp::Mulhu,
                    4 => MulOp::Div,
                    5 => MulOp::Divu,
                    6 => MulOp::Rem,
                    _ => MulOp::Remu,
                };
                MulDiv { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }
            }
            OP_OP => {
                let op = match (funct3(w), funct7(w)) {
                    (0, 0x00) => AluOp::Add,
                    (0, 0x20) => AluOp::Sub,
                    (1, 0x00) => AluOp::Sll,
                    (2, 0x00) => AluOp::Slt,
                    (3, 0x00) => AluOp::Sltu,
                    (4, 0x00) => AluOp::Xor,
                    (5, 0x00) => AluOp::Srl,
                    (5, 0x20) => AluOp::Sra,
                    (6, 0x00) => AluOp::Or,
                    (7, 0x00) => AluOp::And,
                    _ => return None,
                };
                Op { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }
            }
            OP_AMO if funct3(w) == 2 => {
                let op = match funct7(w) >> 2 {
                    0x00 => AmoOp::Add,
                    0x01 => AmoOp::Swap,
                    0x04 => AmoOp::Xor,
                    0x08 => AmoOp::Or,
                    0x0C => AmoOp::And,
                    0x10 => AmoOp::Min,
                    0x14 => AmoOp::Max,
                    0x18 => AmoOp::Minu,
                    0x1C => AmoOp::Maxu,
                    _ => return None,
                };
                Amo { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }
            }
            OP_MISCMEM => Fence,
            OP_SYSTEM => match funct3(w) {
                0 if imm_i(w) == 0 => Ecall,
                0 if imm_i(w) == 1 => Ebreak,
                2 => Csrrs { rd: rd(w), csr: ((w >> 20) & 0xFFF) as u16, rs1: rs1(w) },
                _ => return None,
            },
            OP_FP => match funct7(w) {
                0x00 => FOp { op: FpOp::Add, rd: rd(w), rs1: rs1(w), rs2: rs2(w) },
                0x04 => FOp { op: FpOp::Sub, rd: rd(w), rs1: rs1(w), rs2: rs2(w) },
                0x08 => FOp { op: FpOp::Mul, rd: rd(w), rs1: rs1(w), rs2: rs2(w) },
                0x0C => FOp { op: FpOp::Div, rd: rd(w), rs1: rs1(w), rs2: rs2(w) },
                0x14 => {
                    let op = if funct3(w) == 0 { FpOp::Min } else { FpOp::Max };
                    FOp { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }
                }
                0x2C => FSqrt { rd: rd(w), rs1: rs1(w) },
                0x50 => {
                    let op = match funct3(w) {
                        0 => FcmpOp::Le,
                        1 => FcmpOp::Lt,
                        2 => FcmpOp::Eq,
                        _ => return None,
                    };
                    FCmp { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }
                }
                0x60 => FCvtWS { rd: rd(w), rs1: rs1(w), signed: (w >> 20) & 1 == 0 },
                0x68 => FCvtSW { rd: rd(w), rs1: rs1(w), signed: (w >> 20) & 1 == 0 },
                _ => return None,
            },
            OP_CHERI => match funct3(w) {
                cheri_f3::REG => match funct7(w) {
                    cheri_f7::UNARY => {
                        CapUnary { op: unary_from_code((w >> 20) & 0x1F)?, rd: rd(w), cs1: rs1(w) }
                    }
                    cheri_f7::AND_PERM => CAndPerm { cd: rd(w), cs1: rs1(w), rs2: rs2(w) },
                    cheri_f7::SET_FLAGS => CSetFlags { cd: rd(w), cs1: rs1(w), rs2: rs2(w) },
                    cheri_f7::SET_ADDR => CSetAddr { cd: rd(w), cs1: rs1(w), rs2: rs2(w) },
                    cheri_f7::INC_OFFSET => CIncOffset { cd: rd(w), cs1: rs1(w), rs2: rs2(w) },
                    cheri_f7::SET_BOUNDS => CSetBounds { cd: rd(w), cs1: rs1(w), rs2: rs2(w) },
                    cheri_f7::SET_BOUNDS_EXACT => {
                        CSetBoundsExact { cd: rd(w), cs1: rs1(w), rs2: rs2(w) }
                    }
                    cheri_f7::SPECIAL_RW => {
                        CSpecialRw { cd: rd(w), cs1: rs1(w), scr: ((w >> 20) & 0x1F) as u8 }
                    }
                    _ => return None,
                },
                cheri_f3::SET_BOUNDS_IMM => {
                    CSetBoundsImm { cd: rd(w), cs1: rs1(w), imm: (w >> 20) & 0xFFF }
                }
                cheri_f3::INC_OFFSET_IMM => CIncOffsetImm { cd: rd(w), cs1: rs1(w), imm: imm_i(w) },
                cheri_f3::CLC => Clc { cd: rd(w), cs1: rs1(w), off: imm_i(w) },
                cheri_f3::CSC => Csc { cs2: rs2(w), cs1: rs1(w), off: imm_s(w) },
                _ => return None,
            },
            OP_CUSTOM0 if funct3(w) == 0 => match imm_i(w) {
                0 => Simt { op: SimtOp::Terminate },
                1 => Simt { op: SimtOp::Barrier },
                _ => return None,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_reconstruction() {
        // Branch with a negative offset.
        let i = Instr::Branch { cond: BranchCond::Ne, rs1: Reg::A0, rs2: Reg::A1, off: -8 };
        assert_eq!(Instr::decode(i.encode()), Some(i));
        // Jump with a large positive offset.
        let j = Instr::Jal { rd: Reg::RA, off: 0xF_F77E };
        assert_eq!(Instr::decode(j.encode()), Some(j));
        // Store with a negative offset.
        let s = Instr::Store { w: StoreWidth::W, rs2: Reg::A2, rs1: Reg::SP, off: -4 };
        assert_eq!(Instr::decode(s.encode()), Some(s));
    }

    #[test]
    fn junk_is_rejected() {
        assert_eq!(Instr::decode(0), None); // all zeros: illegal
        assert_eq!(Instr::decode(0xFFFF_FFFF), None);
    }
}
