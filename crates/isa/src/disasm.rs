//! Disassembly (`Display` for [`Instr`]).

use crate::csr;
use crate::instr::*;
use core::fmt;

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
    }
}

impl Instr {
    /// Bare mnemonic of the instruction, without operands — the compact
    /// per-issue label used by the structured trace (`simt-trace`) and the
    /// per-mnemonic CHERI histogram.
    pub fn mnemonic(&self) -> &'static str {
        use Instr::*;
        match *self {
            Lui { .. } => "lui",
            Auipc { .. } => "auipcc",
            Jal { .. } => "cjal",
            Jalr { .. } => "cjalr",
            Branch { cond, .. } => match cond {
                BranchCond::Eq => "beq",
                BranchCond::Ne => "bne",
                BranchCond::Lt => "blt",
                BranchCond::Ge => "bge",
                BranchCond::Ltu => "bltu",
                BranchCond::Geu => "bgeu",
            },
            Load { w, .. } => match w {
                LoadWidth::B => "lb",
                LoadWidth::H => "lh",
                LoadWidth::W => "lw",
                LoadWidth::Bu => "lbu",
                LoadWidth::Hu => "lhu",
            },
            Store { w, .. } => match w {
                StoreWidth::B => "sb",
                StoreWidth::H => "sh",
                StoreWidth::W => "sw",
            },
            OpImm { op, .. } => match op {
                AluOp::Add => "addi",
                AluOp::Sub => "subi",
                AluOp::Sll => "slli",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltui",
                AluOp::Xor => "xori",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Or => "ori",
                AluOp::And => "andi",
            },
            Op { op, .. } => alu_name(op),
            MulDiv { op, .. } => match op {
                MulOp::Mul => "mul",
                MulOp::Mulh => "mulh",
                MulOp::Mulhsu => "mulhsu",
                MulOp::Mulhu => "mulhu",
                MulOp::Div => "div",
                MulOp::Divu => "divu",
                MulOp::Rem => "rem",
                MulOp::Remu => "remu",
            },
            Amo { op, .. } => match op {
                AmoOp::Swap => "amoswap.w",
                AmoOp::Add => "amoadd.w",
                AmoOp::Xor => "amoxor.w",
                AmoOp::Or => "amoor.w",
                AmoOp::And => "amoand.w",
                AmoOp::Min => "amomin.w",
                AmoOp::Max => "amomax.w",
                AmoOp::Minu => "amominu.w",
                AmoOp::Maxu => "amomaxu.w",
            },
            Fence => "fence",
            Ecall => "ecall",
            Ebreak => "ebreak",
            Csrrs { .. } => "csrrs",
            FOp { op, .. } => match op {
                FpOp::Add => "fadd.s",
                FpOp::Sub => "fsub.s",
                FpOp::Mul => "fmul.s",
                FpOp::Div => "fdiv.s",
                FpOp::Min => "fmin.s",
                FpOp::Max => "fmax.s",
            },
            FSqrt { .. } => "fsqrt.s",
            FCmp { op, .. } => match op {
                FcmpOp::Eq => "feq.s",
                FcmpOp::Lt => "flt.s",
                FcmpOp::Le => "fle.s",
            },
            FCvtWS { signed, .. } => {
                if signed {
                    "fcvt.w.s"
                } else {
                    "fcvt.wu.s"
                }
            }
            FCvtSW { signed, .. } => {
                if signed {
                    "fcvt.s.w"
                } else {
                    "fcvt.s.wu"
                }
            }
            CapUnary { op, .. } => match op {
                UnaryCapOp::GetTag => "cgettag",
                UnaryCapOp::ClearTag => "ccleartag",
                UnaryCapOp::GetPerm => "cgetperm",
                UnaryCapOp::GetBase => "cgetbase",
                UnaryCapOp::GetLen => "cgetlen",
                UnaryCapOp::GetType => "cgettype",
                UnaryCapOp::GetSealed => "cgetsealed",
                UnaryCapOp::GetFlags => "cgetflags",
                UnaryCapOp::GetAddr => "cgetaddr",
                UnaryCapOp::Move => "cmove",
                UnaryCapOp::SealEntry => "csealentry",
                UnaryCapOp::Crrl => "crrl",
                UnaryCapOp::Cram => "cram",
            },
            CAndPerm { .. } => "candperm",
            CSetFlags { .. } => "csetflags",
            CSetAddr { .. } => "csetaddr",
            CIncOffset { .. } => "cincoffset",
            CIncOffsetImm { .. } => "cincoffsetimm",
            CSetBounds { .. } => "csetbounds",
            CSetBoundsExact { .. } => "csetboundsexact",
            CSetBoundsImm { .. } => "csetboundsimm",
            Clc { .. } => "clc",
            Csc { .. } => "csc",
            CSpecialRw { .. } => "cspecialrw",
            Simt { op: SimtOp::Terminate } => "simt.terminate",
            Simt { op: SimtOp::Barrier } => "simt.barrier",
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Auipc { rd, imm } => write!(f, "auipcc {rd}, {:#x}", imm >> 12),
            Jal { rd, off } => write!(f, "cjal {rd}, {off}"),
            Jalr { rd, rs1, off } => write!(f, "cjalr {rd}, {rs1}, {off}"),
            Branch { cond, rs1, rs2, off } => {
                let n = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{n} {rs1}, {rs2}, {off}")
            }
            Load { w, rd, rs1, off } => {
                let n = match w {
                    LoadWidth::B => "lb",
                    LoadWidth::H => "lh",
                    LoadWidth::W => "lw",
                    LoadWidth::Bu => "lbu",
                    LoadWidth::Hu => "lhu",
                };
                write!(f, "{n} {rd}, {off}({rs1})")
            }
            Store { w, rs2, rs1, off } => {
                let n = match w {
                    StoreWidth::B => "sb",
                    StoreWidth::H => "sh",
                    StoreWidth::W => "sw",
                };
                write!(f, "{n} {rs2}, {off}({rs1})")
            }
            OpImm { op, rd, rs1, imm } => {
                let n = match op {
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    _ => return write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(op)),
                };
                write!(f, "{n} {rd}, {rs1}, {imm}")
            }
            Op { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op)),
            MulDiv { op, rd, rs1, rs2 } => {
                let n = match op {
                    MulOp::Mul => "mul",
                    MulOp::Mulh => "mulh",
                    MulOp::Mulhsu => "mulhsu",
                    MulOp::Mulhu => "mulhu",
                    MulOp::Div => "div",
                    MulOp::Divu => "divu",
                    MulOp::Rem => "rem",
                    MulOp::Remu => "remu",
                };
                write!(f, "{n} {rd}, {rs1}, {rs2}")
            }
            Amo { op, rd, rs1, rs2 } => {
                let n = match op {
                    AmoOp::Swap => "amoswap.w",
                    AmoOp::Add => "amoadd.w",
                    AmoOp::Xor => "amoxor.w",
                    AmoOp::Or => "amoor.w",
                    AmoOp::And => "amoand.w",
                    AmoOp::Min => "amomin.w",
                    AmoOp::Max => "amomax.w",
                    AmoOp::Minu => "amominu.w",
                    AmoOp::Maxu => "amomaxu.w",
                };
                write!(f, "{n} {rd}, {rs2}, ({rs1})")
            }
            Fence => write!(f, "fence"),
            Ecall => write!(f, "ecall"),
            Ebreak => write!(f, "ebreak"),
            Csrrs { rd, csr: c, rs1 } => match csr::name(c) {
                Some(n) => write!(f, "csrr {rd}, {n}"),
                None => write!(f, "csrrs {rd}, {c:#x}, {rs1}"),
            },
            FOp { op, rd, rs1, rs2 } => {
                let n = match op {
                    FpOp::Add => "fadd.s",
                    FpOp::Sub => "fsub.s",
                    FpOp::Mul => "fmul.s",
                    FpOp::Div => "fdiv.s",
                    FpOp::Min => "fmin.s",
                    FpOp::Max => "fmax.s",
                };
                write!(f, "{n} {rd}, {rs1}, {rs2}")
            }
            FSqrt { rd, rs1 } => write!(f, "fsqrt.s {rd}, {rs1}"),
            FCmp { op, rd, rs1, rs2 } => {
                let n = match op {
                    FcmpOp::Eq => "feq.s",
                    FcmpOp::Lt => "flt.s",
                    FcmpOp::Le => "fle.s",
                };
                write!(f, "{n} {rd}, {rs1}, {rs2}")
            }
            FCvtWS { rd, rs1, signed } => {
                write!(f, "fcvt.w{}.s {rd}, {rs1}", if signed { "" } else { "u" })
            }
            FCvtSW { rd, rs1, signed } => {
                write!(f, "fcvt.s.w{} {rd}, {rs1}", if signed { "" } else { "u" })
            }
            CapUnary { op, rd, cs1 } => {
                let n = match op {
                    UnaryCapOp::GetTag => "cgettag",
                    UnaryCapOp::ClearTag => "ccleartag",
                    UnaryCapOp::GetPerm => "cgetperm",
                    UnaryCapOp::GetBase => "cgetbase",
                    UnaryCapOp::GetLen => "cgetlen",
                    UnaryCapOp::GetType => "cgettype",
                    UnaryCapOp::GetSealed => "cgetsealed",
                    UnaryCapOp::GetFlags => "cgetflags",
                    UnaryCapOp::GetAddr => "cgetaddr",
                    UnaryCapOp::Move => "cmove",
                    UnaryCapOp::SealEntry => "csealentry",
                    UnaryCapOp::Crrl => "crrl",
                    UnaryCapOp::Cram => "cram",
                };
                write!(f, "{n} {rd}, {cs1}")
            }
            CAndPerm { cd, cs1, rs2 } => write!(f, "candperm {cd}, {cs1}, {rs2}"),
            CSetFlags { cd, cs1, rs2 } => write!(f, "csetflags {cd}, {cs1}, {rs2}"),
            CSetAddr { cd, cs1, rs2 } => write!(f, "csetaddr {cd}, {cs1}, {rs2}"),
            CIncOffset { cd, cs1, rs2 } => write!(f, "cincoffset {cd}, {cs1}, {rs2}"),
            CIncOffsetImm { cd, cs1, imm } => write!(f, "cincoffsetimm {cd}, {cs1}, {imm}"),
            CSetBounds { cd, cs1, rs2 } => write!(f, "csetbounds {cd}, {cs1}, {rs2}"),
            CSetBoundsExact { cd, cs1, rs2 } => write!(f, "csetboundsexact {cd}, {cs1}, {rs2}"),
            CSetBoundsImm { cd, cs1, imm } => write!(f, "csetboundsimm {cd}, {cs1}, {imm}"),
            Clc { cd, cs1, off } => write!(f, "clc {cd}, {off}({cs1})"),
            Csc { cs2, cs1, off } => write!(f, "csc {cs2}, {off}({cs1})"),
            CSpecialRw { cd, cs1, scr } => write!(f, "cspecialrw {cd}, scr{scr}, {cs1}"),
            Simt { op: SimtOp::Terminate } => write!(f, "simt.terminate"),
            Simt { op: SimtOp::Barrier } => write!(f, "simt.barrier"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn mnemonics_match_display_heads() {
        let cases = [
            Instr::Load { w: LoadWidth::W, rd: Reg::A0, rs1: Reg::SP, off: 8 },
            Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, imm: 1 },
            Instr::Op { op: AluOp::Xor, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 },
            Instr::Clc { cd: Reg::A0, cs1: Reg::A1, off: 0 },
            Instr::Simt { op: SimtOp::Barrier },
            Instr::FCvtWS { rd: Reg::A0, rs1: Reg::A1, signed: false },
        ];
        for i in &cases {
            let full = i.to_string();
            let head = full.split_whitespace().next().unwrap();
            assert_eq!(i.mnemonic(), head, "mnemonic mismatch for '{full}'");
        }
    }

    #[test]
    fn representative_disassembly() {
        let i = Instr::Load { w: LoadWidth::W, rd: Reg::A0, rs1: Reg::SP, off: 8 };
        assert_eq!(i.to_string(), "lw a0, 8(sp)");
        let c = Instr::CSetBoundsImm { cd: Reg::A1, cs1: Reg::A0, imm: 64 };
        assert_eq!(c.to_string(), "csetboundsimm a1, a0, 64");
        let b = Instr::Simt { op: SimtOp::Barrier };
        assert_eq!(b.to_string(), "simt.barrier");
    }
}
