//! Binary encoding to 32-bit instruction words.
//!
//! The base ISA uses the standard RISC-V formats. The Xcheri extension lives
//! under major opcode `0x5B`; its sub-encodings are our own (documented on
//! [`Instr::encode`]) since the model is both producer and consumer.

use crate::instr::*;
use crate::Reg;

pub(crate) const OP_LUI: u32 = 0x37;
pub(crate) const OP_AUIPC: u32 = 0x17;
pub(crate) const OP_JAL: u32 = 0x6F;
pub(crate) const OP_JALR: u32 = 0x67;
pub(crate) const OP_BRANCH: u32 = 0x63;
pub(crate) const OP_LOAD: u32 = 0x03;
pub(crate) const OP_STORE: u32 = 0x23;
pub(crate) const OP_OPIMM: u32 = 0x13;
pub(crate) const OP_OP: u32 = 0x33;
pub(crate) const OP_AMO: u32 = 0x2F;
pub(crate) const OP_MISCMEM: u32 = 0x0F;
pub(crate) const OP_SYSTEM: u32 = 0x73;
pub(crate) const OP_FP: u32 = 0x53;
pub(crate) const OP_CHERI: u32 = 0x5B;
pub(crate) const OP_CUSTOM0: u32 = 0x0B;

/// CHERI funct3 minor opcodes under `0x5B`.
pub(crate) mod cheri_f3 {
    pub const REG: u32 = 0; // R-type capability ops
    pub const SET_BOUNDS_IMM: u32 = 1;
    pub const INC_OFFSET_IMM: u32 = 2;
    pub const CLC: u32 = 3;
    pub const CSC: u32 = 4;
}

/// CHERI funct7 codes for the R-type group.
pub(crate) mod cheri_f7 {
    pub const SET_BOUNDS: u32 = 0x01;
    pub const SET_BOUNDS_EXACT: u32 = 0x02;
    pub const SET_ADDR: u32 = 0x03;
    pub const INC_OFFSET: u32 = 0x04;
    pub const AND_PERM: u32 = 0x05;
    pub const SET_FLAGS: u32 = 0x06;
    pub const SPECIAL_RW: u32 = 0x08;
    pub const UNARY: u32 = 0x7F; // rs2 field selects the operation
}

pub(crate) fn unary_code(op: UnaryCapOp) -> u32 {
    use UnaryCapOp::*;
    match op {
        GetTag => 0,
        ClearTag => 1,
        GetPerm => 2,
        GetBase => 3,
        GetLen => 4,
        GetType => 5,
        GetSealed => 6,
        GetFlags => 7,
        GetAddr => 8,
        Move => 9,
        SealEntry => 10,
        Crrl => 11,
        Cram => 12,
    }
}

pub(crate) fn unary_from_code(code: u32) -> Option<UnaryCapOp> {
    use UnaryCapOp::*;
    Some(match code {
        0 => GetTag,
        1 => ClearTag,
        2 => GetPerm,
        3 => GetBase,
        4 => GetLen,
        5 => GetType,
        6 => GetSealed,
        7 => GetFlags,
        8 => GetAddr,
        9 => Move,
        10 => SealEntry,
        11 => Crrl,
        12 => Cram,
        _ => return None,
    })
}

fn r_type(opcode: u32, funct3: u32, funct7: u32, rd: Reg, rs1: Reg, rs2f: u32) -> u32 {
    (funct7 << 25)
        | (rs2f << 20)
        | (rs1.field() << 15)
        | (funct3 << 12)
        | (rd.field() << 7)
        | opcode
}

fn i_type(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-type immediate out of range: {imm}");
    ((imm as u32 & 0xFFF) << 20) | (rs1.field() << 15) | (funct3 << 12) | (rd.field() << 7) | opcode
}

fn i_type_u(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: u32) -> u32 {
    debug_assert!(imm < 4096, "unsigned I-type immediate out of range: {imm}");
    (imm << 20) | (rs1.field() << 15) | (funct3 << 12) | (rd.field() << 7) | opcode
}

fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-type immediate out of range: {imm}");
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25)
        | (rs2.field() << 20)
        | (rs1.field() << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn b_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, off: i32) -> u32 {
    debug_assert!(off % 2 == 0 && (-4096..=4094).contains(&off), "branch offset: {off}");
    let imm = off as u32 & 0x1FFF;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2.field() << 20)
        | (rs1.field() << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

fn u_type(opcode: u32, rd: Reg, imm: u32) -> u32 {
    debug_assert!(imm & 0xFFF == 0, "U-type immediate has low bits: {imm:#x}");
    imm | (rd.field() << 7) | opcode
}

fn j_type(opcode: u32, rd: Reg, off: i32) -> u32 {
    debug_assert!(off % 2 == 0 && (-(1 << 20)..(1 << 20)).contains(&off), "jump offset: {off}");
    let imm = off as u32 & 0x1F_FFFF;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd.field() << 7)
        | opcode
}

fn alu_imm_f3(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sll => 1,
        AluOp::Slt => 2,
        AluOp::Sltu => 3,
        AluOp::Xor => 4,
        AluOp::Srl | AluOp::Sra => 5,
        AluOp::Or => 6,
        AluOp::And => 7,
        AluOp::Sub => panic!("subi does not exist"),
    }
}

impl Instr {
    /// Encode to a 32-bit instruction word.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an immediate operand does not fit its
    /// encoding field; the code generator is responsible for range splitting.
    pub fn encode(self) -> u32 {
        use Instr::*;
        match self {
            Lui { rd, imm } => u_type(OP_LUI, rd, imm),
            Auipc { rd, imm } => u_type(OP_AUIPC, rd, imm),
            Jal { rd, off } => j_type(OP_JAL, rd, off),
            Jalr { rd, rs1, off } => i_type(OP_JALR, 0, rd, rs1, off),
            Branch { cond, rs1, rs2, off } => {
                let f3 = match cond {
                    BranchCond::Eq => 0,
                    BranchCond::Ne => 1,
                    BranchCond::Lt => 4,
                    BranchCond::Ge => 5,
                    BranchCond::Ltu => 6,
                    BranchCond::Geu => 7,
                };
                b_type(OP_BRANCH, f3, rs1, rs2, off)
            }
            Load { w, rd, rs1, off } => {
                let f3 = match w {
                    LoadWidth::B => 0,
                    LoadWidth::H => 1,
                    LoadWidth::W => 2,
                    LoadWidth::Bu => 4,
                    LoadWidth::Hu => 5,
                };
                i_type(OP_LOAD, f3, rd, rs1, off)
            }
            Store { w, rs2, rs1, off } => {
                let f3 = match w {
                    StoreWidth::B => 0,
                    StoreWidth::H => 1,
                    StoreWidth::W => 2,
                };
                s_type(OP_STORE, f3, rs1, rs2, off)
            }
            OpImm { op, rd, rs1, imm } => match op {
                AluOp::Sll => i_type_u(OP_OPIMM, 1, rd, rs1, (imm as u32) & 0x1F),
                AluOp::Srl => i_type_u(OP_OPIMM, 5, rd, rs1, (imm as u32) & 0x1F),
                AluOp::Sra => i_type_u(OP_OPIMM, 5, rd, rs1, ((imm as u32) & 0x1F) | 0x400),
                _ => i_type(OP_OPIMM, alu_imm_f3(op), rd, rs1, imm),
            },
            Op { op, rd, rs1, rs2 } => {
                let (f3, f7) = match op {
                    AluOp::Add => (0, 0x00),
                    AluOp::Sub => (0, 0x20),
                    AluOp::Sll => (1, 0x00),
                    AluOp::Slt => (2, 0x00),
                    AluOp::Sltu => (3, 0x00),
                    AluOp::Xor => (4, 0x00),
                    AluOp::Srl => (5, 0x00),
                    AluOp::Sra => (5, 0x20),
                    AluOp::Or => (6, 0x00),
                    AluOp::And => (7, 0x00),
                };
                r_type(OP_OP, f3, f7, rd, rs1, rs2.field())
            }
            MulDiv { op, rd, rs1, rs2 } => {
                let f3 = match op {
                    MulOp::Mul => 0,
                    MulOp::Mulh => 1,
                    MulOp::Mulhsu => 2,
                    MulOp::Mulhu => 3,
                    MulOp::Div => 4,
                    MulOp::Divu => 5,
                    MulOp::Rem => 6,
                    MulOp::Remu => 7,
                };
                r_type(OP_OP, f3, 0x01, rd, rs1, rs2.field())
            }
            Amo { op, rd, rs1, rs2 } => {
                let f5 = match op {
                    AmoOp::Add => 0x00,
                    AmoOp::Swap => 0x01,
                    AmoOp::Xor => 0x04,
                    AmoOp::Or => 0x08,
                    AmoOp::And => 0x0C,
                    AmoOp::Min => 0x10,
                    AmoOp::Max => 0x14,
                    AmoOp::Minu => 0x18,
                    AmoOp::Maxu => 0x1C,
                };
                r_type(OP_AMO, 2, f5 << 2, rd, rs1, rs2.field())
            }
            Fence => i_type(OP_MISCMEM, 0, Reg::ZERO, Reg::ZERO, 0),
            Ecall => i_type(OP_SYSTEM, 0, Reg::ZERO, Reg::ZERO, 0),
            Ebreak => i_type(OP_SYSTEM, 0, Reg::ZERO, Reg::ZERO, 1),
            Csrrs { rd, csr, rs1 } => i_type_u(OP_SYSTEM, 2, rd, rs1, csr as u32),
            FOp { op, rd, rs1, rs2 } => {
                let (f7, f3) = match op {
                    FpOp::Add => (0x00, 0),
                    FpOp::Sub => (0x04, 0),
                    FpOp::Mul => (0x08, 0),
                    FpOp::Div => (0x0C, 0),
                    FpOp::Min => (0x14, 0),
                    FpOp::Max => (0x14, 1),
                };
                r_type(OP_FP, f3, f7, rd, rs1, rs2.field())
            }
            FSqrt { rd, rs1 } => r_type(OP_FP, 0, 0x2C, rd, rs1, 0),
            FCmp { op, rd, rs1, rs2 } => {
                let f3 = match op {
                    FcmpOp::Le => 0,
                    FcmpOp::Lt => 1,
                    FcmpOp::Eq => 2,
                };
                r_type(OP_FP, f3, 0x50, rd, rs1, rs2.field())
            }
            FCvtWS { rd, rs1, signed } => r_type(OP_FP, 0, 0x60, rd, rs1, !signed as u32),
            FCvtSW { rd, rs1, signed } => r_type(OP_FP, 0, 0x68, rd, rs1, !signed as u32),

            CapUnary { op, rd, cs1 } => {
                r_type(OP_CHERI, cheri_f3::REG, cheri_f7::UNARY, rd, cs1, unary_code(op))
            }
            CAndPerm { cd, cs1, rs2 } => {
                r_type(OP_CHERI, cheri_f3::REG, cheri_f7::AND_PERM, cd, cs1, rs2.field())
            }
            CSetFlags { cd, cs1, rs2 } => {
                r_type(OP_CHERI, cheri_f3::REG, cheri_f7::SET_FLAGS, cd, cs1, rs2.field())
            }
            CSetAddr { cd, cs1, rs2 } => {
                r_type(OP_CHERI, cheri_f3::REG, cheri_f7::SET_ADDR, cd, cs1, rs2.field())
            }
            CIncOffset { cd, cs1, rs2 } => {
                r_type(OP_CHERI, cheri_f3::REG, cheri_f7::INC_OFFSET, cd, cs1, rs2.field())
            }
            CIncOffsetImm { cd, cs1, imm } => {
                i_type(OP_CHERI, cheri_f3::INC_OFFSET_IMM, cd, cs1, imm)
            }
            CSetBounds { cd, cs1, rs2 } => {
                r_type(OP_CHERI, cheri_f3::REG, cheri_f7::SET_BOUNDS, cd, cs1, rs2.field())
            }
            CSetBoundsExact { cd, cs1, rs2 } => {
                r_type(OP_CHERI, cheri_f3::REG, cheri_f7::SET_BOUNDS_EXACT, cd, cs1, rs2.field())
            }
            CSetBoundsImm { cd, cs1, imm } => {
                i_type_u(OP_CHERI, cheri_f3::SET_BOUNDS_IMM, cd, cs1, imm)
            }
            Clc { cd, cs1, off } => i_type(OP_CHERI, cheri_f3::CLC, cd, cs1, off),
            Csc { cs2, cs1, off } => s_type(OP_CHERI, cheri_f3::CSC, cs1, cs2, off),
            CSpecialRw { cd, cs1, scr } => {
                r_type(OP_CHERI, cheri_f3::REG, cheri_f7::SPECIAL_RW, cd, cs1, scr as u32)
            }
            Simt { op } => {
                let imm = match op {
                    SimtOp::Terminate => 0,
                    SimtOp::Barrier => 1,
                };
                i_type(OP_CUSTOM0, 0, Reg::ZERO, Reg::ZERO, imm)
            }
        }
    }
}
