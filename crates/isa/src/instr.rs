//! The instruction enumeration.

use crate::Reg;

/// ALU operations shared by the register and immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`). In capability mode the result of address
    /// arithmetic flows through `setAddr` (Figure 8).
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed less-than.
    Slt,
    /// Unsigned less-than.
    Sltu,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

/// M-extension multiply/divide operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of signed × signed.
    Mulh,
    /// High 32 bits of signed × unsigned.
    Mulhsu,
    /// High 32 bits of unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Load widths (with zero/sign extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadWidth {
    /// Sign-extended byte.
    B,
    /// Sign-extended half-word.
    H,
    /// Word.
    W,
    /// Zero-extended byte.
    Bu,
    /// Zero-extended half-word.
    Hu,
}

impl LoadWidth {
    /// Number of bytes transferred.
    pub fn bytes(self) -> u32 {
        match self {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W => 4,
        }
    }
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreWidth {
    /// Byte.
    B,
    /// Half-word.
    H,
    /// Word.
    W,
}

impl StoreWidth {
    /// Number of bytes transferred.
    pub fn bytes(self) -> u32 {
        match self {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
        }
    }
}

/// A-extension atomic memory operations (word-sized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Atomic swap.
    Swap,
    /// Atomic add.
    Add,
    /// Atomic xor.
    Xor,
    /// Atomic or.
    Or,
    /// Atomic and.
    And,
    /// Atomic signed minimum.
    Min,
    /// Atomic signed maximum.
    Max,
    /// Atomic unsigned minimum.
    Minu,
    /// Atomic unsigned maximum.
    Maxu,
}

/// Zfinx-style floating-point operations (operands in integer registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `fadd.s`
    Add,
    /// `fsub.s`
    Sub,
    /// `fmul.s`
    Mul,
    /// `fdiv.s` — served by the shared-function unit in SIMTight.
    Div,
    /// `fmin.s`
    Min,
    /// `fmax.s`
    Max,
}

/// Floating-point comparisons writing 0/1 to an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcmpOp {
    /// `feq.s`
    Eq,
    /// `flt.s`
    Lt,
    /// `fle.s`
    Le,
}

/// Unary CHERI inspection/manipulation operations (single `cs1` operand).
///
/// These map one-to-one onto the left column of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryCapOp {
    /// `CGetTag rd, cs1`
    GetTag,
    /// `CClearTag cd, cs1`
    ClearTag,
    /// `CGetPerm rd, cs1`
    GetPerm,
    /// `CGetBase rd, cs1` — shared-function-unit op in the optimised design.
    GetBase,
    /// `CGetLen rd, cs1` — shared-function-unit op in the optimised design.
    GetLen,
    /// `CGetType rd, cs1`
    GetType,
    /// `CGetSealed rd, cs1`
    GetSealed,
    /// `CGetFlags rd, cs1`
    GetFlags,
    /// `CGetAddr rd, cs1`
    GetAddr,
    /// `CMove cd, cs1`
    Move,
    /// `CSealEntry cd, cs1`
    SealEntry,
    /// `CRRL rd, rs1` (representable rounded length) — SFU op.
    Crrl,
    /// `CRAM rd, rs1` (representable alignment mask) — SFU op.
    Cram,
}

/// Custom SIMT control operations (custom-0 opcode space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimtOp {
    /// The executing thread is finished with the kernel.
    Terminate,
    /// Block-level barrier (`__syncthreads`).
    Barrier,
}

/// A decoded instruction.
///
/// Standard RISC-V memory and jump encodings double as their CHERI
/// counterparts when the SM runs in capability mode: `Load`/`Store` become
/// `CL*`/`CS*` (address operand is a capability), `Jal`/`Jalr` become
/// `CJAL`/`CJALR` and `Auipc` becomes `AUIPCC`, exactly as in CHERI-RISC-V's
/// capability encoding mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields are conventional rd/rs1/rs2/imm
pub enum Instr {
    /// Load upper immediate.
    Lui { rd: Reg, imm: u32 },
    /// Add upper immediate to PC (AUIPCC under CHERI).
    Auipc { rd: Reg, imm: u32 },
    /// Jump and link (CJAL under CHERI).
    Jal { rd: Reg, off: i32 },
    /// Jump and link register (CJALR under CHERI; `cs1` is a capability).
    Jalr { rd: Reg, rs1: Reg, off: i32 },
    /// Conditional branch.
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, off: i32 },
    /// Load (`CL[BHW][U]` under CHERI).
    Load { w: LoadWidth, rd: Reg, rs1: Reg, off: i32 },
    /// Store (`CS[BHW]` under CHERI).
    Store { w: StoreWidth, rs2: Reg, rs1: Reg, off: i32 },
    /// ALU with immediate operand.
    OpImm { op: AluOp, rd: Reg, rs1: Reg, imm: i32 },
    /// ALU with register operands.
    Op { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Multiply/divide.
    MulDiv { op: MulOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Word-sized atomic (address operand is a capability under CHERI).
    Amo { op: AmoOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Memory fence (a no-op in the single-SM model).
    Fence,
    /// Environment call — treated as a fatal trap.
    Ecall,
    /// Breakpoint — treated as a fatal trap.
    Ebreak,
    /// CSR read (`csrrs rd, csr, x0`); writes are not supported.
    Csrrs { rd: Reg, csr: u16, rs1: Reg },
    /// Floating-point arithmetic (Zfinx: integer registers).
    FOp { op: FpOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Floating-point square root — shared-function-unit op.
    FSqrt { rd: Reg, rs1: Reg },
    /// Floating-point comparison.
    FCmp { op: FcmpOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Convert float to signed (`signed=true`) / unsigned word.
    FCvtWS { rd: Reg, rs1: Reg, signed: bool },
    /// Convert signed/unsigned word to float.
    FCvtSW { rd: Reg, rs1: Reg, signed: bool },

    // --- CHERI (Figure 4) ---
    /// Unary capability operation.
    CapUnary { op: UnaryCapOp, rd: Reg, cs1: Reg },
    /// `CAndPerm cd, cs1, rs2`.
    CAndPerm { cd: Reg, cs1: Reg, rs2: Reg },
    /// `CSetFlags cd, cs1, rs2`.
    CSetFlags { cd: Reg, cs1: Reg, rs2: Reg },
    /// `CSetAddr cd, cs1, rs2`.
    CSetAddr { cd: Reg, cs1: Reg, rs2: Reg },
    /// `CIncOffset cd, cs1, rs2`.
    CIncOffset { cd: Reg, cs1: Reg, rs2: Reg },
    /// `CIncOffsetImm cd, cs1, imm`.
    CIncOffsetImm { cd: Reg, cs1: Reg, imm: i32 },
    /// `CSetBounds cd, cs1, rs2` — SFU op in the optimised design.
    CSetBounds { cd: Reg, cs1: Reg, rs2: Reg },
    /// `CSetBoundsExact cd, cs1, rs2` — SFU op.
    CSetBoundsExact { cd: Reg, cs1: Reg, rs2: Reg },
    /// `CSetBoundsImm cd, cs1, imm` (unsigned 12-bit length) — SFU op.
    CSetBoundsImm { cd: Reg, cs1: Reg, imm: u32 },
    /// `CLC cd, cs1, imm`: load a 64+1-bit capability (two-flit access).
    Clc { cd: Reg, cs1: Reg, off: i32 },
    /// `CSC cs2, cs1, imm`: store a capability (two-flit; extra operand-fetch
    /// cycle against the single-read-port metadata SRF).
    Csc { cs2: Reg, cs1: Reg, off: i32 },
    /// `CSpecialRW cd, scr` (read-only in the model: `cs1 = zero`).
    CSpecialRw { cd: Reg, cs1: Reg, scr: u8 },

    // --- Custom SIMT control ---
    /// SIMT control (barrier / terminate).
    Simt { op: SimtOp },
}

impl Instr {
    /// The destination register, if the instruction writes one.
    pub fn dest(self) -> Option<Reg> {
        use Instr::*;
        let rd = match self {
            Lui { rd, .. } | Auipc { rd, .. } | Jal { rd, .. } | Jalr { rd, .. } => rd,
            Load { rd, .. } | OpImm { rd, .. } | Op { rd, .. } | MulDiv { rd, .. } => rd,
            Amo { rd, .. } | Csrrs { rd, .. } => rd,
            FOp { rd, .. } | FSqrt { rd, .. } | FCmp { rd, .. } => rd,
            FCvtWS { rd, .. } | FCvtSW { rd, .. } => rd,
            CapUnary { rd, .. } => rd,
            CAndPerm { cd, .. } | CSetFlags { cd, .. } | CSetAddr { cd, .. } => cd,
            CIncOffset { cd, .. } | CIncOffsetImm { cd, .. } => cd,
            CSetBounds { cd, .. } | CSetBoundsExact { cd, .. } | CSetBoundsImm { cd, .. } => cd,
            Clc { cd, .. } | CSpecialRw { cd, .. } => cd,
            Branch { .. } | Store { .. } | Csc { .. } | Fence | Ecall | Ebreak | Simt { .. } => {
                return None
            }
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// True for instructions that the optimised design executes in the
    /// shared function unit (`CGetBase`, `CGetLen`, `CSetBounds[..]`,
    /// `CRRL`, `CRAM` — Section 3.3).
    pub fn is_sfu_cap_op(self) -> bool {
        use UnaryCapOp::*;
        matches!(
            self,
            Instr::CapUnary { op: GetBase | GetLen | Crrl | Cram, .. }
                | Instr::CSetBounds { .. }
                | Instr::CSetBoundsExact { .. }
                | Instr::CSetBoundsImm { .. }
        )
    }
}
