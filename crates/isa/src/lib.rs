//! The instruction set of the CHERI-SIMT model: RV32IMA, a Zfinx-style
//! single-precision float subset, the Xcheri extension of Figure 4, and two
//! custom SIMT control operations (warp barrier / thread terminate).
//!
//! SIMTight implements RISC-V's `rv32ima_zfinx` profile — a 32-bit machine
//! with integer, multiply/divide, atomics and single-precision float in the
//! integer register file — extended with a large subset of version 9 of the
//! 32-bit CHERI instruction set.
//!
//! Like CHERI-RISC-V, the model runs pure-capability code in *capability
//! mode*: the standard load/store/jump encodings (`LW`, `SW`, `JALR`, ...)
//! take a capability in their address operand when the SM is configured for
//! CHERI. Only genuinely new operations (capability manipulation, `CLC`,
//! `CSC`, `CSpecialRW`, ...) get encodings of their own, under the CHERI
//! opcode `0x5B`.
//!
//! # Example
//!
//! ```
//! use simt_isa::{Instr, Reg, AluOp};
//!
//! let i = Instr::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
//! let word = i.encode();
//! assert_eq!(Instr::decode(word), Some(i));
//! assert_eq!(i.to_string(), "add a0, a1, a2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod csr;
mod decode;
mod disasm;
mod encode;
mod instr;
mod reg;

pub use instr::{
    AluOp, AmoOp, BranchCond, FcmpOp, FpOp, Instr, LoadWidth, MulOp, SimtOp, StoreWidth, UnaryCapOp,
};
pub use reg::Reg;

/// Special capability registers read/written by `CSpecialRW`.
pub mod scr {
    /// The program-counter capability (read-only via `CSpecialRW`).
    pub const PCC: u8 = 0;
    /// Default data capability (unused in pure-capability mode, kept null).
    pub const DDC: u8 = 1;
    /// Kernel-argument block capability, set by the host at launch.
    pub const ARG: u8 = 28;
    /// Stack-region capability (whole per-SM stack arena), set at launch.
    pub const STACK: u8 = 29;
    /// Shared-local-memory (scratchpad) capability, set at launch.
    pub const SHARED: u8 = 30;
    /// Global almighty-data capability for runtime services, set at launch.
    pub const GLOBAL: u8 = 31;
}
