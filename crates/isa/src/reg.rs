//! General-purpose register names.

use core::fmt;

/// One of the 32 general-purpose registers.
///
/// Under CHERI every register is 65 bits wide: a 32-bit general-purpose part
/// plus 33 bits of capability metadata. Operand names `rd`/`rs1`/`rs2` refer
/// to the 32-bit part, `cd`/`cs1`/`cs2` to the full contents (Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register (null capability under CHERI).
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer (a capability in pure-capability mode).
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary t0.
    pub const T0: Reg = Reg(5);
    /// Temporary t1.
    pub const T1: Reg = Reg(6);
    /// Temporary t2.
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved register s1.
    pub const S1: Reg = Reg(9);
    /// Argument/return a0.
    pub const A0: Reg = Reg(10);
    /// Argument/return a1.
    pub const A1: Reg = Reg(11);
    /// Argument a2.
    pub const A2: Reg = Reg(12);
    /// Argument a3.
    pub const A3: Reg = Reg(13);
    /// Argument a4.
    pub const A4: Reg = Reg(14);
    /// Argument a5.
    pub const A5: Reg = Reg(15);

    /// Construct from an index.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    #[inline]
    pub fn new(n: u8) -> Reg {
        assert!(n < 32, "register index out of range: {n}");
        Reg(n)
    }

    /// The register's index, 0..=31.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The register's 5-bit encoding field.
    #[inline]
    pub fn field(self) -> u32 {
        self.0 as u32
    }

    /// Is this the hard-wired zero register?
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterate over all 32 registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

/// ABI names, used by the disassembler.
pub(crate) const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(ABI_NAMES[self.index()])
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_indices() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::SP.index(), 2);
        assert_eq!(Reg::new(31).to_string(), "t6");
        assert_eq!(Reg::all().count(), 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }
}
