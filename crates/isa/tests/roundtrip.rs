//! Encode/decode roundtrip over the whole instruction space.

use proptest::prelude::*;
use simt_isa::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn branch_off() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

fn jump_off() -> impl Strategy<Value = i32> {
    (-(1 << 19)..(1 << 19)).prop_map(|x: i32| x * 2)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
    ])
}

fn instr() -> impl Strategy<Value = Instr> {
    let r = reg;
    prop_oneof![
        (r(), any::<u32>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm: imm & 0xFFFF_F000 }),
        (r(), any::<u32>()).prop_map(|(rd, imm)| Instr::Auipc { rd, imm: imm & 0xFFFF_F000 }),
        (r(), jump_off()).prop_map(|(rd, off)| Instr::Jal { rd, off }),
        (r(), r(), imm12()).prop_map(|(rd, rs1, off)| Instr::Jalr { rd, rs1, off }),
        (
            prop::sample::select(vec![
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
                BranchCond::Ltu,
                BranchCond::Geu
            ]),
            r(),
            r(),
            branch_off()
        )
            .prop_map(|(cond, rs1, rs2, off)| Instr::Branch { cond, rs1, rs2, off }),
        (
            prop::sample::select(vec![
                LoadWidth::B,
                LoadWidth::H,
                LoadWidth::W,
                LoadWidth::Bu,
                LoadWidth::Hu
            ]),
            r(),
            r(),
            imm12()
        )
            .prop_map(|(w, rd, rs1, off)| Instr::Load { w, rd, rs1, off }),
        (
            prop::sample::select(vec![StoreWidth::B, StoreWidth::H, StoreWidth::W]),
            r(),
            r(),
            imm12()
        )
            .prop_map(|(w, rs2, rs1, off)| Instr::Store { w, rs2, rs1, off }),
        (alu_op(), r(), r(), imm12()).prop_map(|(op, rd, rs1, imm)| {
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm & 0x1F,
                _ => imm,
            };
            // subi does not exist; degrade to addi
            let op = if op == AluOp::Sub { AluOp::Add } else { op };
            Instr::OpImm { op, rd, rs1, imm }
        }),
        (alu_op(), r(), r(), r()).prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        (
            prop::sample::select(vec![
                MulOp::Mul,
                MulOp::Mulh,
                MulOp::Mulhsu,
                MulOp::Mulhu,
                MulOp::Div,
                MulOp::Divu,
                MulOp::Rem,
                MulOp::Remu
            ]),
            r(),
            r(),
            r()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::MulDiv { op, rd, rs1, rs2 }),
        (
            prop::sample::select(vec![
                AmoOp::Swap,
                AmoOp::Add,
                AmoOp::Xor,
                AmoOp::Or,
                AmoOp::And,
                AmoOp::Min,
                AmoOp::Max,
                AmoOp::Minu,
                AmoOp::Maxu
            ]),
            r(),
            r(),
            r()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Amo { op, rd, rs1, rs2 }),
        (r(), 0u16..4096, r()).prop_map(|(rd, csr, rs1)| Instr::Csrrs { rd, csr, rs1 }),
        (
            prop::sample::select(vec![FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div, FpOp::Min, FpOp::Max]),
            r(),
            r(),
            r()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::FOp { op, rd, rs1, rs2 }),
        (r(), r()).prop_map(|(rd, rs1)| Instr::FSqrt { rd, rs1 }),
        (prop::sample::select(vec![FcmpOp::Eq, FcmpOp::Lt, FcmpOp::Le]), r(), r(), r())
            .prop_map(|(op, rd, rs1, rs2)| Instr::FCmp { op, rd, rs1, rs2 }),
        (r(), r(), any::<bool>()).prop_map(|(rd, rs1, signed)| Instr::FCvtWS { rd, rs1, signed }),
        (r(), r(), any::<bool>()).prop_map(|(rd, rs1, signed)| Instr::FCvtSW { rd, rs1, signed }),
        (
            prop::sample::select(vec![
                UnaryCapOp::GetTag,
                UnaryCapOp::ClearTag,
                UnaryCapOp::GetPerm,
                UnaryCapOp::GetBase,
                UnaryCapOp::GetLen,
                UnaryCapOp::GetType,
                UnaryCapOp::GetSealed,
                UnaryCapOp::GetFlags,
                UnaryCapOp::GetAddr,
                UnaryCapOp::Move,
                UnaryCapOp::SealEntry,
                UnaryCapOp::Crrl,
                UnaryCapOp::Cram
            ]),
            r(),
            r()
        )
            .prop_map(|(op, rd, cs1)| Instr::CapUnary { op, rd, cs1 }),
        (r(), r(), r()).prop_map(|(cd, cs1, rs2)| Instr::CAndPerm { cd, cs1, rs2 }),
        (r(), r(), r()).prop_map(|(cd, cs1, rs2)| Instr::CSetFlags { cd, cs1, rs2 }),
        (r(), r(), r()).prop_map(|(cd, cs1, rs2)| Instr::CSetAddr { cd, cs1, rs2 }),
        (r(), r(), r()).prop_map(|(cd, cs1, rs2)| Instr::CIncOffset { cd, cs1, rs2 }),
        (r(), r(), imm12()).prop_map(|(cd, cs1, imm)| Instr::CIncOffsetImm { cd, cs1, imm }),
        (r(), r(), r()).prop_map(|(cd, cs1, rs2)| Instr::CSetBounds { cd, cs1, rs2 }),
        (r(), r(), r()).prop_map(|(cd, cs1, rs2)| Instr::CSetBoundsExact { cd, cs1, rs2 }),
        (r(), r(), 0u32..4096).prop_map(|(cd, cs1, imm)| Instr::CSetBoundsImm { cd, cs1, imm }),
        (r(), r(), imm12()).prop_map(|(cd, cs1, off)| Instr::Clc { cd, cs1, off }),
        (r(), r(), imm12()).prop_map(|(cs2, cs1, off)| Instr::Csc { cs2, cs1, off }),
        (r(), r(), 0u8..32).prop_map(|(cd, cs1, scr)| Instr::CSpecialRw { cd, cs1, scr }),
        prop::sample::select(vec![
            Instr::Fence,
            Instr::Ecall,
            Instr::Ebreak,
            Instr::Simt { op: SimtOp::Terminate },
            Instr::Simt { op: SimtOp::Barrier }
        ]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Every instruction round-trips through its 32-bit encoding.
    #[test]
    fn encode_decode_roundtrip(i in instr()) {
        let w = i.encode();
        prop_assert_eq!(Instr::decode(w), Some(i), "word={:#010x}", w);
    }

    /// Disassembly never panics and is never empty.
    #[test]
    fn disasm_total(i in instr()) {
        prop_assert!(!i.to_string().is_empty());
    }

    /// Decode is total over arbitrary words (no panics).
    #[test]
    fn decode_total(w in any::<u32>()) {
        let _ = Instr::decode(w);
    }
}
