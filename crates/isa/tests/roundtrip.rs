//! Encode/decode roundtrip over the whole instruction space, driven by a
//! seeded deterministic PRNG (the workspace builds offline, so no proptest).

use sim_prng::Prng;
use simt_isa::*;

const CASES: usize = 8192;

fn reg(r: &mut Prng) -> Reg {
    Reg::new(r.range_u32(0, 32) as u8)
}

fn imm12(r: &mut Prng) -> i32 {
    r.range_i32(-2048, 2048)
}

fn branch_off(r: &mut Prng) -> i32 {
    r.range_i32(-2048, 2048) * 2
}

fn jump_off(r: &mut Prng) -> i32 {
    r.range_i32(-(1 << 19), 1 << 19) * 2
}

fn alu_op(r: &mut Prng) -> AluOp {
    *r.choose(&[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
    ])
}

fn instr(r: &mut Prng) -> Instr {
    match r.range_u32(0, 26) {
        0 => Instr::Lui { rd: reg(r), imm: r.next_u32() & 0xFFFF_F000 },
        1 => Instr::Auipc { rd: reg(r), imm: r.next_u32() & 0xFFFF_F000 },
        2 => Instr::Jal { rd: reg(r), off: jump_off(r) },
        3 => Instr::Jalr { rd: reg(r), rs1: reg(r), off: imm12(r) },
        4 => Instr::Branch {
            cond: *r.choose(&[
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
                BranchCond::Ltu,
                BranchCond::Geu,
            ]),
            rs1: reg(r),
            rs2: reg(r),
            off: branch_off(r),
        },
        5 => Instr::Load {
            w: *r.choose(&[LoadWidth::B, LoadWidth::H, LoadWidth::W, LoadWidth::Bu, LoadWidth::Hu]),
            rd: reg(r),
            rs1: reg(r),
            off: imm12(r),
        },
        6 => Instr::Store {
            w: *r.choose(&[StoreWidth::B, StoreWidth::H, StoreWidth::W]),
            rs2: reg(r),
            rs1: reg(r),
            off: imm12(r),
        },
        7 => {
            let op = alu_op(r);
            let imm = imm12(r);
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm & 0x1F,
                _ => imm,
            };
            // subi does not exist; degrade to addi
            let op = if op == AluOp::Sub { AluOp::Add } else { op };
            Instr::OpImm { op, rd: reg(r), rs1: reg(r), imm }
        }
        8 => Instr::Op { op: alu_op(r), rd: reg(r), rs1: reg(r), rs2: reg(r) },
        9 => Instr::MulDiv {
            op: *r.choose(&[
                MulOp::Mul,
                MulOp::Mulh,
                MulOp::Mulhsu,
                MulOp::Mulhu,
                MulOp::Div,
                MulOp::Divu,
                MulOp::Rem,
                MulOp::Remu,
            ]),
            rd: reg(r),
            rs1: reg(r),
            rs2: reg(r),
        },
        10 => Instr::Amo {
            op: *r.choose(&[
                AmoOp::Swap,
                AmoOp::Add,
                AmoOp::Xor,
                AmoOp::Or,
                AmoOp::And,
                AmoOp::Min,
                AmoOp::Max,
                AmoOp::Minu,
                AmoOp::Maxu,
            ]),
            rd: reg(r),
            rs1: reg(r),
            rs2: reg(r),
        },
        11 => Instr::Csrrs { rd: reg(r), csr: r.range_u32(0, 4096) as u16, rs1: reg(r) },
        12 => Instr::FOp {
            op: *r.choose(&[FpOp::Add, FpOp::Sub, FpOp::Mul, FpOp::Div, FpOp::Min, FpOp::Max]),
            rd: reg(r),
            rs1: reg(r),
            rs2: reg(r),
        },
        13 => Instr::FSqrt { rd: reg(r), rs1: reg(r) },
        14 => Instr::FCmp {
            op: *r.choose(&[FcmpOp::Eq, FcmpOp::Lt, FcmpOp::Le]),
            rd: reg(r),
            rs1: reg(r),
            rs2: reg(r),
        },
        15 => Instr::FCvtWS { rd: reg(r), rs1: reg(r), signed: r.next_bool() },
        16 => Instr::FCvtSW { rd: reg(r), rs1: reg(r), signed: r.next_bool() },
        17 => Instr::CapUnary {
            op: *r.choose(&[
                UnaryCapOp::GetTag,
                UnaryCapOp::ClearTag,
                UnaryCapOp::GetPerm,
                UnaryCapOp::GetBase,
                UnaryCapOp::GetLen,
                UnaryCapOp::GetType,
                UnaryCapOp::GetSealed,
                UnaryCapOp::GetFlags,
                UnaryCapOp::GetAddr,
                UnaryCapOp::Move,
                UnaryCapOp::SealEntry,
                UnaryCapOp::Crrl,
                UnaryCapOp::Cram,
            ]),
            rd: reg(r),
            cs1: reg(r),
        },
        18 => Instr::CAndPerm { cd: reg(r), cs1: reg(r), rs2: reg(r) },
        19 => Instr::CSetFlags { cd: reg(r), cs1: reg(r), rs2: reg(r) },
        20 => Instr::CSetAddr { cd: reg(r), cs1: reg(r), rs2: reg(r) },
        21 => match r.range_u32(0, 2) {
            0 => Instr::CIncOffset { cd: reg(r), cs1: reg(r), rs2: reg(r) },
            _ => Instr::CIncOffsetImm { cd: reg(r), cs1: reg(r), imm: imm12(r) },
        },
        22 => match r.range_u32(0, 3) {
            0 => Instr::CSetBounds { cd: reg(r), cs1: reg(r), rs2: reg(r) },
            1 => Instr::CSetBoundsExact { cd: reg(r), cs1: reg(r), rs2: reg(r) },
            _ => Instr::CSetBoundsImm { cd: reg(r), cs1: reg(r), imm: r.range_u32(0, 4096) },
        },
        23 => Instr::Clc { cd: reg(r), cs1: reg(r), off: imm12(r) },
        24 => Instr::Csc { cs2: reg(r), cs1: reg(r), off: imm12(r) },
        25 => match r.range_u32(0, 6) {
            0 => Instr::CSpecialRw { cd: reg(r), cs1: reg(r), scr: r.range_u32(0, 32) as u8 },
            1 => Instr::Fence,
            2 => Instr::Ecall,
            3 => Instr::Ebreak,
            4 => Instr::Simt { op: SimtOp::Terminate },
            _ => Instr::Simt { op: SimtOp::Barrier },
        },
        _ => unreachable!(),
    }
}

/// Every instruction round-trips through its 32-bit encoding.
#[test]
fn encode_decode_roundtrip() {
    let mut r = Prng::seed_from_u64(0x15A_0001);
    for _ in 0..CASES {
        let i = instr(&mut r);
        let w = i.encode();
        assert_eq!(Instr::decode(w), Some(i), "word={w:#010x} instr={i:?}");
    }
}

/// Disassembly never panics and is never empty.
#[test]
fn disasm_total() {
    let mut r = Prng::seed_from_u64(0x15A_0002);
    for _ in 0..CASES {
        let i = instr(&mut r);
        assert!(!i.to_string().is_empty(), "{i:?}");
    }
}

/// Decode is total over arbitrary words (no panics).
#[test]
fn decode_total() {
    let mut r = Prng::seed_from_u64(0x15A_0003);
    for _ in 0..CASES {
        let _ = Instr::decode(r.next_u32());
    }
    // And over structured junk: every opcode with zeroed/set fields.
    for opc in 0u32..128 {
        let _ = Instr::decode(opc);
        let _ = Instr::decode(opc | 0xFFFF_FF80);
    }
}
