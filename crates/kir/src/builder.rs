//! The ergonomic kernel builder — the NoCL-equivalent authoring surface.

use crate::expr::*;

/// Builds a [`Kernel`] with CUDA-style structure.
///
/// Control flow is expressed with closures over the builder; the builder
/// maintains a block stack so statements land in the innermost open block.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<ParamDecl>,
    shared: Vec<SharedDecl>,
    vars: Vec<Ty>,
    var_names: Vec<String>,
    blocks: Vec<Vec<Stmt>>,
}

impl KernelBuilder {
    /// Start a kernel.
    pub fn new(name: &str) -> Self {
        KernelBuilder {
            name: name.to_string(),
            params: Vec::new(),
            shared: Vec::new(),
            vars: Vec::new(),
            var_names: Vec::new(),
            blocks: vec![Vec::new()],
        }
    }

    // ---- Declarations ----

    /// Declare a `u32` parameter; returns the expression reading it.
    pub fn param_u32(&mut self, name: &str) -> Expr {
        self.param(name, Ty::U32)
    }

    /// Declare an `i32` parameter.
    pub fn param_i32(&mut self, name: &str) -> Expr {
        self.param(name, Ty::I32)
    }

    /// Declare an `f32` parameter.
    pub fn param_f32(&mut self, name: &str) -> Expr {
        self.param(name, Ty::F32)
    }

    /// Declare a pointer parameter (a device buffer).
    pub fn param_ptr(&mut self, name: &str, elem: Elem) -> Expr {
        self.param(name, Ty::Ptr(elem))
    }

    fn param(&mut self, name: &str, ty: Ty) -> Expr {
        self.params.push(ParamDecl { name: name.to_string(), ty });
        Expr::Param(self.params.len() - 1, ty)
    }

    /// Declare a shared local array (`declareShared` in NoCL, `__shared__`
    /// in CUDA); returns its base pointer.
    pub fn shared(&mut self, name: &str, elem: Elem, len: u32) -> Expr {
        self.shared.push(SharedDecl { name: name.to_string(), elem, len });
        Expr::Shared(self.shared.len() - 1, elem)
    }

    /// Declare a local variable of the given type, initialised to zero.
    pub fn var(&mut self, name: &str, ty: Ty) -> Expr {
        self.vars.push(ty);
        self.var_names.push(name.to_string());
        Expr::Var(self.vars.len() - 1, ty)
    }

    /// Declare a `u32` local variable.
    pub fn var_u32(&mut self, name: &str) -> Expr {
        self.var(name, Ty::U32)
    }

    /// Declare an `i32` local variable.
    pub fn var_i32(&mut self, name: &str) -> Expr {
        self.var(name, Ty::I32)
    }

    /// Declare an `f32` local variable.
    pub fn var_f32(&mut self, name: &str) -> Expr {
        self.var(name, Ty::F32)
    }

    /// Declare a pointer-typed local variable (for pointer-select patterns
    /// like BlkStencil's).
    pub fn var_ptr(&mut self, name: &str, elem: Elem) -> Expr {
        self.var(name, Ty::Ptr(elem))
    }

    // ---- Built-ins ----

    /// `threadIdx.x`
    pub fn thread_idx(&self) -> Expr {
        Expr::Special(Special::ThreadIdx)
    }

    /// `blockIdx.x`
    pub fn block_idx(&self) -> Expr {
        Expr::Special(Special::BlockIdx)
    }

    /// `blockDim.x`
    pub fn block_dim(&self) -> Expr {
        Expr::Special(Special::BlockDim)
    }

    /// `gridDim.x`
    pub fn grid_dim(&self) -> Expr {
        Expr::Special(Special::GridDim)
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x`
    pub fn global_id(&self) -> Expr {
        self.block_idx() * self.block_dim() + self.thread_idx()
    }

    /// `gridDim.x * blockDim.x` (grid-stride loop step).
    pub fn global_threads(&self) -> Expr {
        self.grid_dim() * self.block_dim()
    }

    // ---- Statements ----

    fn emit(&mut self, s: Stmt) {
        self.blocks.last_mut().expect("block stack").push(s);
    }

    /// `var = value`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a `Var` expression.
    pub fn assign(&mut self, var: &Expr, value: Expr) {
        match var {
            Expr::Var(id, _) => self.emit(Stmt::Assign(*id, value)),
            other => panic!("assign target must be a variable, got {other:?}"),
        }
    }

    /// `ptr[index] = value`.
    pub fn store(&mut self, ptr: &Expr, index: Expr, value: Expr) {
        self.emit(Stmt::Store { ptr: ptr.clone(), index, value });
    }

    /// `__syncthreads()`.
    pub fn barrier(&mut self) {
        self.emit(Stmt::Barrier);
    }

    /// `atomicAdd(&ptr[index], value)` (result discarded).
    pub fn atomic_add(&mut self, ptr: &Expr, index: Expr, value: Expr) {
        self.atomic(simt_isa::AmoOp::Add, ptr, index, value);
    }

    /// `atomicMin(&ptr[index], value)` (signed).
    pub fn atomic_min(&mut self, ptr: &Expr, index: Expr, value: Expr) {
        self.atomic(simt_isa::AmoOp::Min, ptr, index, value);
    }

    /// `atomicMax(&ptr[index], value)` (signed).
    pub fn atomic_max(&mut self, ptr: &Expr, index: Expr, value: Expr) {
        self.atomic(simt_isa::AmoOp::Max, ptr, index, value);
    }

    /// Generic atomic.
    pub fn atomic(&mut self, op: simt_isa::AmoOp, ptr: &Expr, index: Expr, value: Expr) {
        self.emit(Stmt::Atomic { op, ptr: ptr.clone(), index, value });
    }

    /// `if cond { then }`.
    pub fn if_(&mut self, cond: Expr, then_: impl FnOnce(&mut Self)) {
        self.blocks.push(Vec::new());
        then_(self);
        let t = self.blocks.pop().unwrap();
        self.emit(Stmt::If { cond, then_: t, else_: Vec::new() });
    }

    /// `if cond { then } else { else }`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_: impl FnOnce(&mut Self),
        else_: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        then_(self);
        let t = self.blocks.pop().unwrap();
        self.blocks.push(Vec::new());
        else_(self);
        let e = self.blocks.pop().unwrap();
        self.emit(Stmt::If { cond, then_: t, else_: e });
    }

    /// `while cond { body }`.
    pub fn while_(&mut self, cond: Expr, body: impl FnOnce(&mut Self)) {
        self.blocks.push(Vec::new());
        body(self);
        let b = self.blocks.pop().unwrap();
        self.emit(Stmt::While { cond, body: b });
    }

    /// CUDA-style strided for loop: `for (var = init; var < bound; var +=
    /// step) { body }` with an unsigned comparison.
    pub fn for_(
        &mut self,
        var: Expr,
        init: Expr,
        bound: Expr,
        step: Expr,
        body: impl FnOnce(&mut Self),
    ) {
        self.assign(&var, init);
        self.blocks.push(Vec::new());
        body(self);
        let mut b = self.blocks.pop().unwrap();
        if let Expr::Var(id, _) = var {
            b.push(Stmt::Assign(id, var.clone() + step));
        } else {
            panic!("loop variable must be a variable");
        }
        self.emit(Stmt::While { cond: var.lt(bound), body: b });
    }

    /// Finish building.
    ///
    /// # Panics
    ///
    /// Panics if control-flow blocks are unbalanced.
    pub fn finish(mut self) -> Kernel {
        assert_eq!(self.blocks.len(), 1, "unbalanced control-flow blocks");
        Kernel {
            name: self.name,
            params: self.params,
            shared: self.shared,
            vars: self.vars,
            var_names: self.var_names,
            body: self.blocks.pop().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_structured_kernels() {
        let mut k = KernelBuilder::new("t");
        let len = k.param_u32("len");
        let p = k.param_ptr("p", Elem::I32);
        let s = k.shared("tile", Elem::I32, 64);
        let i = k.var_u32("i");
        k.for_(i.clone(), k.thread_idx(), len, k.block_dim(), |k| {
            k.store(&s, i.clone() & Expr::u32(63), p.at(i.clone()));
        });
        k.barrier();
        k.if_else(
            k.thread_idx().eq_(Expr::u32(0)),
            |k| k.store(&p, Expr::u32(0), s.at(Expr::u32(0))),
            |k| k.store(&p, Expr::u32(1), Expr::i32(7)),
        );
        let kernel = k.finish();
        assert_eq!(kernel.params.len(), 2);
        assert_eq!(kernel.shared_bytes(), 256);
        assert!(kernel.uses_shared_or_barrier());
        assert_eq!(kernel.body.len(), 4); // assign, while, barrier, if
    }

    #[test]
    fn expression_types() {
        let mut k = KernelBuilder::new("t");
        let p = k.param_ptr("p", Elem::F32);
        let e = p.at(Expr::u32(0)) + Expr::f32(1.0);
        assert_eq!(e.ty(), Ty::F32);
        assert_eq!(p.offset(Expr::u32(4)).ty(), Ty::Ptr(Elem::F32));
        assert_eq!(Expr::u32(1).lt(Expr::u32(2)).ty(), Ty::U32);
        assert_eq!(Expr::i32(-1).to_f32().ty(), Ty::F32);
    }

    #[test]
    #[should_panic(expected = "non-pointer")]
    fn indexing_scalar_panics() {
        let mut k = KernelBuilder::new("t");
        let x = k.param_u32("x");
        let _ = x.at(Expr::u32(0));
    }
}
