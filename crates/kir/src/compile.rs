//! The code generator: kernel IR → RV32IMA+Zfinx(+Xcheri) machine code.
//!
//! The generated program has the NoCL runtime structure: a prologue that
//! derives thread/block indices from `mhartid`, loads kernel arguments into
//! pinned registers, carves out shared-memory arrays and (if needed) a
//! per-thread stack, then a grid-stride *block loop* that runs the kernel
//! body once per assigned block, with a trailing block-level barrier when
//! the kernel uses shared memory.
//!
//! Pointers are mode-dependent:
//! * `Baseline` — one register holding a raw address,
//! * `PureCap` — one register holding a capability (moves use `CMove`,
//!   arithmetic uses `CIncOffset`, argument loads use `CLC`),
//! * Rust modes — two registers holding (address, remaining length), i.e. a
//!   slice; every unproven access is preceded by `sltu`+`beqz → trap`.

use crate::expr::*;
use crate::layout::{ArgLayout, ArgSlot, BLOCK_DIM_OFFSET, GRID_DIM_OFFSET};
use crate::Mode;
use simt_isa::asm::{Assembler, Label};
use simt_isa::{
    csr, scr, AluOp, BranchCond, FcmpOp, FpOp, Instr, LoadWidth, MulOp, Reg, StoreWidth, UnaryCapOp,
};
use simt_mem::map;

/// Fixed memory-plan constants baked into generated code. The host runtime
/// must use the same plan when laying out device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPlan {
    /// Address of the kernel argument block.
    pub arg_base: u32,
    /// Top of the per-thread stack arena (stacks grow downward from here).
    pub stack_top: u32,
    /// Bytes of stack per thread (a power of two).
    pub stack_size: u32,
    /// Streaming multiprocessors on the target device. With more than one,
    /// the prologue localises the shared-memory partition index (global
    /// block indices span SMs, scratchpads do not); with exactly one the
    /// generated code is byte-identical to the classic single-SM output.
    pub sms: u32,
}

impl Default for MemPlan {
    fn default() -> Self {
        let usable = map::DRAM_DEFAULT_SIZE - map::tag_region_bytes(map::DRAM_DEFAULT_SIZE);
        MemPlan {
            arg_base: map::DRAM_BASE,
            stack_top: map::DRAM_BASE + usable,
            stack_size: 512,
            sms: 1,
        }
    }
}

/// A compiled kernel, ready to load into the SM.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Encoded instruction words.
    pub words: Vec<u32>,
    /// Argument-block layout the host must follow.
    pub layout: ArgLayout,
    /// Shared memory bytes per block.
    pub shared_bytes: u32,
    /// The compilation mode.
    pub mode: Mode,
    /// The memory plan baked into the code.
    pub plan: MemPlan,
}

impl CompiledKernel {
    /// A human-readable disassembly listing of the generated code.
    ///
    /// ```text
    /// 10000000:  f1402573   csrr a0, mhartid
    /// 10000004:  0045a583   lw a1, 4(a1)
    /// ...
    /// ```
    pub fn disassemble(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::with_capacity(self.words.len() * 48);
        for (i, (w, ins)) in self.decoded().enumerate() {
            let pc = map::TCIM_BASE + 4 * i as u32;
            match ins {
                Some(ins) => {
                    let _ = writeln!(out, "{pc:08x}:  {w:08x}   {ins}");
                }
                None => {
                    let _ = writeln!(out, "{pc:08x}:  {w:08x}   .word");
                }
            }
        }
        out
    }

    /// The program as `(word, decoded instruction)` pairs, in fetch order —
    /// the same decoding the SM's program ROM performs at launch. Words
    /// that do not decode (e.g. embedded data) yield `None`.
    pub fn decoded(&self) -> impl Iterator<Item = (u32, Option<Instr>)> + '_ {
        self.words.iter().map(|&w| (w, Instr::decode(w)))
    }

    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Is the program empty (never true for a compiled kernel)?
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Compilation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Too many simultaneously live values for the register budget.
    RegisterPressure(String),
    /// A construct the generator does not support.
    Unsupported(String),
    /// An ill-typed IR fragment.
    Type(String),
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::RegisterPressure(s) => write!(f, "register pressure: {s}"),
            CompileError::Unsupported(s) => write!(f, "unsupported: {s}"),
            CompileError::Type(s) => write!(f, "type error: {s}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile with the default memory plan.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile(kernel: &Kernel, mode: Mode) -> Result<CompiledKernel, CompileError> {
    compile_with(kernel, mode, MemPlan::default())
}

/// Compile with an explicit memory plan.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_with(
    kernel: &Kernel,
    mode: Mode,
    plan: MemPlan,
) -> Result<CompiledKernel, CompileError> {
    compile_capped(kernel, mode, plan, None)
}

/// Compile with a limit on which registers may hold capabilities: in
/// pure-capability mode every pointer value is confined to registers with
/// index below `cap_reg_limit`. This is the compiler support Section 4.3
/// forecasts — with a limit of 16, the metadata SRF can halve, cutting the
/// register-file storage overhead from 14% to 7%.
///
/// # Errors
///
/// See [`CompileError`]; a too-small limit surfaces as register pressure.
pub fn compile_capped(
    kernel: &Kernel,
    mode: Mode,
    plan: MemPlan,
    cap_reg_limit: Option<u32>,
) -> Result<CompiledKernel, CompileError> {
    let layout = ArgLayout::new(kernel, mode);
    let mut cg = Codegen::new(kernel, mode, plan, &layout, cap_reg_limit)?;
    cg.prologue()?;
    cg.block_loop()?;
    let words = cg.asm.assemble();
    Ok(CompiledKernel { words, layout, shared_bytes: kernel.shared_bytes(), mode, plan })
}

/// Where a value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// One register (scalar, raw pointer, or capability).
    Reg(Reg),
    /// Fat pointer: (address, length-in-elements).
    Fat(Reg, Reg),
    /// Fat pointer with a compile-time-constant length (shared arrays).
    FatConst(Reg, u32),
    /// Spilled to the stack at the given byte offset below SP.
    Slot(u32),
    /// Fat pointer spilled to the stack (two words).
    FatSlot(u32),
}

/// A value produced by expression generation: its location plus whether the
/// registers are owned temporaries that must be released.
#[derive(Debug, Clone, Copy)]
struct Val {
    loc: Loc,
    owned: bool,
}

struct Codegen<'k> {
    k: &'k Kernel,
    mode: Mode,
    plan: MemPlan,
    asm: Assembler,
    /// Free temporary registers.
    free: Vec<Reg>,
    /// Pinned homes of specials.
    r_thread_idx: Reg,
    r_block_idx: Reg,
    r_block_dim: Reg,
    r_grid_dim: Reg,
    r_blocks_per_sm: Reg,
    /// Pinned homes of params (by index).
    params: Vec<Loc>,
    /// Pinned homes of shared arrays.
    shared: Vec<Loc>,
    /// Homes of user variables.
    vars: Vec<Loc>,
    /// Stack bytes used for spilled variables.
    stack_bytes: u32,
    /// Common trap label for failed Rust bounds checks.
    trap: Label,
    trap_used: bool,
    /// Arg-block slots (borrowed from the layout).
    slots: Vec<ArgSlot>,
    /// Pure-capability mode: a stable register per pointer *role* (base
    /// buffer) for address computations. A conventional register allocator
    /// gives each buffer's address stream its own register, which keeps
    /// per-register capability metadata uniform across divergent masks —
    /// the property the metadata register file's compression relies on.
    ptr_regs: std::collections::BTreeMap<PtrRole, Reg>,
    /// With a capability-register limit: the dedicated pool (indices below
    /// the limit) all pointer values must live in. `None` = unrestricted.
    cap_pool: Option<Vec<Reg>>,
    /// The limit itself, for classifying released registers.
    cap_limit: Option<u32>,
}

/// Identity of the buffer an address computation derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PtrRole {
    Param(usize),
    Shared(usize),
    Var(usize),
}

fn ptr_role(e: &Expr) -> Option<PtrRole> {
    match e {
        Expr::Param(i, _) => Some(PtrRole::Param(*i)),
        Expr::Shared(i, _) => Some(PtrRole::Shared(*i)),
        Expr::Var(i, _) => Some(PtrRole::Var(*i)),
        Expr::PtrOffset(p, _) => ptr_role(p),
        Expr::Select(_, a, _) => ptr_role(a),
        _ => None,
    }
}

/// Estimated dynamic reference count per variable: each reference counts
/// `8^depth` for its loop-nesting depth, approximating the profile a
/// register allocator's spill heuristic uses.
fn var_weights(k: &Kernel) -> Vec<u64> {
    fn expr(e: &Expr, w: u64, out: &mut [u64]) {
        match e {
            Expr::Var(i, _) => out[*i] = out[*i].saturating_add(w),
            Expr::Bin(_, a, b) | Expr::Load(a, b) | Expr::PtrOffset(a, b) => {
                expr(a, w, out);
                expr(b, w, out);
            }
            Expr::Un(_, a) => expr(a, w, out),
            Expr::Select(c, a, b) => {
                expr(c, w, out);
                expr(a, w, out);
                expr(b, w, out);
            }
            _ => {}
        }
    }
    fn stmts(body: &[Stmt], w: u64, out: &mut [u64]) {
        for s in body {
            match s {
                Stmt::Assign(i, e) => {
                    out[*i] = out[*i].saturating_add(w);
                    expr(e, w, out);
                }
                Stmt::Store { ptr, index, value } => {
                    expr(ptr, w, out);
                    expr(index, w, out);
                    expr(value, w, out);
                }
                Stmt::Atomic { ptr, index, value, .. } => {
                    expr(ptr, w, out);
                    expr(index, w, out);
                    expr(value, w, out);
                }
                Stmt::If { cond, then_, else_ } => {
                    expr(cond, w, out);
                    stmts(then_, w, out);
                    stmts(else_, w, out);
                }
                Stmt::While { cond, body } => {
                    expr(cond, w.saturating_mul(8), out);
                    stmts(body, w.saturating_mul(8), out);
                }
                Stmt::Barrier => {}
            }
        }
    }
    let mut out = vec![0u64; k.vars.len()];
    stmts(&k.body, 1, &mut out);
    out
}

const ZERO: Reg = Reg::ZERO;
const SP: Reg = Reg::SP;

impl<'k> Codegen<'k> {
    fn new(
        k: &'k Kernel,
        mode: Mode,
        plan: MemPlan,
        layout: &ArgLayout,
        cap_reg_limit: Option<u32>,
    ) -> Result<Self, CompileError> {
        let mut asm = Assembler::new();
        let trap = asm.label();
        // Register pool: everything but zero and SP. Kernels are fully
        // inlined (no calls), so ra/gp/tp are ordinary registers here.
        let mut pool: Vec<Reg> = [1u8, 3, 4].into_iter().chain(5..32).map(Reg::new).collect();
        // Capability-register limit (pure-capability mode only): carve out
        // the low-index registers as the exclusive home of pointer values.
        let mut cap_pool = match (mode, cap_reg_limit) {
            (Mode::PureCap, Some(limit)) => {
                let (low, high): (Vec<Reg>, Vec<Reg>) =
                    pool.iter().partition(|r| (r.index() as u32) < limit);
                pool = high;
                Some(low)
            }
            _ => None,
        };
        let take = |n: &mut Vec<Reg>| n.remove(0);
        let take_ptr = |cap: &mut Option<Vec<Reg>>, pool: &mut Vec<Reg>, what: &str| match cap {
            Some(c) if c.is_empty() => Err(CompileError::RegisterPressure(format!(
                "capability-register limit exhausted pinning {what}"
            ))),
            Some(c) => Ok(c.remove(0)),
            None => {
                if pool.is_empty() {
                    return Err(CompileError::RegisterPressure(format!(
                        "register pool exhausted pinning {what}"
                    )));
                }
                Ok(pool.remove(0))
            }
        };

        let r_thread_idx = take(&mut pool);
        let r_block_idx = take(&mut pool);
        let r_block_dim = take(&mut pool);
        let r_grid_dim = take(&mut pool);
        let r_blocks_per_sm = take(&mut pool);

        // Pin parameters.
        let fat = mode.fat_pointers();
        let mut params = Vec::new();
        for p in &k.params {
            let loc = match (p.ty, fat) {
                (Ty::Ptr(_), true) => Loc::Fat(take(&mut pool), take(&mut pool)),
                (Ty::Ptr(_), false) => Loc::Reg(take_ptr(&mut cap_pool, &mut pool, &p.name)?),
                _ => Loc::Reg(take(&mut pool)),
            };
            params.push(loc);
            if pool.len() < 8 {
                return Err(CompileError::RegisterPressure(format!(
                    "kernel {} has too many parameters",
                    k.name
                )));
            }
        }
        // Pin shared arrays (length is a compile-time constant in Rust
        // modes, so one register suffices everywhere).
        let mut shared = Vec::new();
        for s in &k.shared {
            let r =
                if fat { take(&mut pool) } else { take_ptr(&mut cap_pool, &mut pool, &s.name)? };
            shared.push(if fat { Loc::FatConst(r, s.len) } else { Loc::Reg(r) });
            if pool.len() < 8 {
                return Err(CompileError::RegisterPressure(format!(
                    "kernel {} has too many shared arrays",
                    k.name
                )));
            }
        }
        // Pin user variables hottest-first (weighted by loop-nesting depth,
        // as a conventional register allocator would), keeping at least 9
        // temporaries; the rest spill to per-thread stack slots.
        let weights = var_weights(k);
        let mut order: Vec<usize> = (0..k.vars.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
        let mut vars = vec![Loc::Slot(0); k.vars.len()];
        let mut stack_bytes = 0u32;
        for i in order {
            let is_ptr = matches!(k.vars[i], Ty::Ptr(_));
            if is_ptr && !fat && cap_pool.is_some() {
                vars[i] = Loc::Reg(take_ptr(&mut cap_pool, &mut pool, "pointer variable")?);
                continue;
            }
            let needs = if fat && is_ptr { 2 } else { 1 };
            if pool.len() >= 9 + needs {
                vars[i] = match needs {
                    2 => Loc::Fat(take(&mut pool), take(&mut pool)),
                    _ => Loc::Reg(take(&mut pool)),
                };
            } else if needs == 2 {
                stack_bytes += 8;
                vars[i] = Loc::FatSlot(stack_bytes);
            } else {
                stack_bytes += 4;
                vars[i] = Loc::Slot(stack_bytes);
            }
        }

        Ok(Codegen {
            k,
            mode,
            plan,
            asm,
            free: pool,
            r_thread_idx,
            r_block_idx,
            r_block_dim,
            r_grid_dim,
            r_blocks_per_sm,
            params,
            shared,
            vars,
            stack_bytes,
            trap,
            trap_used: false,
            slots: layout.slots.clone(),
            ptr_regs: std::collections::BTreeMap::new(),
            cap_pool,
            cap_limit: cap_reg_limit.filter(|_| mode == Mode::PureCap),
        })
    }

    // ---- Temp management ----

    fn temp(&mut self) -> Result<Reg, CompileError> {
        self.free.pop().ok_or_else(|| CompileError::RegisterPressure("expression too deep".into()))
    }

    /// A capability-address register for the given pointer expression:
    /// role-stable in pure-capability mode (never returned to the pool), a
    /// plain temporary otherwise. Returns `(reg, owned)`.
    fn addr_temp(&mut self, ptr: &Expr) -> Result<(Reg, bool), CompileError> {
        if self.purecap() {
            if let Some(role) = ptr_role(ptr) {
                if let Some(&r) = self.ptr_regs.get(&role) {
                    return Ok((r, false));
                }
                if let Some(cap) = self.cap_pool.as_mut() {
                    // Under a capability-register limit the address register
                    // must come from the capability pool.
                    let r = cap.pop().ok_or_else(|| {
                        CompileError::RegisterPressure(
                            "capability-register limit exhausted for address temporaries".into(),
                        )
                    })?;
                    self.ptr_regs.insert(role, r);
                    return Ok((r, false));
                }
                // Keep a minimum of working temps; otherwise dedicate one.
                if self.free.len() > 4 {
                    let r = self.free.pop().expect("checked non-empty");
                    self.ptr_regs.insert(role, r);
                    return Ok((r, false));
                }
            } else if let Some(cap) = self.cap_pool.as_mut() {
                // Role-less pointer expression under a limit: still confine.
                if let Some(r) = cap.pop() {
                    return Ok((r, true));
                }
                return Err(CompileError::RegisterPressure(
                    "capability-register limit exhausted".into(),
                ));
            }
        }
        Ok((self.temp()?, true))
    }

    /// A scratch register allowed to hold a capability (from the capability
    /// pool when a limit is in force). Release with [`Self::free_scratch`].
    fn cap_scratch(&mut self) -> Result<Reg, CompileError> {
        match self.cap_pool.as_mut() {
            Some(c) => c.pop().ok_or_else(|| {
                CompileError::RegisterPressure("capability-register limit exhausted".into())
            }),
            None => self.temp(),
        }
    }

    /// Return a scratch register to whichever pool it came from.
    fn free_scratch(&mut self, r: Reg) {
        if self.cap_pool_owns(r) {
            self.cap_pool.as_mut().expect("limit implies pool").push(r);
        } else {
            self.free.push(r);
        }
    }

    fn cap_pool_owns(&self, r: Reg) -> bool {
        self.cap_limit.map(|l| (r.index() as u32) < l).unwrap_or(false)
    }

    fn release(&mut self, v: Val) {
        if v.owned {
            match v.loc {
                Loc::Reg(r) | Loc::FatConst(r, _) => {
                    // Registers from the capability pool go back to it.
                    if self.cap_pool_owns(r) {
                        self.cap_pool.as_mut().expect("limit implies pool").push(r);
                        return;
                    }
                    self.free.push(r)
                }
                Loc::Fat(a, l) => {
                    self.free.push(a);
                    self.free.push(l);
                }
                Loc::Slot(_) | Loc::FatSlot(_) => {}
            }
        }
    }

    fn purecap(&self) -> bool {
        self.mode == Mode::PureCap
    }

    // ---- Emission helpers ----

    fn op(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.asm.push(Instr::Op { op, rd, rs1, rs2 });
    }

    fn opi(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) {
        self.asm.push(Instr::OpImm { op, rd, rs1, imm });
    }

    fn mv(&mut self, rd: Reg, rs: Reg) {
        if rd != rs {
            self.opi(AluOp::Add, rd, rs, 0);
        }
    }

    /// Pointer-preserving move (`CMove` under CHERI).
    fn mv_ptr(&mut self, rd: Reg, rs: Reg) {
        if rd == rs {
            return;
        }
        if self.purecap() {
            self.asm.push(Instr::CapUnary { op: UnaryCapOp::Move, rd, cs1: rs });
        } else {
            self.mv(rd, rs);
        }
    }

    /// `rd = ptr + byte_off` preserving pointer-ness.
    fn ptr_add(&mut self, rd: Reg, ptr: Reg, off: Reg) {
        if self.purecap() {
            self.asm.push(Instr::CIncOffset { cd: rd, cs1: ptr, rs2: off });
        } else {
            self.op(AluOp::Add, rd, ptr, off);
        }
    }

    fn ptr_addi(&mut self, rd: Reg, ptr: Reg, off: i32) {
        if self.purecap() {
            self.asm.push(Instr::CIncOffsetImm { cd: rd, cs1: ptr, imm: off });
        } else {
            self.opi(AluOp::Add, rd, ptr, off);
        }
    }

    // ---- Prologue ----

    fn prologue(&mut self) -> Result<(), CompileError> {
        let t0 = self.temp()?;
        let t1 = self.temp()?;
        let arg = self.prologue_hart_and_dims(t0, t1)?;
        self.prologue_params(arg)?;
        self.prologue_shared(t1)?;
        self.prologue_stack(t0, t1)?;
        self.free.push(t0);
        self.free.push(t1);
        Ok(())
    }

    /// Hart id (into `t0`), argument-block base, grid/block dimensions and
    /// the derived thread/block indices. Returns the argument-block base
    /// register for [`Self::prologue_params`] to consume.
    fn prologue_hart_and_dims(&mut self, t0: Reg, t1: Reg) -> Result<Reg, CompileError> {
        self.asm.push(Instr::Csrrs { rd: t0, csr: csr::MHARTID, rs1: ZERO });
        let arg = if self.purecap() { self.cap_scratch()? } else { self.temp()? };
        if self.purecap() {
            self.asm.push(Instr::CSpecialRw { cd: arg, cs1: ZERO, scr: scr::ARG });
        } else {
            self.asm.li(arg, self.plan.arg_base);
        }
        self.asm.push(Instr::Load {
            w: LoadWidth::W,
            rd: self.r_grid_dim,
            rs1: arg,
            off: GRID_DIM_OFFSET as i32,
        });
        self.asm.push(Instr::Load {
            w: LoadWidth::W,
            rd: self.r_block_dim,
            rs1: arg,
            off: BLOCK_DIM_OFFSET as i32,
        });

        // threadIdx = hart % blockDim; blockIdx = hart / blockDim;
        // blocksPerSm = numThreads / blockDim.
        self.asm.push(Instr::MulDiv {
            op: MulOp::Remu,
            rd: self.r_thread_idx,
            rs1: t0,
            rs2: self.r_block_dim,
        });
        self.asm.push(Instr::MulDiv {
            op: MulOp::Divu,
            rd: self.r_block_idx,
            rs1: t0,
            rs2: self.r_block_dim,
        });
        self.asm.push(Instr::Csrrs { rd: t1, csr: csr::SIMT_NUM_THREADS, rs1: ZERO });
        self.asm.push(Instr::MulDiv {
            op: MulOp::Divu,
            rd: self.r_blocks_per_sm,
            rs1: t1,
            rs2: self.r_block_dim,
        });
        Ok(arg)
    }

    /// Load every kernel parameter from the argument block into its home,
    /// then release the argument-block base register.
    fn prologue_params(&mut self, arg: Reg) -> Result<(), CompileError> {
        for (i, p) in self.k.params.iter().enumerate() {
            match (self.params[i], self.slots[i]) {
                (Loc::Reg(r), ArgSlot::Scalar { offset } | ArgSlot::PtrRaw { offset }) => {
                    self.asm.push(Instr::Load {
                        w: LoadWidth::W,
                        rd: r,
                        rs1: arg,
                        off: offset as i32,
                    });
                }
                (Loc::Reg(r), ArgSlot::PtrCap { offset }) => {
                    self.asm.push(Instr::Clc { cd: r, cs1: arg, off: offset as i32 });
                }
                (Loc::Fat(ra, rl), ArgSlot::PtrFat { offset }) => {
                    self.asm.push(Instr::Load {
                        w: LoadWidth::W,
                        rd: ra,
                        rs1: arg,
                        off: offset as i32,
                    });
                    self.asm.push(Instr::Load {
                        w: LoadWidth::W,
                        rd: rl,
                        rs1: arg,
                        off: offset as i32 + 4,
                    });
                }
                other => {
                    return Err(CompileError::Type(format!(
                        "parameter {} ({:?}) home/slot mismatch: {:?}",
                        p.name, p.ty, other
                    )))
                }
            }
        }
        self.free_scratch(arg);
        Ok(())
    }

    /// Shared arrays: partition = localBlock * shared_bytes; each array at
    /// its aligned offset, bounded per-array under CHERI.
    fn prologue_shared(&mut self, t1: Reg) -> Result<(), CompileError> {
        if !self.k.shared.is_empty() {
            let sh_bytes = self.k.shared_bytes();
            // On a multi-SM device block indices are global but scratchpads
            // are per-SM: fold the block index into this SM's partition
            // range first. localBlocksPerSm = blocksPerDevice / sms, and
            // localBlock = blockIdx % localBlocksPerSm is stable across
            // grid-stride iterations (the stride is a multiple of it).
            let local = if self.plan.sms > 1 {
                let lb = self.temp()?;
                self.asm.li(lb, self.plan.sms);
                self.asm.push(Instr::MulDiv {
                    op: MulOp::Divu,
                    rd: lb,
                    rs1: self.r_blocks_per_sm,
                    rs2: lb,
                });
                self.asm.push(Instr::MulDiv {
                    op: MulOp::Remu,
                    rd: lb,
                    rs1: self.r_block_idx,
                    rs2: lb,
                });
                Some(lb)
            } else {
                None
            };
            // t1 = blockIdx(local) * shared_bytes
            self.asm.li(t1, sh_bytes);
            self.asm.push(Instr::MulDiv {
                op: MulOp::Mul,
                rd: t1,
                rs1: local.unwrap_or(self.r_block_idx),
                rs2: t1,
            });
            if let Some(lb) = local {
                self.free.push(lb);
            }
            let base = if self.purecap() { self.cap_scratch()? } else { self.temp()? };
            if self.purecap() {
                self.asm.push(Instr::CSpecialRw { cd: base, cs1: ZERO, scr: scr::SHARED });
                self.ptr_add(base, base, t1);
            } else {
                self.asm.li(base, map::SCRATCH_BASE);
                self.op(AluOp::Add, base, base, t1);
            }
            let mut off = 0u32;
            for (i, s) in self.k.shared.iter().enumerate() {
                let r = match self.shared[i] {
                    Loc::Reg(r) | Loc::FatConst(r, _) => r,
                    other => return Err(CompileError::Type(format!("shared home {other:?}"))),
                };
                self.ptr_addi(r, base, off as i32);
                if self.purecap() {
                    let len = s.elem.bytes() * s.len;
                    if len < 4096 {
                        self.asm.push(Instr::CSetBoundsImm { cd: r, cs1: r, imm: len });
                    } else {
                        self.asm.li(t1, len);
                        self.asm.push(Instr::CSetBounds { cd: r, cs1: r, rs2: t1 });
                    }
                }
                off += (s.elem.bytes() * s.len).next_multiple_of(8);
            }
            self.free_scratch(base);
        }
        Ok(())
    }

    /// Per-thread stack pointer, only when variables spilled.
    fn prologue_stack(&mut self, t0: Reg, t1: Reg) -> Result<(), CompileError> {
        if self.stack_bytes > 0 {
            assert!(self.plan.stack_size.is_power_of_two());
            let log2 = self.plan.stack_size.trailing_zeros() as i32;
            self.opi(AluOp::Sll, t1, t0, log2); // hart * stack_size
            if self.purecap() {
                // The stack capability is bounded to the whole stack arena
                // (as in the paper's NoCL port): every thread shares the
                // same bounds *metadata* — only the address diverges — so
                // the metadata register file keeps SP fully compressed.
                self.asm.push(Instr::CSpecialRw { cd: SP, cs1: ZERO, scr: scr::STACK });
                let b = self.temp()?;
                self.asm.li(b, self.plan.stack_top);
                self.op(AluOp::Sub, b, b, t1);
                self.asm.push(Instr::CSetAddr { cd: SP, cs1: SP, rs2: b });
                self.free.push(b);
            } else {
                self.asm.li(SP, self.plan.stack_top);
                self.op(AluOp::Sub, SP, SP, t1);
            }
        }
        Ok(())
    }

    // ---- Block loop ----

    fn block_loop(&mut self) -> Result<(), CompileError> {
        let exit = self.asm.label();
        let head = self.asm.here();
        self.asm.branch(BranchCond::Geu, self.r_block_idx, self.r_grid_dim, exit);
        self.gen_block(&self.k.body.clone())?;
        if self.k.uses_shared_or_barrier() {
            self.asm.barrier();
        }
        self.op(AluOp::Add, self.r_block_idx, self.r_block_idx, self.r_blocks_per_sm);
        self.asm.jump(head);
        self.asm.bind(exit);
        self.asm.terminate();
        if self.trap_used {
            self.asm.bind(self.trap);
            self.asm.push(Instr::Ebreak); // Rust panic: bounds check failed
        }
        Ok(())
    }

    fn gen_block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.gen_stmt(s)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Assign(id, e) => {
                let home = self.vars[*id];
                self.gen_expr_to(e, home)?;
            }
            Stmt::Store { ptr, index, value } => {
                self.gen_store(ptr, index, value)?;
            }
            Stmt::Barrier => self.asm.barrier(),
            Stmt::Atomic { op, ptr, index, value } => {
                let (addr, addr_owned) = self.gen_address(ptr, index, true)?;
                let v = self.gen_expr(value)?;
                let vr = self.scalar_reg(&v)?;
                self.asm.push(Instr::Amo { op: *op, rd: ZERO, rs1: addr, rs2: vr });
                self.release(v);
                if addr_owned {
                    self.free.push(addr);
                }
            }
            Stmt::If { cond, then_, else_ } => {
                if else_.is_empty() {
                    let end = self.asm.label();
                    self.gen_branch_if_false(cond, end)?;
                    self.gen_block(then_)?;
                    self.asm.bind(end);
                } else {
                    let l_else = self.asm.label();
                    let end = self.asm.label();
                    self.gen_branch_if_false(cond, l_else)?;
                    self.gen_block(then_)?;
                    self.asm.jump(end);
                    self.asm.bind(l_else);
                    self.gen_block(else_)?;
                    self.asm.bind(end);
                }
            }
            Stmt::While { cond, body } => {
                let end = self.asm.label();
                let head = self.asm.here();
                self.gen_branch_if_false(cond, end)?;
                self.gen_block(body)?;
                self.asm.jump(head);
                self.asm.bind(end);
            }
        }
        Ok(())
    }

    // ---- Branch generation (fused compare-and-branch) ----

    fn gen_branch_if_false(&mut self, cond: &Expr, target: Label) -> Result<(), CompileError> {
        if let Expr::Bin(BinOp::Cmp(op), a, b) = cond {
            if a.ty().is_int() || matches!(a.ty(), Ty::Ptr(_)) {
                let unsigned = a.ty() != Ty::I32;
                let va = self.gen_expr(a)?;
                let vb = self.gen_expr(b)?;
                let ra = self.scalar_reg(&va)?;
                let rb = self.scalar_reg(&vb)?;
                // Branch on the *negation* of the comparison.
                let (cond, rs1, rs2) = match (op, unsigned) {
                    (CmpOp::Eq, _) => (BranchCond::Ne, ra, rb),
                    (CmpOp::Ne, _) => (BranchCond::Eq, ra, rb),
                    (CmpOp::Lt, false) => (BranchCond::Ge, ra, rb),
                    (CmpOp::Lt, true) => (BranchCond::Geu, ra, rb),
                    (CmpOp::Ge, false) => (BranchCond::Lt, ra, rb),
                    (CmpOp::Ge, true) => (BranchCond::Ltu, ra, rb),
                    (CmpOp::Gt, false) => (BranchCond::Ge, rb, ra),
                    (CmpOp::Gt, true) => (BranchCond::Geu, rb, ra),
                    (CmpOp::Le, false) => (BranchCond::Lt, rb, ra),
                    (CmpOp::Le, true) => (BranchCond::Ltu, rb, ra),
                };
                self.asm.branch(cond, rs1, rs2, target);
                self.release(vb);
                self.release(va);
                return Ok(());
            }
        }
        let v = self.gen_expr(cond)?;
        let r = self.scalar_reg(&v)?;
        self.asm.beqz(r, target);
        self.release(v);
        Ok(())
    }

    // ---- Expression generation ----

    fn as_const(e: &Expr) -> Option<i64> {
        match e {
            Expr::Int(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The single scalar register of a value (loading spilled slots).
    fn scalar_reg(&mut self, v: &Val) -> Result<Reg, CompileError> {
        match v.loc {
            Loc::Reg(r) => Ok(r),
            other => Err(CompileError::Type(format!("expected scalar register, got {other:?}"))),
        }
    }

    /// Generate `e` into a fresh (or pinned) location and return it.
    fn gen_expr(&mut self, e: &Expr) -> Result<Val, CompileError> {
        match e {
            Expr::Int(0, t) if !matches!(t, Ty::Ptr(_)) => {
                Ok(Val { loc: Loc::Reg(ZERO), owned: false })
            }
            Expr::Int(v, _) => {
                let t = self.temp()?;
                self.asm.li(t, *v as u32);
                Ok(Val { loc: Loc::Reg(t), owned: true })
            }
            Expr::F32(v) => {
                let t = self.temp()?;
                self.asm.li(t, v.to_bits());
                Ok(Val { loc: Loc::Reg(t), owned: true })
            }
            Expr::Special(s) => {
                let r = match s {
                    Special::ThreadIdx => self.r_thread_idx,
                    Special::BlockIdx => self.r_block_idx,
                    Special::BlockDim => self.r_block_dim,
                    Special::GridDim => self.r_grid_dim,
                };
                Ok(Val { loc: Loc::Reg(r), owned: false })
            }
            Expr::Var(id, ty) => {
                let home = self.vars[*id];
                match home {
                    Loc::Slot(off) => {
                        let t = self.temp()?;
                        self.asm.push(Instr::Load {
                            w: LoadWidth::W,
                            rd: t,
                            rs1: SP,
                            off: -(off as i32),
                        });
                        Ok(Val { loc: Loc::Reg(t), owned: true })
                    }
                    Loc::FatSlot(off) => {
                        let a = self.temp()?;
                        let l = self.temp()?;
                        self.asm.push(Instr::Load {
                            w: LoadWidth::W,
                            rd: a,
                            rs1: SP,
                            off: -(off as i32),
                        });
                        self.asm.push(Instr::Load {
                            w: LoadWidth::W,
                            rd: l,
                            rs1: SP,
                            off: -(off as i32) + 4,
                        });
                        let _ = ty;
                        Ok(Val { loc: Loc::Fat(a, l), owned: true })
                    }
                    loc => Ok(Val { loc, owned: false }),
                }
            }
            Expr::Param(id, _) => Ok(Val { loc: self.params[*id], owned: false }),
            Expr::Shared(id, _) => Ok(Val { loc: self.shared[*id], owned: false }),
            Expr::Bin(..)
            | Expr::Un(..)
            | Expr::Load(..)
            | Expr::PtrOffset(..)
            | Expr::Select(..) => {
                let dst = self.alloc_for(e)?;
                self.gen_expr_to(e, dst)?;
                Ok(Val { loc: dst, owned: true })
            }
        }
    }

    /// Allocate a destination location suitable for `e`'s type.
    fn alloc_for(&mut self, e: &Expr) -> Result<Loc, CompileError> {
        match e.ty() {
            Ty::Ptr(_) if self.mode.fat_pointers() => {
                let a = self.temp()?;
                let l = self.temp()?;
                Ok(Loc::Fat(a, l))
            }
            Ty::Ptr(_) if self.purecap() && self.cap_pool.is_some() => {
                let (r, _) = self.addr_temp(e)?;
                Ok(Loc::Reg(r))
            }
            _ => Ok(Loc::Reg(self.temp()?)),
        }
    }

    /// Generate `e` into the given destination.
    fn gen_expr_to(&mut self, e: &Expr, dst: Loc) -> Result<(), CompileError> {
        // Spilled destinations: generate to temps, then store.
        match dst {
            Loc::Slot(off) => {
                let v = self.gen_expr(e)?;
                let r = self.scalar_reg(&v)?;
                self.asm.push(Instr::Store {
                    w: StoreWidth::W,
                    rs2: r,
                    rs1: SP,
                    off: -(off as i32),
                });
                self.release(v);
                return Ok(());
            }
            Loc::FatSlot(off) => {
                let v = self.gen_expr(e)?;
                let (a, l) = self.fat_regs(&v)?;
                self.asm.push(Instr::Store {
                    w: StoreWidth::W,
                    rs2: a,
                    rs1: SP,
                    off: -(off as i32),
                });
                self.asm.push(Instr::Store {
                    w: StoreWidth::W,
                    rs2: l,
                    rs1: SP,
                    off: -(off as i32) + 4,
                });
                self.release_fat_temp(v, a, l);
                return Ok(());
            }
            _ => {}
        }

        match e {
            Expr::Bin(op, a, b) => self.gen_bin(*op, a, b, dst),
            Expr::Un(op, a) => self.gen_un(*op, a, dst),
            Expr::Load(p, idx) => self.gen_load(p, idx, dst),
            Expr::PtrOffset(p, idx) => self.gen_ptr_offset(p, idx, dst),
            Expr::Select(c, a, b) => {
                let l_else = self.asm.label();
                let end = self.asm.label();
                self.gen_branch_if_false(c, l_else)?;
                self.gen_expr_to(a, dst)?;
                self.asm.jump(end);
                self.asm.bind(l_else);
                self.gen_expr_to(b, dst)?;
                self.asm.bind(end);
                Ok(())
            }
            // Leaves: generate and move into dst.
            _ => {
                let v = self.gen_expr(e)?;
                self.move_into(dst, &v, matches!(e.ty(), Ty::Ptr(_)))?;
                self.release(v);
                Ok(())
            }
        }
    }

    fn fat_regs(&mut self, v: &Val) -> Result<(Reg, Reg), CompileError> {
        match v.loc {
            Loc::Fat(a, l) => Ok((a, l)),
            Loc::FatConst(a, len) => {
                let l = self.temp()?;
                self.asm.li(l, len);
                Ok((a, l))
            }
            other => Err(CompileError::Type(format!("expected fat pointer, got {other:?}"))),
        }
    }

    fn release_fat_temp(&mut self, v: Val, _a: Reg, l: Reg) {
        // If fat_regs materialised a length temp for a FatConst, free it.
        if matches!(v.loc, Loc::FatConst(..)) {
            self.free.push(l);
        }
        self.release(v);
    }

    fn move_into(&mut self, dst: Loc, v: &Val, is_ptr: bool) -> Result<(), CompileError> {
        match (dst, v.loc) {
            (Loc::Reg(d), Loc::Reg(s)) => {
                if is_ptr {
                    self.mv_ptr(d, s);
                } else {
                    self.mv(d, s);
                }
                Ok(())
            }
            (Loc::Fat(da, dl), Loc::Fat(sa, sl)) => {
                self.mv(da, sa);
                self.mv(dl, sl);
                Ok(())
            }
            (Loc::Fat(da, dl), Loc::FatConst(sa, len)) => {
                self.mv(da, sa);
                self.asm.li(dl, len);
                Ok(())
            }
            (d, s) => Err(CompileError::Type(format!("move {s:?} -> {d:?}"))),
        }
    }

    fn gen_bin(&mut self, op: BinOp, a: &Expr, b: &Expr, dst: Loc) -> Result<(), CompileError> {
        let ty = a.ty();
        let d = match dst {
            Loc::Reg(d) => d,
            other => return Err(CompileError::Type(format!("binop into {other:?}"))),
        };
        if ty == Ty::F32 {
            return self.gen_fbin(op, a, b, d);
        }
        let unsigned = ty != Ty::I32;

        // Immediate forms.
        if let Some(c) = Self::as_const(b) {
            let fits = (-2048..=2047).contains(&c);
            match op {
                BinOp::Add if fits => {
                    let va = self.gen_expr(a)?;
                    let ra = self.scalar_reg(&va)?;
                    self.opi(AluOp::Add, d, ra, c as i32);
                    self.release(va);
                    return Ok(());
                }
                BinOp::Sub if (-2047..=2048).contains(&c) => {
                    let va = self.gen_expr(a)?;
                    let ra = self.scalar_reg(&va)?;
                    self.opi(AluOp::Add, d, ra, -(c as i32));
                    self.release(va);
                    return Ok(());
                }
                BinOp::And | BinOp::Or | BinOp::Xor if fits => {
                    let alu = match op {
                        BinOp::And => AluOp::And,
                        BinOp::Or => AluOp::Or,
                        _ => AluOp::Xor,
                    };
                    let va = self.gen_expr(a)?;
                    let ra = self.scalar_reg(&va)?;
                    self.opi(alu, d, ra, c as i32);
                    self.release(va);
                    return Ok(());
                }
                BinOp::Shl | BinOp::Shr if (0..32).contains(&c) => {
                    let alu = match (op, unsigned) {
                        (BinOp::Shl, _) => AluOp::Sll,
                        (BinOp::Shr, true) => AluOp::Srl,
                        (BinOp::Shr, false) => AluOp::Sra,
                        _ => unreachable!(),
                    };
                    let va = self.gen_expr(a)?;
                    let ra = self.scalar_reg(&va)?;
                    self.opi(alu, d, ra, c as i32);
                    self.release(va);
                    return Ok(());
                }
                BinOp::Mul if c > 0 && (c as u64).is_power_of_two() => {
                    let va = self.gen_expr(a)?;
                    let ra = self.scalar_reg(&va)?;
                    self.opi(AluOp::Sll, d, ra, (c as u64).trailing_zeros() as i32);
                    self.release(va);
                    return Ok(());
                }
                BinOp::Div if unsigned && c > 0 && (c as u64).is_power_of_two() => {
                    let va = self.gen_expr(a)?;
                    let ra = self.scalar_reg(&va)?;
                    self.opi(AluOp::Srl, d, ra, (c as u64).trailing_zeros() as i32);
                    self.release(va);
                    return Ok(());
                }
                BinOp::Rem if unsigned && c > 0 && (c as u64).is_power_of_two() && c <= 2048 => {
                    let va = self.gen_expr(a)?;
                    let ra = self.scalar_reg(&va)?;
                    self.opi(AluOp::And, d, ra, (c - 1) as i32);
                    self.release(va);
                    return Ok(());
                }
                _ => {}
            }
        }

        let va = self.gen_expr(a)?;
        let vb = self.gen_expr(b)?;
        let ra = self.scalar_reg(&va)?;
        let rb = self.scalar_reg(&vb)?;
        match op {
            BinOp::Add => self.op(AluOp::Add, d, ra, rb),
            BinOp::Sub => self.op(AluOp::Sub, d, ra, rb),
            BinOp::And => self.op(AluOp::And, d, ra, rb),
            BinOp::Or => self.op(AluOp::Or, d, ra, rb),
            BinOp::Xor => self.op(AluOp::Xor, d, ra, rb),
            BinOp::Shl => self.op(AluOp::Sll, d, ra, rb),
            BinOp::Shr => self.op(if unsigned { AluOp::Srl } else { AluOp::Sra }, d, ra, rb),
            BinOp::Mul => self.asm.push(Instr::MulDiv { op: MulOp::Mul, rd: d, rs1: ra, rs2: rb }),
            BinOp::Div => self.asm.push(Instr::MulDiv {
                op: if unsigned { MulOp::Divu } else { MulOp::Div },
                rd: d,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Rem => self.asm.push(Instr::MulDiv {
                op: if unsigned { MulOp::Remu } else { MulOp::Rem },
                rd: d,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Min | BinOp::Max => {
                // min/max via compare+select: slt t, a, b; branchless with
                // xor trick is longer; use a short branch.
                let take_a = self.asm.label();
                let end = self.asm.label();
                let lt = if unsigned { BranchCond::Ltu } else { BranchCond::Lt };
                let (x, y) = if op == BinOp::Min { (ra, rb) } else { (rb, ra) };
                self.asm.branch(lt, x, y, take_a);
                self.mv(d, rb);
                self.asm.jump(end);
                self.asm.bind(take_a);
                self.mv(d, ra);
                self.asm.bind(end);
                // For Max the roles are swapped via (x, y) above: branch
                // taken when the maximum is `ra`.
            }
            BinOp::Cmp(c) => self.gen_cmp(c, d, ra, rb, unsigned),
        }
        self.release(vb);
        self.release(va);
        Ok(())
    }

    fn gen_cmp(&mut self, c: CmpOp, d: Reg, ra: Reg, rb: Reg, unsigned: bool) {
        let slt = if unsigned { AluOp::Sltu } else { AluOp::Slt };
        match c {
            CmpOp::Lt => self.op(slt, d, ra, rb),
            CmpOp::Gt => self.op(slt, d, rb, ra),
            CmpOp::Ge => {
                self.op(slt, d, ra, rb);
                self.opi(AluOp::Xor, d, d, 1);
            }
            CmpOp::Le => {
                self.op(slt, d, rb, ra);
                self.opi(AluOp::Xor, d, d, 1);
            }
            CmpOp::Eq => {
                self.op(AluOp::Xor, d, ra, rb);
                self.opi(AluOp::Sltu, d, d, 1);
            }
            CmpOp::Ne => {
                self.op(AluOp::Xor, d, ra, rb);
                self.op(AluOp::Sltu, d, ZERO, d);
            }
        }
    }

    fn gen_fbin(&mut self, op: BinOp, a: &Expr, b: &Expr, d: Reg) -> Result<(), CompileError> {
        let va = self.gen_expr(a)?;
        let vb = self.gen_expr(b)?;
        let ra = self.scalar_reg(&va)?;
        let rb = self.scalar_reg(&vb)?;
        match op {
            BinOp::Add => self.asm.push(Instr::FOp { op: FpOp::Add, rd: d, rs1: ra, rs2: rb }),
            BinOp::Sub => self.asm.push(Instr::FOp { op: FpOp::Sub, rd: d, rs1: ra, rs2: rb }),
            BinOp::Mul => self.asm.push(Instr::FOp { op: FpOp::Mul, rd: d, rs1: ra, rs2: rb }),
            BinOp::Div => self.asm.push(Instr::FOp { op: FpOp::Div, rd: d, rs1: ra, rs2: rb }),
            BinOp::Min => self.asm.push(Instr::FOp { op: FpOp::Min, rd: d, rs1: ra, rs2: rb }),
            BinOp::Max => self.asm.push(Instr::FOp { op: FpOp::Max, rd: d, rs1: ra, rs2: rb }),
            BinOp::Cmp(c) => {
                let (fop, negate, swap) = match c {
                    CmpOp::Eq => (FcmpOp::Eq, false, false),
                    CmpOp::Ne => (FcmpOp::Eq, true, false),
                    CmpOp::Lt => (FcmpOp::Lt, false, false),
                    CmpOp::Le => (FcmpOp::Le, false, false),
                    CmpOp::Gt => (FcmpOp::Lt, false, true),
                    CmpOp::Ge => (FcmpOp::Le, false, true),
                };
                let (x, y) = if swap { (rb, ra) } else { (ra, rb) };
                self.asm.push(Instr::FCmp { op: fop, rd: d, rs1: x, rs2: y });
                if negate {
                    self.opi(AluOp::Xor, d, d, 1);
                }
            }
            other => {
                return Err(CompileError::Type(format!("float operator {other:?}")));
            }
        }
        self.release(vb);
        self.release(va);
        Ok(())
    }

    fn gen_un(&mut self, op: UnOp, a: &Expr, dst: Loc) -> Result<(), CompileError> {
        let d = match dst {
            Loc::Reg(d) => d,
            other => return Err(CompileError::Type(format!("unary into {other:?}"))),
        };
        let va = self.gen_expr(a)?;
        let ra = self.scalar_reg(&va)?;
        match op {
            UnOp::Neg => {
                if a.ty() == Ty::F32 {
                    // Flip the sign bit.
                    let t = self.temp()?;
                    self.asm.li(t, 0x8000_0000);
                    self.op(AluOp::Xor, d, ra, t);
                    self.free.push(t);
                } else {
                    self.op(AluOp::Sub, d, ZERO, ra);
                }
            }
            UnOp::Not => self.opi(AluOp::Xor, d, ra, -1),
            UnOp::Sqrt => self.asm.push(Instr::FSqrt { rd: d, rs1: ra }),
            UnOp::ToF32 => {
                self.asm.push(Instr::FCvtSW { rd: d, rs1: ra, signed: a.ty() == Ty::I32 })
            }
            UnOp::ToI32 => self.asm.push(Instr::FCvtWS { rd: d, rs1: ra, signed: true }),
            UnOp::AsU32 | UnOp::AsI32 => self.mv(d, ra),
        }
        self.release(va);
        Ok(())
    }

    // ---- Memory access ----

    /// Generate the address of `ptr[index]` into a register (a capability
    /// under CHERI). Emits the Rust bounds check when required. Returns the
    /// register and whether it is an owned temp.
    fn gen_address(
        &mut self,
        ptr: &Expr,
        index: &Expr,
        _is_store: bool,
    ) -> Result<(Reg, bool), CompileError> {
        let elem = match ptr.ty() {
            Ty::Ptr(e) => e,
            t => return Err(CompileError::Type(format!("address of non-pointer {t:?}"))),
        };
        let sz = elem.bytes();
        let log2 = sz.trailing_zeros() as i32;
        let vp = self.gen_expr(ptr)?;

        // Rust modes: bounds check against the fat pointer's length.
        if self.mode.fat_pointers() {
            let (pa, plen_reg, plen_const) = match vp.loc {
                Loc::Fat(a, l) => (a, Some(l), None),
                Loc::FatConst(a, l) => (a, None, Some(l)),
                other => {
                    return Err(CompileError::Type(format!("fat pointer expected: {other:?}")))
                }
            };
            let statically_safe = match (Self::as_const(index), plen_const) {
                (Some(i), Some(len)) => i >= 0 && (i as u64) < len as u64,
                _ => false,
            };
            if !statically_safe {
                let vi = self.gen_expr(index)?;
                let ri = self.scalar_reg(&vi)?;
                let t = self.temp()?;
                match (plen_reg, plen_const) {
                    (Some(l), _) => self.op(AluOp::Sltu, t, ri, l),
                    (None, Some(len)) if len <= 2047 => self.opi(AluOp::Sltu, t, ri, len as i32),
                    (None, Some(len)) => {
                        self.asm.li(t, len);
                        self.op(AluOp::Sltu, t, ri, t);
                    }
                    (None, None) => unreachable!(),
                }
                self.trap_used = true;
                self.asm.beqz(t, self.trap);
                self.free.push(t);
                // RustFull: model the residual port costs — the address is
                // re-materialised instead of reusing prior arithmetic.
                if self.mode == Mode::RustFull {
                    let t2 = self.temp()?;
                    self.opi(AluOp::Add, t2, ri, 0);
                    self.free.push(t2);
                }
                // Compute the address from the checked index.
                let addr = self.temp()?;
                if log2 > 0 {
                    self.opi(AluOp::Sll, addr, ri, log2);
                    self.op(AluOp::Add, addr, pa, addr);
                } else {
                    self.op(AluOp::Add, addr, pa, ri);
                }
                self.release(vi);
                self.release(vp);
                return Ok((addr, true));
            }
            // Statically safe constant index.
            let c = Self::as_const(index).unwrap() * sz as i64;
            if c == 0 {
                if !vp.owned {
                    return Ok((pa, false));
                }
                // Owned fat temp: free the length half only.
                if let Loc::Fat(_, l) = vp.loc {
                    self.free.push(l);
                }
                return Ok((pa, true));
            }
            let addr = self.temp()?;
            if (-2048..=2047).contains(&c) {
                self.opi(AluOp::Add, addr, pa, c as i32);
            } else {
                self.asm.li(addr, c as u32);
                self.op(AluOp::Add, addr, pa, addr);
            }
            self.release(vp);
            return Ok((addr, true));
        }

        // Baseline / PureCap: thin pointers.
        let pr = self.scalar_reg(&vp)?;
        if let Some(i) = Self::as_const(index) {
            let off = i * sz as i64;
            if off == 0 {
                // Use the pointer register directly.
                let owned = vp.owned;
                if owned {
                    return Ok((pr, true));
                }
                return Ok((pr, false));
            }
            if (-2048..=2047).contains(&off) {
                let (addr, owned) = self.addr_temp(ptr)?;
                self.ptr_addi(addr, pr, off as i32);
                self.release(vp);
                return Ok((addr, owned));
            }
        }
        let vi = self.gen_expr(index)?;
        let ri = self.scalar_reg(&vi)?;
        let (addr, owned) = self.addr_temp(ptr)?;
        if log2 > 0 {
            // Shift into a scratch first: `addr` may alias `pr` when both
            // come from the same role-stable register.
            let t = self.temp()?;
            self.opi(AluOp::Sll, t, ri, log2);
            self.ptr_add(addr, pr, t);
            self.free.push(t);
        } else {
            self.ptr_add(addr, pr, ri);
        }
        self.release(vi);
        self.release(vp);
        Ok((addr, owned))
    }

    fn gen_load(&mut self, ptr: &Expr, index: &Expr, dst: Loc) -> Result<(), CompileError> {
        let elem = match ptr.ty() {
            Ty::Ptr(e) => e,
            t => return Err(CompileError::Type(format!("load through {t:?}"))),
        };
        let d = match dst {
            Loc::Reg(d) => d,
            other => return Err(CompileError::Type(format!("load into {other:?}"))),
        };
        let (addr, owned) = self.gen_address(ptr, index, false)?;
        let w = match elem {
            Elem::I8 => LoadWidth::B,
            Elem::U8 => LoadWidth::Bu,
            Elem::I16 => LoadWidth::H,
            Elem::U16 => LoadWidth::Hu,
            Elem::I32 | Elem::U32 | Elem::F32 => LoadWidth::W,
        };
        self.asm.push(Instr::Load { w, rd: d, rs1: addr, off: 0 });
        if owned {
            self.free.push(addr);
        }
        Ok(())
    }

    fn gen_store(&mut self, ptr: &Expr, index: &Expr, value: &Expr) -> Result<(), CompileError> {
        let elem = match ptr.ty() {
            Ty::Ptr(e) => e,
            t => return Err(CompileError::Type(format!("store through {t:?}"))),
        };
        let vv = self.gen_expr(value)?;
        let rv = self.scalar_reg(&vv)?;
        let (addr, owned) = self.gen_address(ptr, index, true)?;
        let w = match elem {
            Elem::I8 | Elem::U8 => StoreWidth::B,
            Elem::I16 | Elem::U16 => StoreWidth::H,
            Elem::I32 | Elem::U32 | Elem::F32 => StoreWidth::W,
        };
        self.asm.push(Instr::Store { w, rs2: rv, rs1: addr, off: 0 });
        if owned {
            self.free.push(addr);
        }
        self.release(vv);
        Ok(())
    }

    fn gen_ptr_offset(&mut self, ptr: &Expr, index: &Expr, dst: Loc) -> Result<(), CompileError> {
        let elem = match ptr.ty() {
            Ty::Ptr(e) => e,
            t => return Err(CompileError::Type(format!("offset of {t:?}"))),
        };
        let log2 = elem.bytes().trailing_zeros() as i32;
        let vp = self.gen_expr(ptr)?;
        let vi = self.gen_expr(index)?;
        let ri = self.scalar_reg(&vi)?;
        match dst {
            Loc::Reg(d) => {
                let pr = self.scalar_reg(&vp)?;
                if log2 > 0 {
                    let t = self.temp()?;
                    self.opi(AluOp::Sll, t, ri, log2);
                    self.ptr_add(d, pr, t);
                    self.free.push(t);
                } else {
                    self.ptr_add(d, pr, ri);
                }
            }
            Loc::Fat(da, dl) => {
                let (pa, pl) = self.fat_regs(&vp)?;
                // addr' = addr + idx*sz; len' = len - idx (Rust re-slicing).
                if log2 > 0 {
                    let t = self.temp()?;
                    self.opi(AluOp::Sll, t, ri, log2);
                    self.op(AluOp::Add, da, pa, t);
                    self.free.push(t);
                } else {
                    self.op(AluOp::Add, da, pa, ri);
                }
                self.op(AluOp::Sub, dl, pl, ri);
                self.release_fat_temp(vp, pa, pl);
                self.release(vi);
                return Ok(());
            }
            other => return Err(CompileError::Type(format!("ptr offset into {other:?}"))),
        }
        self.release(vi);
        self.release(vp);
        Ok(())
    }
}
