//! The kernel IR: types, expressions, statements, kernels.

use core::fmt;
use core::ops;

/// Memory element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Elem {
    /// Signed byte.
    I8,
    /// Unsigned byte.
    U8,
    /// Signed half-word.
    I16,
    /// Unsigned half-word.
    U16,
    /// Signed word.
    I32,
    /// Unsigned word.
    U32,
    /// Single-precision float.
    F32,
}

impl Elem {
    /// Element size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Elem::I8 | Elem::U8 => 1,
            Elem::I16 | Elem::U16 => 2,
            Elem::I32 | Elem::U32 | Elem::F32 => 4,
        }
    }

    /// The scalar type an element loads as.
    pub fn loaded_ty(self) -> Ty {
        match self {
            Elem::F32 => Ty::F32,
            Elem::U8 | Elem::U16 | Elem::U32 => Ty::U32,
            Elem::I8 | Elem::I16 | Elem::I32 => Ty::I32,
        }
    }
}

/// Value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Signed 32-bit integer.
    I32,
    /// Unsigned 32-bit integer.
    U32,
    /// Single-precision float.
    F32,
    /// Pointer to elements of the given type.
    Ptr(Elem),
}

impl Ty {
    /// Is this an integer type?
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I32 | Ty::U32)
    }
}

/// Built-in SIMT index values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// `threadIdx.x`
    ThreadIdx,
    /// `blockIdx.x`
    BlockIdx,
    /// `blockDim.x`
    BlockDim,
    /// `gridDim.x`
    GridDim,
}

/// Binary operators. Comparison operators yield `U32` 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Min,
    Max,
    Cmp(CmpOp),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise not.
    Not,
    /// `sqrtf`
    Sqrt,
    /// Convert integer to float.
    ToF32,
    /// Convert float to integer (truncating).
    ToI32,
    /// Reinterpret as unsigned / change integer signedness (no code).
    AsU32,
    /// Change integer signedness to signed (no code).
    AsI32,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal (signed or unsigned domain decided by type).
    Int(i64, Ty),
    /// Float literal.
    F32(f32),
    /// Local variable.
    Var(usize, Ty),
    /// Kernel parameter.
    Param(usize, Ty),
    /// Shared array base pointer.
    Shared(usize, Elem),
    /// Built-in index value (`U32`).
    Special(Special),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `ptr[index]` load.
    Load(Box<Expr>, Box<Expr>),
    /// `&ptr[index]` — pointer arithmetic yielding a derived pointer.
    PtrOffset(Box<Expr>, Box<Expr>),
    /// `cond ? a : b` on scalars (compiled as a branchless or branchy
    /// select depending on type).
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Unsigned literal.
    pub fn u32(v: u32) -> Expr {
        Expr::Int(v as i64, Ty::U32)
    }

    /// Signed literal.
    pub fn i32(v: i32) -> Expr {
        Expr::Int(v as i64, Ty::I32)
    }

    /// Float literal.
    pub fn f32(v: f32) -> Expr {
        Expr::F32(v)
    }

    /// The type of this expression.
    ///
    /// # Panics
    ///
    /// Panics on ill-typed trees (e.g. loading through a non-pointer); the
    /// builder API prevents such trees from being constructed.
    pub fn ty(&self) -> Ty {
        match self {
            Expr::Int(_, t) | Expr::Var(_, t) | Expr::Param(_, t) => *t,
            Expr::F32(_) => Ty::F32,
            Expr::Shared(_, e) => Ty::Ptr(*e),
            Expr::Special(_) => Ty::U32,
            Expr::Bin(op, a, _) => match op {
                BinOp::Cmp(_) => Ty::U32,
                _ => a.ty(),
            },
            Expr::Un(op, a) => match op {
                UnOp::ToF32 | UnOp::Sqrt => Ty::F32,
                UnOp::ToI32 | UnOp::AsI32 => Ty::I32,
                UnOp::AsU32 => Ty::U32,
                UnOp::Neg | UnOp::Not => a.ty(),
            },
            Expr::Load(p, _) => match p.ty() {
                Ty::Ptr(e) => e.loaded_ty(),
                t => panic!("load through non-pointer {t:?}"),
            },
            Expr::PtrOffset(p, _) => p.ty(),
            Expr::Select(_, a, _) => a.ty(),
        }
    }

    /// `self[index]`: load an element through a pointer expression.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not pointer-typed.
    pub fn at(&self, index: Expr) -> Expr {
        assert!(matches!(self.ty(), Ty::Ptr(_)), "indexing a non-pointer");
        Expr::Load(Box::new(self.clone()), Box::new(index))
    }

    /// `&self[index]`: derived pointer.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not pointer-typed.
    pub fn offset(&self, index: Expr) -> Expr {
        assert!(matches!(self.ty(), Ty::Ptr(_)), "offsetting a non-pointer");
        Expr::PtrOffset(Box::new(self.clone()), Box::new(index))
    }

    fn cmp(self, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Cmp(op), Box::new(self), Box::new(rhs))
    }

    /// `self == rhs` (as a 0/1 value).
    pub fn eq_(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self != rhs`.
    pub fn ne_(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ne, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// Elementwise minimum.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// Elementwise maximum.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// Convert an integer to float.
    pub fn to_f32(self) -> Expr {
        Expr::Un(UnOp::ToF32, Box::new(self))
    }

    /// Convert a float to a (truncated) signed integer.
    pub fn to_i32(self) -> Expr {
        Expr::Un(UnOp::ToI32, Box::new(self))
    }

    /// Reinterpret as unsigned.
    pub fn as_u32(self) -> Expr {
        Expr::Un(UnOp::AsU32, Box::new(self))
    }

    /// Reinterpret as signed.
    pub fn as_i32(self) -> Expr {
        Expr::Un(UnOp::AsI32, Box::new(self))
    }

    /// Square root (float).
    pub fn sqrt(self) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(self))
    }

    /// `cond ? self : other`.
    pub fn select_if(self, cond: Expr, other: Expr) -> Expr {
        Expr::Select(Box::new(cond), Box::new(self), Box::new(other))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs))
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Rem);
impl_binop!(BitAnd, bitand, BinOp::And);
impl_binop!(BitOr, bitor, BinOp::Or);
impl_binop!(BitXor, bitxor, BinOp::Xor);
impl_binop!(Shl, shl, BinOp::Shl);
impl_binop!(Shr, shr, BinOp::Shr);

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Assign to a local variable.
    Assign(usize, Expr),
    /// `ptr[index] = value`.
    Store {
        /// Pointer expression.
        ptr: Expr,
        /// Element index.
        index: Expr,
        /// Value to store.
        value: Expr,
    },
    /// Two-way conditional.
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then-block.
        then_: Vec<Stmt>,
        /// Else-block.
        else_: Vec<Stmt>,
    },
    /// Pre-tested loop.
    While {
        /// Continue condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `__syncthreads()`.
    Barrier,
    /// `atomicAdd/Min/Max/...(&ptr[index], value)`, result discarded.
    Atomic {
        /// The atomic combine operation.
        op: simt_isa::AmoOp,
        /// Pointer expression.
        ptr: Expr,
        /// Element index.
        index: Expr,
        /// Operand value.
        value: Expr,
    },
}

/// A kernel parameter declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Name, for diagnostics.
    pub name: String,
    /// Type (scalar or pointer).
    pub ty: Ty,
}

/// A `declareShared` array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedDecl {
    /// Name, for diagnostics.
    pub name: String,
    /// Element type.
    pub elem: Elem,
    /// Length in elements.
    pub len: u32,
}

/// A complete kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Parameters, in argument-block order.
    pub params: Vec<ParamDecl>,
    /// Shared local arrays.
    pub shared: Vec<SharedDecl>,
    /// Local variable types (indexed by `Expr::Var` id).
    pub vars: Vec<Ty>,
    /// Local variable names (parallel to `vars`), for diagnostics and the
    /// pretty-printer.
    pub var_names: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Total shared memory per block, in bytes (8-byte aligned per array so
    /// capabilities can bound each array exactly where possible).
    pub fn shared_bytes(&self) -> u32 {
        self.shared.iter().map(|s| (s.elem.bytes() * s.len).next_multiple_of(8)).sum()
    }

    /// Does the kernel use barriers or shared memory (requiring block-loop
    /// synchronisation)?
    pub fn uses_shared_or_barrier(&self) -> bool {
        fn stmts_use(b: &[Stmt]) -> bool {
            b.iter().any(|s| match s {
                Stmt::Barrier => true,
                Stmt::If { then_, else_, .. } => stmts_use(then_) || stmts_use(else_),
                Stmt::While { body, .. } => stmts_use(body),
                _ => false,
            })
        }
        !self.shared.is_empty() || stmts_use(&self.body)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {}({} params, {} shared arrays)",
            self.name,
            self.params.len(),
            self.shared.len()
        )
    }
}
