//! Kernel argument-block layout, shared between the code generator and the
//! host runtime.
//!
//! The block starts with the launch geometry, then the parameters in
//! declaration order:
//!
//! ```text
//!   +0   gridDim.x  (u32)
//!   +4   blockDim.x (u32)
//!   +8.. parameters:
//!          scalars        4 bytes
//!          pointers       4 bytes        (Baseline: raw address)
//!                         8 bytes @8     (PureCap: tagged capability)
//!                         8 bytes        (Rust modes: address + length)
//! ```

use crate::expr::{Kernel, Ty};
use crate::Mode;

/// How one parameter is materialised in the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgSlot {
    /// A 4-byte scalar at the given offset.
    Scalar {
        /// Byte offset within the block.
        offset: u32,
    },
    /// A raw 4-byte address (Baseline).
    PtrRaw {
        /// Byte offset within the block.
        offset: u32,
    },
    /// A tagged 64+1-bit capability at an 8-byte-aligned offset (PureCap).
    PtrCap {
        /// Byte offset within the block.
        offset: u32,
    },
    /// A fat pointer: address then length-in-elements (Rust modes).
    PtrFat {
        /// Byte offset of the address word.
        offset: u32,
    },
}

impl ArgSlot {
    /// Byte offset of the slot.
    pub fn offset(self) -> u32 {
        match self {
            ArgSlot::Scalar { offset }
            | ArgSlot::PtrRaw { offset }
            | ArgSlot::PtrCap { offset }
            | ArgSlot::PtrFat { offset } => offset,
        }
    }
}

/// The computed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgLayout {
    /// One slot per kernel parameter.
    pub slots: Vec<ArgSlot>,
    /// Total block size in bytes (8-byte aligned).
    pub size: u32,
}

/// Offset of `gridDim.x`.
pub const GRID_DIM_OFFSET: u32 = 0;
/// Offset of `blockDim.x`.
pub const BLOCK_DIM_OFFSET: u32 = 4;

impl ArgLayout {
    /// Compute the layout of `kernel`'s arguments under `mode`.
    pub fn new(kernel: &Kernel, mode: Mode) -> ArgLayout {
        let mut off = 8u32;
        let mut slots = Vec::with_capacity(kernel.params.len());
        for p in &kernel.params {
            let slot = match (p.ty, mode) {
                (Ty::Ptr(_), Mode::Baseline | Mode::GpuShield) => {
                    let s = ArgSlot::PtrRaw { offset: off };
                    off += 4;
                    s
                }
                (Ty::Ptr(_), Mode::PureCap) => {
                    off = off.next_multiple_of(8);
                    let s = ArgSlot::PtrCap { offset: off };
                    off += 8;
                    s
                }
                (Ty::Ptr(_), Mode::RustChecked | Mode::RustFull) => {
                    let s = ArgSlot::PtrFat { offset: off };
                    off += 8;
                    s
                }
                _ => {
                    let s = ArgSlot::Scalar { offset: off };
                    off += 4;
                    s
                }
            };
            slots.push(slot);
        }
        ArgLayout { slots, size: off.next_multiple_of(8) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Elem, KernelBuilder};

    fn kernel() -> Kernel {
        let mut k = KernelBuilder::new("t");
        k.param_u32("n");
        k.param_ptr("a", Elem::F32);
        k.param_ptr("b", Elem::U8);
        k.finish()
    }

    #[test]
    fn baseline_layout_is_packed() {
        let l = ArgLayout::new(&kernel(), Mode::Baseline);
        assert_eq!(
            l.slots,
            vec![
                ArgSlot::Scalar { offset: 8 },
                ArgSlot::PtrRaw { offset: 12 },
                ArgSlot::PtrRaw { offset: 16 },
            ]
        );
        assert_eq!(l.size, 24);
    }

    #[test]
    fn purecap_layout_aligns_capabilities() {
        let l = ArgLayout::new(&kernel(), Mode::PureCap);
        assert_eq!(
            l.slots,
            vec![
                ArgSlot::Scalar { offset: 8 },
                ArgSlot::PtrCap { offset: 16 },
                ArgSlot::PtrCap { offset: 24 },
            ]
        );
        assert_eq!(l.size, 32);
    }

    #[test]
    fn rust_layout_is_fat() {
        let l = ArgLayout::new(&kernel(), Mode::RustChecked);
        assert_eq!(l.slots[1], ArgSlot::PtrFat { offset: 12 });
        assert_eq!(l.slots[2], ArgSlot::PtrFat { offset: 20 });
        assert_eq!(l.size, 32);
    }
}
