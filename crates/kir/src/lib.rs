//! NoCL kernel IR and code generator.
//!
//! The paper compiles unmodified C++ NoCL kernels with CHERI-Clang; this
//! crate plays that role for the model: CUDA-style compute kernels are
//! written against a small typed IR (thread/block indices, shared arrays,
//! barriers, atomics, structured control flow) and compiled to RV32IMA +
//! Zfinx + Xcheri machine code for the `cheri-simt` SM, in one of five
//! modes:
//!
//! * [`Mode::Baseline`] — integer pointers, no safety (the paper's
//!   *Baseline* configuration).
//! * [`Mode::PureCap`] — pure-capability code: every pointer (including the
//!   stack pointer and shared-array pointers) is a bounded capability;
//!   loads/stores are hardware-checked; kernel arguments arrive as tagged
//!   capabilities via `CLC` (the paper's *CHERI* configurations).
//! * [`Mode::RustChecked`] — the experimental Rust port of Section 4.7:
//!   pointers are slice-style fat pointers (address + remaining length) and
//!   every access the compiler cannot prove safe carries an explicit bounds
//!   check (`sltu` + `beqz → trap`), modelling `panic!` on overflow.
//! * [`Mode::RustFull`] — additionally models the residual like-for-like
//!   Rust port costs beyond bounds checking (re-materialised addresses
//!   standing in for optimisations the borrow-checked code forgoes), to
//!   approximate the paper's total 46% overhead.
//!
//! ```
//! use nocl_kir::{KernelBuilder, Elem, Mode};
//!
//! // VecAdd: c[i] = a[i] + b[i], grid-stride loop.
//! let mut k = KernelBuilder::new("vecadd");
//! let len = k.param_u32("len");
//! let a = k.param_ptr("a", Elem::I32);
//! let b = k.param_ptr("b", Elem::I32);
//! let c = k.param_ptr("c", Elem::I32);
//! let i = k.var_u32("i");
//! k.for_(i.clone(), k.global_id(), len.clone(), k.global_threads(), |k| {
//!     k.store(&c, i.clone(), a.at(i.clone()) + b.at(i.clone()));
//! });
//! let kernel = k.finish();
//! let compiled = nocl_kir::compile(&kernel, Mode::PureCap).unwrap();
//! assert!(!compiled.words.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod compile;
mod expr;
mod layout;
mod pretty;

pub use builder::KernelBuilder;
pub use compile::{compile, compile_capped, compile_with, CompileError, CompiledKernel, MemPlan};
pub use expr::{BinOp, CmpOp, Elem, Expr, Kernel, ParamDecl, SharedDecl, Special, Stmt, Ty, UnOp};
pub use layout::{ArgLayout, ArgSlot};

/// Compilation mode (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Plain RV32, integer pointers, no memory safety.
    Baseline,
    /// Pure-capability CHERI code.
    PureCap,
    /// Rust-style software bounds checking (checks only).
    RustChecked,
    /// Rust-style bounds checking plus residual port overheads.
    RustFull,
    /// GPUShield-style region-based bounds checking (Lee et al., ISCA'22 —
    /// the prior hardware approach of Section 5.2): generated code is
    /// identical to `Baseline`, but buffer pointers carry a bounds-table
    /// index in their upper address bits which the SM checks (and strips)
    /// on every access. Pointers with index 0 are "unprotected" and bypass
    /// the table — the expressibility/security gaps of Figure 15 included.
    GpuShield,
}

impl Mode {
    /// Does this mode require a CHERI-enabled SM?
    pub fn needs_cheri(self) -> bool {
        matches!(self, Mode::PureCap)
    }

    /// Does this mode use fat (address + length) pointers?
    pub fn fat_pointers(self) -> bool {
        matches!(self, Mode::RustChecked | Mode::RustFull)
    }
}
