//! A C-like pretty-printer for the kernel IR — the "source view" companion
//! to [`crate::CompiledKernel::disassemble`]'s machine view.
//!
//! ```
//! use nocl_kir::{Elem, Expr, KernelBuilder};
//!
//! let mut k = KernelBuilder::new("axpy");
//! let n = k.param_u32("n");
//! let x = k.param_ptr("x", Elem::F32);
//! let i = k.var_u32("i");
//! k.for_(i.clone(), k.global_id(), n, k.global_threads(), |k| {
//!     k.store(&x, i.clone(), x.at(i.clone()) * Expr::f32(2.0));
//! });
//! let text = k.finish().pretty();
//! assert!(text.contains("kernel axpy(u32 n, f32* x)"));
//! assert!(text.contains("x[i] = (x[i] * 2f)"));
//! ```

use crate::expr::*;
use core::fmt::Write as _;

fn elem_name(e: Elem) -> &'static str {
    match e {
        Elem::I8 => "i8",
        Elem::U8 => "u8",
        Elem::I16 => "i16",
        Elem::U16 => "u16",
        Elem::I32 => "i32",
        Elem::U32 => "u32",
        Elem::F32 => "f32",
    }
}

fn ty_name(t: Ty) -> String {
    match t {
        Ty::I32 => "i32".into(),
        Ty::U32 => "u32".into(),
        Ty::F32 => "f32".into(),
        Ty::Ptr(e) => format!("{}*", elem_name(e)),
    }
}

/// Render an expression. Names come from the kernel's declaration tables.
fn expr(e: &Expr, k: &Kernel, out: &mut String) {
    match e {
        Expr::Int(v, Ty::I32) => {
            let _ = write!(out, "{}", *v as i32);
        }
        Expr::Int(v, _) => {
            let _ = write!(out, "{}", *v as u32);
        }
        Expr::F32(v) => {
            let _ = write!(out, "{v}f");
        }
        Expr::Var(i, _) => out.push_str(k.var_names.get(*i).map(String::as_str).unwrap_or("v?")),
        Expr::Param(i, _) => out.push_str(&k.params[*i].name),
        Expr::Shared(i, _) => out.push_str(&k.shared[*i].name),
        Expr::Special(s) => out.push_str(match s {
            Special::ThreadIdx => "threadIdx.x",
            Special::BlockIdx => "blockIdx.x",
            Special::BlockDim => "blockDim.x",
            Special::GridDim => "gridDim.x",
        }),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Min => return call2("min", a, b, k, out),
                BinOp::Max => return call2("max", a, b, k, out),
                BinOp::Cmp(c) => match c {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                },
            };
            out.push('(');
            expr(a, k, out);
            let _ = write!(out, " {sym} ");
            expr(b, k, out);
            out.push(')');
        }
        Expr::Un(op, a) => match op {
            UnOp::Neg => {
                out.push_str("-(");
                expr(a, k, out);
                out.push(')');
            }
            UnOp::Not => {
                out.push_str("~(");
                expr(a, k, out);
                out.push(')');
            }
            UnOp::Sqrt => call1("sqrtf", a, k, out),
            UnOp::ToF32 => call1("(f32)", a, k, out),
            UnOp::ToI32 => call1("(i32)", a, k, out),
            UnOp::AsU32 => call1("(u32)", a, k, out),
            UnOp::AsI32 => call1("(i32)", a, k, out),
        },
        Expr::Load(p, i) => {
            expr(p, k, out);
            out.push('[');
            expr(i, k, out);
            out.push(']');
        }
        Expr::PtrOffset(p, i) => {
            out.push('&');
            expr(p, k, out);
            out.push('[');
            expr(i, k, out);
            out.push(']');
        }
        Expr::Select(c, a, b) => {
            out.push('(');
            expr(c, k, out);
            out.push_str(" ? ");
            expr(a, k, out);
            out.push_str(" : ");
            expr(b, k, out);
            out.push(')');
        }
    }
}

fn call1(name: &str, a: &Expr, k: &Kernel, out: &mut String) {
    out.push_str(name);
    out.push('(');
    expr(a, k, out);
    out.push(')');
}

fn call2(name: &str, a: &Expr, b: &Expr, k: &Kernel, out: &mut String) {
    out.push_str(name);
    out.push('(');
    expr(a, k, out);
    out.push_str(", ");
    expr(b, k, out);
    out.push(')');
}

fn stmts(body: &[Stmt], k: &Kernel, depth: usize, out: &mut String) {
    let pad = "    ".repeat(depth);
    for s in body {
        match s {
            Stmt::Assign(i, e) => {
                let name = k.var_names.get(*i).map(String::as_str).unwrap_or("v?");
                let _ = write!(out, "{pad}{name} = ");
                expr(e, k, out);
                out.push_str(";\n");
            }
            Stmt::Store { ptr, index, value } => {
                out.push_str(&pad);
                expr(ptr, k, out);
                out.push('[');
                expr(index, k, out);
                out.push_str("] = ");
                expr(value, k, out);
                out.push_str(";\n");
            }
            Stmt::Barrier => {
                let _ = writeln!(out, "{pad}__syncthreads();");
            }
            Stmt::Atomic { op, ptr, index, value } => {
                let name = match op {
                    simt_isa::AmoOp::Add => "atomicAdd",
                    simt_isa::AmoOp::Min => "atomicMin",
                    simt_isa::AmoOp::Max => "atomicMax",
                    simt_isa::AmoOp::And => "atomicAnd",
                    simt_isa::AmoOp::Or => "atomicOr",
                    simt_isa::AmoOp::Xor => "atomicXor",
                    simt_isa::AmoOp::Swap => "atomicExch",
                    simt_isa::AmoOp::Minu => "atomicMinU",
                    simt_isa::AmoOp::Maxu => "atomicMaxU",
                };
                let _ = write!(out, "{pad}{name}(&");
                expr(ptr, k, out);
                out.push('[');
                expr(index, k, out);
                out.push_str("], ");
                expr(value, k, out);
                out.push_str(");\n");
            }
            Stmt::If { cond, then_, else_ } => {
                let _ = write!(out, "{pad}if (");
                expr(cond, k, out);
                out.push_str(") {\n");
                stmts(then_, k, depth + 1, out);
                if else_.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    stmts(else_, k, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::While { cond, body } => {
                let _ = write!(out, "{pad}while (");
                expr(cond, k, out);
                out.push_str(") {\n");
                stmts(body, k, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

impl Kernel {
    /// Render the kernel as CUDA-flavoured pseudo-C.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        let params: Vec<String> =
            self.params.iter().map(|p| format!("{} {}", ty_name(p.ty), p.name)).collect();
        let _ = writeln!(out, "kernel {}({}) {{", self.name, params.join(", "));
        for s in &self.shared {
            let _ = writeln!(out, "    __shared__ {} {}[{}];", elem_name(s.elem), s.name, s.len);
        }
        for (i, t) in self.vars.iter().enumerate() {
            let name = self.var_names.get(i).map(String::as_str).unwrap_or("v?");
            let _ = writeln!(out, "    {} {};", ty_name(*t), name);
        }
        stmts(&self.body, self, 1, &mut out);
        out.push_str("}\n");
        out
    }
}
