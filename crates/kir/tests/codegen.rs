//! Code-generator structural tests: the instruction mix each mode emits.

use nocl_kir::{compile, Elem, Expr, Kernel, KernelBuilder, Mode};
use simt_isa::Instr;

fn vecadd() -> Kernel {
    let mut k = KernelBuilder::new("vecadd");
    let len = k.param_u32("len");
    let a = k.param_ptr("a", Elem::I32);
    let b = k.param_ptr("b", Elem::I32);
    let c = k.param_ptr("c", Elem::I32);
    let i = k.var_u32("i");
    k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
        k.store(&c, i.clone(), a.at(i.clone()) + b.at(i.clone()));
    });
    k.finish()
}

fn decoded(kernel: &Kernel, mode: Mode) -> Vec<Instr> {
    compile(kernel, mode)
        .unwrap()
        .words
        .iter()
        .map(|&w| Instr::decode(w).expect("generated code decodes"))
        .collect()
}

#[test]
fn purecap_uses_capability_instructions() {
    let k = vecadd();
    let instrs = decoded(&k, Mode::PureCap);
    let has = |f: fn(&Instr) -> bool| instrs.iter().any(f);
    assert!(has(|i| matches!(i, Instr::Clc { .. })), "arguments arrive via CLC");
    assert!(has(|i| matches!(i, Instr::CIncOffset { .. })), "pointer arithmetic via CIncOffset");
    assert!(has(|i| matches!(i, Instr::CSpecialRw { .. })), "argument capability via CSpecialRW");
    // No raw integer add is used to move a pointer: the baseline version
    // has three more plain ADDs (one per address calc) than purecap.
    let base = decoded(&k, Mode::Baseline);
    let adds = |v: &[Instr]| {
        v.iter().filter(|i| matches!(i, Instr::Op { op: simt_isa::AluOp::Add, .. })).count()
    };
    assert!(adds(&base) > adds(&instrs));
}

#[test]
fn baseline_uses_no_cheri_instructions() {
    for i in decoded(&vecadd(), Mode::Baseline) {
        assert!(
            !matches!(
                i,
                Instr::Clc { .. }
                    | Instr::Csc { .. }
                    | Instr::CIncOffset { .. }
                    | Instr::CIncOffsetImm { .. }
                    | Instr::CSetBounds { .. }
                    | Instr::CSetBoundsImm { .. }
                    | Instr::CSpecialRw { .. }
                    | Instr::CapUnary { .. }
            ),
            "baseline code must be CHERI-free: {i}"
        );
    }
}

#[test]
fn gpushield_code_is_identical_to_baseline() {
    // GPUShield's checking is entirely in hardware: the generated program
    // is byte-for-byte the baseline one.
    let k = vecadd();
    let base = compile(&k, Mode::Baseline).unwrap();
    let shield = compile(&k, Mode::GpuShield).unwrap();
    assert_eq!(base.words, shield.words);
}

#[test]
fn rust_modes_emit_checks_monotonically() {
    let k = vecadd();
    let base = compile(&k, Mode::Baseline).unwrap().len();
    let checked = compile(&k, Mode::RustChecked).unwrap().len();
    let full = compile(&k, Mode::RustFull).unwrap().len();
    let purecap = compile(&k, Mode::PureCap).unwrap().len();
    assert!(checked > base, "bounds checks add instructions");
    assert!(full > checked, "RustFull adds residual costs");
    // CHERI's checks are in hardware: code size stays close to baseline.
    assert!(purecap <= base + 6, "purecap {purecap} vs base {base}");
    // The Rust port contains sltu+branch pairs.
    let instrs = decoded(&k, Mode::RustChecked);
    let sltus =
        instrs.iter().filter(|i| matches!(i, Instr::Op { op: simt_isa::AluOp::Sltu, .. })).count();
    assert!(sltus >= 3, "one check per access: {sltus}");
}

#[test]
fn disassembly_is_complete_and_labelled() {
    let c = compile(&vecadd(), Mode::PureCap).unwrap();
    let listing = c.disassemble();
    assert_eq!(listing.lines().count(), c.len());
    assert!(listing.starts_with("10000000:"));
    assert!(listing.contains("clc"));
    assert!(listing.contains("cincoffset"));
    assert!(listing.contains("simt.terminate"));
}

#[test]
fn shared_arrays_get_bounded_capabilities() {
    let mut k = KernelBuilder::new("sh");
    let out = k.param_ptr("out", Elem::I32);
    let tile = k.shared("tile", Elem::I32, 64);
    k.store(&tile, k.thread_idx(), Expr::i32(1));
    k.barrier();
    k.store(&out, k.thread_idx(), tile.at(k.thread_idx()));
    let kernel = k.finish();
    let instrs = decoded(&kernel, Mode::PureCap);
    assert!(
        instrs.iter().any(|i| matches!(i, Instr::CSetBoundsImm { .. })),
        "declareShared derives a bounded capability"
    );
    assert!(instrs.iter().any(|i| matches!(i, Instr::Simt { op: simt_isa::SimtOp::Barrier })));
}

#[test]
fn register_pressure_reports_cleanly() {
    // A kernel with an absurd number of parameters fails with a
    // RegisterPressure error rather than a panic.
    let mut k = KernelBuilder::new("fatparams");
    for i in 0..30 {
        k.param_ptr(&format!("p{i}"), Elem::I32);
    }
    let kernel = k.finish();
    match compile(&kernel, Mode::RustChecked) {
        Err(nocl_kir::CompileError::RegisterPressure(_)) => {}
        other => panic!("expected register-pressure error, got {other:?}"),
    }
}
