//! The coalescing unit: packs per-lane memory requests into a small set of
//! wide main-memory transactions, using rules similar to early NVIDIA Tesla
//! devices (Lindholm et al. 2008), as in SIMTight.

use simt_trace::{EventSink, MemSpace, TraceEvent};

/// One lane's memory request, as presented to the coalescing unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRequest {
    /// Byte address.
    pub addr: u32,
    /// Access size in bytes (1, 2, 4; capability accesses arrive as two
    /// 4-byte flits).
    pub bytes: u32,
}

/// Result of coalescing one warp-wide access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coalesced {
    /// Number of 64-byte DRAM transactions generated.
    pub transactions: u32,
    /// True if every active lane hit the same word (a broadcast — the
    /// "same-block with identical address" fast case).
    pub uniform: bool,
}

/// The coalescing unit (stateless; per-access statistics are accumulated by
/// the caller).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoalescingUnit {
    _private: (),
}

/// DRAM transaction (burst) size in bytes.
pub const TRANSACTION_BYTES: u32 = 64;

impl CoalescingUnit {
    /// Create a coalescing unit.
    pub fn new() -> Self {
        CoalescingUnit { _private: () }
    }

    /// Coalesce the active lanes' requests into 64-byte block transactions:
    /// all requests that fall in the same naturally-aligned 64-byte block
    /// share one transaction. Requests spanning a block boundary (possible
    /// only for misaligned multi-byte accesses, which the pipeline rejects
    /// earlier) are not considered.
    pub fn coalesce(self, reqs: &[LaneRequest]) -> Coalesced {
        if reqs.is_empty() {
            return Coalesced { transactions: 0, uniform: false };
        }
        let first = reqs[0];
        let uniform = reqs.iter().all(|r| r.addr == first.addr && r.bytes == first.bytes);
        // Count distinct 64-byte blocks. A warp has at most 64 lanes, so
        // the block list fits on the stack; the heap path only serves
        // oversized (out-of-contract) request sets.
        let transactions = if uniform {
            1
        } else if reqs.len() <= 64 {
            let mut blocks = [0u32; 64];
            for (b, r) in blocks.iter_mut().zip(reqs) {
                *b = r.addr / TRANSACTION_BYTES;
            }
            let blocks = &mut blocks[..reqs.len()];
            blocks.sort_unstable();
            1 + blocks.windows(2).filter(|w| w[0] != w[1]).count() as u32
        } else {
            let mut blocks: Vec<u32> = reqs.iter().map(|r| r.addr / TRANSACTION_BYTES).collect();
            blocks.sort_unstable();
            blocks.dedup();
            blocks.len() as u32
        };
        Coalesced { transactions, uniform }
    }

    /// [`Self::coalesce`] with structured tracing: emits one
    /// [`TraceEvent::Mem`] describing the shape of the warp-wide global
    /// access (lane count, transactions generated, broadcast detection).
    /// Empty request sets emit nothing.
    pub fn coalesce_traced(
        self,
        reqs: &[LaneRequest],
        cycle: u64,
        warp: u32,
        is_store: bool,
        sink: &mut dyn EventSink,
    ) -> Coalesced {
        let out = self.coalesce(reqs);
        if !reqs.is_empty() {
            sink.emit(TraceEvent::Mem {
                cycle,
                warp,
                space: MemSpace::Dram,
                is_store,
                lanes: reqs.len() as u32,
                transactions: out.transactions,
                uniform: out.uniform,
                conflict_cycles: 0,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(addrs: &[u32]) -> Vec<LaneRequest> {
        addrs.iter().map(|&addr| LaneRequest { addr, bytes: 4 }).collect()
    }

    #[test]
    fn consecutive_words_coalesce() {
        let c = CoalescingUnit::new();
        // 16 lanes reading consecutive words = one 64-byte transaction.
        let r = reqs(&(0..16).map(|i| 0x8000_0000 + i * 4).collect::<Vec<_>>());
        assert_eq!(c.coalesce(&r).transactions, 1);
        // 32 lanes reading consecutive words = two transactions.
        let r = reqs(&(0..32).map(|i| 0x8000_0000 + i * 4).collect::<Vec<_>>());
        assert_eq!(c.coalesce(&r).transactions, 2);
    }

    #[test]
    fn uniform_access_is_one_broadcast() {
        let c = CoalescingUnit::new();
        let r = reqs(&[0x8000_0040; 32]);
        let out = c.coalesce(&r);
        assert_eq!(out.transactions, 1);
        assert!(out.uniform);
    }

    #[test]
    fn strided_access_fans_out() {
        let c = CoalescingUnit::new();
        // Stride of 256 bytes: every lane its own block.
        let r = reqs(&(0..32).map(|i| 0x8000_0000 + i * 256).collect::<Vec<_>>());
        assert_eq!(c.coalesce(&r).transactions, 32);
    }

    #[test]
    fn unaligned_block_split() {
        let c = CoalescingUnit::new();
        // Consecutive words starting mid-block span two blocks.
        let r = reqs(&(0..16).map(|i| 0x8000_0020 + i * 4).collect::<Vec<_>>());
        assert_eq!(c.coalesce(&r).transactions, 2);
    }

    #[test]
    fn empty() {
        assert_eq!(CoalescingUnit::new().coalesce(&[]).transactions, 0);
    }
}
