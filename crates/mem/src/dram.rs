//! DRAM channel timing model and traffic accounting.
//!
//! The model captures what the evaluation needs: a fixed access latency that
//! warp multithreading can hide, a finite transaction rate that creates
//! bandwidth back-pressure, and byte/transaction counters that drive
//! Figure 12 (DRAM bandwidth usage with/without CHERI).

use crate::coalesce::TRANSACTION_BYTES;
use simt_trace::{EventSink, TraceEvent};

/// DRAM channel parameters.
#[derive(Debug, Clone, Copy)]
pub struct DramConfig {
    /// Round-trip access latency in SM cycles (DDR4 behind an FPGA SoC).
    pub latency: u32,
    /// Channel occupancy per 64-byte transaction, in SM cycles. The
    /// evaluation SoC's 512-bit bus moves one transaction per cycle, but
    /// command overheads make two cycles a better fit.
    pub cycles_per_transaction: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig { latency: 200, cycles_per_transaction: 2 }
    }
}

/// Traffic counters (cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// 64-byte read transactions issued for data.
    pub read_transactions: u64,
    /// 64-byte write transactions issued for data.
    pub write_transactions: u64,
    /// Transactions issued on behalf of the tag controller.
    pub tag_transactions: u64,
    /// Cycles the channel was occupied.
    pub busy_cycles: u64,
    /// Accesses where the channel ownership changed between SMs (always 0
    /// on a single-SM device).
    pub cross_sm_switches: u64,
    /// Queueing cycles paid at those ownership switches — channel time one
    /// SM spent waiting behind another SM's in-flight transactions.
    pub cross_sm_wait_cycles: u64,
}

impl DramStats {
    /// Total bytes moved (data + tag traffic).
    pub fn total_bytes(&self) -> u64 {
        (self.read_transactions + self.write_transactions + self.tag_transactions)
            * TRANSACTION_BYTES as u64
    }
}

/// The DRAM channel.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    stats: DramStats,
    /// Cycle at which the channel becomes free.
    free_at: u64,
    /// SM currently driving the channel (set by the device arbiter).
    accessor: u32,
    /// SM that issued the previous non-empty batch.
    last_accessor: Option<u32>,
}

impl Dram {
    /// Create a channel with the given parameters.
    pub fn new(cfg: DramConfig) -> Self {
        Dram { cfg, stats: DramStats::default(), free_at: 0, accessor: 0, last_accessor: None }
    }

    /// The configured parameters.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Tell the channel which SM is driving it from now on (device arbiter
    /// hook). Subsequent accesses from a *different* SM than the previous
    /// batch count towards the cross-SM contention statistics.
    pub fn set_accessor(&mut self, sm: u32) {
        self.accessor = sm;
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Reset the statistics (e.g. between kernel launches).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.free_at = 0;
        self.last_accessor = None;
    }

    /// Issue `n` transactions at time `now`; returns the cycle at which the
    /// data is available (queueing + latency).
    pub fn access(&mut self, now: u64, reads: u32, writes: u32, tag_txns: u32) -> u64 {
        let n = reads + writes + tag_txns;
        if n == 0 {
            return now;
        }
        if let Some(prev) = self.last_accessor {
            if prev != self.accessor {
                self.stats.cross_sm_switches += 1;
                self.stats.cross_sm_wait_cycles += self.free_at.saturating_sub(now);
            }
        }
        self.last_accessor = Some(self.accessor);
        self.stats.read_transactions += reads as u64;
        self.stats.write_transactions += writes as u64;
        self.stats.tag_transactions += tag_txns as u64;
        let start = self.free_at.max(now);
        let occupancy = (n * self.cfg.cycles_per_transaction) as u64;
        self.free_at = start + occupancy;
        self.stats.busy_cycles += occupancy;
        start + occupancy + self.cfg.latency as u64
    }

    /// [`Self::access`] with structured tracing: emits one
    /// [`TraceEvent::Dram`] per non-empty transaction batch, carrying the
    /// completion cycle (queueing included). Empty batches emit nothing, so
    /// per-kind transaction sums over the events reconcile with
    /// [`Self::stats`].
    pub fn access_traced(
        &mut self,
        now: u64,
        reads: u32,
        writes: u32,
        tag_txns: u32,
        warp: u32,
        sink: &mut dyn EventSink,
    ) -> u64 {
        let done_at = self.access(now, reads, writes, tag_txns);
        if reads + writes + tag_txns > 0 {
            sink.emit(TraceEvent::Dram { cycle: now, warp, reads, writes, tag_txns, done_at });
        }
        done_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_queueing() {
        let mut d = Dram::new(DramConfig { latency: 100, cycles_per_transaction: 2 });
        // First access: 1 txn, done at 2 + 100.
        assert_eq!(d.access(0, 1, 0, 0), 102);
        // Back-to-back access queues behind the first.
        assert_eq!(d.access(0, 1, 0, 0), 104);
        // A later access after the channel drained sees only latency.
        assert_eq!(d.access(1000, 1, 0, 0), 1102);
        assert_eq!(d.stats().read_transactions, 3);
    }

    #[test]
    fn zero_transactions_is_free() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.access(42, 0, 0, 0), 42);
        assert_eq!(d.stats(), DramStats::default());
    }

    #[test]
    fn byte_accounting() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 2, 1, 1);
        assert_eq!(d.stats().total_bytes(), 4 * 64);
    }
}
