//! Deterministic, seed-driven fault injection for the tagged memory
//! subsystem.
//!
//! A [`FaultInjector`] mutates the *functional* state of a [`MainMemory`]
//! between kernel launches so that every [`cheri_cap::CapException`] and
//! [`crate::MemFault`] variant is reachable on demand: it can clear or
//! forge capability tags, corrupt capability words while preserving their
//! tags (the model of a physical upset that the tag bit does not protect
//! against), and depopulate address windows. The tag cache
//! ([`crate::TagController`]) is a timing model over this functional state,
//! so a flipped tag here is exactly what a flipped line in the tag cache's
//! backing store looks like to the pipeline.
//!
//! All randomness comes from a [`sim_prng::Prng`] seeded explicitly, so an
//! injection campaign is exactly reproducible from its seed — the property
//! the `repro faults` coverage matrix relies on.

use crate::MainMemory;
use cheri_cap::{CapException, CapMem, CapPipe, Perms};
use sim_prng::Prng;

/// The injection schemes of a randomised campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionKind {
    /// Clear the tags of resident capabilities: the next dereference
    /// raises `CapException::TagViolation`.
    ClearTag,
    /// Set the tag bits of random data words, forging "capabilities"
    /// whose metadata is whatever data happened to be there.
    ForgeTag,
    /// XOR random bits into the metadata word of resident capabilities
    /// while *preserving* their tags — corrupted perms/bounds surface as
    /// assorted CHERI faults on the next dereference.
    CorruptMeta,
    /// Install an unmapped address window: device accesses into it raise
    /// `MemFault::Unmapped`.
    UnmapWindow,
}

impl InjectionKind {
    /// Every scheme, in declaration order.
    pub const ALL: [InjectionKind; 4] = [
        InjectionKind::ClearTag,
        InjectionKind::ForgeTag,
        InjectionKind::CorruptMeta,
        InjectionKind::UnmapWindow,
    ];

    /// Stable machine-readable name (coverage tables, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            InjectionKind::ClearTag => "tag-clear",
            InjectionKind::ForgeTag => "tag-forge",
            InjectionKind::CorruptMeta => "meta-corrupt",
            InjectionKind::UnmapWindow => "unmap-window",
        }
    }
}

impl std::str::FromStr for InjectionKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        InjectionKind::ALL.into_iter().find(|k| k.name() == s).ok_or_else(|| {
            format!("unknown injection scheme {s} (tag-clear|tag-forge|meta-corrupt|unmap-window)")
        })
    }
}

/// What one injection pass actually did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// The scheme applied.
    pub kind: InjectionKind,
    /// Affected capability/word addresses, or `[base]` for a window.
    pub addrs: Vec<u32>,
}

/// Seed-driven fault injector. See the module documentation.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    prng: Prng,
}

impl FaultInjector {
    /// An injector whose whole campaign is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { prng: Prng::seed_from_u64(seed) }
    }

    /// Apply one randomised pass of `kind` to `mem`. `intensity` bounds how
    /// many capabilities/words are affected (windows always install one
    /// window of `64 * intensity` bytes). Returns what was done; the
    /// `addrs` list is empty when no candidate existed (e.g. tag schemes
    /// on a memory holding no valid capabilities).
    pub fn apply(
        &mut self,
        mem: &mut MainMemory,
        kind: InjectionKind,
        intensity: usize,
    ) -> Injection {
        let n = intensity.max(1);
        let addrs = match kind {
            InjectionKind::ClearTag => {
                let victims = self.pick_caps(mem, n);
                for &a in &victims {
                    mem.inject_set_tag(a, false);
                }
                victims
            }
            InjectionKind::ForgeTag => {
                let mut forged = Vec::new();
                for _ in 0..n {
                    let a = self.pick_word(mem);
                    mem.inject_set_tag(a, true);
                    mem.inject_set_tag(a + 4, true);
                    forged.push(a);
                }
                forged
            }
            InjectionKind::CorruptMeta => {
                let victims = self.pick_caps(mem, n);
                for &a in &victims {
                    // Metadata is the high word of the 64-bit format; keep
                    // the XOR nonzero so every pass changes something.
                    let xor = self.prng.next_u32() | 1;
                    mem.inject_corrupt_word(a + 4, xor);
                }
                victims
            }
            InjectionKind::UnmapWindow => {
                let len = 64 * n as u32;
                let span = mem.size().saturating_sub(len).max(64);
                let base = mem.base() + (self.prng.range_u32(0, span) & !63);
                mem.inject_unmap_window(base, len);
                vec![base]
            }
        };
        Injection { kind, addrs }
    }

    /// Up to `n` distinct resident-capability addresses, in randomised
    /// order (empty if the memory holds no valid capabilities).
    fn pick_caps(&mut self, mem: &MainMemory, n: usize) -> Vec<u32> {
        let mut candidates = mem.tagged_cap_addrs();
        self.prng.shuffle(&mut candidates);
        candidates.truncate(n);
        candidates
    }

    /// A random 8-aligned in-range word-pair address.
    fn pick_word(&mut self, mem: &MainMemory) -> u32 {
        mem.base() + (self.prng.range_u32(0, mem.size() - 8) & !7)
    }

    /// Directed sabotage: mutate the capability stored at `addr` (which
    /// must hold a validly-tagged capability) so that the *matching* use of
    /// it — a load, a store, a capability-wide access, a `CJALR`, a
    /// `CSetBoundsExact` — faults with exactly `target`. Used by the
    /// per-variant coverage probes; the randomised schemes above are for
    /// campaign-style injection.
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not hold a validly-tagged capability.
    pub fn sabotage(&mut self, mem: &mut MainMemory, addr: u32, target: CapException) {
        let victim = mem.read_cap(addr).expect("sabotage target must be mapped and 8-aligned");
        assert!(victim.tag(), "sabotage target must hold a valid capability");
        let cap = CapPipe::from_mem(victim);
        match target {
            CapException::TagViolation => {
                mem.inject_set_tag(addr, false);
            }
            CapException::SealViolation => {
                Self::rewrite(mem, addr, cap.seal_entry().to_mem());
            }
            CapException::BoundsViolation => {
                // Zero-length bounds at the current address: every access
                // through the capability is out of bounds, but the tag
                // survives (monotone shrink).
                Self::rewrite(mem, addr, cap.set_bounds(0).0.to_mem());
            }
            CapException::PermitLoadViolation => {
                Self::rewrite(mem, addr, cap.and_perm(!Perms::LOAD).to_mem());
            }
            CapException::PermitStoreViolation => {
                Self::rewrite(mem, addr, cap.and_perm(!Perms::STORE).to_mem());
            }
            CapException::PermitExecuteViolation => {
                Self::rewrite(mem, addr, cap.and_perm(!Perms::EXECUTE).to_mem());
            }
            CapException::PermitLoadCapViolation => {
                Self::rewrite(mem, addr, cap.and_perm(!Perms::LOAD_CAP).to_mem());
            }
            CapException::PermitStoreCapViolation => {
                Self::rewrite(mem, addr, cap.and_perm(!Perms::STORE_CAP).to_mem());
            }
            CapException::AlignmentViolation => {
                // 4-aligned but not 8-aligned: data accesses still work,
                // capability-wide ones fault. Raw rewrite sidesteps the
                // representability check — a ±4 nudge is a physical upset,
                // not a CSetAddr.
                let odd = (victim.addr() & !7) | 4;
                Self::rewrite(mem, addr, CapMem::from_parts(victim.meta(), odd, true));
            }
            CapException::InexactBounds => {
                // An odd base address: a later `CSetBoundsExact` with a
                // large length cannot represent it and traps.
                Self::rewrite(
                    mem,
                    addr,
                    CapMem::from_parts(victim.meta(), victim.addr() | 1, true),
                );
            }
        }
    }

    /// Replace the capability at `addr` with `new`, forcing the tag on —
    /// the injection paths bypass the architectural store (which would
    /// clear it).
    fn rewrite(mem: &mut MainMemory, addr: u32, new: CapMem) {
        let old = mem.read_cap(addr).expect("rewrite target must be mapped").bits();
        mem.inject_corrupt_word(addr, old as u32 ^ new.bits() as u32);
        mem.inject_corrupt_word(addr + 4, (old >> 32) as u32 ^ (new.bits() >> 32) as u32);
        mem.inject_set_tag(addr, new.tag());
        mem.inject_set_tag(addr + 4, new.tag());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::AccessWidth;

    const BASE: u32 = 0x8000_0000;

    fn mem_with_cap(addr: u32) -> MainMemory {
        let mut m = MainMemory::new(BASE, 4096);
        let cap = CapPipe::almighty().set_addr(addr).set_bounds(256).0;
        m.write_cap(addr, cap.to_mem()).unwrap();
        m
    }

    #[test]
    fn campaigns_are_deterministic() {
        let run = || {
            let mut m = mem_with_cap(BASE + 64);
            let mut inj = FaultInjector::new(42);
            InjectionKind::ALL.map(|k| inj.apply(&mut m, k, 2))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_tag_detags_and_unmap_faults() {
        let mut m = mem_with_cap(BASE + 64);
        let mut inj = FaultInjector::new(7);
        let done = inj.apply(&mut m, InjectionKind::ClearTag, 1);
        assert_eq!(done.addrs, vec![BASE + 64]);
        assert!(!m.read_cap(BASE + 64).unwrap().tag());

        let done = inj.apply(&mut m, InjectionKind::UnmapWindow, 1);
        let w = done.addrs[0];
        assert_eq!(m.read(w, 4), Err(crate::MemFault::Unmapped(w)));
        // Host bulk I/O ignores the window.
        assert_eq!(m.read_bytes(w, 4).len(), 4);
        m.clear_unmapped_windows();
        assert!(m.read(w, 4).is_ok());
    }

    #[test]
    fn corrupt_meta_keeps_the_tag_but_changes_bits() {
        let mut m = mem_with_cap(BASE + 64);
        let before = m.read_cap(BASE + 64).unwrap();
        let mut inj = FaultInjector::new(3);
        let done = inj.apply(&mut m, InjectionKind::CorruptMeta, 1);
        assert_eq!(done.addrs, vec![BASE + 64]);
        let after = m.read_cap(BASE + 64).unwrap();
        assert!(after.tag(), "corruption preserves the tag");
        assert_ne!(before.meta(), after.meta(), "metadata changed");
    }

    #[test]
    fn sabotage_reaches_every_checkable_cause() {
        // Every variant whose check is a pure function of the stored
        // capability and an access: sabotage then re-check.
        let a = BASE + 64;
        for target in CapException::ALL {
            let mut m = mem_with_cap(a);
            let mut inj = FaultInjector::new(1);
            inj.sabotage(&mut m, a, target);
            let cap = CapPipe::from_mem(m.read_cap(a).unwrap());
            let got = match target {
                CapException::PermitExecuteViolation => cap.check_fetch(a).err(),
                CapException::PermitStoreViolation | CapException::PermitStoreCapViolation => {
                    cap.check_access(cap.addr(), AccessWidth::Cap, true, true).err()
                }
                CapException::InexactBounds => {
                    let (_, exact) = cap.set_bounds(1 << 20);
                    (!exact).then_some(CapException::InexactBounds)
                }
                _ => cap.check_access(cap.addr(), AccessWidth::Cap, false, true).err(),
            };
            assert_eq!(got, Some(target), "sabotage({target:?}) must reproduce it");
        }
    }
}
