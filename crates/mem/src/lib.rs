//! The memory subsystem of the CHERI-SIMT model (Section 3.4 of the paper).
//!
//! Components, mirroring the SIMTight evaluation SoC (Figure 9):
//!
//! * [`MainMemory`] — DDR4-backed tagged DRAM: byte-addressable data plus one
//!   hidden tag bit per naturally-aligned 32-bit word (the paper's chosen
//!   granularity; a 64-bit capability is valid only if both halves are
//!   tagged).
//! * [`TagController`] — sits in front of DRAM, serving tag bits from a
//!   reserved region through a small [`TagCache`] so that data+tag access
//!   appears atomic (Joannou et al., "Efficient Tagged Memory").
//! * [`CoalescingUnit`] — packs per-lane requests into a small set of wide
//!   (64-byte) DRAM transactions using Tesla-style same-block rules.
//! * [`Scratchpad`] — banked shared local memory with 33-bit words (data +
//!   tag), supporting parallel random access with bank-conflict
//!   serialisation.
//! * [`Dram`] — a latency/bandwidth channel model with traffic counters
//!   (drives Figure 12, DRAM bandwidth usage).
//!
//! 64-bit capability accesses are *multi-flit transactions*: two inseparable
//! 32-bit accesses, so the data-path width is unchanged at the cost of a
//! two-cycle capability access time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalesce;
mod dram;
pub mod inject;
pub mod map;
mod scratch;
mod tagcache;

pub use coalesce::{Coalesced, CoalescingUnit, LaneRequest, TRANSACTION_BYTES};
pub use dram::{Dram, DramConfig, DramStats};
pub use inject::{FaultInjector, Injection, InjectionKind};
pub use scratch::{ScratchStats, Scratchpad};
pub use tagcache::{TagCache, TagCacheConfig, TagCacheStats, TagController};

use cheri_cap::CapMem;

/// A fault reported by the memory subsystem (not a CHERI fault — those are
/// raised by the pipeline before the request reaches memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// The address does not map to DRAM, scratchpad, or instruction memory.
    Unmapped(u32),
    /// The access is not naturally aligned.
    Misaligned(u32),
    /// The access width is not one of the supported sizes (1/2/4 bytes).
    BadWidth(u32),
}

impl core::fmt::Display for MemFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemFault::Unmapped(a) => write!(f, "unmapped address {a:#010x}"),
            MemFault::Misaligned(a) => write!(f, "misaligned access at {a:#010x}"),
            MemFault::BadWidth(w) => write!(f, "unsupported access width {w}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// Byte-addressable tagged DRAM (functional state).
///
/// Timing and traffic are modelled separately by [`Dram`] and
/// [`TagController`]; this type holds the bits.
#[derive(Debug, Clone)]
pub struct MainMemory {
    data: Vec<u8>,
    /// One tag bit per naturally-aligned 32-bit word.
    tags: Vec<u64>,
    base: u32,
    /// Fault-injected unmapped windows `(base, len)`. Consulted only by the
    /// device-visible access paths ([`Self::read`], [`Self::write`] and,
    /// through them, [`Self::read_cap`]/[`Self::write_cap`]) — never by the
    /// host bulk-I/O helpers, so host readback of a trapped buffer keeps
    /// working while the window is installed.
    holes: Vec<(u32, u32)>,
}

impl MainMemory {
    /// Allocate `size` bytes of DRAM starting at physical address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of 64 (the transaction size).
    pub fn new(base: u32, size: u32) -> Self {
        assert_eq!(size % 64, 0, "DRAM size must be a multiple of 64 bytes");
        MainMemory {
            data: vec![0; size as usize],
            tags: vec![0; (size as usize / 4).div_ceil(64)],
            base,
            holes: Vec::new(),
        }
    }

    /// Does `[addr, addr+len)` overlap a fault-injected unmapped window?
    #[inline]
    fn holed(&self, addr: u32, len: u32) -> bool {
        let (a, l) = (addr as u64, len as u64);
        self.holes.iter().any(|&(b, n)| a < b as u64 + n as u64 && a + l > b as u64)
    }

    /// Base physical address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Does `[addr, addr+len)` fall entirely inside this memory?
    pub fn contains(&self, addr: u32, len: u32) -> bool {
        let a = addr as u64;
        a >= self.base as u64 && a + len as u64 <= self.base as u64 + self.data.len() as u64
    }

    #[inline]
    fn off(&self, addr: u32) -> usize {
        (addr - self.base) as usize
    }

    /// Validation-only probe: succeeds exactly when [`Self::read`] (or
    /// [`Self::write`], whose checks are identical) would, without touching
    /// the data. Fault priority matches the accessors — width, then
    /// mapping, then alignment — so probe-then-access reports the same
    /// fault an access-first path would.
    pub fn check(&self, addr: u32, width: u32) -> Result<(), MemFault> {
        if !matches!(width, 1 | 2 | 4) {
            return Err(MemFault::BadWidth(width));
        }
        if !self.contains(addr, width) || self.holed(addr, width) {
            return Err(MemFault::Unmapped(addr));
        }
        if !addr.is_multiple_of(width) {
            return Err(MemFault::Misaligned(addr));
        }
        Ok(())
    }

    /// Validation-only probe for capability accesses: succeeds exactly when
    /// [`Self::read_cap`]/[`Self::write_cap`] would.
    pub fn check_cap(&self, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(8) {
            return Err(MemFault::Misaligned(addr));
        }
        self.check(addr, 4)?;
        self.check(addr + 4, 4)
    }

    /// Read `width` (1/2/4) bytes, zero-extended.
    ///
    /// # Errors
    ///
    /// Fails on unsupported widths and unmapped or misaligned accesses.
    pub fn read(&self, addr: u32, width: u32) -> Result<u32, MemFault> {
        self.check(addr, width)?;
        let o = self.off(addr);
        Ok(match width {
            1 => self.data[o] as u32,
            2 => u16::from_le_bytes([self.data[o], self.data[o + 1]]) as u32,
            _ => u32::from_le_bytes(self.data[o..o + 4].try_into().unwrap()),
        })
    }

    /// Write `width` (1/2/4) bytes; clears the covering word's tag bit.
    ///
    /// # Errors
    ///
    /// Fails on unsupported widths and unmapped or misaligned accesses.
    pub fn write(&mut self, addr: u32, value: u32, width: u32) -> Result<(), MemFault> {
        self.check(addr, width)?;
        let o = self.off(addr);
        match width {
            1 => self.data[o] = value as u8,
            2 => self.data[o..o + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            _ => self.data[o..o + 4].copy_from_slice(&value.to_le_bytes()),
        }
        self.set_tag(addr, false);
        Ok(())
    }

    /// The tag bit of the 32-bit word containing `addr`.
    pub fn tag(&self, addr: u32) -> bool {
        let w = self.off(addr & !3) / 4;
        self.tags[w / 64] & (1 << (w % 64)) != 0
    }

    fn set_tag(&mut self, addr: u32, tag: bool) {
        let w = self.off(addr & !3) / 4;
        if tag {
            self.tags[w / 64] |= 1 << (w % 64);
        } else {
            self.tags[w / 64] &= !(1 << (w % 64));
        }
    }

    /// Load a 64+1-bit capability (two atomic 32-bit flits plus tags).
    /// The result is tagged only if both word tags are set (the paper's
    /// invariant for its 32-bit tag granularity).
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned (non-8-byte-aligned) accesses.
    pub fn read_cap(&self, addr: u32) -> Result<CapMem, MemFault> {
        if !addr.is_multiple_of(8) {
            return Err(MemFault::Misaligned(addr));
        }
        let lo = self.read(addr, 4)?;
        let hi = self.read(addr + 4, 4)?;
        let tag = self.tag(addr) && self.tag(addr + 4);
        Ok(CapMem::from_bits(((hi as u64) << 32) | lo as u64, tag))
    }

    /// Store a 64+1-bit capability (two atomic 32-bit flits plus tags).
    ///
    /// # Errors
    ///
    /// Fails on unmapped or misaligned (non-8-byte-aligned) accesses.
    pub fn write_cap(&mut self, addr: u32, cap: CapMem) -> Result<(), MemFault> {
        if !addr.is_multiple_of(8) {
            return Err(MemFault::Misaligned(addr));
        }
        self.write(addr, cap.bits() as u32, 4)?;
        self.write(addr + 4, (cap.bits() >> 32) as u32, 4)?;
        self.set_tag(addr, cap.tag());
        self.set_tag(addr + 4, cap.tag());
        Ok(())
    }

    /// Bulk copy-in for the host runtime (clears covered tags).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        assert!(self.contains(addr, bytes.len() as u32), "write_bytes out of range");
        let o = self.off(addr);
        self.data[o..o + bytes.len()].copy_from_slice(bytes);
        let mut a = addr & !3;
        while a < addr + bytes.len() as u32 {
            self.set_tag(a, false);
            a += 4;
        }
    }

    /// Revocation sweep (temporal safety, Cornucopia-style): clear the tag
    /// of every capability in memory whose bounds intersect
    /// `[base, base+len)`. Returns the number of capabilities revoked.
    ///
    /// The paper defers temporal safety to future work but notes that CHERI
    /// "lays the foundation" for it: because capabilities are precisely
    /// distinguishable from data (the tag bits), the allocator can sweep
    /// memory and revoke all references into a freed region.
    pub fn revoke_region(&mut self, base: u32, len: u32) -> u32 {
        let top = base as u64 + len as u64;
        let mut revoked = 0;
        let mut addr = self.base;
        while addr + 8 <= self.base + self.size() {
            if self.tag(addr) && self.tag(addr + 4) {
                let cap =
                    cheri_cap::CapPipe::from_mem(self.read_cap(addr).expect("aligned in-range"));
                if cap.tag() && (cap.base() as u64) < top && cap.top() > base as u64 {
                    self.set_tag(addr, false);
                    self.set_tag(addr + 4, false);
                    revoked += 1;
                }
            }
            addr += 8;
        }
        revoked
    }

    /// Bulk copy-out for the host runtime.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_bytes(&self, addr: u32, len: u32) -> &[u8] {
        assert!(self.contains(addr, len), "read_bytes out of range");
        let o = self.off(addr);
        &self.data[o..o + len as usize]
    }

    // --- Fault injection (see [`inject::FaultInjector`]) ----------------
    //
    // These bypass the architectural write paths on purpose: they model
    // physical upsets (a flipped tag bit, a corrupted DRAM word, a
    // depopulated address window), not software stores. The tag cache is a
    // timing model over this functional state, so flipping a tag here is
    // exactly what a flipped line in the tag cache's backing store looks
    // like to the pipeline.

    /// Force the tag bit of the 32-bit word containing `addr`, without
    /// touching the data (a software store would clear it instead).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside this memory.
    pub fn inject_set_tag(&mut self, addr: u32, tag: bool) {
        assert!(self.contains(addr & !3, 4), "inject_set_tag out of range");
        self.set_tag(addr, tag);
    }

    /// XOR `xor` into the 32-bit word containing `addr` while *preserving*
    /// the covering tag bit — a tagged capability keeps its tag but now
    /// decodes to corrupted metadata/address bits.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside this memory.
    pub fn inject_corrupt_word(&mut self, addr: u32, xor: u32) {
        let a = addr & !3;
        assert!(self.contains(a, 4), "inject_corrupt_word out of range");
        let o = self.off(a);
        let word = u32::from_le_bytes(self.data[o..o + 4].try_into().unwrap()) ^ xor;
        self.data[o..o + 4].copy_from_slice(&word.to_le_bytes());
    }

    /// Install an unmapped window: device accesses overlapping
    /// `[base, base+len)` fault with [`MemFault::Unmapped`] until
    /// [`Self::clear_unmapped_windows`] removes it. Host bulk I/O is not
    /// affected.
    pub fn inject_unmap_window(&mut self, base: u32, len: u32) {
        self.holes.push((base, len));
    }

    /// Remove every injected unmapped window.
    pub fn clear_unmapped_windows(&mut self) {
        self.holes.clear();
    }

    /// Addresses (8-aligned) of every validly-tagged capability currently
    /// in memory — the candidate set for tag/metadata injection.
    pub fn tagged_cap_addrs(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut addr = self.base;
        while addr + 8 <= self.base + self.size() {
            if self.tag(addr) && self.tag(addr + 4) {
                out.push(addr);
            }
            addr += 8;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::CapPipe;

    #[test]
    fn read_write_widths() {
        let mut m = MainMemory::new(0x8000_0000, 4096);
        m.write(0x8000_0010, 0xDEAD_BEEF, 4).unwrap();
        assert_eq!(m.read(0x8000_0010, 4).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.read(0x8000_0010, 1).unwrap(), 0xEF);
        assert_eq!(m.read(0x8000_0012, 2).unwrap(), 0xDEAD);
        m.write(0x8000_0011, 0x42, 1).unwrap();
        assert_eq!(m.read(0x8000_0010, 4).unwrap(), 0xDEAD_42EF);
    }

    #[test]
    fn faults() {
        let mut m = MainMemory::new(0x8000_0000, 4096);
        assert_eq!(m.read(0x7FFF_FFFF, 1), Err(MemFault::Unmapped(0x7FFF_FFFF)));
        assert_eq!(m.read(0x8000_1000, 1), Err(MemFault::Unmapped(0x8000_1000)));
        assert_eq!(m.read(0x8000_0001, 4), Err(MemFault::Misaligned(0x8000_0001)));
        assert_eq!(m.write(0x8000_0002, 0, 4), Err(MemFault::Misaligned(0x8000_0002)));
        assert_eq!(m.read_cap(0x8000_0004), Err(MemFault::Misaligned(0x8000_0004)));
    }

    #[test]
    fn tags_track_capability_stores() {
        let mut m = MainMemory::new(0x8000_0000, 4096);
        let c = CapPipe::almighty().set_addr(0x8000_0100).to_mem();
        m.write_cap(0x8000_0020, c).unwrap();
        let back = m.read_cap(0x8000_0020).unwrap();
        assert_eq!(back, c);
        assert!(back.tag());
        // Overwriting one half with data clears the pair's validity.
        m.write(0x8000_0024, 0x1234, 4).unwrap();
        assert!(!m.read_cap(0x8000_0020).unwrap().tag());
        // And the data halves read back as plain words.
        assert_eq!(m.read(0x8000_0024, 4).unwrap(), 0x1234);
    }

    #[test]
    fn tag_forging_is_impossible() {
        // Writing the exact bit pattern of a valid capability as data does
        // not make it dereferenceable: the tag stays clear.
        let mut m = MainMemory::new(0x8000_0000, 4096);
        let c = CapPipe::almighty().to_mem();
        m.write(0x8000_0040, c.bits() as u32, 4).unwrap();
        m.write(0x8000_0044, (c.bits() >> 32) as u32, 4).unwrap();
        let forged = m.read_cap(0x8000_0040).unwrap();
        assert_eq!(forged.bits(), c.bits());
        assert!(!forged.tag());
    }

    #[test]
    fn bulk_io() {
        let mut m = MainMemory::new(0x8000_0000, 4096);
        m.write_cap(0x8000_0060, CapPipe::almighty().to_mem()).unwrap();
        m.write_bytes(0x8000_0060, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(0x8000_0060, 5), &[1, 2, 3, 4, 5]);
        // Bulk writes strip tags.
        assert!(!m.read_cap(0x8000_0060).unwrap().tag());
    }
}
