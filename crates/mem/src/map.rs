//! The physical memory map of the evaluation SoC.
//!
//! ```text
//!   0x1000_0000  +------------------------+
//!                | TCIM (instructions)    |  64 KiB tightly-coupled
//!   0x1001_0000  +------------------------+
//!   0x4000_0000  +------------------------+
//!                | Scratchpad (banked)    |  64 KiB, 33-bit words
//!   0x4001_0000  +------------------------+
//!   0x8000_0000  +------------------------+
//!                | DRAM                   |  DramConfig::size bytes
//!                |  ... heap/buffers ...  |
//!                |  ... stacks ...        |
//!                |  tag reserved region   |  size/32 bytes at the top,
//!                +------------------------+  not architecturally visible
//! ```

/// Base of the tightly-coupled instruction memory.
pub const TCIM_BASE: u32 = 0x1000_0000;
/// Size of the instruction memory in bytes (64 KiB, as in the SIMTight
/// evaluation SoC).
pub const TCIM_SIZE: u32 = 64 * 1024;

/// Base of the scratchpad (shared local memory).
pub const SCRATCH_BASE: u32 = 0x4000_0000;
/// Size of the scratchpad in bytes (64 KiB per SM, as in modern GPUs).
pub const SCRATCH_SIZE: u32 = 64 * 1024;

/// Base of DRAM.
pub const DRAM_BASE: u32 = 0x8000_0000;
/// Default DRAM size in bytes (16 MiB is ample for the benchmark suite).
pub const DRAM_DEFAULT_SIZE: u32 = 16 * 1024 * 1024;

/// Which region an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Tightly-coupled instruction memory.
    Tcim,
    /// Banked scratchpad.
    Scratch,
    /// Main memory.
    Dram,
    /// Not mapped.
    Unmapped,
}

/// Route an address to its region (`dram_size` is the configured DRAM size,
/// excluding nothing — the tag region is carved out of the top by the
/// runtime's allocator, not by routing).
pub fn route(addr: u32, dram_size: u32) -> Region {
    if (TCIM_BASE..TCIM_BASE + TCIM_SIZE).contains(&addr) {
        Region::Tcim
    } else if (SCRATCH_BASE..SCRATCH_BASE + SCRATCH_SIZE).contains(&addr) {
        Region::Scratch
    } else if addr >= DRAM_BASE && (addr - DRAM_BASE) < dram_size {
        Region::Dram
    } else {
        Region::Unmapped
    }
}

/// Bytes reserved at the top of DRAM for tag storage: one bit per 32-bit
/// word, i.e. `size / 32`, rounded up to a 64-byte transaction.
pub fn tag_region_bytes(dram_size: u32) -> u32 {
    (dram_size / 32).next_multiple_of(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing() {
        assert_eq!(route(TCIM_BASE, DRAM_DEFAULT_SIZE), Region::Tcim);
        assert_eq!(route(SCRATCH_BASE + 100, DRAM_DEFAULT_SIZE), Region::Scratch);
        assert_eq!(route(DRAM_BASE, DRAM_DEFAULT_SIZE), Region::Dram);
        assert_eq!(route(DRAM_BASE + DRAM_DEFAULT_SIZE, DRAM_DEFAULT_SIZE), Region::Unmapped);
        assert_eq!(route(0, DRAM_DEFAULT_SIZE), Region::Unmapped);
    }

    #[test]
    fn tag_region() {
        assert_eq!(tag_region_bytes(16 * 1024 * 1024), 512 * 1024);
    }
}
