//! The scratchpad: banked shared local memory with parallel random access.
//!
//! Implemented (in hardware) as a set of SRAM banks behind a fast switching
//! network; words are 33 bits wide under CHERI so capabilities can live in
//! shared memory. Bank conflicts serialise: the access takes as many cycles
//! as the most-contended bank has requests.

use crate::{LaneRequest, MemFault};
use cheri_cap::CapMem;
use simt_trace::{EventSink, MemSpace, TraceEvent};

/// The scratchpad memory.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    base: u32,
    words: Vec<u32>,
    /// Tag bit per 32-bit word (the 33rd bit of each bank entry).
    tags: Vec<u64>,
    banks: u32,
    stats: ScratchStats,
}

/// Scratchpad access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Warp-wide accesses served.
    pub accesses: u64,
    /// Extra cycles spent serialising bank conflicts.
    pub conflict_cycles: u64,
}

impl Scratchpad {
    /// Create a scratchpad of `size` bytes at `base` with `banks` banks
    /// (typically one per vector lane).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of `4 * banks`.
    pub fn new(base: u32, size: u32, banks: u32) -> Self {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        assert_eq!(size % (4 * banks), 0, "size must fill all banks evenly");
        Scratchpad {
            base,
            words: vec![0; (size / 4) as usize],
            tags: vec![0; ((size / 4) as usize).div_ceil(64)],
            banks,
            stats: ScratchStats::default(),
        }
    }

    /// Base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.words.len() as u32 * 4
    }

    /// Access statistics.
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// Reset statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = ScratchStats::default();
    }

    fn word_index(&self, addr: u32, bytes: u32) -> Result<usize, MemFault> {
        if !matches!(bytes, 1 | 2 | 4) {
            return Err(MemFault::BadWidth(bytes));
        }
        if addr < self.base || addr + bytes > self.base + self.size() {
            return Err(MemFault::Unmapped(addr));
        }
        if !addr.is_multiple_of(bytes) {
            return Err(MemFault::Misaligned(addr));
        }
        Ok(((addr - self.base) / 4) as usize)
    }

    /// Validation-only probe: succeeds exactly when [`Self::read`] (or
    /// [`Self::write`], whose checks are identical) would, without touching
    /// the data. Fault priority matches the accessors — width, then
    /// mapping, then alignment.
    pub fn check(&self, addr: u32, bytes: u32) -> Result<(), MemFault> {
        self.word_index(addr, bytes).map(|_| ())
    }

    /// Validation-only probe for capability accesses: succeeds exactly when
    /// [`Self::read_cap`]/[`Self::write_cap`] would.
    pub fn check_cap(&self, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(8) {
            return Err(MemFault::Misaligned(addr));
        }
        self.check(addr, 4)?;
        self.check(addr + 4, 4)
    }

    /// Read `bytes` (1/2/4), zero-extended.
    ///
    /// # Errors
    ///
    /// Fails on unsupported widths and out-of-range or misaligned access.
    pub fn read(&self, addr: u32, bytes: u32) -> Result<u32, MemFault> {
        let w = self.word_index(addr, bytes)?;
        let word = self.words[w];
        let sh = (addr % 4) * 8;
        Ok(match bytes {
            1 => (word >> sh) & 0xFF,
            2 => (word >> sh) & 0xFFFF,
            _ => word,
        })
    }

    /// Write `bytes` (1/2/4); clears the word's tag bit.
    ///
    /// # Errors
    ///
    /// Fails on unsupported widths and out-of-range or misaligned access.
    pub fn write(&mut self, addr: u32, value: u32, bytes: u32) -> Result<(), MemFault> {
        let w = self.word_index(addr, bytes)?;
        let sh = (addr % 4) * 8;
        let mask = match bytes {
            1 => 0xFFu32 << sh,
            2 => 0xFFFFu32 << sh,
            _ => u32::MAX,
        };
        self.words[w] = (self.words[w] & !mask) | ((value << sh) & mask);
        self.set_tag_word(w, false);
        Ok(())
    }

    fn tag_word(&self, w: usize) -> bool {
        self.tags[w / 64] & (1 << (w % 64)) != 0
    }

    fn set_tag_word(&mut self, w: usize, tag: bool) {
        if tag {
            self.tags[w / 64] |= 1 << (w % 64);
        } else {
            self.tags[w / 64] &= !(1 << (w % 64));
        }
    }

    /// Load a capability from shared memory (8-byte aligned).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range or misaligned access.
    pub fn read_cap(&self, addr: u32) -> Result<CapMem, MemFault> {
        if !addr.is_multiple_of(8) {
            return Err(MemFault::Misaligned(addr));
        }
        let lo = self.read(addr, 4)?;
        let hi = self.read(addr + 4, 4)?;
        let w = self.word_index(addr, 4)?;
        let tag = self.tag_word(w) && self.tag_word(w + 1);
        Ok(CapMem::from_bits(((hi as u64) << 32) | lo as u64, tag))
    }

    /// Store a capability to shared memory (8-byte aligned).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range or misaligned access.
    pub fn write_cap(&mut self, addr: u32, cap: CapMem) -> Result<(), MemFault> {
        if !addr.is_multiple_of(8) {
            return Err(MemFault::Misaligned(addr));
        }
        self.write(addr, cap.bits() as u32, 4)?;
        self.write(addr + 4, (cap.bits() >> 32) as u32, 4)?;
        let w = self.word_index(addr, 4)?;
        self.set_tag_word(w, cap.tag());
        self.set_tag_word(w + 1, cap.tag());
        Ok(())
    }

    /// Account for one warp-wide access: returns the number of cycles the
    /// switching network needs (1 + conflicts; a bank with `k` requests to
    /// distinct words serialises over `k` cycles, but identical addresses
    /// broadcast for free).
    pub fn warp_cycles(&mut self, reqs: &[LaneRequest]) -> u32 {
        if reqs.is_empty() {
            return 0;
        }
        self.stats.accesses += 1;
        // A warp never issues more than 64 lane requests, so the distinct
        // (bank, word) pairs fit on the stack — no per-access heap traffic
        // on the simulator's hot path. (Oversized request sets would be API
        // misuse; serve them through the boxed fallback all the same.)
        let worst = if reqs.len() <= 64 {
            let mut seen = [(0u32, 0u32); 64];
            let mut n = 0usize;
            for r in reqs {
                let word = (r.addr.wrapping_sub(self.base)) / 4;
                let pair = (word % self.banks, word);
                if !seen[..n].contains(&pair) {
                    seen[n] = pair;
                    n += 1;
                }
            }
            (0..n).map(|i| seen[..n].iter().filter(|p| p.0 == seen[i].0).count()).max().unwrap_or(1)
                as u32
        } else {
            let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); self.banks as usize];
            for r in reqs {
                let word = (r.addr.wrapping_sub(self.base)) / 4;
                let bank = (word % self.banks) as usize;
                if !per_bank[bank].contains(&word) {
                    per_bank[bank].push(word);
                }
            }
            per_bank.iter().map(Vec::len).max().unwrap_or(1).max(1) as u32
        };
        self.stats.conflict_cycles += (worst - 1) as u64;
        worst
    }

    /// [`Self::warp_cycles`] with structured tracing: emits one
    /// [`TraceEvent::Mem`] per warp-wide scratchpad access, carrying the
    /// bank-conflict serialisation cost. Empty request sets emit nothing, so
    /// event counts reconcile with [`ScratchStats::accesses`].
    pub fn warp_cycles_traced(
        &mut self,
        reqs: &[LaneRequest],
        cycle: u64,
        warp: u32,
        is_store: bool,
        sink: &mut dyn EventSink,
    ) -> u32 {
        let worst = self.warp_cycles(reqs);
        if !reqs.is_empty() {
            let first = reqs[0];
            let uniform = reqs.iter().all(|r| r.addr == first.addr && r.bytes == first.bytes);
            sink.emit(TraceEvent::Mem {
                cycle,
                warp,
                space: MemSpace::Scratch,
                is_store,
                lanes: reqs.len() as u32,
                transactions: 0,
                uniform,
                conflict_cycles: worst - 1,
            });
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cheri_cap::CapPipe;

    const BASE: u32 = 0x4000_0000;

    fn sp() -> Scratchpad {
        Scratchpad::new(BASE, 64 * 1024, 32)
    }

    #[test]
    fn read_write_subword() {
        let mut s = sp();
        s.write(BASE + 8, 0xAABBCCDD, 4).unwrap();
        assert_eq!(s.read(BASE + 8, 4).unwrap(), 0xAABBCCDD);
        assert_eq!(s.read(BASE + 9, 1).unwrap(), 0xCC);
        s.write(BASE + 10, 0x11, 1).unwrap();
        assert_eq!(s.read(BASE + 8, 4).unwrap(), 0xAA11CCDD);
        assert_eq!(s.read(BASE + 8, 2).unwrap(), 0xCCDD);
    }

    #[test]
    fn capability_storage_with_tags() {
        let mut s = sp();
        let c = CapPipe::almighty().set_addr(123).to_mem();
        s.write_cap(BASE + 16, c).unwrap();
        assert_eq!(s.read_cap(BASE + 16).unwrap(), c);
        s.write(BASE + 16, 0, 1).unwrap();
        assert!(!s.read_cap(BASE + 16).unwrap().tag());
    }

    #[test]
    fn bank_conflicts_serialise() {
        let mut s = sp();
        // All lanes hit distinct words of the same bank: stride = banks*4.
        let reqs: Vec<_> =
            (0..32).map(|i| LaneRequest { addr: BASE + i * 32 * 4, bytes: 4 }).collect();
        assert_eq!(s.warp_cycles(&reqs), 32);
        // Conflict-free unit stride.
        let reqs: Vec<_> = (0..32).map(|i| LaneRequest { addr: BASE + i * 4, bytes: 4 }).collect();
        assert_eq!(s.warp_cycles(&reqs), 1);
        // Broadcast: all lanes read the same word.
        let reqs: Vec<_> = (0..32).map(|_| LaneRequest { addr: BASE, bytes: 4 }).collect();
        assert_eq!(s.warp_cycles(&reqs), 1);
        assert_eq!(s.stats().conflict_cycles, 31);
    }

    #[test]
    fn faults() {
        let mut s = sp();
        assert!(s.read(BASE - 4, 4).is_err());
        assert!(s.read(BASE + 64 * 1024, 1).is_err());
        assert!(s.write(BASE + 2, 0, 4).is_err());
        assert!(s.read_cap(BASE + 4).is_err());
    }
}
