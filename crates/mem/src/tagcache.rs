//! The tag controller and tag cache (Joannou et al., ICCD 2017).
//!
//! Tag bits live in a reserved region of DRAM that is not architecturally
//! addressable. The tag controller, placed in front of main memory, makes
//! each data word and its tag bit appear to be accessed atomically. A small
//! tag cache absorbs almost all tag traffic in practice, because many lines
//! hold no capabilities at all.

use simt_trace::{EventSink, TraceEvent};

/// Tag cache geometry.
#[derive(Debug, Clone, Copy)]
pub struct TagCacheConfig {
    /// Number of direct-mapped lines.
    pub lines: u32,
    /// Bytes of tag storage per line. One tag byte covers 32 data bytes, so
    /// a 64-byte line covers 2 KiB of data.
    pub line_bytes: u32,
}

impl Default for TagCacheConfig {
    fn default() -> Self {
        TagCacheConfig { lines: 128, line_bytes: 64 }
    }
}

/// Tag cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagCacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (each costs a DRAM tag transaction).
    pub misses: u64,
    /// Dirty evictions (each costs a DRAM tag write-back transaction).
    pub writebacks: u64,
    /// Lookups where line ownership changed between SMs (always 0 on a
    /// single-SM device).
    pub cross_sm_switches: u64,
    /// Misses that evicted a line last filled by a *different* SM —
    /// capacity the SMs of a shared device steal from each other.
    pub cross_sm_conflict_evictions: u64,
}

impl TagCacheStats {
    /// Miss rate in [0, 1]; zero when there were no lookups.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A direct-mapped tag cache model (timing/traffic only — tag *values* are
/// stored functionally by [`crate::MainMemory`]).
#[derive(Debug, Clone)]
pub struct TagCache {
    cfg: TagCacheConfig,
    /// Per line: the cached tag-region block index, or `u64::MAX` if empty,
    /// plus a dirty bit.
    lines: Vec<(u64, bool)>,
    /// Per line: the SM that last filled it (cross-SM conflict accounting).
    owners: Vec<u32>,
    stats: TagCacheStats,
    /// SM currently driving the controller (set by the device arbiter).
    accessor: u32,
    /// SM that issued the previous lookup.
    last_accessor: Option<u32>,
}

impl TagCache {
    /// Create an empty cache.
    pub fn new(cfg: TagCacheConfig) -> Self {
        TagCache {
            cfg,
            lines: vec![(u64::MAX, false); cfg.lines as usize],
            owners: vec![0; cfg.lines as usize],
            stats: TagCacheStats::default(),
            accessor: 0,
            last_accessor: None,
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> TagCacheStats {
        self.stats
    }

    /// Tell the cache which SM is driving it from now on (device arbiter
    /// hook). Lookups evicting a line filled by a different SM count as
    /// cross-SM conflict evictions.
    pub fn set_accessor(&mut self, sm: u32) {
        self.accessor = sm;
    }

    /// Reset statistics and contents.
    pub fn reset(&mut self) {
        self.stats = TagCacheStats::default();
        for l in &mut self.lines {
            *l = (u64::MAX, false);
        }
        self.owners.fill(0);
        self.last_accessor = None;
    }

    /// Data bytes covered by one line.
    pub fn data_bytes_per_line(&self) -> u32 {
        self.cfg.line_bytes * 32
    }

    /// Look up the tags for the data block containing `addr`; returns the
    /// number of DRAM tag transactions this lookup generated (0 on hit,
    /// 1 on clean miss, 2 on dirty miss). `write` marks the line dirty.
    pub fn lookup(&mut self, addr: u32, write: bool) -> u32 {
        if let Some(prev) = self.last_accessor {
            if prev != self.accessor {
                self.stats.cross_sm_switches += 1;
            }
        }
        self.last_accessor = Some(self.accessor);
        let block = addr as u64 / self.data_bytes_per_line() as u64;
        let idx = (block % self.cfg.lines as u64) as usize;
        let (tagged_block, dirty) = self.lines[idx];
        if tagged_block == block {
            self.stats.hits += 1;
            self.lines[idx].1 |= write;
            0
        } else {
            self.stats.misses += 1;
            let mut txns = 1; // fill
            if tagged_block != u64::MAX && dirty {
                self.stats.writebacks += 1;
                txns += 1;
            }
            if tagged_block != u64::MAX && self.owners[idx] != self.accessor {
                self.stats.cross_sm_conflict_evictions += 1;
            }
            self.lines[idx] = (block, write);
            self.owners[idx] = self.accessor;
            txns
        }
    }
}

/// The tag controller: pairs a [`TagCache`] with the enable switch. With
/// tagged memory disabled (the non-CHERI baseline), lookups are free.
#[derive(Debug, Clone)]
pub struct TagController {
    cache: TagCache,
    enabled: bool,
}

impl TagController {
    /// Create a controller; `enabled` mirrors the `EnableTaggedMem` config.
    pub fn new(cfg: TagCacheConfig, enabled: bool) -> Self {
        TagController { cache: TagCache::new(cfg), enabled }
    }

    /// Is tagged memory enabled?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Tell the controller which SM is driving it (device arbiter hook).
    pub fn set_accessor(&mut self, sm: u32) {
        self.cache.set_accessor(sm);
    }

    /// Tag-cache statistics.
    pub fn stats(&self) -> TagCacheStats {
        self.cache.stats()
    }

    /// Reset statistics and contents.
    pub fn reset(&mut self) {
        self.cache.reset();
    }

    /// Account for a data transaction at `addr`; returns extra DRAM tag
    /// transactions required.
    pub fn on_access(&mut self, addr: u32, write: bool) -> u32 {
        if !self.enabled {
            return 0;
        }
        self.cache.lookup(addr, write)
    }

    /// [`Self::on_access`] with structured tracing: emits one
    /// [`TraceEvent::TagCache`] per lookup (nothing when tagged memory is
    /// disabled, so event counts always reconcile with [`Self::stats`]).
    pub fn on_access_traced(
        &mut self,
        addr: u32,
        write: bool,
        cycle: u64,
        warp: u32,
        sink: &mut dyn EventSink,
    ) -> u32 {
        if !self.enabled {
            return 0;
        }
        let txns = self.cache.lookup(addr, write);
        sink.emit(TraceEvent::TagCache { cycle, warp, hit: txns == 0, writeback: txns == 2 });
        txns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_is_absorbed() {
        let mut tc = TagController::new(TagCacheConfig::default(), true);
        // A streaming pass over 64 KiB of data: one line covers 2 KiB, so
        // 32 misses and many hits.
        let mut txns = 0;
        for addr in (0..64 * 1024).step_by(64) {
            txns += tc.on_access(0x8000_0000 + addr, false);
        }
        assert_eq!(txns, 32);
        assert!(tc.stats().miss_rate() < 0.04);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = TagCacheConfig { lines: 1, line_bytes: 64 };
        let mut tc = TagController::new(cfg, true);
        assert_eq!(tc.on_access(0x8000_0000, true), 1); // fill, dirty
        assert_eq!(tc.on_access(0x8000_0000 + 2048, false), 2); // evict dirty + fill
        assert_eq!(tc.stats().writebacks, 1);
    }

    #[test]
    fn disabled_controller_is_free() {
        let mut tc = TagController::new(TagCacheConfig::default(), false);
        assert_eq!(tc.on_access(0x8000_0000, true), 0);
        assert_eq!(tc.stats(), TagCacheStats::default());
    }
}
