//! Property tests for the memory subsystem: functional state against a
//! plain reference model, plus structural invariants of the coalescer and
//! tag machinery.

use cheri_cap::{CapMem, CapPipe};
use proptest::prelude::*;
use simt_mem::{CoalescingUnit, LaneRequest, MainMemory, Scratchpad, TagCacheConfig, TagController};
use std::collections::HashMap;

const BASE: u32 = 0x8000_0000;
const SIZE: u32 = 4096;

#[derive(Debug, Clone)]
enum MemOp {
    Write { addr: u32, value: u32, width: u32 },
    WriteCap { addr: u32, bits: u64, tag: bool },
    Read { addr: u32, width: u32 },
    ReadCap { addr: u32 },
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    let width = prop::sample::select(vec![1u32, 2, 4]);
    prop_oneof![
        (0..SIZE, any::<u32>(), width.clone()).prop_map(|(off, value, width)| MemOp::Write {
            addr: BASE + (off & !(width - 1)).min(SIZE - width),
            value,
            width,
        }),
        (0..SIZE / 8, any::<u64>(), any::<bool>()).prop_map(|(slot, bits, tag)| {
            MemOp::WriteCap { addr: BASE + slot * 8, bits, tag }
        }),
        (0..SIZE, width).prop_map(|(off, width)| MemOp::Read {
            addr: BASE + (off & !(width - 1)).min(SIZE - width),
            width,
        }),
        (0..SIZE / 8).prop_map(|slot| MemOp::ReadCap { addr: BASE + slot * 8 }),
    ]
}

/// Byte-level reference model with a per-word tag map.
#[derive(Default)]
struct RefMem {
    bytes: HashMap<u32, u8>,
    tags: HashMap<u32, bool>, // keyed by word address
}

impl RefMem {
    fn write(&mut self, addr: u32, value: u32, width: u32) {
        for i in 0..width {
            self.bytes.insert(addr + i, (value >> (8 * i)) as u8);
        }
        self.tags.insert(addr & !3, false);
    }

    fn read(&self, addr: u32, width: u32) -> u32 {
        (0..width).fold(0, |acc, i| {
            acc | (*self.bytes.get(&(addr + i)).unwrap_or(&0) as u32) << (8 * i)
        })
    }

    fn write_cap(&mut self, addr: u32, bits: u64, tag: bool) {
        for i in 0..8 {
            self.bytes.insert(addr + i, (bits >> (8 * i)) as u8);
        }
        self.tags.insert(addr, tag);
        self.tags.insert(addr + 4, tag);
    }

    fn read_cap(&self, addr: u32) -> (u64, bool) {
        let bits =
            (0..8).fold(0u64, |acc, i| acc | (*self.bytes.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i));
        let tag = *self.tags.get(&addr).unwrap_or(&false) && *self.tags.get(&(addr + 4)).unwrap_or(&false);
        (bits, tag)
    }
}

proptest! {
    /// MainMemory matches the reference model under arbitrary mixed
    /// data/capability traffic, including tag-clearing on data writes.
    #[test]
    fn main_memory_matches_reference(ops in prop::collection::vec(mem_op(), 1..200)) {
        let mut mem = MainMemory::new(BASE, SIZE);
        let mut reference = RefMem::default();
        for op in ops {
            match op {
                MemOp::Write { addr, value, width } => {
                    mem.write(addr, value, width).unwrap();
                    reference.write(addr, value, width);
                }
                MemOp::WriteCap { addr, bits, tag } => {
                    mem.write_cap(addr, CapMem::from_bits(bits, tag)).unwrap();
                    reference.write_cap(addr, bits, tag);
                }
                MemOp::Read { addr, width } => {
                    prop_assert_eq!(mem.read(addr, width).unwrap(), reference.read(addr, width));
                }
                MemOp::ReadCap { addr } => {
                    let got = mem.read_cap(addr).unwrap();
                    let (bits, tag) = reference.read_cap(addr);
                    prop_assert_eq!(got.bits(), bits);
                    prop_assert_eq!(got.tag(), tag);
                }
            }
        }
    }

    /// Scratchpad data/capability storage matches the same reference model.
    #[test]
    fn scratchpad_matches_reference(ops in prop::collection::vec(mem_op(), 1..200)) {
        const SBASE: u32 = 0x4000_0000;
        let mut sp = Scratchpad::new(SBASE, SIZE, 8);
        let mut reference = RefMem::default();
        let reloc = |addr: u32| addr - BASE + SBASE;
        for op in ops {
            match op {
                MemOp::Write { addr, value, width } => {
                    sp.write(reloc(addr), value, width).unwrap();
                    reference.write(reloc(addr), value, width);
                }
                MemOp::WriteCap { addr, bits, tag } => {
                    sp.write_cap(reloc(addr), CapMem::from_bits(bits, tag)).unwrap();
                    reference.write_cap(reloc(addr), bits, tag);
                }
                MemOp::Read { addr, width } => {
                    prop_assert_eq!(
                        sp.read(reloc(addr), width).unwrap(),
                        reference.read(reloc(addr), width)
                    );
                }
                MemOp::ReadCap { addr } => {
                    let got = sp.read_cap(reloc(addr)).unwrap();
                    let (bits, tag) = reference.read_cap(reloc(addr));
                    prop_assert_eq!(got.bits(), bits);
                    prop_assert_eq!(got.tag(), tag);
                }
            }
        }
    }

    /// Coalescer invariants: between ceil(span/64) and lane-count
    /// transactions; uniform accesses coalesce to exactly one.
    #[test]
    fn coalescer_invariants(addrs in prop::collection::vec(0u32..65536, 1..32)) {
        let reqs: Vec<LaneRequest> =
            addrs.iter().map(|&o| LaneRequest { addr: BASE + (o & !3), bytes: 4 }).collect();
        let out = CoalescingUnit::new().coalesce(&reqs);
        prop_assert!(out.transactions >= 1);
        prop_assert!(out.transactions <= reqs.len() as u32);
        let min_block = reqs.iter().map(|r| r.addr / 64).min().unwrap();
        let max_block = reqs.iter().map(|r| r.addr / 64).max().unwrap();
        prop_assert!(out.transactions <= (max_block - min_block + 1));
        if reqs.iter().all(|r| r.addr == reqs[0].addr) {
            prop_assert_eq!(out.transactions, 1);
            prop_assert!(out.uniform);
        }
    }

    /// The tag controller never reports more transactions than two per
    /// lookup (fill + writeback) and its hit/miss counts add up.
    #[test]
    fn tag_controller_accounting(addrs in prop::collection::vec(0u32..(1 << 20), 1..300)) {
        let mut tc = TagController::new(TagCacheConfig::default(), true);
        let mut txns = 0u64;
        for a in &addrs {
            let t = tc.on_access(BASE + a, a % 3 == 0);
            prop_assert!(t <= 2);
            txns += t as u64;
        }
        let s = tc.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        prop_assert_eq!(txns, s.misses + s.writebacks);
        prop_assert!(s.writebacks <= s.misses);
    }

    /// Capabilities stored through memory and reloaded decode to identical
    /// bounds (memory is transparent to the capability layer).
    #[test]
    fn memory_is_transparent_to_capabilities(
        base_addr in (0u32..SIZE / 2).prop_map(|o| BASE + (o & !7)),
        target in any::<u32>(),
        len in 0u32..1 << 16,
    ) {
        let mut mem = MainMemory::new(BASE, SIZE);
        let (cap, _) = CapPipe::almighty().set_addr(target).set_bounds(len);
        mem.write_cap(base_addr, cap.to_mem()).unwrap();
        let back = CapPipe::from_mem(mem.read_cap(base_addr).unwrap());
        prop_assert_eq!(back, cap);
    }
}
