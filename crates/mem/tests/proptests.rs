//! Property tests for the memory subsystem: functional state against a
//! plain reference model, plus structural invariants of the coalescer and
//! tag machinery. Driven by a seeded deterministic PRNG (the workspace
//! builds offline, so no proptest).

use cheri_cap::{CapMem, CapPipe};
use sim_prng::Prng;
use simt_mem::{
    CoalescingUnit, LaneRequest, MainMemory, MemFault, Scratchpad, TagCacheConfig, TagController,
};
use std::collections::HashMap;

const BASE: u32 = 0x8000_0000;
const SIZE: u32 = 4096;
const RUNS: usize = 256;

#[derive(Debug, Clone)]
enum MemOp {
    Write { addr: u32, value: u32, width: u32 },
    WriteCap { addr: u32, bits: u64, tag: bool },
    Read { addr: u32, width: u32 },
    ReadCap { addr: u32 },
}

fn mem_op(r: &mut Prng) -> MemOp {
    match r.range_u32(0, 4) {
        0 => {
            let width = *r.choose(&[1u32, 2, 4]);
            let off = r.range_u32(0, SIZE);
            MemOp::Write {
                addr: BASE + (off & !(width - 1)).min(SIZE - width),
                value: r.next_u32(),
                width,
            }
        }
        1 => MemOp::WriteCap {
            addr: BASE + r.range_u32(0, SIZE / 8) * 8,
            bits: r.next_u64(),
            tag: r.next_bool(),
        },
        2 => {
            let width = *r.choose(&[1u32, 2, 4]);
            let off = r.range_u32(0, SIZE);
            MemOp::Read { addr: BASE + (off & !(width - 1)).min(SIZE - width), width }
        }
        _ => MemOp::ReadCap { addr: BASE + r.range_u32(0, SIZE / 8) * 8 },
    }
}

fn ops(r: &mut Prng) -> Vec<MemOp> {
    let n = r.range_usize(1, 200);
    (0..n).map(|_| mem_op(r)).collect()
}

/// Byte-level reference model with a per-word tag map.
#[derive(Default)]
struct RefMem {
    bytes: HashMap<u32, u8>,
    tags: HashMap<u32, bool>, // keyed by word address
}

impl RefMem {
    fn write(&mut self, addr: u32, value: u32, width: u32) {
        for i in 0..width {
            self.bytes.insert(addr + i, (value >> (8 * i)) as u8);
        }
        self.tags.insert(addr & !3, false);
    }

    fn read(&self, addr: u32, width: u32) -> u32 {
        (0..width)
            .fold(0, |acc, i| acc | (*self.bytes.get(&(addr + i)).unwrap_or(&0) as u32) << (8 * i))
    }

    fn write_cap(&mut self, addr: u32, bits: u64, tag: bool) {
        for i in 0..8 {
            self.bytes.insert(addr + i, (bits >> (8 * i)) as u8);
        }
        self.tags.insert(addr, tag);
        self.tags.insert(addr + 4, tag);
    }

    fn read_cap(&self, addr: u32) -> (u64, bool) {
        let bits = (0..8).fold(0u64, |acc, i| {
            acc | (*self.bytes.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i)
        });
        let tag = *self.tags.get(&addr).unwrap_or(&false)
            && *self.tags.get(&(addr + 4)).unwrap_or(&false);
        (bits, tag)
    }
}

/// MainMemory matches the reference model under arbitrary mixed
/// data/capability traffic, including tag-clearing on data writes.
#[test]
fn main_memory_matches_reference() {
    let mut r = Prng::seed_from_u64(0x3E3_0001);
    for _ in 0..RUNS {
        let mut mem = MainMemory::new(BASE, SIZE);
        let mut reference = RefMem::default();
        for op in ops(&mut r) {
            match op {
                MemOp::Write { addr, value, width } => {
                    mem.write(addr, value, width).unwrap();
                    reference.write(addr, value, width);
                }
                MemOp::WriteCap { addr, bits, tag } => {
                    mem.write_cap(addr, CapMem::from_bits(bits, tag)).unwrap();
                    reference.write_cap(addr, bits, tag);
                }
                MemOp::Read { addr, width } => {
                    assert_eq!(mem.read(addr, width).unwrap(), reference.read(addr, width));
                }
                MemOp::ReadCap { addr } => {
                    let got = mem.read_cap(addr).unwrap();
                    let (bits, tag) = reference.read_cap(addr);
                    assert_eq!(got.bits(), bits);
                    assert_eq!(got.tag(), tag);
                }
            }
        }
    }
}

/// Scratchpad data/capability storage matches the same reference model.
#[test]
fn scratchpad_matches_reference() {
    const SBASE: u32 = 0x4000_0000;
    let mut r = Prng::seed_from_u64(0x3E3_0002);
    for _ in 0..RUNS {
        let mut sp = Scratchpad::new(SBASE, SIZE, 8);
        let mut reference = RefMem::default();
        let reloc = |addr: u32| addr - BASE + SBASE;
        for op in ops(&mut r) {
            match op {
                MemOp::Write { addr, value, width } => {
                    sp.write(reloc(addr), value, width).unwrap();
                    reference.write(reloc(addr), value, width);
                }
                MemOp::WriteCap { addr, bits, tag } => {
                    sp.write_cap(reloc(addr), CapMem::from_bits(bits, tag)).unwrap();
                    reference.write_cap(reloc(addr), bits, tag);
                }
                MemOp::Read { addr, width } => {
                    assert_eq!(
                        sp.read(reloc(addr), width).unwrap(),
                        reference.read(reloc(addr), width)
                    );
                }
                MemOp::ReadCap { addr } => {
                    let got = sp.read_cap(reloc(addr)).unwrap();
                    let (bits, tag) = reference.read_cap(reloc(addr));
                    assert_eq!(got.bits(), bits);
                    assert_eq!(got.tag(), tag);
                }
            }
        }
    }
}

/// Coalescer invariants: between ceil(span/64) and lane-count
/// transactions; uniform accesses coalesce to exactly one.
#[test]
fn coalescer_invariants() {
    let mut r = Prng::seed_from_u64(0x3E3_0003);
    for run in 0..RUNS {
        let n = r.range_usize(1, 32);
        let uniform_run = run % 8 == 0;
        let shared = r.range_u32(0, 65536);
        let reqs: Vec<LaneRequest> = (0..n)
            .map(|_| {
                let o = if uniform_run { shared } else { r.range_u32(0, 65536) };
                LaneRequest { addr: BASE + (o & !3), bytes: 4 }
            })
            .collect();
        let out = CoalescingUnit::new().coalesce(&reqs);
        assert!(out.transactions >= 1);
        assert!(out.transactions <= reqs.len() as u32);
        let min_block = reqs.iter().map(|q| q.addr / 64).min().unwrap();
        let max_block = reqs.iter().map(|q| q.addr / 64).max().unwrap();
        assert!(out.transactions <= (max_block - min_block + 1));
        if reqs.iter().all(|q| q.addr == reqs[0].addr) {
            assert_eq!(out.transactions, 1);
            assert!(out.uniform);
        }
    }
}

/// The tag controller never reports more transactions than two per
/// lookup (fill + writeback) and its hit/miss counts add up.
#[test]
fn tag_controller_accounting() {
    let mut r = Prng::seed_from_u64(0x3E3_0004);
    for _ in 0..RUNS {
        let n = r.range_usize(1, 300);
        let addrs: Vec<u32> = (0..n).map(|_| r.range_u32(0, 1 << 20)).collect();
        let mut tc = TagController::new(TagCacheConfig::default(), true);
        let mut txns = 0u64;
        for a in &addrs {
            let t = tc.on_access(BASE + a, a % 3 == 0);
            assert!(t <= 2);
            txns += t as u64;
        }
        let s = tc.stats();
        assert_eq!(s.hits + s.misses, addrs.len() as u64);
        assert_eq!(txns, s.misses + s.writebacks);
        assert!(s.writebacks <= s.misses);
    }
}

/// Capabilities stored through memory and reloaded decode to identical
/// bounds (memory is transparent to the capability layer).
#[test]
fn memory_is_transparent_to_capabilities() {
    let mut r = Prng::seed_from_u64(0x3E3_0005);
    for _ in 0..4096 {
        let base_addr = BASE + (r.range_u32(0, SIZE / 2) & !7);
        let target = r.next_u32();
        let len = r.range_u32(0, 1 << 16);
        let mut mem = MainMemory::new(BASE, SIZE);
        let (cap, _) = CapPipe::almighty().set_addr(target).set_bounds(len);
        mem.write_cap(base_addr, cap.to_mem()).unwrap();
        let back = CapPipe::from_mem(mem.read_cap(base_addr).unwrap());
        assert_eq!(back, cap);
    }
}

/// A malformed access width surfaces as a typed fault, not a process
/// abort — the parallel runner must be able to report it as a simulator
/// error without poisoning sibling worker threads.
#[test]
fn bad_width_is_a_fault_not_a_panic() {
    let mut mem = MainMemory::new(BASE, SIZE);
    for w in [0u32, 3, 5, 8, 64] {
        assert_eq!(mem.read(BASE, w), Err(MemFault::BadWidth(w)), "read width {w}");
        assert_eq!(mem.write(BASE, 0, w), Err(MemFault::BadWidth(w)), "write width {w}");
    }
    let mut sp = Scratchpad::new(0x4000_0000, SIZE, 8);
    for w in [0u32, 3, 5, 8, 64] {
        assert_eq!(sp.read(0x4000_0000, w), Err(MemFault::BadWidth(w)), "sp read width {w}");
        assert_eq!(sp.write(0x4000_0000, 0, w), Err(MemFault::BadWidth(w)), "sp write width {w}");
    }
}
