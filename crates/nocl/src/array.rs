//! Bulk array combinators: `map`, `zip_map`, `reduce`, `scan`, `fill`,
//! `iota` — a Thrust-flavoured layer over the kernel IR.
//!
//! Section 5.1 of the paper observes that high-level bulk operations are
//! largely *safe by construction* (every access is derived from the loop
//! bound), which is how array languages like Futhark keep software
//! bounds-checking cheap. This module provides that programming model on
//! top of the CHERI-SIMT stack: combinators build the kernels, the modes
//! decide how safety is enforced (hardware capabilities, software checks,
//! or not at all).
//!
//! Combinator closures receive and return [`Expr`]s, so arbitrary IR
//! expressions can be fused into a single generated kernel:
//!
//! ```
//! use cheri_simt::{CheriMode, CheriOpts, SmConfig};
//! use nocl::{Gpu, Launch};
//! use nocl_kir::{Expr, Mode};
//!
//! let mut gpu = Gpu::new(SmConfig::small(CheriMode::On(CheriOpts::optimised())), Mode::PureCap);
//! let xs = gpu.iota(100).unwrap();                            // 0, 1, 2, ...
//! let doubled = gpu.map("x2", &xs, |x| x * Expr::u32(2)).unwrap();
//! let total = gpu.reduce("sum", &doubled, 0u32, |a, b| a + b).unwrap();
//! assert_eq!(total, (0..100u32).map(|v| 2 * v).sum());
//! ```

use crate::{Arg, Buffer, DeviceScalar, Gpu, Launch, LaunchError};
use nocl_kir::{Elem, Expr, KernelBuilder};

/// 4-byte element types usable in reductions and scans (narrow elements
/// would overflow their own type when combined).
pub trait WordScalar: DeviceScalar {
    /// Lift a host value to an IR literal.
    fn to_expr(self) -> Expr;
}

impl WordScalar for u32 {
    fn to_expr(self) -> Expr {
        Expr::u32(self)
    }
}

impl WordScalar for i32 {
    fn to_expr(self) -> Expr {
        Expr::i32(self)
    }
}

impl WordScalar for f32 {
    fn to_expr(self) -> Expr {
        Expr::f32(self)
    }
}

impl Gpu {
    fn array_geometry(&self, n: u32) -> Launch {
        let bd = 256u32.min(self.sm().config().threads());
        let grid = n.div_ceil(bd).clamp(1, 64);
        Launch::new(grid, bd)
    }

    /// `out[i] = f(in[i])`.
    ///
    /// The kernel is cached under `name`; use a distinct name for each
    /// distinct `f` (same-name different-body is a logic error).
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn map<T: DeviceScalar>(
        &mut self,
        name: &str,
        input: &Buffer<T>,
        f: impl Fn(Expr) -> Expr,
    ) -> Result<Buffer<T>, LaunchError> {
        let out = self.alloc::<T>(input.len());
        let mut k = KernelBuilder::new(&format!("array_map_{name}"));
        let len = k.param_u32("len");
        let src = k.param_ptr("in", T::ELEM);
        let dst = k.param_ptr("out", T::ELEM);
        let i = k.var_u32("i");
        k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
            k.store(&dst, i.clone(), f(src.at(i.clone())));
        });
        let kernel = k.finish();
        self.launch(
            &kernel,
            self.array_geometry(input.len()),
            &[input.len().into(), input.into(), (&out).into()],
        )?;
        Ok(out)
    }

    /// `out[i] = f(a[i], b[i])`.
    ///
    /// # Errors
    ///
    /// Fails if the inputs differ in length, or on launch failure.
    pub fn zip_map<T: DeviceScalar>(
        &mut self,
        name: &str,
        a: &Buffer<T>,
        b: &Buffer<T>,
        f: impl Fn(Expr, Expr) -> Expr,
    ) -> Result<Buffer<T>, LaunchError> {
        if a.len() != b.len() {
            return Err(LaunchError::Config(format!(
                "zip_map over mismatched lengths {} and {}",
                a.len(),
                b.len()
            )));
        }
        let out = self.alloc::<T>(a.len());
        let mut k = KernelBuilder::new(&format!("array_zip_{name}"));
        let len = k.param_u32("len");
        let pa = k.param_ptr("a", T::ELEM);
        let pb = k.param_ptr("b", T::ELEM);
        let dst = k.param_ptr("out", T::ELEM);
        let i = k.var_u32("i");
        k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
            k.store(&dst, i.clone(), f(pa.at(i.clone()), pb.at(i.clone())));
        });
        let kernel = k.finish();
        self.launch(
            &kernel,
            self.array_geometry(a.len()),
            &[a.len().into(), a.into(), b.into(), (&out).into()],
        )?;
        Ok(out)
    }

    /// Fold the whole array with an associative, commutative `f` and its
    /// identity, returning the result to the host. Two launches: block
    /// partials, then a single-block fold of the partials.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn reduce<T: WordScalar>(
        &mut self,
        name: &str,
        input: &Buffer<T>,
        identity: T,
        f: impl Fn(Expr, Expr) -> Expr,
    ) -> Result<T, LaunchError> {
        let geometry = self.array_geometry(input.len());
        let bd = geometry.block_dim;
        let partials = self.alloc::<T>(geometry.grid_dim);

        let build = |kname: &str, bd: u32, identity: &T, f: &dyn Fn(Expr, Expr) -> Expr| {
            let mut k = KernelBuilder::new(kname);
            let len = k.param_u32("len");
            let src = k.param_ptr("in", T::ELEM);
            let dst = k.param_ptr("out", T::ELEM);
            let tile = k.shared("tile", T::ELEM, bd);
            let i = k.var_u32("i");
            let acc = k.var("acc", T::ELEM.loaded_ty());
            k.assign(&acc, identity.to_expr());
            k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
                k.assign(&acc, f(acc.clone(), src.at(i.clone())));
            });
            k.store(&tile, k.thread_idx(), acc.clone());
            k.barrier();
            let s = k.var_u32("s");
            k.assign(&s, Expr::u32(bd / 2));
            k.while_(s.clone().gt(Expr::u32(0)), |k| {
                k.if_(k.thread_idx().lt(s.clone()), |k| {
                    k.store(
                        &tile,
                        k.thread_idx(),
                        f(tile.at(k.thread_idx()), tile.at(k.thread_idx() + s.clone())),
                    );
                });
                k.barrier();
                k.assign(&s, s.clone() >> Expr::u32(1));
            });
            k.if_(k.thread_idx().eq_(Expr::u32(0)), |k| {
                k.store(&dst, k.block_idx(), tile.at(Expr::u32(0)));
            });
            k.finish()
        };

        let k1 = build(&format!("array_reduce_{name}_{bd}"), bd, &identity, &f);
        self.launch(&k1, geometry, &[input.len().into(), input.into(), (&partials).into()])?;

        // Fold the partials with a single block.
        let out = self.alloc::<T>(1);
        let k2 = build(&format!("array_reduce_fin_{name}_{bd}"), bd, &identity, &f);
        self.launch(
            &k2,
            Launch::new(1, bd),
            &[partials.len().into(), (&partials).into(), (&out).into()],
        )?;
        Ok(self.read(&out)[0])
    }

    /// Inclusive prefix scan with an associative `f`: three launches
    /// (per-block scans, a scan of the block totals, offset application).
    ///
    /// # Errors
    ///
    /// Fails if the array needs more resident blocks than one block can
    /// re-scan (length > block_dim²·64), or on launch failure.
    pub fn scan<T: WordScalar>(
        &mut self,
        name: &str,
        input: &Buffer<T>,
        identity: T,
        f: impl Fn(Expr, Expr) -> Expr,
    ) -> Result<Buffer<T>, LaunchError> {
        // Recurse through a dynamic closure type so the block-sums scan does
        // not monomorphise a fresh instance per recursion level.
        self.scan_impl(name, input, identity, &f)
    }

    fn scan_impl<T: WordScalar>(
        &mut self,
        name: &str,
        input: &Buffer<T>,
        identity: T,
        f: &dyn Fn(Expr, Expr) -> Expr,
    ) -> Result<Buffer<T>, LaunchError> {
        let bd = 256u32.min(self.sm().config().threads());
        let nblocks = input.len().div_ceil(bd);
        if nblocks > bd {
            return Err(LaunchError::Config(format!(
                "scan of {} elements needs {nblocks} blocks > one block of {bd}",
                input.len()
            )));
        }
        let out = self.alloc::<T>(input.len());
        let sums = self.alloc::<T>(nblocks);

        // Phase 1: Hillis–Steele scan within each block (identity-padded).
        let mut k = KernelBuilder::new(&format!("array_scan1_{name}_{bd}"));
        let len = k.param_u32("len");
        let src = k.param_ptr("in", T::ELEM);
        let dst = k.param_ptr("out", T::ELEM);
        let dsums = k.param_ptr("sums", T::ELEM);
        let buf = k.shared("buf", T::ELEM, 2 * bd);
        let gid = k.var_u32("gid");
        let pin = k.var_u32("pin");
        let pout = k.var_u32("pout");
        let v = k.var("v", T::ELEM.loaded_ty());
        k.assign(&gid, k.global_id());
        k.assign(&pout, Expr::u32(0));
        k.assign(&v, identity.to_expr());
        k.if_(gid.clone().lt(len.clone()), |k| {
            k.assign(&v, src.at(gid.clone()));
        });
        k.store(&buf, k.thread_idx(), v.clone());
        k.barrier();
        let d = k.var_u32("d");
        k.assign(&d, Expr::u32(1));
        k.while_(d.clone().lt(Expr::u32(bd)), |k| {
            k.assign(&pin, pout.clone());
            k.assign(&pout, pout.clone() ^ Expr::u32(1));
            let srcidx = pin.clone() * Expr::u32(bd) + k.thread_idx();
            let dstidx = pout.clone() * Expr::u32(bd) + k.thread_idx();
            k.if_else(
                k.thread_idx().ge(d.clone()),
                |k| {
                    let combined = f(
                        buf.at(pin.clone() * Expr::u32(bd) + k.thread_idx() - d.clone()),
                        buf.at(srcidx.clone()),
                    );
                    k.store(&buf, dstidx.clone(), combined);
                },
                |k| {
                    k.store(&buf, dstidx.clone(), buf.at(srcidx.clone()));
                },
            );
            k.barrier();
            k.assign(&d, d.clone() << Expr::u32(1));
        });
        k.if_(gid.clone().lt(len.clone()), |k| {
            k.store(&dst, gid.clone(), buf.at(pout.clone() * Expr::u32(bd) + k.thread_idx()));
        });
        k.if_(k.thread_idx().eq_(Expr::u32(bd - 1)), |k| {
            k.store(&dsums, k.block_idx(), buf.at(pout.clone() * Expr::u32(bd) + k.thread_idx()));
        });
        let k1 = k.finish();
        self.launch(
            &k1,
            Launch::new(nblocks, bd),
            &[input.len().into(), input.into(), (&out).into(), (&sums).into()],
        )?;

        if nblocks > 1 {
            // Phase 2: scan the block totals (single block).
            let scanned_sums = self.scan_impl(&format!("{name}_sums"), &sums, identity, f)?;
            // Phase 3: fold each block's predecessor total into its elements.
            let mut k = KernelBuilder::new(&format!("array_scan3_{name}_{bd}"));
            let len = k.param_u32("len");
            let data = k.param_ptr("data", T::ELEM);
            let offs = k.param_ptr("offs", T::ELEM);
            let gid = k.var_u32("gid");
            k.assign(&gid, k.global_id());
            k.if_(gid.clone().lt(len.clone()) & k.block_idx().gt(Expr::u32(0)), |k| {
                let prev = offs.at(k.block_idx() - Expr::u32(1));
                k.store(&data, gid.clone(), f(prev, data.at(gid.clone())));
            });
            let k3 = k.finish();
            self.launch(
                &k3,
                Launch::new(nblocks, bd),
                &[input.len().into(), (&out).into(), (&scanned_sums).into()],
            )?;
        }
        Ok(out)
    }

    /// A buffer of `n` copies of `value`.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn fill<T: WordScalar>(&mut self, n: u32, value: T) -> Result<Buffer<T>, LaunchError> {
        let out = self.alloc::<T>(n);
        let mut k = KernelBuilder::new("array_fill");
        let len = k.param_u32("len");
        let v = match T::ELEM.loaded_ty() {
            nocl_kir::Ty::F32 => k.param_f32("v"),
            nocl_kir::Ty::I32 => k.param_i32("v"),
            _ => k.param_u32("v"),
        };
        let dst = k.param_ptr("out", T::ELEM);
        let i = k.var_u32("i");
        k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
            k.store(&dst, i.clone(), v.clone());
        });
        let kernel = k.finish();
        let varg: Arg = match T::ELEM {
            Elem::F32 => {
                let mut bytes = Vec::new();
                value.extend_bytes(&mut bytes);
                f32::from_bytes(&bytes).into()
            }
            _ => {
                let mut bytes = Vec::new();
                value.extend_bytes(&mut bytes);
                u32::from_bytes(&bytes).into()
            }
        };
        self.launch(&kernel, self.array_geometry(n), &[n.into(), varg, (&out).into()])?;
        Ok(out)
    }

    /// The sequence `0, 1, ..., n-1`.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn iota(&mut self, n: u32) -> Result<Buffer<u32>, LaunchError> {
        let out = self.alloc::<u32>(n);
        let mut k = KernelBuilder::new("array_iota");
        let len = k.param_u32("len");
        let dst = k.param_ptr("out", Elem::U32);
        let i = k.var_u32("i");
        k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
            k.store(&dst, i.clone(), i.clone());
        });
        let kernel = k.finish();
        self.launch(&kernel, self.array_geometry(n), &[n.into(), (&out).into()])?;
        Ok(out)
    }
}
