//! Typed device buffers.

use core::marker::PhantomData;
use nocl_kir::Elem;

/// A scalar type that can live in device buffers.
pub trait DeviceScalar: Copy {
    /// The device element type.
    const ELEM: Elem;
    /// Append the little-endian byte representation.
    fn extend_bytes(&self, out: &mut Vec<u8>);
    /// Decode from little-endian bytes (`bytes.len() == ELEM.bytes()`).
    fn from_bytes(bytes: &[u8]) -> Self;
}

macro_rules! scalar {
    ($t:ty, $elem:expr) => {
        impl DeviceScalar for $t {
            const ELEM: Elem = $elem;
            fn extend_bytes(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn from_bytes(bytes: &[u8]) -> Self {
                Self::from_le_bytes(bytes.try_into().expect("element size"))
            }
        }
    };
}

scalar!(u8, Elem::U8);
scalar!(i8, Elem::I8);
scalar!(u16, Elem::U16);
scalar!(i16, Elem::I16);
scalar!(u32, Elem::U32);
scalar!(i32, Elem::I32);
scalar!(f32, Elem::F32);

/// A device buffer of `len` elements of `T` at a fixed device address.
///
/// Buffers are plain handles: copying data in/out goes through
/// [`crate::Gpu::write`] and [`crate::Gpu::read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer<T> {
    addr: u32,
    len: u32,
    _elem: PhantomData<T>,
}

impl<T: DeviceScalar> Buffer<T> {
    pub(crate) fn new(addr: u32, len: u32) -> Self {
        Buffer { addr, len, _elem: PhantomData }
    }

    /// Device address of the first element.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Length in elements.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u32 {
        self.len * T::ELEM.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut out = Vec::new();
        1.5f32.extend_bytes(&mut out);
        (-7i32).extend_bytes(&mut out);
        0xABu8.extend_bytes(&mut out);
        assert_eq!(f32::from_bytes(&out[0..4]), 1.5);
        assert_eq!(i32::from_bytes(&out[4..8]), -7);
        assert_eq!(u8::from_bytes(&out[8..9]), 0xAB);
    }

    #[test]
    fn buffer_geometry() {
        let b: Buffer<u16> = Buffer::new(0x8000_0000, 10);
        assert_eq!(b.bytes(), 20);
        assert!(!b.is_empty());
    }
}
