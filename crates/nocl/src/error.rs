//! Launch errors.

use cheri_simt::RunError;
use core::fmt;
use nocl_kir::CompileError;

/// Why a kernel launch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The kernel failed to compile.
    Compile(CompileError),
    /// The launch configuration is invalid.
    Config(String),
    /// The kernel trapped, dead-locked at a barrier, or timed out.
    Run(RunError),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::Compile(e) => write!(f, "compile error: {e}"),
            LaunchError::Config(s) => write!(f, "launch configuration: {s}"),
            LaunchError::Run(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LaunchError::Compile(e) => Some(e),
            LaunchError::Run(e) => Some(e),
            LaunchError::Config(_) => None,
        }
    }
}

impl From<CompileError> for LaunchError {
    fn from(e: CompileError) -> Self {
        LaunchError::Compile(e)
    }
}

impl From<RunError> for LaunchError {
    fn from(e: RunError) -> Self {
        LaunchError::Run(e)
    }
}
