//! NoCL host runtime: buffers, argument marshalling, kernel launch.
//!
//! This crate plays the role of the NoCL library's host side (and of the
//! CHERI-enabled host CPU of Figure 9): it owns the device (one or more SMs
//! sharing a memory subsystem — see [`Gpu::with_sms`]), allocates device
//! buffers in simulated DRAM, marshals kernel arguments — *as tagged, bounded
//! capabilities* in pure-capability mode — and launches compiled kernels.
//!
//! ```
//! use cheri_simt::{CheriMode, CheriOpts, SmConfig};
//! use nocl::{Gpu, Launch};
//! use nocl_kir::{Elem, Expr, KernelBuilder, Mode};
//!
//! // c[i] = a[i] + b[i]
//! let mut kb = KernelBuilder::new("vecadd");
//! let len = kb.param_u32("len");
//! let a = kb.param_ptr("a", Elem::I32);
//! let b = kb.param_ptr("b", Elem::I32);
//! let c = kb.param_ptr("c", Elem::I32);
//! let i = kb.var_u32("i");
//! kb.for_(i.clone(), kb.global_id(), len, kb.global_threads(), |k| {
//!     k.store(&c, i.clone(), a.at(i.clone()) + b.at(i.clone()));
//! });
//! let kernel = kb.finish();
//!
//! let mut gpu = Gpu::new(SmConfig::small(CheriMode::On(CheriOpts::optimised())), Mode::PureCap);
//! let xs: Vec<i32> = (0..100).collect();
//! let ys: Vec<i32> = (0..100).map(|v| 10 * v).collect();
//! let a = gpu.alloc_from(&xs);
//! let b = gpu.alloc_from(&ys);
//! let c = gpu.alloc::<i32>(100);
//! let stats = gpu
//!     .launch(&kernel, Launch::new(2, 32), &[100u32.into(), (&a).into(), (&b).into(), (&c).into()])
//!     .unwrap();
//! assert_eq!(gpu.read(&c)[7], 77);
//! assert!(stats.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod buffer;
mod error;

pub use array::WordScalar;
pub use buffer::{Buffer, DeviceScalar};
pub use error::LaunchError;

use cheri_cap::{CapPipe, Perms};
use cheri_simt::{Device, KernelStats, RunError, Sm, SmConfig, Trap};
use nocl_kir::{compile_capped, ArgSlot, CompiledKernel, Kernel, MemPlan, Mode};
use simt_isa::scr;
use simt_mem::map;
use std::collections::HashMap;
use std::fmt;

/// Launch geometry: `<<<grid_dim, block_dim>>>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    /// Number of thread blocks.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Watchdog limit in cycles.
    pub max_cycles: u64,
}

impl Launch {
    /// A launch with the default watchdog (500M cycles).
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        Launch { grid_dim, block_dim, max_cycles: 500_000_000 }
    }
}

/// A kernel argument value.
#[derive(Debug, Clone, Copy)]
pub enum Arg {
    /// A 32-bit scalar (any of u32/i32/f32, as raw bits).
    Scalar(u32),
    /// A device buffer: address and length in elements.
    Buf {
        /// Device address.
        addr: u32,
        /// Length in elements.
        len: u32,
        /// Element size in bytes.
        elem_bytes: u32,
    },
}

impl From<u32> for Arg {
    fn from(v: u32) -> Arg {
        Arg::Scalar(v)
    }
}

impl From<i32> for Arg {
    fn from(v: i32) -> Arg {
        Arg::Scalar(v as u32)
    }
}

impl From<f32> for Arg {
    fn from(v: f32) -> Arg {
        Arg::Scalar(v.to_bits())
    }
}

impl<T: DeviceScalar> From<&Buffer<T>> for Arg {
    fn from(b: &Buffer<T>) -> Arg {
        Arg::Buf { addr: b.addr(), len: b.len(), elem_bytes: T::ELEM.bytes() }
    }
}

/// A hook invoked on the device immediately before each launch runs
/// (after reset and argument marshalling) — the fault-injection point.
pub type PreLaunchHook = Box<dyn FnMut(&mut Device) + Send>;

/// The GPU: a [`Device`] of one or more SMs plus host-side memory
/// management.
pub struct Gpu {
    device: Device,
    mode: Mode,
    plan: MemPlan,
    heap: u32,
    heap_end: u32,
    cache: HashMap<(String, Mode), CompiledKernel>,
    cap_reg_limit: Option<u32>,
    pre_launch: Option<PreLaunchHook>,
    fault_log: Vec<Trap>,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("device", &self.device)
            .field("mode", &self.mode)
            .field("plan", &self.plan)
            .field("heap", &self.heap)
            .field("heap_end", &self.heap_end)
            .field("cap_reg_limit", &self.cap_reg_limit)
            .field("pre_launch", &self.pre_launch.as_ref().map(|_| "<hook>"))
            .field("fault_log", &self.fault_log)
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Create a single-SM GPU. The SM's CHERI mode must agree with the
    /// compilation mode (`PureCap` needs CHERI; the other modes must run
    /// without it so the baseline is honest).
    ///
    /// # Panics
    ///
    /// Panics on a mode/configuration mismatch.
    pub fn new(cfg: SmConfig, mode: Mode) -> Gpu {
        Gpu::with_sms(cfg, mode, 1)
    }

    /// Create a GPU with `sms` streaming multiprocessors sharing one DRAM
    /// channel and tag controller. Each SM gets its own `stack_size ×
    /// threads` slice of the stack arena, and the grid-stride prologue
    /// splits the grid across SMs by global hart id.
    ///
    /// # Panics
    ///
    /// Panics on a mode/configuration mismatch, `sms == 0`, or a DRAM too
    /// small for the scaled stack arena.
    pub fn with_sms(cfg: SmConfig, mode: Mode, sms: u32) -> Gpu {
        assert_eq!(
            cfg.cheri.enabled(),
            mode.needs_cheri(),
            "SM CHERI mode must match the compilation mode"
        );
        assert!(sms >= 1, "a GPU needs at least one SM");
        let usable = cfg.dram_size - map::tag_region_bytes(cfg.dram_size);
        let plan = MemPlan {
            arg_base: map::DRAM_BASE,
            stack_top: map::DRAM_BASE + usable,
            stack_size: 512,
            sms,
        };
        let stack_arena = sms * cfg.threads() * plan.stack_size;
        let heap = map::DRAM_BASE + 4096; // first page: argument block
        let heap_end = plan.stack_top - stack_arena;
        assert!(heap < heap_end, "DRAM too small for stacks");
        Gpu {
            device: Device::new(cfg, sms),
            mode,
            plan,
            heap,
            heap_end,
            cache: HashMap::new(),
            cap_reg_limit: None,
            pre_launch: None,
            fault_log: Vec::new(),
        }
    }

    /// Install a hook invoked on every launch after the device is reset
    /// and the arguments are marshalled, immediately before the kernel
    /// runs — so a fault injector sees exactly the memory image the kernel
    /// will. Replaces any previous hook.
    pub fn set_pre_launch_hook(&mut self, hook: PreLaunchHook) {
        self.pre_launch = Some(hook);
    }

    /// Remove the pre-launch hook.
    pub fn clear_pre_launch_hook(&mut self) {
        self.pre_launch = None;
    }

    /// Drain the accumulated fault log: every trap suppressed by completed
    /// launches (under [`cheri_simt::TrapPolicy::MaskLanes`]) plus the
    /// aborting trap of each failed launch, in delivery order.
    pub fn take_fault_log(&mut self) -> Vec<Trap> {
        std::mem::take(&mut self.fault_log)
    }

    /// Enable the §4.3 capability-register limit: pure-capability kernels
    /// are compiled so that only registers below `limit` ever hold
    /// capabilities, allowing a metadata SRF of `limit` entries (halving
    /// the 14% storage overhead to 7% at `limit = 16`).
    pub fn with_cap_reg_limit(mut self, limit: u32) -> Self {
        assert!((4..=32).contains(&limit), "limit out of range");
        self.cap_reg_limit = Some(limit);
        self.cache.clear();
        self
    }

    /// The compilation mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The underlying device (e.g. for per-SM statistics or tracing).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// SM 0 (e.g. for reading statistics). On a multi-SM GPU this SM's own
    /// `memory()` is a parked stub — use [`Gpu::device`] +
    /// [`Device::memory`] for the real DRAM contents.
    pub fn sm(&self) -> &Sm {
        self.device.sm(0)
    }

    /// Mutable access to SM 0 (see [`Gpu::sm`] for the multi-SM caveat).
    pub fn sm_mut(&mut self) -> &mut Sm {
        self.device.sm_mut(0)
    }

    /// Bytes of device heap remaining.
    pub fn heap_remaining(&self) -> u32 {
        self.heap_end - self.heap
    }

    /// Allocate an uninitialised (zeroed) device buffer of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn alloc<T: DeviceScalar>(&mut self, len: u32) -> Buffer<T> {
        let bytes = (len * T::ELEM.bytes()).next_multiple_of(64);
        assert!(self.heap + bytes <= self.heap_end, "device heap exhausted");
        let addr = self.heap;
        self.heap += bytes;
        Buffer::new(addr, len)
    }

    /// Allocate and initialise a buffer from host data.
    pub fn alloc_from<T: DeviceScalar>(&mut self, data: &[T]) -> Buffer<T> {
        let b = self.alloc::<T>(data.len() as u32);
        self.write(&b, data);
        b
    }

    /// Free a buffer with a revocation sweep: every capability anywhere in
    /// device memory whose bounds intersect the buffer loses its tag, so
    /// stale references trap deterministically on next use (use-after-free
    /// prevention — the temporal-safety direction the paper's Section 4.2
    /// points to). The heap is a bump allocator, so the space itself is not
    /// reused; what matters is that dangling capabilities die.
    ///
    /// Returns the number of revoked capabilities. A no-op outside
    /// pure-capability mode (there are no tags to sweep).
    pub fn free<T: DeviceScalar>(&mut self, buf: Buffer<T>) -> u32 {
        self.device.memory_mut().revoke_region(buf.addr(), buf.bytes())
    }

    /// Copy host data into a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the buffer.
    pub fn write<T: DeviceScalar>(&mut self, buf: &Buffer<T>, data: &[T]) {
        assert!(data.len() as u32 <= buf.len(), "host data exceeds buffer");
        let mut bytes = Vec::with_capacity(data.len() * T::ELEM.bytes() as usize);
        for v in data {
            v.extend_bytes(&mut bytes);
        }
        self.device.memory_mut().write_bytes(buf.addr(), &bytes);
    }

    /// Read a buffer back to the host.
    pub fn read<T: DeviceScalar>(&self, buf: &Buffer<T>) -> Vec<T> {
        let sz = T::ELEM.bytes();
        let bytes = self.device.memory().read_bytes(buf.addr(), buf.len() * sz);
        bytes.chunks_exact(sz as usize).map(T::from_bytes).collect()
    }

    /// Compile (with caching), marshal arguments, and run a kernel.
    ///
    /// # Errors
    ///
    /// Fails on compile errors, invalid geometry, argument mismatches, or a
    /// runtime trap/timeout.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        launch: Launch,
        args: &[Arg],
    ) -> Result<KernelStats, LaunchError> {
        let cfg = *self.device.config();
        let lanes = cfg.lanes;
        if launch.grid_dim == 0 || launch.block_dim == 0 {
            return Err(LaunchError::Config("grid and block must be non-empty".into()));
        }
        if launch.block_dim > cfg.threads() {
            return Err(LaunchError::Config(format!(
                "block of {} threads exceeds the SM's {}",
                launch.block_dim,
                cfg.threads()
            )));
        }
        let block_ok = if launch.block_dim >= lanes {
            launch.block_dim.is_multiple_of(lanes)
        } else {
            lanes.is_multiple_of(launch.block_dim)
        };
        if !block_ok {
            return Err(LaunchError::Config(format!(
                "block dim {} must tile the {}-lane warps",
                launch.block_dim, lanes
            )));
        }
        if args.len() != kernel.params.len() {
            return Err(LaunchError::Config(format!(
                "kernel {} takes {} arguments, got {}",
                kernel.name,
                kernel.params.len(),
                args.len()
            )));
        }

        let key = (kernel.name.clone(), self.mode);
        let compiled = match self.cache.get(&key) {
            Some(c) => c.clone(),
            None => {
                let c = compile_capped(kernel, self.mode, self.plan, self.cap_reg_limit)?;
                self.cache.insert(key, c.clone());
                c
            }
        };

        // Shared memory must fit every concurrently-resident block.
        let blocks_per_sm = cfg.threads() / launch.block_dim.min(cfg.threads());
        if compiled.shared_bytes * blocks_per_sm > map::SCRATCH_SIZE {
            return Err(LaunchError::Config(format!(
                "{} bytes of shared memory x {} resident blocks exceeds the scratchpad",
                compiled.shared_bytes, blocks_per_sm
            )));
        }

        // GPUShield comparator mode: assign region ids and install the
        // bounds table (it cannot change during execution — Figure 15).
        let shield_ids: Vec<u32> = if self.mode == Mode::GpuShield {
            let mut regions = Vec::new();
            let mut ids = vec![0u32; args.len()];
            for (i, a) in args.iter().enumerate() {
                if let Arg::Buf { addr, len, elem_bytes } = a {
                    if regions.len() >= cheri_simt::shield::MAX_REGIONS {
                        return Err(LaunchError::Config(
                            "GPUShield bounds table supports only 15 buffers".into(),
                        ));
                    }
                    regions.push((*addr, len * elem_bytes));
                    ids[i] = regions.len() as u32;
                }
            }
            self.device.set_bounds_table(Some(cheri_simt::shield::BoundsTable::new(regions)));
            ids
        } else {
            self.device.set_bounds_table(None);
            vec![0; args.len()]
        };

        // Marshal the argument block.
        self.write_args(&compiled, launch, args, &shield_ids)?;

        // Special capability registers for pure-capability kernels.
        if self.mode == Mode::PureCap {
            let data = |base: u32, len: u32| {
                let (c, _) =
                    CapPipe::almighty().and_perm(Perms::data()).set_addr(base).set_bounds(len);
                c.to_mem()
            };
            self.device.set_scr(scr::ARG, data(self.plan.arg_base, compiled.layout.size));
            let stack_arena = self.plan.sms * cfg.threads() * self.plan.stack_size;
            self.device.set_scr(scr::STACK, data(self.plan.stack_top - stack_arena, stack_arena));
            self.device.set_scr(scr::SHARED, data(map::SCRATCH_BASE, map::SCRATCH_SIZE));
            self.device.set_scr(scr::GLOBAL, CapPipe::almighty().and_perm(Perms::data()).to_mem());
        }

        self.device.load_program(&compiled.words);
        let stack_arena = self.plan.sms * cfg.threads() * self.plan.stack_size;
        self.device.set_stack_region(self.plan.stack_top - stack_arena, stack_arena);
        self.device.set_block_warps((launch.block_dim / lanes).max(1));
        self.device.reset();
        if let Some(hook) = self.pre_launch.as_mut() {
            hook(&mut self.device);
        }
        let result = self.device.run(launch.max_cycles);
        for k in 0..self.device.num_sms() as usize {
            self.fault_log.extend_from_slice(self.device.sm(k).suppressed_traps());
        }
        if let Err(RunError::Trap(t)) = &result {
            self.fault_log.push(t.clone());
        }
        Ok(result?)
    }

    fn write_args(
        &mut self,
        compiled: &CompiledKernel,
        launch: Launch,
        args: &[Arg],
        shield_ids: &[u32],
    ) -> Result<(), LaunchError> {
        let base = self.plan.arg_base;
        let mem = self.device.memory_mut();
        mem.write(base, launch.grid_dim, 4).expect("arg block in DRAM");
        mem.write(base + 4, launch.block_dim, 4).expect("arg block in DRAM");
        for (i, (slot, arg)) in compiled.layout.slots.iter().zip(args).enumerate() {
            let off = base + slot.offset();
            match (slot, arg) {
                (ArgSlot::Scalar { .. }, Arg::Scalar(v)) => {
                    mem.write(off, *v, 4).expect("arg block");
                }
                (ArgSlot::PtrRaw { .. }, Arg::Buf { addr, .. }) => {
                    let tagged = if shield_ids[i] != 0 {
                        cheri_simt::shield::BoundsTable::tag(*addr, shield_ids[i])
                    } else {
                        *addr
                    };
                    mem.write(off, tagged, 4).expect("arg block");
                }
                (ArgSlot::PtrFat { .. }, Arg::Buf { addr, len, .. }) => {
                    mem.write(off, *addr, 4).expect("arg block");
                    mem.write(off + 4, *len, 4).expect("arg block");
                }
                (ArgSlot::PtrCap { .. }, Arg::Buf { addr, len, elem_bytes }) => {
                    let (cap, _) = CapPipe::almighty()
                        .and_perm(Perms::data())
                        .set_addr(*addr)
                        .set_bounds(len * elem_bytes);
                    mem.write_cap(off, cap.to_mem()).expect("arg block");
                }
                (slot, arg) => {
                    return Err(LaunchError::Config(format!(
                        "argument {i}: {arg:?} does not fit parameter slot {slot:?}"
                    )));
                }
            }
        }
        Ok(())
    }
}
