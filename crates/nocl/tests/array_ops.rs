//! The bulk array combinators, verified against host folds in every
//! compilation mode (Section 5.1's safe-by-construction programming model).

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::Gpu;
use nocl_kir::{Expr, Mode};

const MODES: [Mode; 5] =
    [Mode::Baseline, Mode::PureCap, Mode::RustChecked, Mode::RustFull, Mode::GpuShield];

fn gpu_for(mode: Mode) -> Gpu {
    let cheri =
        if mode.needs_cheri() { CheriMode::On(CheriOpts::optimised()) } else { CheriMode::Off };
    Gpu::new(SmConfig::small(cheri), mode)
}

#[test]
fn iota_fill_map_zip() {
    for mode in MODES {
        let mut gpu = gpu_for(mode);
        let xs = gpu.iota(300).unwrap();
        assert_eq!(gpu.read(&xs)[299], 299, "{mode:?}");

        let ones = gpu.fill(300, 1u32).unwrap();
        assert!(gpu.read(&ones).iter().all(|&v| v == 1), "{mode:?}");

        let tripled = gpu.map("triple", &xs, |x| x * Expr::u32(3)).unwrap();
        assert_eq!(gpu.read(&tripled)[100], 300, "{mode:?}");

        let summed = gpu.zip_map("addone", &tripled, &ones, |a, b| a + b).unwrap();
        assert_eq!(gpu.read(&summed)[100], 301, "{mode:?}");
    }
}

#[test]
fn reduce_sum_min_max() {
    for mode in MODES {
        let mut gpu = gpu_for(mode);
        let data: Vec<i32> = (0..500).map(|v| (v * 7919) % 1000 - 500).collect();
        let buf = gpu.alloc_from(&data);
        let sum = gpu.reduce("sum", &buf, 0i32, |a, b| a + b).unwrap();
        assert_eq!(sum, data.iter().sum::<i32>(), "{mode:?}");
        let min = gpu.reduce("min", &buf, i32::MAX, |a, b| a.min(b)).unwrap();
        assert_eq!(min, *data.iter().min().unwrap(), "{mode:?}");
        let max = gpu.reduce("max", &buf, i32::MIN, |a, b| a.max(b)).unwrap();
        assert_eq!(max, *data.iter().max().unwrap(), "{mode:?}");
    }
}

#[test]
fn float_reduce() {
    let mut gpu = gpu_for(Mode::PureCap);
    let data: Vec<f32> = (0..256).map(|v| v as f32 / 16.0).collect();
    let buf = gpu.alloc_from(&data);
    let sum = gpu.reduce("fsum", &buf, 0.0f32, |a, b| a + b).unwrap();
    let want: f32 = data.iter().sum();
    assert!((sum - want).abs() < 1e-2, "{sum} vs {want}");
}

#[test]
fn multi_block_scan() {
    for mode in MODES {
        let mut gpu = gpu_for(mode);
        // Length chosen to span several blocks with a ragged tail.
        let data: Vec<u32> = (0..533).map(|v| (v * 31) % 97).collect();
        let buf = gpu.alloc_from(&data);
        let scanned = gpu.scan("psum", &buf, 0u32, |a, b| a + b).unwrap();
        let got = gpu.read(&scanned);
        let mut acc = 0u32;
        for (i, &x) in data.iter().enumerate() {
            acc += x;
            assert_eq!(got[i], acc, "{mode:?} at {i}");
        }
    }
}

#[test]
fn scan_with_non_commutative_shape_is_left_folded() {
    // max is associative and idempotent: a running maximum is a good probe
    // that the scan really is a prefix operation, not a permutation.
    let mut gpu = gpu_for(Mode::PureCap);
    let data: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    let buf = gpu.alloc_from(&data);
    let scanned = gpu.scan("pmax", &buf, 0u32, |a, b| a.max(b)).unwrap();
    let got = gpu.read(&scanned);
    let mut m = 0;
    for (i, &x) in data.iter().enumerate() {
        m = m.max(x);
        assert_eq!(got[i], m, "at {i}");
    }
}

#[test]
fn combinator_pipeline_composes() {
    // dot(xs, ys) as zip_map + reduce, the classic two-liner.
    let mut gpu = gpu_for(Mode::PureCap);
    let xs: Vec<i32> = (0..200).map(|v| v % 13 - 6).collect();
    let ys: Vec<i32> = (0..200).map(|v| v % 7 - 3).collect();
    let dx = gpu.alloc_from(&xs);
    let dy = gpu.alloc_from(&ys);
    let prod = gpu.zip_map("mul", &dx, &dy, |a, b| a * b).unwrap();
    let dot = gpu.reduce("dotsum", &prod, 0i32, |a, b| a + b).unwrap();
    let want: i32 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    assert_eq!(dot, want);
}

#[test]
fn zip_map_length_mismatch_is_rejected() {
    let mut gpu = gpu_for(Mode::Baseline);
    let a = gpu.alloc::<u32>(10);
    let b = gpu.alloc::<u32>(11);
    assert!(gpu.zip_map("bad", &a, &b, |x, y| x + y).is_err());
}
