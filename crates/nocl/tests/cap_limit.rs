//! The §4.3 forecast, realised: with compiler support limiting which
//! registers may hold capabilities, the metadata SRF can cover only those
//! registers, halving the register-file storage overhead from 14% to 7%
//! with no run-time cost.

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::Gpu;
use nocl_kir::Mode;
use nocl_suite::{catalog, Scale};
use simt_regfile::{RegFileStorage, RfConfig};

const LIMIT: u32 = 16;

fn gpu(limit: Option<u32>) -> Gpu {
    let g = Gpu::new(SmConfig::small(CheriMode::On(CheriOpts::optimised())), Mode::PureCap);
    match limit {
        Some(l) => g.with_cap_reg_limit(l),
        None => g,
    }
}

/// The whole suite still passes with the limit, and — the property the
/// halved SRF needs — no register at or above the limit ever holds a
/// capability.
#[test]
fn suite_respects_the_limit() {
    let mut g = gpu(Some(LIMIT));
    for b in catalog() {
        let stats =
            b.run(&mut g, Scale::Test).unwrap_or_else(|e| panic!("{} capped: {e}", b.name()));
        assert_eq!(
            stats.cap_regs_mask & !((1u32 << LIMIT) - 1),
            0,
            "{}: a register >= {LIMIT} held a capability (mask {:#010x})",
            b.name(),
            stats.cap_regs_mask
        );
    }
}

/// Without the limit, at least one benchmark does use a high register for a
/// capability (so the test above is not vacuous).
#[test]
fn unlimited_compilation_uses_high_registers() {
    let mut g = gpu(None);
    let mut any_high = false;
    for b in catalog() {
        let stats = b.run(&mut g, Scale::Test).unwrap();
        any_high |= stats.cap_regs_mask & !((1u32 << LIMIT) - 1) != 0;
    }
    assert!(any_high, "expected some benchmark to place capabilities above register 15");
}

/// The limit costs essentially nothing at run time (the paper: "without
/// impacting run-time performance").
#[test]
fn limit_is_performance_neutral() {
    let vecadd = catalog()[0];
    let base = vecadd.run(&mut gpu(None), Scale::Test).unwrap();
    let capped = vecadd.run(&mut gpu(Some(LIMIT)), Scale::Test).unwrap();
    let ratio = capped.cycles as f64 / base.cycles as f64;
    assert!((0.98..1.02).contains(&ratio), "ratio {ratio}");
}

/// The storage claim itself: a 16-entry metadata SRF costs ~7% of the
/// compressed baseline register file (vs ~14% for the full 32 entries).
#[test]
fn halved_metadata_srf_is_seven_percent() {
    let baseline = RegFileStorage::for_config(&RfConfig::data(64, 32, 768)).kilobits();
    let full = RegFileStorage::for_config(&RfConfig::meta(64, 32, 0, true));
    let halved = RegFileStorage::for_config(&RfConfig::meta(64, 32, 0, true).with_arch_regs(LIMIT));
    let full_ovhd = full.srf_bits as f64 / 1024.0 / baseline;
    let halved_ovhd = halved.srf_bits as f64 / 1024.0 / baseline;
    assert!((full_ovhd - 0.14).abs() < 0.01, "full {full_ovhd:.3}");
    assert!((halved_ovhd - 0.07).abs() < 0.01, "halved {halved_ovhd:.3}");
}
