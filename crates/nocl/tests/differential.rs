//! Differential testing: random kernels are run through every compilation
//! mode on the SM and compared against a direct interpreter of the kernel
//! IR. Any divergence — in the code generator, the SM's execute units, the
//! register-file compression, divergence handling, or the memory subsystem
//! — shows up as a mismatch.
//!
//! Generated kernels read arbitrarily (masked in-bounds gathers from an
//! input buffer) but write only `out[global_id]`, so the reference result
//! is independent of thread interleaving.

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::{Gpu, Launch};
use nocl_kir::{BinOp, CmpOp, Elem, Expr, Kernel, KernelBuilder, Mode, Stmt, Ty, UnOp};
use proptest::prelude::*;

const N_IN: u32 = 64; // input buffer length (power of two, for masking)
const THREADS: u32 = 64; // one block over the whole (small) SM
const N_VARS: usize = 3;
/// Loop counters live above the assignable variables (one per nesting
/// depth) so a random assignment can never perturb a loop's termination.
const N_LOOPVARS: usize = 3;

// ---------------------------------------------------------------------------
// Random kernel generation
// ---------------------------------------------------------------------------

/// Expression generator. All values are U32; the `in` buffer is Param(1),
/// scalar parameter is Param(0). Loads are masked into bounds.
fn expr_strategy(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u32..1000).prop_map(Expr::u32),
        Just(Expr::Special(nocl_kir::Special::ThreadIdx)),
        Just(Expr::Param(0, Ty::U32)),
        (0..N_VARS).prop_map(|v| Expr::Var(v, Ty::U32)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = expr_strategy(depth - 1);
    let bin = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::Cmp(CmpOp::Eq)),
        Just(BinOp::Cmp(CmpOp::Ne)),
        Just(BinOp::Cmp(CmpOp::Lt)),
        Just(BinOp::Cmp(CmpOp::Le)),
        Just(BinOp::Cmp(CmpOp::Gt)),
        Just(BinOp::Cmp(CmpOp::Ge)),
    ];
    prop_oneof![
        4 => sub.clone().prop_flat_map(move |a| {
            let bin = bin.clone();
            (bin, Just(a), expr_strategy(depth - 1))
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b)))
        }),
        1 => sub.clone().prop_map(|a| Expr::Un(UnOp::Not, Box::new(a))),
        2 => sub.clone().prop_map(|idx| {
            // in[idx & (N_IN-1)]
            let masked = Expr::Bin(BinOp::And, Box::new(idx), Box::new(Expr::u32(N_IN - 1)));
            Expr::Load(Box::new(Expr::Param(1, Ty::Ptr(Elem::U32))), Box::new(masked))
        }),
        1 => leaf,
    ]
    .boxed()
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<Vec<Stmt>> {
    let assign = (0..N_VARS, expr_strategy(2))
        .prop_map(|(v, e)| Stmt::Assign(v, e))
        .boxed();
    let base = prop::collection::vec(assign.clone(), 1..4).boxed();
    if depth == 0 {
        return base;
    }
    let nested = stmt_strategy(depth - 1);
    let if_stmt = (expr_strategy(2), nested.clone(), nested.clone())
        .prop_map(|(cond, then_, else_)| Stmt::If { cond, then_, else_ });
    let loop_var = N_VARS + depth as usize - 1;
    let loop_stmt = (Just(loop_var), 1u32..6, 1u32..3, nested)
        .prop_map(|(v, trips, step, mut body)| {
            // for v = 0; v < trips*step; v += step { body }
            body.push(Stmt::Assign(
                v,
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Var(v, Ty::U32)),
                    Box::new(Expr::u32(step)),
                ),
            ));
            vec![
                Stmt::Assign(v, Expr::u32(0)),
                Stmt::While {
                    cond: Expr::Var(v, Ty::U32).lt(Expr::u32(trips * step)),
                    body,
                },
            ]
        })
        .boxed();
    prop::collection::vec(
        prop_oneof![3 => assign.prop_map(|s| vec![s]), 1 => if_stmt.prop_map(|s| vec![s]), 1 => loop_stmt],
        1..4,
    )
    .prop_map(|blocks| blocks.into_iter().flatten().collect())
    .boxed()
}

/// Wrap a generated body into a complete kernel writing `out[gid]`.
fn make_kernel(body: Vec<Stmt>) -> Kernel {
    let mut k = KernelBuilder::new("diff");
    let _scalar = k.param_u32("s");
    let _input = k.param_ptr("in", Elem::U32);
    let out = k.param_ptr("out", Elem::U32);
    let vars: Vec<Expr> = (0..N_VARS + N_LOOPVARS).map(|i| k.var_u32(&format!("v{i}"))).collect();
    // Seed the assignable variables from the thread id so lanes diverge.
    for (i, v) in vars.iter().take(N_VARS).enumerate() {
        k.assign(v, k.thread_idx() * Expr::u32(i as u32 + 1));
    }
    let mut kernel = k.finish();
    kernel.body.extend(body);
    // out[gid] = v0 ^ v1 ^ v2
    let result = vars
        .iter()
        .take(N_VARS)
        .cloned()
        .reduce(|a, b| Expr::Bin(BinOp::Xor, Box::new(a), Box::new(b)))
        .unwrap();
    kernel.body.push(Stmt::Store {
        ptr: out,
        index: Expr::Special(nocl_kir::Special::ThreadIdx),
        value: result,
    });
    kernel
}

// ---------------------------------------------------------------------------
// Reference interpreter
// ---------------------------------------------------------------------------

struct Interp<'a> {
    scalar: u32,
    input: &'a [u32],
    tid: u32,
    vars: [u32; N_VARS + N_LOOPVARS],
    /// Fuel guards against generated infinite loops (the generator only
    /// emits bounded loops, but belt and braces).
    fuel: u64,
}

impl Interp<'_> {
    fn eval(&mut self, e: &Expr) -> u32 {
        match e {
            Expr::Int(v, _) => *v as u32,
            Expr::Special(nocl_kir::Special::ThreadIdx) => self.tid,
            Expr::Special(_) => unreachable!("generator emits only ThreadIdx"),
            Expr::Param(0, _) => self.scalar,
            Expr::Var(i, _) => self.vars[*i],
            Expr::Un(UnOp::Not, a) => !self.eval(a),
            Expr::Load(_, idx) => {
                let i = self.eval(idx);
                self.input[i as usize]
            }
            Expr::Bin(op, a, b) => {
                let (x, y) = (self.eval(a), self.eval(b));
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            u32::MAX
                        } else {
                            x / y
                        }
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            x
                        } else {
                            x % y
                        }
                    }
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.wrapping_shl(y & 31),
                    BinOp::Shr => x.wrapping_shr(y & 31),
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Cmp(c) => {
                        let r = match c {
                            CmpOp::Eq => x == y,
                            CmpOp::Ne => x != y,
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                        };
                        r as u32
                    }
                }
            }
            other => unreachable!("generator does not emit {other:?}"),
        }
    }

    fn run(&mut self, body: &[Stmt]) {
        for s in body {
            self.fuel = self.fuel.saturating_sub(1);
            if self.fuel == 0 {
                panic!("interpreter out of fuel");
            }
            match s {
                Stmt::Assign(v, e) => self.vars[*v] = self.eval(e),
                Stmt::If { cond, then_, else_ } => {
                    if self.eval(cond) != 0 {
                        self.run(then_);
                    } else {
                        self.run(else_);
                    }
                }
                Stmt::While { cond, body } => {
                    while self.eval(cond) != 0 {
                        self.fuel = self.fuel.saturating_sub(1);
                        if self.fuel == 0 {
                            panic!("interpreter out of fuel");
                        }
                        self.run(body);
                    }
                }
                Stmt::Store { .. } => {} // only the final store, handled below
                other => unreachable!("generator does not emit {other:?}"),
            }
        }
    }
}

fn reference(kernel_body: &[Stmt], scalar: u32, input: &[u32]) -> Vec<u32> {
    (0..THREADS)
        .map(|tid| {
            let mut it = Interp {
                scalar,
                input,
                tid,
                vars: [tid, tid * 2, tid * 3, 0, 0, 0],
                fuel: 1_000_000,
            };
            // Skip the 3 seeding assigns (vars pre-seeded above) and the
            // final store; run everything in between.
            let inner = &kernel_body[N_VARS..kernel_body.len() - 1];
            it.run(inner);
            it.vars.iter().take(N_VARS).fold(0, |a, b| a ^ b)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The differential property
// ---------------------------------------------------------------------------

fn run_mode(kernel: &Kernel, mode: Mode, scalar: u32, input: &[u32]) -> Vec<u32> {
    let cheri = if mode.needs_cheri() {
        CheriMode::On(CheriOpts::optimised())
    } else {
        CheriMode::Off
    };
    let mut gpu = Gpu::new(SmConfig::small(cheri), mode);
    let d_in = gpu.alloc_from(input);
    let d_out = gpu.alloc::<u32>(THREADS);
    gpu.launch(
        kernel,
        Launch::new(1, THREADS),
        &[scalar.into(), (&d_in).into(), (&d_out).into()],
    )
    .unwrap_or_else(|e| panic!("{mode:?}: {e}\nkernel: {:#?}", kernel.body));
    gpu.read(&d_out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_modes_match_the_interpreter(
        body in stmt_strategy(2),
        scalar in 0u32..100,
        seed in any::<u64>(),
    ) {
        let input: Vec<u32> = (0..N_IN as u64)
            .map(|i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i * 0x5851_F42D)
                >> 13) as u32)
            .collect();
        let kernel = make_kernel(body);
        let want = reference(&kernel.body, scalar, &input);
        for mode in [Mode::Baseline, Mode::PureCap, Mode::RustChecked, Mode::RustFull] {
            let got = run_mode(&kernel, mode, scalar, &input);
            prop_assert_eq!(
                &got, &want,
                "mode {:?} diverged from the interpreter\nkernel: {:#?}",
                mode, kernel.body
            );
        }
    }
}
