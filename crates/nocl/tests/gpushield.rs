//! The GPUShield comparator mode: functional correctness, its protection,
//! and — crucially — the security gaps relative to CHERI that Figure 15
//! tabulates, demonstrated mechanically.

use cheri_simt::{CheriMode, CheriOpts, RunError, SmConfig, TrapCause};
use nocl::{Gpu, Launch, LaunchError};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder, Mode};

fn shield_gpu() -> Gpu {
    Gpu::new(SmConfig::small(CheriMode::Off), Mode::GpuShield)
}

#[test]
fn suite_passes_under_gpushield() {
    let mut gpu = shield_gpu();
    for b in nocl_suite::catalog() {
        b.run(&mut gpu, nocl_suite::Scale::Test)
            .unwrap_or_else(|e| panic!("{} [GpuShield]: {e}", b.name()));
    }
}

#[test]
fn gpushield_catches_buffer_overruns() {
    let mut k = KernelBuilder::new("oob");
    let buf = k.param_ptr("buf", Elem::I32);
    k.if_(k.global_id().eq_(Expr::u32(0)), |k| {
        k.store(&buf, Expr::u32(100), Expr::i32(1));
    });
    let kernel = k.finish();
    let mut gpu = shield_gpu();
    let b = gpu.alloc::<i32>(64);
    match gpu.launch(&kernel, Launch::new(1, 8), &[(&b).into()]) {
        Err(LaunchError::Run(RunError::Trap(t))) => {
            assert!(matches!(t.cause, TrapCause::RegionBound(_)), "{t}");
        }
        other => panic!("expected bounds-table trap, got {other:?}"),
    }
}

/// Figure 15, "Pointers can be distinguished from data: ✗" — a GPUShield
/// pointer is just an integer, so a kernel can *forge* an unprotected
/// (id 0) pointer to any address and escape all checking. The identical
/// attack under CHERI traps on the tag check.
#[test]
fn gpushield_pointers_are_forgeable_cheri_pointers_are_not() {
    // The IR is memory-safe by construction (no int->pointer casts), so
    // express the forgery the way real attacks do: via *pointer
    // arithmetic* that walks an unprotected pointer anywhere. Shared
    // memory pointers are unprotected under GPUShield (it cannot cover
    // GPU-internal memories, Section 5.3), and so is any id-0 address.
    fn walk_kernel() -> Kernel {
        let mut k = KernelBuilder::new("walk");
        let buf = k.param_ptr("buf", Elem::I32);
        let delta = k.param_u32("delta"); // host-computed distance to victim
        k.if_(k.global_id().eq_(Expr::u32(0)), |k| {
            let p = k.var_ptr("p", Elem::I32);
            let buf2 = buf.clone();
            // Walk far out of the buffer; under GPUShield the id bits are
            // part of the address, so adding `delta` can also *clear* them,
            // yielding an unprotected pointer to the victim.
            k.assign(&p, buf2.offset(delta.clone()));
            k.store(&p, Expr::u32(0), Expr::i32(0x5EC2E7));
        });
        k.finish()
    }

    // --- GPUShield: the walk succeeds and corrupts the victim. ---
    let mut gpu = shield_gpu();
    let buf = gpu.alloc::<i32>(16);
    let victim = gpu.alloc_from(&[0i32; 16]);
    // delta in elements from the *tagged* buf pointer to the victim, such
    // that the resulting address has id 0: (victim - (buf | 1<<24)) / 4.
    let tagged = cheri_simt::shield::BoundsTable::tag(buf.addr(), 1);
    let delta = victim.addr().wrapping_sub(tagged) / 4;
    gpu.launch(&walk_kernel(), Launch::new(1, 8), &[(&buf).into(), delta.into()])
        .expect("GPUShield cannot stop the forged pointer");
    assert_eq!(gpu.read(&victim)[0], 0x5EC2E7, "victim corrupted under GPUShield");

    // --- CHERI: the identical walk is a deterministic bounds trap. ---
    let mut gpu = Gpu::new(SmConfig::small(CheriMode::On(CheriOpts::optimised())), Mode::PureCap);
    let buf = gpu.alloc::<i32>(16);
    let victim = gpu.alloc_from(&[0i32; 16]);
    let delta = victim.addr().wrapping_sub(buf.addr()) / 4;
    match gpu.launch(&walk_kernel(), Launch::new(1, 8), &[(&buf).into(), delta.into()]) {
        Err(LaunchError::Run(RunError::Trap(t))) => {
            assert!(matches!(t.cause, TrapCause::Cheri(_)), "{t}");
        }
        other => panic!("CHERI must trap the walked pointer: {other:?}"),
    }
    assert_eq!(gpu.read(&victim)[0], 0, "victim untouched under CHERI");
}

/// Figure 15, "Supports dynamic allocation of buffers: ✗" — the bounds
/// table is fixed at launch, so a launch with more buffers than table
/// entries is rejected outright.
#[test]
fn gpushield_bounds_table_is_finite() {
    let mut k = KernelBuilder::new("many");
    let bufs: Vec<_> = (0..16).map(|i| k.param_ptr(&format!("b{i}"), Elem::I32)).collect();
    k.store(&bufs[0], Expr::u32(0), Expr::i32(1));
    let kernel = k.finish();
    let mut gpu = shield_gpu();
    let handles: Vec<_> = (0..16).map(|_| gpu.alloc::<i32>(4)).collect();
    let args: Vec<nocl::Arg> = handles.iter().map(|b| b.into()).collect();
    match gpu.launch(&kernel, Launch::new(1, 8), &args) {
        Err(LaunchError::Config(msg)) => assert!(msg.contains("15 buffers"), "{msg}"),
        other => panic!("expected table-overflow rejection, got {other:?}"),
    }
}

/// GPUShield's runtime overhead is near zero (the check is off the
/// critical path) — matching the paper's "Performance overhead: Low" row.
#[test]
fn gpushield_overhead_is_negligible() {
    let vecadd = nocl_suite::catalog()[0];
    let mut base_gpu = Gpu::new(SmConfig::small(CheriMode::Off), Mode::Baseline);
    let mut shield_gpu = shield_gpu();
    let base = vecadd.run(&mut base_gpu, nocl_suite::Scale::Test).unwrap();
    let shield = vecadd.run(&mut shield_gpu, nocl_suite::Scale::Test).unwrap();
    let ratio = shield.cycles as f64 / base.cycles as f64;
    assert!((0.99..1.02).contains(&ratio), "ratio {ratio}");
}
