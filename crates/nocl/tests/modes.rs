//! End-to-end tests: kernels compiled in all four modes must agree with the
//! host reference, and the safety modes must catch what they promise.

use cheri_simt::{CheriMode, CheriOpts, RunError, SmConfig, TrapCause};
use nocl::{Arg, Gpu, Launch, LaunchError};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder, Mode};

fn gpu_for(mode: Mode) -> Gpu {
    let cheri =
        if mode.needs_cheri() { CheriMode::On(CheriOpts::optimised()) } else { CheriMode::Off };
    Gpu::new(SmConfig::small(cheri), mode)
}

const ALL_MODES: [Mode; 4] = [Mode::Baseline, Mode::PureCap, Mode::RustChecked, Mode::RustFull];

fn vecadd_kernel() -> Kernel {
    let mut k = KernelBuilder::new("vecadd");
    let len = k.param_u32("len");
    let a = k.param_ptr("a", Elem::I32);
    let b = k.param_ptr("b", Elem::I32);
    let c = k.param_ptr("c", Elem::I32);
    let i = k.var_u32("i");
    k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
        k.store(&c, i.clone(), a.at(i.clone()) + b.at(i.clone()));
    });
    k.finish()
}

#[test]
fn vecadd_agrees_across_modes() {
    let n = 500u32;
    let xs: Vec<i32> = (0..n as i32).collect();
    let ys: Vec<i32> = (0..n as i32).map(|v| v * 3 + 1).collect();
    let want: Vec<i32> = xs.iter().zip(&ys).map(|(x, y)| x + y).collect();
    for mode in ALL_MODES {
        let mut gpu = gpu_for(mode);
        let a = gpu.alloc_from(&xs);
        let b = gpu.alloc_from(&ys);
        let c = gpu.alloc::<i32>(n);
        gpu.launch(
            &vecadd_kernel(),
            Launch::new(4, 16),
            &[n.into(), (&a).into(), (&b).into(), (&c).into()],
        )
        .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert_eq!(gpu.read(&c), want, "{mode:?}");
    }
}

#[test]
fn shared_memory_reduction_all_modes() {
    // Block-level tree reduction over shared memory, then atomicAdd of the
    // block's partial sum into out[0].
    let mut k = KernelBuilder::new("reduce_test");
    let len = k.param_u32("len");
    let input = k.param_ptr("in", Elem::I32);
    let out = k.param_ptr("out", Elem::I32);
    let tile = k.shared("tile", Elem::I32, 16); // blockDim = 16
    let i = k.var_u32("i");
    let acc = k.var_i32("acc");
    k.assign(&acc, Expr::i32(0));
    k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
        k.assign(&acc, acc.clone() + input.at(i.clone()));
    });
    k.store(&tile, k.thread_idx(), acc.clone());
    k.barrier();
    let s = k.var_u32("s");
    k.assign(&s, Expr::u32(8));
    k.while_(s.clone().gt(Expr::u32(0)), |k| {
        k.if_(k.thread_idx().lt(s.clone()), |k| {
            k.store(
                &tile,
                k.thread_idx(),
                tile.at(k.thread_idx()) + tile.at(k.thread_idx() + s.clone()),
            );
        });
        k.barrier();
        k.assign(&s, s.clone() >> Expr::u32(1));
    });
    k.if_(k.thread_idx().eq_(Expr::u32(0)), |k| {
        k.atomic_add(&out, Expr::u32(0), tile.at(Expr::u32(0)));
    });
    let kernel = k.finish();

    let n = 300u32;
    let xs: Vec<i32> = (0..n as i32).map(|v| v % 17 - 5).collect();
    let want: i32 = xs.iter().sum();
    for mode in ALL_MODES {
        let mut gpu = gpu_for(mode);
        let a = gpu.alloc_from(&xs);
        let o = gpu.alloc_from(&[0i32]);
        gpu.launch(&kernel, Launch::new(3, 16), &[n.into(), (&a).into(), (&o).into()])
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert_eq!(gpu.read(&o)[0], want, "{mode:?}");
    }
}

#[test]
fn pointer_select_blkstencil_pattern() {
    // The BlkStencil-style pattern: a pointer-typed local selected between a
    // global and a shared buffer — the source of capability-metadata
    // divergence in Section 4.3.
    let mut k = KernelBuilder::new("ptrsel");
    let g = k.param_ptr("g", Elem::I32);
    let out = k.param_ptr("out", Elem::I32);
    let sh = k.shared("sh", Elem::I32, 16);
    let p = k.var_ptr("p", Elem::I32);
    k.store(&sh, k.thread_idx(), (k.thread_idx() * Expr::u32(2)).as_i32());
    k.barrier();
    // Even threads read global, odd threads read shared.
    k.if_else(
        (k.thread_idx() & Expr::u32(1)).eq_(Expr::u32(0)),
        |k| {
            let g = g.clone();
            k.assign(&p, g.offset(k.thread_idx()));
        },
        |k| {
            let sh = sh.clone();
            k.assign(&p, sh.offset(k.thread_idx()));
        },
    );
    k.store(&out, k.thread_idx(), p.at(Expr::u32(0)));
    let kernel = k.finish();

    for mode in ALL_MODES {
        let mut gpu = gpu_for(mode);
        let gbuf: Vec<i32> = (0..16).map(|v| 1000 + v).collect();
        let g = gpu.alloc_from(&gbuf);
        let o = gpu.alloc::<i32>(16);
        gpu.launch(&kernel, Launch::new(1, 16), &[(&g).into(), (&o).into()])
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        let got = gpu.read(&o);
        for (t, &g) in got.iter().enumerate().take(16) {
            let want = if t % 2 == 0 { 1000 + t as i32 } else { 2 * t as i32 };
            assert_eq!(g, want, "{mode:?} thread {t}");
        }
    }
}

#[test]
fn float_kernel_all_modes() {
    // out[i] = sqrt(a[i]) * 2.0 + 1.0 (exercises SFU + float path).
    let mut k = KernelBuilder::new("fkern");
    let len = k.param_u32("len");
    let a = k.param_ptr("a", Elem::F32);
    let out = k.param_ptr("out", Elem::F32);
    let i = k.var_u32("i");
    k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
        k.store(&out, i.clone(), a.at(i.clone()).sqrt() * Expr::f32(2.0) + Expr::f32(1.0));
    });
    let kernel = k.finish();
    let xs: Vec<f32> = (0..100).map(|v| v as f32).collect();
    for mode in ALL_MODES {
        let mut gpu = gpu_for(mode);
        let a = gpu.alloc_from(&xs);
        let o = gpu.alloc::<f32>(100);
        gpu.launch(&kernel, Launch::new(2, 32), &[100u32.into(), (&a).into(), (&o).into()])
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        let got = gpu.read(&o);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(got[i], x.sqrt() * 2.0 + 1.0, "{mode:?} [{i}]");
        }
    }
}

/// A kernel with a deliberate off-by-`extra` overrun of its output buffer.
fn overrun_kernel() -> Kernel {
    let mut k = KernelBuilder::new("overrun");
    let len = k.param_u32("len");
    let out = k.param_ptr("out", Elem::I32);
    let i = k.var_u32("i");
    // Writes indices [gid, len + 64) instead of [gid, len).
    k.for_(i.clone(), k.global_id(), len + Expr::u32(64), k.global_threads(), |k| {
        k.store(&out, i.clone(), Expr::i32(1));
    });
    k.finish()
}

#[test]
fn overrun_is_silent_in_baseline_but_caught_by_cheri_and_rust() {
    let n = 128u32;
    // Baseline: the overrun silently clobbers the *next* allocation.
    let mut gpu = gpu_for(Mode::Baseline);
    let out = gpu.alloc::<i32>(n);
    let victim = gpu.alloc_from(&vec![7i32; 64]);
    gpu.launch(&overrun_kernel(), Launch::new(2, 32), &[n.into(), (&out).into()]).unwrap();
    assert!(gpu.read(&victim).contains(&1), "baseline corrupts the neighbour");

    // PureCap: hardware bounds violation.
    let mut gpu = gpu_for(Mode::PureCap);
    let out = gpu.alloc::<i32>(n);
    match gpu.launch(&overrun_kernel(), Launch::new(2, 32), &[n.into(), (&out).into()]) {
        Err(LaunchError::Run(RunError::Trap(t))) => {
            assert!(matches!(t.cause, TrapCause::Cheri(_)), "{t}");
        }
        other => panic!("CHERI must trap: {other:?}"),
    }

    // RustChecked: software bounds check panics (ebreak).
    let mut gpu = gpu_for(Mode::RustChecked);
    let out = gpu.alloc::<i32>(n);
    match gpu.launch(&overrun_kernel(), Launch::new(2, 32), &[n.into(), (&out).into()]) {
        Err(LaunchError::Run(RunError::Trap(t))) => {
            assert!(matches!(t.cause, TrapCause::Environment), "{t}");
        }
        other => panic!("Rust bounds check must fire: {other:?}"),
    }
}

#[test]
fn rust_checking_costs_instructions() {
    let n = 512u32;
    let xs: Vec<i32> = (0..n as i32).collect();
    let mut counts = Vec::new();
    for mode in [Mode::Baseline, Mode::RustChecked, Mode::RustFull] {
        let mut gpu = gpu_for(mode);
        let a = gpu.alloc_from(&xs);
        let b = gpu.alloc_from(&xs);
        let c = gpu.alloc::<i32>(n);
        let stats = gpu
            .launch(
                &vecadd_kernel(),
                Launch::new(4, 16),
                &[n.into(), (&a).into(), (&b).into(), (&c).into()],
            )
            .unwrap();
        counts.push(stats.instrs);
    }
    assert!(counts[1] > counts[0], "bounds checks add instructions: {counts:?}");
    assert!(counts[2] > counts[1], "RustFull adds more: {counts:?}");
}

#[test]
fn purecap_kernels_report_cheri_histogram() {
    let n = 256u32;
    let xs: Vec<i32> = (0..n as i32).collect();
    let mut gpu = gpu_for(Mode::PureCap);
    let a = gpu.alloc_from(&xs);
    let b = gpu.alloc_from(&xs);
    let c = gpu.alloc::<i32>(n);
    let stats = gpu
        .launch(
            &vecadd_kernel(),
            Launch::new(4, 16),
            &[n.into(), (&a).into(), (&b).into(), (&c).into()],
        )
        .unwrap();
    assert!(stats.cheri_histogram.contains_key("CLW"));
    assert!(stats.cheri_histogram.contains_key("CSW"));
    assert!(stats.cheri_histogram.contains_key("CLC"), "argument capabilities via CLC");
    assert!(stats.cheri_histogram.contains_key("CIncOffset"));
    // Uniform argument capabilities: metadata fully compressed.
    assert_eq!(stats.peak_meta_vrf_resident, 0);
}

#[test]
fn launch_validation() {
    let mut gpu = gpu_for(Mode::Baseline);
    let kernel = vecadd_kernel();
    // Wrong argument count.
    match gpu.launch(&kernel, Launch::new(1, 16), &[Arg::Scalar(1)]) {
        Err(LaunchError::Config(_)) => {}
        other => panic!("{other:?}"),
    }
    // Block does not tile warps (SM has 8 lanes).
    let a = gpu.alloc::<i32>(4);
    match gpu.launch(
        &kernel,
        Launch::new(1, 12),
        &[4u32.into(), (&a).into(), (&a).into(), (&a).into()],
    ) {
        Err(LaunchError::Config(_)) => {}
        other => panic!("{other:?}"),
    }
    // Scalar passed where a buffer is expected.
    match gpu.launch(
        &kernel,
        Launch::new(1, 16),
        &[4u32.into(), Arg::Scalar(0), (&a).into(), (&a).into()],
    ) {
        Err(LaunchError::Config(_)) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn byte_and_half_buffers() {
    // Histogram-style byte loads: out[i] = in[i] (u8 -> i32 widening).
    let mut k = KernelBuilder::new("widen");
    let len = k.param_u32("len");
    let input = k.param_ptr("in", Elem::U8);
    let out = k.param_ptr("out", Elem::I32);
    let i = k.var_u32("i");
    k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
        k.store(&out, i.clone(), input.at(i.clone()).as_i32());
    });
    let kernel = k.finish();
    let xs: Vec<u8> = (0..=255).collect();
    for mode in ALL_MODES {
        let mut gpu = gpu_for(mode);
        let a = gpu.alloc_from(&xs);
        let o = gpu.alloc::<i32>(256);
        gpu.launch(&kernel, Launch::new(4, 16), &[256u32.into(), (&a).into(), (&o).into()])
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        let got = gpu.read(&o);
        assert!(got.iter().enumerate().all(|(i, &v)| v == i as i32), "{mode:?}");
    }
}
