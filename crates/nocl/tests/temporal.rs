//! Temporal safety via revocation sweeps — the future-work direction the
//! paper motivates: because tags make capabilities precisely
//! distinguishable from data, the host can revoke every dangling reference
//! into a freed buffer, turning use-after-free into a deterministic trap.

use cheri_simt::{CheriMode, CheriOpts, RunError, SmConfig, TrapCause};
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder, Mode};

fn cheri_gpu() -> Gpu {
    Gpu::new(SmConfig::small(CheriMode::On(CheriOpts::optimised())), Mode::PureCap)
}

/// Dereference the first argument: used before and after revocation.
fn use_kernel() -> Kernel {
    let mut k = KernelBuilder::new("use_after");
    let data = k.param_ptr("data", Elem::I32);
    let out = k.param_ptr("out", Elem::I32);
    k.if_(k.global_id().eq_(Expr::u32(0)), |k| {
        k.store(&out, Expr::u32(0), data.at(Expr::u32(0)));
    });
    k.finish()
}

/// Host-level sweep: capabilities stored in device memory lose their tags
/// when their referent is freed.
#[test]
fn revocation_clears_stashed_capabilities() {
    let mut gpu = cheri_gpu();
    let data = gpu.alloc_from(&[42i32; 16]);
    let table = gpu.alloc::<i32>(16); // 64 bytes of pointer-table space

    // Host (or a kernel via CSC) stores two capabilities into the table:
    // one pointing into `data`, one pointing elsewhere.
    let cap_data = cheri_cap::CapPipe::almighty().set_addr(data.addr()).set_bounds(64).0;
    let cap_other = cheri_cap::CapPipe::almighty().set_addr(table.addr()).set_bounds(64).0;
    gpu.sm_mut().memory_mut().write_cap(table.addr(), cap_data.to_mem()).unwrap();
    gpu.sm_mut().memory_mut().write_cap(table.addr() + 8, cap_other.to_mem()).unwrap();
    assert!(gpu.sm().memory().read_cap(table.addr()).unwrap().tag());
    assert!(gpu.sm().memory().read_cap(table.addr() + 8).unwrap().tag());

    // Free `data`: the sweep revokes exactly the capability into it.
    let revoked = gpu.free(data);
    assert_eq!(revoked, 1);
    assert!(!gpu.sm().memory().read_cap(table.addr()).unwrap().tag(), "dangling cap revoked");
    assert!(gpu.sm().memory().read_cap(table.addr() + 8).unwrap().tag(), "live cap untouched");
}

/// End to end: a kernel that dereferences a revoked argument traps with a
/// tag violation — use-after-free caught deterministically.
#[test]
fn use_after_free_traps() {
    let mut gpu = cheri_gpu();
    let data = gpu.alloc_from(&[7i32; 16]);
    let out = gpu.alloc::<i32>(4);

    // Before the free: the access works.
    gpu.launch(&use_kernel(), Launch::new(1, 8), &[(&data).into(), (&out).into()])
        .expect("live buffer reads fine");
    assert_eq!(gpu.read(&out)[0], 7);

    // Free `data`, then marshal the same (now dangling) buffer again: the
    // argument capability the runtime writes is fresh, so emulate the
    // dangling reference by reusing the *previous* argument block: revoke
    // sweeps the argument block too, clearing the stale capability's tag.
    let launch = Launch::new(1, 8);
    let kernel = use_kernel();
    // Write args once (creates tagged caps in the arg block), then revoke,
    // then run the same program without re-marshalling.
    gpu.launch(&kernel, launch, &[(&data).into(), (&out).into()]).unwrap();
    let revoked = gpu.sm_mut().memory_mut().revoke_region(data.addr(), data.bytes());
    assert!(revoked >= 1, "the argument block held a capability into data");
    // Re-run the resident program against the swept argument block.
    gpu.sm_mut().reset();
    match gpu.sm_mut().run(1_000_000) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(cheri_cap::CapException::TagViolation));
        }
        other => panic!("use-after-free must trap, got {other:?}"),
    }
}

/// The sweep respects bounds precision: freeing one buffer does not revoke
/// capabilities to its neighbours.
#[test]
fn revocation_is_precise() {
    let mut gpu = cheri_gpu();
    let a = gpu.alloc::<i32>(16);
    let b = gpu.alloc::<i32>(16);
    let table = gpu.alloc::<i32>(16);
    let cap = |buf: &nocl::Buffer<i32>| {
        cheri_cap::CapPipe::almighty().set_addr(buf.addr()).set_bounds(buf.bytes()).0.to_mem()
    };
    gpu.sm_mut().memory_mut().write_cap(table.addr(), cap(&a)).unwrap();
    gpu.sm_mut().memory_mut().write_cap(table.addr() + 8, cap(&b)).unwrap();
    assert_eq!(gpu.free(a), 1);
    assert!(gpu.sm().memory().read_cap(table.addr() + 8).unwrap().tag(), "b's cap survives");
    assert_eq!(gpu.free(b), 1);
}

/// The sweep is a no-op in baseline mode: there are no tags to revoke.
#[test]
fn revocation_is_noop_without_cheri() {
    let mut gpu = Gpu::new(SmConfig::small(CheriMode::Off), Mode::Baseline);
    let data = gpu.alloc_from(&[1i32; 16]);
    assert_eq!(gpu.free(data), 0);
}
