//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace must build and test offline, so it cannot pull `rand` from
//! a registry; this crate provides the only randomness the model needs:
//! reproducible benchmark inputs and randomised property tests. Every stream
//! is explicitly seeded — there is no global or entropy-derived state — so a
//! simulation cell produces bit-identical inputs no matter which worker
//! thread of the parallel runner executes it.
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! splitmix64, the same construction `rand`'s `SmallRng` historically used.
//! It is not cryptographically secure and does not need to be.
//!
//! ```
//! use sim_prng::Prng;
//!
//! let mut a = Prng::seed_from_u64(42);
//! let mut b = Prng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.range_i32(-100, 100);
//! assert!((-100..100).contains(&x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One step of splitmix64 — also useful on its own for hashing a counter
/// into a seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed deterministically from a single word (via splitmix64, so nearby
    /// seeds give unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Prng { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random byte.
    #[inline]
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniformly random boolean.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 != 0
    }

    /// `true` with probability `num / den`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.range_u64(0, den) < num
    }

    /// Uniform in `[lo, hi)`. Uses Lemire-style widening reduction — a tiny
    /// modulo bias (< 2^-32 for the ranges used here) is irrelevant for test
    /// inputs and keeps the generator branch-free.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i32` in `[lo, hi)`.
    #[inline]
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i64 - lo as i64) as u64;
        (lo as i64 + self.range_u64(0, span) as i64) as i32
    }

    /// Uniform `f32` in `[lo, hi)` (24 bits of precision).
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u32() >> 8) as f32 * (1.0 / (1 << 24) as f32);
        lo + unit * (hi - lo)
    }

    /// A uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer() {
        // Pin the stream so a refactor cannot silently change every
        // benchmark input in the repository.
        let mut r = Prng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0x99EC_5F36_CB75_F2B4);
        assert_eq!(r.next_u64(), 0xBF6E_1F78_4956_452A);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!((10..20).contains(&r.range_u64(10, 20)));
            assert!((-5..5).contains(&r.range_i32(-5, 5)));
            let f = r.range_f32(-4.0, 4.0);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Prng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.range_usize(0, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn chance_probability() {
        let mut r = Prng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "1/4 chance hit {hits}/10000");
    }
}
